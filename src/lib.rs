//! Root helper lib for examples/tests.
