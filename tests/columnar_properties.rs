//! Property tests for the columnar hot path's two load-bearing
//! invariants: `TupleBatch` ⇄ `ColumnBatch` conversion is lossless over
//! arbitrary tuples (empty batches, explicit nulls, duplicate keys,
//! mixed types, ragged layouts), and the SPSC ring delivers every value
//! exactly once, in order, across a real producer/consumer thread pair.

use netalytics_data::{spsc, ColumnBatch, DataTuple, PopError, PushError, TupleBatch, Value};
use proptest::prelude::*;

/// Any field value. Floats are kept finite: `Value` equality is derived,
/// so a NaN field would fail the identity check for the wrong reason.
fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::I64),
        any::<u64>().prop_map(Value::U64),
        (-1e12f64..1e12).prop_map(Value::F64),
        "[a-z/]{0,12}".prop_map(Value::Str),
        prop::collection::vec(any::<u8>(), 0..16).prop_map(Value::Bytes),
    ]
}

/// Tuples drawn from a small key/source alphabet so the interesting
/// cases — duplicate keys in one row, the same key at different types,
/// shared layouts across rows — actually occur.
fn tuple_strategy() -> impl Strategy<Value = DataTuple> {
    let key = prop_oneof![
        Just("url"),
        Just("kind"),
        Just("t_ns"),
        Just("bytes"),
        Just("status")
    ];
    let source = prop_oneof![Just("http_get"), Just("tcp_conn_time"), Just("")];
    (
        any::<u64>(),
        any::<u64>(),
        source,
        prop::collection::vec((key, value_strategy()), 0..8),
    )
        .prop_map(|(id, ts_ns, source, fields)| {
            let mut t = DataTuple::new(id, ts_ns).from_source(source);
            for (k, v) in fields {
                t = t.with(k, v);
            }
            t
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Row → column → row is the identity, in memory and over the wire:
    /// ids, timestamps, sources, field order, duplicate names, explicit
    /// nulls and every value survive exactly.
    #[test]
    fn column_batch_round_trip_is_identity(
        tuples in prop::collection::vec(tuple_strategy(), 0..40),
    ) {
        let batch = TupleBatch::from_tuples(tuples);
        let cols = ColumnBatch::from_batch(&batch);
        prop_assert_eq!(cols.rows(), batch.len());
        prop_assert_eq!(cols.to_batch(), batch.clone(), "in-memory round trip");

        let mut wire = cols.encode();
        prop_assert!(ColumnBatch::is_columnar_frame(&wire));
        let decoded = ColumnBatch::decode(&mut wire).expect("well-formed frame");
        prop_assert_eq!(decoded.rows(), batch.len());
        prop_assert_eq!(decoded.to_batch(), batch, "wire round trip");
    }

    /// A real producer thread races the consuming test thread through a
    /// ring of arbitrary (tiny, wrapping) capacity: every value arrives,
    /// in push order, and the drain-then-disconnect contract holds.
    #[test]
    fn spsc_ring_is_fifo_and_lossless(cap in 1usize..64, n in 0usize..2000) {
        let (mut tx, mut rx) = spsc::<usize>(cap);
        let producer = std::thread::spawn(move || {
            for i in 0..n {
                let mut v = i;
                loop {
                    match tx.push(v) {
                        Ok(()) => break,
                        Err(PushError::Full(back)) => {
                            v = back;
                            std::hint::spin_loop();
                        }
                        Err(PushError::Disconnected(_)) => panic!("consumer vanished"),
                    }
                }
            }
        });
        let mut seen = 0usize;
        loop {
            match rx.pop() {
                Ok(v) => {
                    assert_eq!(v, seen, "FIFO order broken");
                    seen += 1;
                }
                Err(PopError::Empty) => std::thread::yield_now(),
                Err(PopError::Disconnected) => break,
            }
        }
        producer.join().expect("producer thread");
        prop_assert_eq!(seen, n, "no value lost or duplicated");
    }
}
