//! End-to-end approximate analytics: `PROCESS (heavy-hitters | distinct
//! | quantile)` from query text through SDN rules, NFV monitors with
//! pre-aggregation, the queue, the sketch reduction tree, and the
//! durable results store — on both executor modes, deterministically.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use netalytics::{Orchestrator, TimeSeriesStore};
use netalytics_apps::{
    sample_sink, ClientApp, Conversation, StaticHttpBehavior, TierApp, ZipfKeys,
};
use netalytics_data::{DataTuple, Value};
use netalytics_netsim::{SimDuration, SimTime};
use netalytics_packet::http;
use netalytics_sketch::{Sketch, SpaceSaving, SKETCH_SOURCE};
use netalytics_stream::bolts::{HeavyHittersBolt, RankBolt};
use netalytics_stream::{Bolt, ExecutorMode, ShardedConfig, ThreadedConfig};

/// The threaded engine configured for determinism: no wall-clock
/// self-ticks, so windows rotate only at the aggregator's virtual-time
/// ticks — the same instants the inline engine sees.
fn threaded() -> ExecutorMode {
    ExecutorMode::Threaded(ThreadedConfig {
        tick_interval: Duration::from_secs(3600),
        ..Default::default()
    })
}

/// The SPSC-sharded engine with rings small enough that the workload
/// actually exercises spill handling. It never self-ticks, so it is
/// deterministic under virtual time out of the box.
fn sharded() -> ExecutorMode {
    ExecutorMode::Sharded(ShardedConfig {
        shards: 3,
        ring_capacity: 8,
        ..Default::default()
    })
}

type Ranking = Vec<(String, u64)>;

/// A k=4 data center with a web tier on host 1 and a client replaying a
/// skewed url mix; returns the final ranking, the ranking replayed from
/// the durable store, and the monitor fold counters.
fn run_heavy_hitters(mode: ExecutorMode) -> (Ranking, Ranking, u64, u64) {
    let store = Arc::new(TimeSeriesStore::in_memory());
    let mut orch = Orchestrator::builder(4)
        .executor_mode(mode)
        .monitor_preagg(true)
        .heartbeat_interval(SimDuration::from_millis(100))
        .result_store(store)
        .build();
    orch.name_host("web", 1);
    let web_ip = orch.host_ip(1);
    orch.deploy_app(
        1,
        Box::new(TierApp::new(80, Box::new(StaticHttpBehavior::new(1.0, 3)))),
    );
    let urls = ["/hot", "/hot", "/hot", "/hot", "/warm", "/warm", "/cold"];
    let schedule = (0..280u64)
        .map(|i| {
            (
                SimTime::from_nanos(i * 7_000_000),
                Conversation {
                    dst: (web_ip, 80),
                    requests: vec![http::build_get(urls[(i % 7) as usize], "web")],
                    tag: "c".into(),
                },
            )
        })
        .collect();
    orch.deploy_app(0, Box::new(ClientApp::new(schedule, sample_sink())));

    let q = orch
        .submit(
            "PARSE http_get FROM * TO web:80 LIMIT 2s SAMPLE * \
             PROCESS (heavy-hitters: k=10, eps=0.001)",
        )
        .expect("sketch query submits");
    orch.run_until(SimTime::from_nanos(2_100_000_000));
    let report = orch.kill(&q).expect("running query");
    let ranking = report.first().final_ranking();

    let history = q.history().expect("store attached");
    let replayed = history.final_ranking();
    // The persisted history also carries the sketch snapshot itself, so
    // rollups keep the full summary — not just the extracted numbers.
    assert!(
        history.tuples.iter().any(|t| t.source == SKETCH_SOURCE),
        "sketch snapshot persisted beside the ranking"
    );

    let stats = &report.monitor_stats[0];
    (ranking, replayed, stats.tuples_folded, stats.sketches_out)
}

/// The acceptance query runs end-to-end on all three executor modes and
/// all agree — same ranking from the live report and from
/// `query_history`, with monitors shipping sketch deltas instead of raw
/// tuples.
#[test]
fn heavy_hitters_query_identical_on_all_executor_modes() {
    let (inline_rank, inline_hist, folded_i, deltas_i) = run_heavy_hitters(ExecutorMode::Inline);
    let (threaded_rank, threaded_hist, folded_t, deltas_t) = run_heavy_hitters(threaded());
    let (sharded_rank, sharded_hist, folded_s, deltas_s) = run_heavy_hitters(sharded());

    assert!(!inline_rank.is_empty(), "query produced a ranking");
    assert_eq!(inline_rank, threaded_rank, "threaded agrees on the ranking");
    assert_eq!(inline_rank, sharded_rank, "sharded agrees on the ranking");
    assert_eq!(
        inline_hist, threaded_hist,
        "threaded agrees on stored history"
    );
    assert_eq!(
        inline_hist, sharded_hist,
        "sharded agrees on stored history"
    );
    assert_eq!(inline_rank, inline_hist, "store replays the live answer");

    assert_eq!(inline_rank[0].0, "/hot");
    let counts: HashMap<&str, u64> = inline_rank.iter().map(|(k, c)| (k.as_str(), *c)).collect();
    assert!(counts["/hot"] > counts["/warm"] && counts["/warm"] > counts["/cold"]);

    // Pre-aggregation was really on: tuples folded at the tap point,
    // far fewer deltas crossed the queue, identically in every mode.
    assert_eq!((folded_i, deltas_i), (folded_t, deltas_t));
    assert_eq!((folded_i, deltas_i), (folded_s, deltas_s));
    assert!(folded_i > 0 && deltas_i > 0 && deltas_i < folded_i);
    // Every folded observation is accounted for in the final counts.
    assert_eq!(inline_rank.iter().map(|(_, c)| c).sum::<u64>(), folded_i);
}

/// Satellite regression: repeated identical runs produce bit-identical
/// rankings (ties broken by key, deterministic store flush order).
#[test]
fn repeated_runs_are_deterministic() {
    let a = run_heavy_hitters(ExecutorMode::Inline);
    let b = run_heavy_hitters(ExecutorMode::Inline);
    assert_eq!(a, b);
}

/// Golden test: the sketch ranker against the exact `RankBolt` on a
/// Zipfian stream — top-k recall must be ≥ 0.9 (it is 1.0 here, but the
/// gate is the ISSUE's).
#[test]
fn heavy_hitters_recall_vs_exact_rank_bolt_on_zipf_stream() {
    const K: usize = 10;
    let keys: Vec<String> = ZipfKeys::new(10_000, 1.1, 7).take(30_000).collect();

    // Exact path: per-key counts into the paper's total RankBolt.
    let mut counts: HashMap<&str, u64> = HashMap::new();
    for k in &keys {
        *counts.entry(k).or_default() += 1;
    }
    let mut exact = RankBolt::new(K);
    let mut out = Vec::new();
    for (k, c) in &counts {
        exact.execute(
            &DataTuple::new(0, 0).with("key", *k).with("count", *c),
            &mut out,
        );
    }
    exact.tick(1, &mut out);
    let exact_top: Vec<(String, u64)> = out
        .iter()
        .map(|t| {
            (
                t.get("key").unwrap().to_string(),
                t.get("count").and_then(Value::as_u64).unwrap(),
            )
        })
        .collect();
    assert_eq!(exact_top.len(), K);

    // Approximate path: the same stream through four parallel local
    // sketch rankers reduced into the global one — the monitor/bolt
    // topology in miniature.
    let mut locals: Vec<HeavyHittersBolt> = (0..4)
        .map(|_| HeavyHittersBolt::local(K, 0.001, "url", 10_000_000_000))
        .collect();
    let mut partials = Vec::new();
    for (i, k) in keys.iter().enumerate() {
        locals[i % 4].execute(
            &DataTuple::new(i as u64, 1).with("url", k.as_str()),
            &mut partials,
        );
    }
    for l in &mut locals {
        l.finish(100, &mut partials);
    }
    let mut global = HeavyHittersBolt::global(K, 0.001, "url", 10_000_000_000);
    let mut final_out = Vec::new();
    for p in &partials {
        global.execute(p, &mut final_out);
    }
    global.finish(200, &mut final_out);
    let approx_top: Vec<String> = final_out
        .iter()
        .filter(|t| t.source == "rank")
        .map(|t| t.get("key").unwrap().to_string())
        .collect();

    let hits = exact_top
        .iter()
        .filter(|(k, _)| approx_top.contains(k))
        .count();
    let recall = hits as f64 / K as f64;
    assert!(recall >= 0.9, "top-{K} recall {recall} below the 0.9 gate");

    // The hottest key's estimate is exact (SpaceSaving never loses the
    // head of a skewed stream).
    let hot = &exact_top[0];
    let est = final_out
        .iter()
        .filter(|t| t.source == "rank")
        .find(|t| t.get("key").map(ToString::to_string).as_deref() == Some(&hot.0))
        .and_then(|t| t.get("count").and_then(Value::as_u64))
        .expect("hottest key ranked");
    assert_eq!(est, hot.1);
}

/// Acceptance bound: sketch state is orders of magnitude below the
/// exact `HashMap` a `RankBolt`/`AggBolt` pipeline would hold at 1M
/// distinct keys. The sketch's footprint is `O(1/eps)` by construction,
/// so saturating it far past capacity is enough to measure its ceiling;
/// the exact side really holds the million entries.
#[test]
fn sketch_state_is_far_below_exact_state_at_1m_distinct_keys() {
    let mut exact: HashMap<String, u64> = HashMap::with_capacity(1 << 20);
    for i in 0..1_000_000u64 {
        exact.insert(format!("/key/{i}"), 1);
    }
    // Same per-entry accounting as SpaceSaving::memory_bytes.
    let exact_bytes: usize = exact
        .keys()
        .map(|k| k.len() + std::mem::size_of::<(u64, u64)>() + 48)
        .sum();

    let mut ss = SpaceSaving::new(0.001);
    let mut zipf = ZipfKeys::new(1_000_000, 1.05, 42);
    for _ in 0..20_000 {
        let k = zipf.next().unwrap();
        ss.record(&k, 1);
    }
    assert!(ss.len() <= 1_000, "capacity-bounded at 1/eps entries");
    let sketch_bytes = Sketch::HeavyHitters(ss).memory_bytes();
    assert!(
        sketch_bytes * 100 < exact_bytes,
        "sketch {sketch_bytes} B must be ≪ exact {exact_bytes} B"
    );
}

/// The other two operators compile and answer end-to-end on the default
/// (inline) engine: distinct counts the url set, quantile summarizes
/// the latency field.
#[test]
fn distinct_and_quantile_queries_answer_end_to_end() {
    let store = Arc::new(TimeSeriesStore::in_memory());
    let mut orch = Orchestrator::builder(4)
        .monitor_preagg(true)
        .heartbeat_interval(SimDuration::from_millis(100))
        .result_store(store)
        .build();
    orch.name_host("web", 1);
    let web_ip = orch.host_ip(1);
    orch.deploy_app(
        1,
        Box::new(TierApp::new(80, Box::new(StaticHttpBehavior::new(1.0, 3)))),
    );
    let schedule = (0..200u64)
        .map(|i| {
            (
                SimTime::from_nanos(i * 9_000_000),
                Conversation {
                    dst: (web_ip, 80),
                    requests: vec![http::build_get(&format!("/page/{}", i % 17), "web")],
                    tag: "c".into(),
                },
            )
        })
        .collect();
    orch.deploy_app(0, Box::new(ClientApp::new(schedule, sample_sink())));

    let qd = orch
        .submit("PARSE http_get FROM * TO web:80 LIMIT 2s SAMPLE * PROCESS (distinct: field=url)")
        .expect("distinct query");
    let qq = orch
        .submit(
            "PARSE http_get FROM * TO web:80 LIMIT 2s SAMPLE * \
             PROCESS (quantile: value=t_ns, q=0.5+0.99)",
        )
        .expect("quantile query");
    orch.run_until(SimTime::from_nanos(2_100_000_000));

    let report = orch.kill(&qd).expect("distinct query running");
    let d = report
        .first()
        .tuples
        .iter()
        .rev()
        .find(|t| t.source == "distinct")
        .and_then(|t| t.get("distinct").and_then(Value::as_u64))
        .expect("distinct estimate emitted");
    assert!((15..=19).contains(&d), "17 true distinct urls, got {d}");
    let history = qd.history().expect("persisted");
    assert!(history.tuples.iter().any(|t| t.source == "distinct"));

    let report = orch.kill(&qq).expect("quantile query running");
    let quantiles: Vec<(f64, u64)> = report
        .first()
        .tuples
        .iter()
        .filter(|t| t.source == "quantile")
        .map(|t| {
            (
                t.get("q").and_then(Value::as_f64).unwrap(),
                t.get("value").and_then(Value::as_u64).unwrap(),
            )
        })
        .collect();
    assert!(
        quantiles.iter().any(|(q, v)| *q == 0.5 && *v > 0),
        "p50 of connection time reported: {quantiles:?}"
    );
}
