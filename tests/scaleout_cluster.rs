//! Scale-out control plane end-to-end: orchestrator shards behind the
//! cluster coordinator route by hostname, encode their shard in the
//! cookie, merge telemetry under `shard=<i>` labels, serve the same
//! HTTP lifecycle as the single-node frontend — and survive the loss
//! of a whole pod (hosts, uplinks and the colocated store replica) at
//! k=32 within the heartbeat budget.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

use netalytics::cluster::{Cluster, ClusterConfig};
use netalytics::{
    ClusterFrontend, EventKind, FrontendConfig, ResultBackend, SeriesKey, ShardedConfig,
    ShardedStore, StandingConfig,
};
use netalytics_apps::{sample_sink, ClientApp, Conversation, StaticHttpBehavior, TierApp};
use netalytics_data::DataTuple;
use netalytics_netsim::{HostIdx, SimDuration, SimTime};
use netalytics_packet::http;

/// top-k with a short re-emit window keeps the store fed continuously,
/// so standing windows have material and history reads have a prefix.
fn rank_query(host: &str) -> String {
    format!(
        "PARSE http_get FROM * TO {host}:80 LIMIT 5s SAMPLE * \
         PROCESS (top-k: k=5, w=50ms, key=url)"
    )
}

/// Web tier on `web`, a client on `web + 1` (same rack) driving one
/// conversation every 10 ms of virtual time, deployed through the
/// coordinator so each app lands on its owning shard's engine.
fn deploy_pair(cluster: &Cluster, name: &str, web: HostIdx, conversations: u64) {
    cluster.name_host(name, web);
    let web_ip = cluster.host_ip(web);
    cluster.deploy_app_on(web, || {
        Box::new(TierApp::new(80, Box::new(StaticHttpBehavior::new(1.0, 3))))
    });
    let server = name.to_string();
    cluster.deploy_app_on(web + 1, move || {
        let schedule = (0..conversations)
            .map(|i| {
                (
                    SimTime::from_nanos(i * 10_000_000),
                    Conversation {
                        dst: (web_ip, 80),
                        requests: vec![http::build_get(
                            if i % 3 == 0 { "/hot" } else { "/cold" },
                            &server,
                        )],
                        tag: "c".into(),
                    },
                )
            })
            .collect();
        Box::new(ClientApp::new(schedule, sample_sink()))
    });
}

/// Ticks the cluster until every shard clock reaches `until`,
/// returning the summed reconcile work.
fn run_to(cluster: &Cluster, until: SimTime) -> usize {
    let mut replaced = 0;
    while cluster.now() < until {
        replaced += cluster
            .tick(cluster.heartbeat_interval(), SimDuration::from_millis(50))
            .replaced;
    }
    replaced
}

#[test]
fn cookies_encode_shards_and_names_route_submissions() {
    // k=8: 16 hosts per pod, shard 0 owns pods 0-3, shard 1 owns 4-7.
    let cluster = Cluster::new(ClusterConfig::default());
    assert_eq!(cluster.pod_bounds(), &[(0, 3), (4, 7)]);
    deploy_pair(&cluster, "weba", 1, 200);
    deploy_pair(&cluster, "webb", 65, 200);
    assert_eq!(cluster.shard_of_host(1), 0);
    assert_eq!(cluster.shard_of_host(65), 1);

    // Name routing beats load: shard 0 is empty, yet "webb" owns the
    // submission — placement must happen where the traffic is.
    let cb = cluster.submit(&rank_query("webb")).expect("submit b");
    assert_eq!(Cluster::shard_of_cookie(cb), 1);
    assert_eq!(cb >> 32, 1, "shard rides in the cookie's high bits");
    let ca = cluster.submit(&rank_query("weba")).expect("submit a");
    assert_eq!(Cluster::shard_of_cookie(ca), 0);

    // Both shards publish into one directory; summaries agree.
    let dir = cluster.directory();
    assert!(dir.get(ca).is_some() && dir.get(cb).is_some());
    assert_eq!(dir.list().len(), 2);
    let summaries = cluster.shard_summaries();
    assert_eq!(summaries.len(), 2);
    assert!(summaries.iter().all(|s| s.running == 1));

    // Cookie-addressed calls route without a lookup, and a kill on the
    // right shard yields the report with real traffic in it.
    run_to(&cluster, SimTime::from_nanos(300_000_000));
    let report = cluster.kill(cb).expect("query b was running");
    assert!(report.aggregator.tuples_in > 0, "traffic reached shard 1");
    assert!(cluster.kill(cb).is_none(), "second kill is a miss");
    assert_eq!(cluster.kill_all(), 1, "only query a was left");
}

#[test]
fn telemetry_report_labels_shard_series_and_merges_store_metrics() {
    let store = Arc::new(ShardedStore::in_memory(ShardedConfig::default()));
    let cluster = Cluster::new(ClusterConfig {
        store: Some(Arc::clone(&store)),
        ..ClusterConfig::default()
    });
    deploy_pair(&cluster, "weba", 1, 100);
    deploy_pair(&cluster, "webb", 65, 100);
    cluster.submit(&rank_query("weba")).expect("submit a");
    cluster.submit(&rank_query("webb")).expect("submit b");
    run_to(&cluster, SimTime::from_nanos(200_000_000));

    let snapshot = cluster.telemetry_report();
    let shard_label = |m: &netalytics_telemetry::MetricSnapshot, v: &str| {
        m.labels.iter().any(|(k, val)| k == "shard" && val == v)
    };
    // Per-shard series carry their shard label; both shards show up.
    for v in ["0", "1"] {
        assert!(
            snapshot.metrics.iter().any(|m| shard_label(m, v)),
            "merged snapshot has shard={v} series"
        );
    }
    // The replicated store's counters live in the coordinator registry
    // (registered before any shard built), unlabelled and exactly once.
    let appends: Vec<_> = snapshot
        .metrics
        .iter()
        .filter(|m| m.name == "store.sharded.appends")
        .collect();
    assert_eq!(appends.len(), 1, "one merged store append counter");
    assert!(appends[0].labels.is_empty());
    assert!(
        matches!(appends[0].value, netalytics_telemetry::MetricValue::Counter(n) if n > 0),
        "results were committed"
    );
    assert!(store.sharded_stats().appends > 0);
}

/// Minimal blocking HTTP/1.1 request against the cluster frontend.
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (String, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    s.write_all(req.as_bytes()).expect("request");
    let mut resp = String::new();
    s.read_to_string(&mut resp).expect("response");
    let (head, raw) = resp.split_once("\r\n\r\n").expect("header/body split");
    let status = head.lines().next().unwrap_or("").to_string();
    let body = if head
        .to_ascii_lowercase()
        .contains("transfer-encoding: chunked")
    {
        dechunk(raw)
    } else {
        raw.to_string()
    };
    (status, body)
}

/// Decodes a chunked body: size lines are hex, data follows verbatim.
fn dechunk(raw: &str) -> String {
    let mut out = String::new();
    let mut rest = raw;
    while let Some((size_line, tail)) = rest.split_once("\r\n") {
        let Ok(size) = usize::from_str_radix(size_line.trim(), 16) else {
            break;
        };
        if size == 0 || tail.len() < size {
            break;
        }
        out.push_str(&tail[..size]);
        rest = tail[size..].strip_prefix("\r\n").unwrap_or("");
    }
    out
}

fn extract_cookie(descriptor: &str) -> u64 {
    let idx = descriptor
        .find("\"cookie\":")
        .expect("descriptor has a cookie")
        + 9;
    descriptor[idx..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("cookie digits")
}

#[test]
fn cluster_frontend_serves_the_single_node_api_plus_cluster_views() {
    let store = Arc::new(ShardedStore::in_memory(ShardedConfig::default()));
    let cluster = Cluster::new(ClusterConfig {
        store: Some(store),
        ..ClusterConfig::default()
    });
    deploy_pair(&cluster, "webb", 65, 20_000);
    let frontend =
        ClusterFrontend::spawn("127.0.0.1:0", cluster, FrontendConfig::default()).expect("spawn");
    let addr = frontend.local_addr();

    // The PR 8 lifecycle, unchanged: POST the query text, watch the
    // directory, pull results, DELETE.
    let (status, descriptor) = request(addr, "POST", "/queries", &rank_query("webb"));
    assert!(status.contains("201"), "submit: {status}");
    let cookie = extract_cookie(&descriptor);
    assert_eq!(
        Cluster::shard_of_cookie(cookie),
        1,
        "webb routed to shard 1"
    );

    let (status, body) = request(addr, "GET", &format!("/queries/{cookie}"), "");
    assert!(status.contains("200"), "describe: {status}");
    assert!(body.contains("\"state\":\"running\""));

    // Cluster-only views ride alongside: per-shard summaries and the
    // merged shard-labelled metrics.
    let (status, shards) = request(addr, "GET", "/cluster/shards", "");
    assert!(status.contains("200"), "shards: {status}");
    assert!(shards.contains("\"index\":0") && shards.contains("\"index\":1"));
    let (status, metrics) = request(addr, "GET", "/cluster/metrics", "");
    assert!(status.contains("200"), "metrics: {status}");
    assert!(metrics.contains("shard=\"1\""), "shard labels rendered");

    let (status, summary) = request(addr, "DELETE", &format!("/queries/{cookie}"), "");
    assert!(status.contains("200"), "kill: {status}");
    assert!(summary.contains("\"cookie\""));
}

/// The headline chaos scenario at full scale: a k=32 fabric (8192
/// hosts, 32 pods) over 4 orchestrator shards and an 8-shard
/// replicated store. Killing pod 1 wholesale — all 256 hosts, their
/// uplinks and the colocated store primary — must re-place every
/// monitor and the aggregator of the pod's query within the heartbeat
/// budget, keep the surviving replica serving the full pre-fault
/// commit prefix, and leave every standing window cadence gap-free.
#[test]
fn pod_kill_at_k32_replaces_placements_and_preserves_history() {
    let hb = SimDuration::from_millis(10);
    let store = Arc::new(ShardedStore::in_memory(ShardedConfig {
        shards: 8,
        replication: 2,
        ..ShardedConfig::default()
    }));
    let cluster = Cluster::new(ClusterConfig {
        k: 32,
        shards: 4,
        heartbeat_interval: hb,
        store: Some(Arc::clone(&store)),
        ..ClusterConfig::default()
    });
    assert_eq!(cluster.pod_bounds(), &[(0, 7), (8, 15), (16, 23), (24, 31)]);

    // Victim workload in pod 1 (shard 0), survivor in pod 8 (shard 1);
    // 256 hosts per pod, so pod p starts at host 256·p.
    deploy_pair(&cluster, "webb", 257, 500);
    deploy_pair(&cluster, "weba", 2049, 500);
    let window = SimDuration::from_millis(100);
    let cb = cluster
        .submit_standing_as("default", &rank_query("webb"), StandingConfig::new(window))
        .expect("standing b");
    let ca = cluster
        .submit_standing_as("default", &rank_query("weba"), StandingConfig::new(window))
        .expect("standing a");
    assert_eq!(Cluster::shard_of_cookie(cb), 0);
    assert_eq!(Cluster::shard_of_cookie(ca), 1);
    let derived_b = SeriesKey::new(cb, "standing:sum:count");
    let derived_a = SeriesKey::new(ca, "standing:sum:count");
    // A probe series pinned (by group search) to store shard 1 — the
    // shard whose primary is colocated with pod 1 and dies with it.
    let probe = (0..)
        .map(|i| SeriesKey::new(cb, format!("probe{i}")))
        .find(|k| store.shard_of(k) == 1)
        .expect("some group hashes onto store shard 1");
    let probe_batch = netalytics_data::TupleBatch::from_tuples(
        (0..32u64)
            .map(|i| DataTuple::new(i, i * 1_000).with("v", i))
            .collect(),
    );
    store.append(&probe, &probe_batch).expect("probe commit");

    // Healthy warm-up: traffic flows, windows fire, commits replicate.
    run_to(&cluster, SimTime::from_nanos(300_000_000));
    let pre = store.range(&derived_b, 0, u64::MAX).expect("pre-fault");
    assert!(!pre.is_empty(), "windows materialized before the fault");
    let monitors_b = cluster.directory().get(cb).expect("directory").monitors;
    assert!(monitors_b >= 1);

    // Kill pod 1: every host behind its edge switches, every uplink,
    // and the colocated store primary (store shard 1, replica 0).
    let t_fail = cluster.now();
    let kill = cluster.fail_pod(1);
    assert_eq!((kill.pod, kill.shard), (1, 0));
    assert_eq!(kill.hosts, 256, "whole pod of hosts down");
    assert_eq!(kill.links, 256, "every host uplink down");
    assert_eq!(kill.store_replicas, 1, "colocated primary down");
    assert!(!store.replica_is_up(1, 0));

    // Recovery: reconcile re-places the dead pod's monitors and
    // aggregator onto surviving pods of the same shard, within the
    // detection budget (miss_threshold heartbeats).
    let budget =
        SimDuration::from_nanos(hb.as_nanos() * u64::from(cluster.failure_policy().miss_threshold));
    let mut replaced = 0;
    while replaced < monitors_b + 1 {
        replaced += cluster.tick(hb, SimDuration::from_millis(50)).replaced;
        assert!(
            cluster.now() <= t_fail + budget,
            "recovery exceeded the heartbeat budget: {replaced} of {} re-placed",
            monitors_b + 1
        );
    }
    let info = cluster.directory().get(cb).expect("directory");
    assert!(info.replacements >= (monitors_b + 1) as u64);
    let journal = cluster.journal().events();
    assert!(journal
        .iter()
        .any(|e| e.kind == EventKind::Failover && e.detail.contains("monitor re-placed")));
    assert!(journal
        .iter()
        .any(|e| e.kind == EventKind::Failover && e.detail.contains("aggregator failed over")));

    // Durability: reads fail over to the surviving replica and return
    // the full pre-fault commit prefix, byte for byte. The probe lives
    // on the store shard that lost its primary, so this read *must*
    // come from the follower.
    assert_eq!(store.leader_of(1), Some(1));
    let recovered = store.range(&probe, 0, u64::MAX).expect("probe read");
    assert_eq!(recovered.len(), 32, "full pre-fault commit prefix");
    assert_eq!(store.sharded_stats().down, 1, "exactly the dead primary");
    let post = store.range(&derived_b, 0, u64::MAX).expect("post-fault");
    assert!(post.len() >= pre.len());
    assert_eq!(&post[..pre.len()], &pre[..], "no committed window lost");

    // The survivor shard never noticed: its query kept its placements.
    assert_eq!(
        cluster.directory().get(ca).expect("directory").replacements,
        0
    );

    // Run well past the fault: both standing cadences stay gap-free —
    // consecutive windows share their boundary, including the empty
    // windows the victim emits once its traffic died with the pod.
    run_to(&cluster, SimTime::from_nanos(700_000_000));
    for series in [&derived_b, &derived_a] {
        let windows = store.range(series, 0, u64::MAX).expect("windows");
        assert!(windows.len() >= 6, "cadence kept firing");
        for pair in windows.windows(2) {
            assert_eq!(
                field(&pair[0], "window_end"),
                field(&pair[1], "window_start"),
                "gap-free cadence in {series:?}"
            );
        }
    }
    cluster.kill_all();
}

fn field(t: &DataTuple, name: &str) -> u64 {
    t.get(name)
        .and_then(|v| v.as_u64())
        .unwrap_or_else(|| panic!("materialized tuple carries {name}"))
}
