//! Integration: the live introspection endpoint, end to end.
//!
//! Two planes, one HTTP surface:
//!
//! * the **orchestrator plane** — a query runs on the discrete-event
//!   engine with tracing enabled; `Orchestrator::serve` then exposes
//!   metrics, the query directory, virtual-clock waterfalls, and the
//!   flight-recorder journal over real sockets;
//! * the **threaded plane** — pipeline → queue → executor → store on
//!   wall-clock threads, fetched over HTTP as the full four-stage
//!   parse → queue → bolt → store waterfall.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

use netalytics::{Orchestrator, TraceConfig};
use netalytics_apps::{sample_sink, ClientApp, Conversation, StaticHttpBehavior, TierApp};
use netalytics_monitor::{Pipeline, PipelineConfig, SampleSpec};
use netalytics_netsim::{SimDuration, SimTime};
use netalytics_packet::{http, Packet, TcpFlags};
use netalytics_queue::{QueueCluster, QueueConfig};
use netalytics_store::{StoreSink, TimeSeriesStore};
use netalytics_stream::{
    build_executor_traced, topologies, ExecutorMode, ProcessorSpec, QueueSpout, Spout,
};
use netalytics_telemetry::{
    wall_now_ns, Introspection, Journal, MetricsRegistry, QueryDirectory, TelemetryServer, Tracer,
};

const QUERY: &str = "PARSE http_get FROM * TO web:80 LIMIT 1s SAMPLE * \
                     PROCESS (group-sum: group=url, value=t_ns)";

/// Minimal blocking HTTP/1.1 GET against the introspection server.
fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    write!(
        s,
        "GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    )
    .expect("request");
    let mut resp = String::new();
    s.read_to_string(&mut resp).expect("response");
    let (head, body) = resp.split_once("\r\n\r\n").expect("header/body split");
    (
        head.lines().next().unwrap_or("").to_string(),
        body.to_string(),
    )
}

fn deploy_web(orch: &mut Orchestrator, conversations: u64) {
    orch.name_host("web", 1);
    let web_ip = orch.host_ip(1);
    orch.deploy_app(
        1,
        Box::new(TierApp::new(80, Box::new(StaticHttpBehavior::new(1.0, 3)))),
    );
    let schedule = (0..conversations)
        .map(|i| {
            (
                SimTime::from_nanos(i * 10_000_000),
                Conversation {
                    dst: (web_ip, 80),
                    requests: vec![http::build_get("/r", "web")],
                    tag: "c".into(),
                },
            )
        })
        .collect();
    orch.deploy_app(0, Box::new(ClientApp::new(schedule, sample_sink())));
}

/// The orchestrator plane serves every endpoint for a real query: the
/// directory knows its lifecycle, `/trace` shows virtual-clock
/// waterfalls, and `/events` replays the journal — all over sockets.
#[test]
fn orchestrator_serves_query_trace_and_events_over_http() {
    let mut orch = Orchestrator::builder(4)
        .tracing(TraceConfig {
            sample_every: 1,
            ..TraceConfig::default()
        })
        .build();
    deploy_web(&mut orch, 40);
    let q = orch.submit(QUERY).expect("submit");
    let cookie = q.cookie();
    let deadline = q.deadline().expect("time-limited query");
    orch.run_reconciling(&q, deadline + SimDuration::from_millis(50))
        .expect("run");
    let report = orch.kill(&q).expect("running query");
    assert!(report.aggregator.tuples_in > 0, "query saw traffic");

    let srv = orch.serve("127.0.0.1:0").expect("bind introspection");
    let addr = srv.local_addr();

    let (status, index) = http_get(addr, "/");
    assert!(status.contains("200"), "{status}");
    assert!(index.contains("/metrics") && index.contains("/trace"));

    // Tracing at sample_every=1 populated the stage histograms.
    let (status, metrics) = http_get(addr, "/metrics");
    assert!(status.contains("200"), "{status}");
    assert!(
        metrics.contains("trace_stage_ns"),
        "stage histograms exported"
    );

    let (_, list) = http_get(addr, "/queries");
    assert!(list.contains(&format!("\"cookie\":{cookie}")));
    let (status, one) = http_get(addr, &format!("/queries/{cookie}"));
    assert!(status.contains("200"), "{status}");
    assert!(
        one.contains("\"state\":\"killed\""),
        "finalized query: {one}"
    );
    assert!(one.contains("\"monitors\":"), "{one}");

    // Virtual-clock waterfalls: parse, queue and bolt stages (the
    // netsim plane has no store sink, so no `store` span here).
    let (status, trace) = http_get(addr, &format!("/trace/{cookie}"));
    assert!(status.contains("200"), "{status}");
    for stage in ["parse", "queue", "bolt"] {
        assert!(
            trace.contains(&format!("\"stage\":\"{stage}\"")),
            "{stage} span missing from {trace}"
        );
    }

    // The flight recorder replays the query's lifecycle.
    let (_, events) = http_get(addr, &format!("/events?cookie={cookie}"));
    for kind in ["query_submitted", "query_deployed", "query_killed"] {
        assert!(events.contains(kind), "{kind} missing from {events}");
    }
}

/// The acceptance waterfall: traffic through the wall-clock threaded
/// plane — monitor pipeline, queue cluster, executor, store sink — and
/// the resulting ≥4-stage parse → queue → bolt → store waterfall
/// fetched over HTTP.
#[test]
fn threaded_plane_waterfall_spans_parse_queue_bolt_store_over_http() {
    const COOKIE: u64 = 42;
    let registry = Arc::new(MetricsRegistry::new());
    let tracer = Arc::new(Tracer::with_registry(
        TraceConfig {
            sample_every: 1,
            ..TraceConfig::default()
        },
        Arc::clone(&registry),
    ));

    // Stage 1: parse. Every sealed batch gets stamped (sample_every=1)
    // and records its `parse` span.
    let pipeline = Pipeline::spawn(PipelineConfig {
        parsers: vec!["http_get".into()],
        sample: SampleSpec::All,
        batch_size: 8,
        metrics: Some(Arc::clone(&registry)),
        tracing: Some((COOKIE, Arc::clone(&tracer))),
        ..Default::default()
    })
    .expect("pipeline");
    let src: std::net::Ipv4Addr = "10.0.0.1".parse().unwrap();
    let dst: std::net::Ipv4Addr = "10.0.0.9".parse().unwrap();
    for i in 0..64u32 {
        let url = if i % 4 == 0 { "/hot" } else { "/cold" };
        pipeline.offer(Packet::tcp(
            src,
            4000 + (i % 512) as u16,
            dst,
            80,
            TcpFlags::PSH | TcpFlags::ACK,
            1,
            1,
            &http::build_get(url, "h"),
        ));
    }
    let summary = pipeline.shutdown(false);
    assert_eq!(summary.tuples_out, 64);

    // Stage 2: queue. Batches dwell in the broker; the spout records
    // the `queue` span when it decodes them.
    let cluster = Arc::new(QueueCluster::new(QueueConfig::default()));
    let topic = cluster.topic_id("http_get");
    for (key, batch) in summary.residual_batches.into_iter().enumerate() {
        cluster.produce_to(topic, key as u64, batch.encode(), wall_now_ns());
    }
    let mut spout =
        QueueSpout::new(Arc::clone(&cluster), "http_get", "storm").with_tracer(Arc::clone(&tracer));

    // Stages 3+4: bolt and store. A traced executor runs top-k with a
    // StoreSink appended after its terminals.
    let store = Arc::new(TimeSeriesStore::in_memory());
    let topo = topologies::build(
        &ProcessorSpec::new("top-k")
            .with_arg("k", "2")
            .with_arg("key", "url"),
    )
    .expect("topology");
    let sink_store = Arc::clone(&store);
    let sink_tracer = Arc::clone(&tracer);
    let topo = topo.with_sink("store-sink", move || {
        Box::new(
            StoreSink::new(Arc::clone(&sink_store), COOKIE, Some("url".into()))
                .with_tracer(Arc::clone(&sink_tracer)),
        )
    });
    let mut exec = build_executor_traced(
        &topo,
        ExecutorMode::Inline,
        Some(&registry),
        Some(Arc::clone(&tracer)),
    );
    // One message per poll, so every traced context rides its own batch
    // through the executor (the spout's merged batch carries only the
    // first context it decodes).
    loop {
        let batch = spout.poll_batch(1);
        if batch.is_empty() {
            break;
        }
        exec.offer(batch);
    }
    let out = exec.stop(wall_now_ns());
    assert!(!out.is_empty(), "rankings emitted");
    drop(exec); // the sink's final flush closes any open store spans
    assert!(store.stats().tuples > 0, "rankings committed to the store");

    // At least one exemplar carries the complete four-stage waterfall.
    let falls = tracer.waterfalls(COOKIE);
    assert!(!falls.is_empty(), "exemplars retained");
    let complete = falls.iter().any(|f| {
        let stages: std::collections::HashSet<&str> =
            f.spans.iter().map(|s| s.stage.as_str()).collect();
        ["parse", "queue", "bolt", "store"]
            .iter()
            .all(|s| stages.contains(s))
    });
    assert!(
        complete,
        "a parse→queue→bolt→store exemplar exists: {falls:?}"
    );

    // Serve the bundle and fetch the same waterfall over HTTP.
    let queries = Arc::new(QueryDirectory::new());
    queries.submitted(COOKIE, "top-k over http_get (threaded plane)", 1);
    queries.deployed(COOKIE, 1, "localhost", 2);
    let state = Introspection {
        registry: Arc::clone(&registry),
        tracer: Arc::clone(&tracer),
        journal: Arc::new(Journal::new(16)),
        queries,
    };
    let srv = TelemetryServer::spawn("127.0.0.1:0", state).expect("bind");
    let addr = srv.local_addr();

    let (status, trace) = http_get(addr, &format!("/trace/{COOKIE}"));
    assert!(status.contains("200"), "{status}");
    for stage in ["parse", "queue", "bolt", "store"] {
        assert!(
            trace.contains(&format!("\"stage\":\"{stage}\"")),
            "{stage} span missing over HTTP"
        );
    }

    let (status, metrics) = http_get(addr, "/metrics");
    assert!(status.contains("200"), "{status}");
    assert!(metrics.contains("monitor_packets_in 64"), "{metrics}");
    assert!(
        metrics.contains("trace_stage_ns"),
        "stage histograms exported"
    );

    let (_, one) = http_get(addr, &format!("/queries/{COOKIE}"));
    assert!(one.contains("\"state\":\"running\""), "{one}");
}
