//! Backpressure accounting on the threaded executor's bounded channels.
//!
//! A deliberately slow terminal bolt is fed faster than it can drain.
//! Under [`BackpressurePolicy::Block`] the producer must stall until the
//! channel has room, so every offered tuple comes out the other end.
//! Under [`BackpressurePolicy::Shed`] full channels drop whole slabs
//! instead, and every dropped tuple must be counted: delivered + shed is
//! exactly what was offered, with nothing lost twice or uncounted.

use std::time::Duration;

use netalytics_data::{DataTuple, TupleBatch};
use netalytics_stream::{
    build_executor, BackpressurePolicy, Bolt, ExecutorMode, Grouping, SourceRef, ThreadedConfig,
    Topology,
};

/// Echoes each input after sleeping — a terminal bolt that cannot keep up.
struct SlowEcho {
    delay: Duration,
}

impl Bolt for SlowEcho {
    fn execute(&mut self, tuple: &DataTuple, out: &mut Vec<DataTuple>) {
        std::thread::sleep(self.delay);
        out.push(tuple.clone());
    }
}

fn slow_topology(delay: Duration) -> Topology {
    let mut b = Topology::builder("slow-sink");
    let sink = b.add_bolt("slow_echo", 1, move || Box::new(SlowEcho { delay }));
    b.wire(SourceRef::Spout, sink, Grouping::Shuffle);
    b.build().expect("valid topology")
}

fn run(policy: BackpressurePolicy, slabs: u64, per_slab: u64, delay: Duration) -> (u64, u64, u64) {
    let topo = slow_topology(delay);
    let mut exec = build_executor(
        &topo,
        ExecutorMode::Threaded(ThreadedConfig {
            tick_interval: Duration::from_secs(3600),
            channel_capacity: 2,
            backpressure: policy,
            ..Default::default()
        }),
    );
    for s in 0..slabs {
        let batch: TupleBatch = (0..per_slab)
            .map(|i| DataTuple::new(s * per_slab + i, 0).with("n", s * per_slab + i))
            .collect();
        exec.offer(batch);
    }
    let delivered = exec.stop(1).len() as u64;
    (delivered, exec.shed_tuples(), exec.processed())
}

#[test]
fn block_policy_delivers_every_tuple() {
    // 30 slabs of 4 into a capacity-2 channel behind a 1 ms/tuple bolt:
    // without blocking, the producer would overrun the channel instantly.
    let offered = 30 * 4;
    let (delivered, shed, processed) =
        run(BackpressurePolicy::Block, 30, 4, Duration::from_millis(1));
    assert_eq!(processed, offered);
    assert_eq!(shed, 0, "Block never drops");
    assert_eq!(delivered, offered, "every offered tuple reaches the sink");
}

#[test]
fn shed_policy_accounts_for_every_tuple() {
    // Offer far faster than the sink drains; the channel must overflow.
    let offered = 40 * 8;
    let (delivered, shed, processed) =
        run(BackpressurePolicy::Shed, 40, 8, Duration::from_millis(5));
    assert_eq!(processed, offered);
    assert!(
        shed > 0,
        "a 5 ms/tuple sink behind a capacity-2 channel must shed"
    );
    assert_eq!(
        delivered + shed,
        offered,
        "exact accounting: delivered ({delivered}) + shed ({shed}) == offered"
    );
}

#[test]
fn shed_accounting_holds_for_a_fast_sink() {
    // With no artificial delay the sink mostly keeps up; however many
    // slabs slip through versus shed, the ledger must still balance.
    let offered = 10 * 4;
    let (delivered, shed, processed) = run(BackpressurePolicy::Shed, 10, 4, Duration::ZERO);
    assert_eq!(processed, offered);
    assert_eq!(delivered + shed, offered);
}
