//! Standing (continuous) queries end-to-end: the reconcile pass closes
//! windows, aggregates the query's persisted output via the history
//! engine, and materializes one tuple per window back into the store —
//! with no live subscriber, and resuming across failovers.

use std::sync::Arc;

use netalytics::{
    EventKind, HistoryAgg, HistoryQuery, Orchestrator, StandingConfig, TimeSeriesStore,
};
use netalytics_apps::{sample_sink, ClientApp, Conversation, StaticHttpBehavior, TierApp};
use netalytics_data::DataTuple;
use netalytics_netsim::{FailureScript, SimDuration, SimTime};
use netalytics_packet::http;

/// top-k with a short window releases rankings throughout the run, so
/// the store sees a steady stream for the standing windows to fold.
const RANK_QUERY: &str = "PARSE http_get FROM * TO web:80 LIMIT 1s SAMPLE * \
                          PROCESS (top-k: k=5, w=50ms, key=url)";

const WINDOW_NS: u64 = 100_000_000;

/// Web tier on host 1, a client on host 0 driving one conversation
/// every 10 ms of virtual time.
fn deploy_web(orch: &mut Orchestrator, conversations: u64) {
    orch.name_host("web", 1);
    let web_ip = orch.host_ip(1);
    orch.deploy_app(
        1,
        Box::new(TierApp::new(80, Box::new(StaticHttpBehavior::new(1.0, 3)))),
    );
    let schedule = (0..conversations)
        .map(|i| {
            (
                SimTime::from_nanos(i * 10_000_000),
                Conversation {
                    dst: (web_ip, 80),
                    requests: vec![http::build_get("/r", "web")],
                    tag: "c".into(),
                },
            )
        })
        .collect();
    orch.deploy_app(0, Box::new(ClientApp::new(schedule, sample_sink())));
}

fn window_end(t: &DataTuple) -> u64 {
    t.get("window_end")
        .and_then(|v| v.as_u64())
        .expect("materialized tuple carries window_end")
}

/// The headline acceptance scenario: a standing query materializes its
/// window aggregates into the store with nothing subscribed — the
/// derived series is written on the reconciler's watermark, not on a
/// reader's pull.
#[test]
fn standing_query_materializes_windows_without_subscriber() {
    let store = Arc::new(TimeSeriesStore::in_memory());
    let mut orch = Orchestrator::builder(4)
        .result_store(Arc::clone(&store))
        .build();
    deploy_web(&mut orch, 60);
    let cfg = StandingConfig::new(SimDuration::from_nanos(WINDOW_NS));
    let q = orch
        .submit_standing(RANK_QUERY, cfg)
        .expect("submit standing");
    let cookie = q.cookie();
    let derived = orch.standing_series(cookie).expect("standing registered");
    assert!(derived.group.starts_with("standing:sum:count"));

    // Run the query out under the reconciler. Nothing ever subscribes.
    let deadline = q.deadline().expect("time-limited query");
    orch.run_reconciling(&q, deadline + SimDuration::from_millis(50))
        .expect("reconciling run");

    let fired = orch
        .journal()
        .query(Some(cookie), None)
        .iter()
        .filter(|e| e.kind == EventKind::StandingFired)
        .count();
    assert!(fired >= 5, "windows fired throughout the run, got {fired}");

    // The derived series holds exactly one tuple per fired window, and
    // the history engine can read it back like any other series.
    let ans = store
        .history(&HistoryQuery::new(
            derived.clone(),
            "count",
            0,
            u64::MAX,
            HistoryAgg::Count,
        ))
        .expect("history over derived series");
    assert_eq!(ans.count as usize, fired);

    // Cadence is gap-free (empty windows materialize too) and at least
    // one mid-run window aggregated real traffic.
    let rows: Vec<DataTuple> = q
        .history()
        .expect("store attached")
        .tuples
        .into_iter()
        .filter(|t| t.source == "standing")
        .collect();
    assert_eq!(rows.len(), fired);
    for (i, t) in rows.iter().enumerate() {
        assert_eq!(window_end(t), (i as u64 + 1) * WINDOW_NS);
    }
    assert!(
        rows.iter()
            .any(|t| t.get("value").and_then(|v| v.as_f64()).unwrap_or(0.0) > 0.0),
        "some window aggregated nonzero traffic"
    );

    let snap = orch.telemetry_report();
    assert_eq!(snap.counter_total("standing.fired"), fired as u64);
    assert_eq!(snap.counter_total("standing.registered"), 1);
}

/// A monitor host dies mid-run: the reconciler fails the query over and
/// the standing schedule resumes from its watermark — the journal shows
/// `standing_fired` events after the failover, and the derived series
/// stays exactly-once and gap-free across the incident.
#[test]
fn fault_standing_query_survives_monitor_failover_and_resumes() {
    let hb = SimDuration::from_millis(10);
    let store = Arc::new(TimeSeriesStore::in_memory());
    let mut orch = Orchestrator::builder(4)
        .heartbeat_interval(hb)
        .result_store(Arc::clone(&store))
        .build();
    deploy_web(&mut orch, 60);
    let cfg = StandingConfig::new(SimDuration::from_nanos(WINDOW_NS));
    let q = orch
        .submit_standing(RANK_QUERY, cfg)
        .expect("submit standing");
    let cookie = q.cookie();
    let victim = q.monitor_hosts()[0];
    let fail_at = SimTime::from_nanos(450_000_000);
    orch.engine_mut()
        .apply_script(&FailureScript::new().fail_host(fail_at, victim));

    orch.run_reconciling(&q, fail_at).expect("pre-fault run");
    let fired_before = orch
        .journal()
        .query(Some(cookie), None)
        .iter()
        .filter(|e| e.kind == EventKind::StandingFired)
        .count();
    assert!(fired_before >= 2, "windows fired before the fault");

    orch.await_recovery(&q, SimDuration::from_millis(200))
        .expect("recovered");
    assert!(q.replacements() >= 1, "a replacement happened");
    let deadline = q.deadline().expect("time-limited query");
    orch.run_reconciling(&q, deadline + SimDuration::from_millis(50))
        .expect("post-fault run");

    // The journal shows the failover, then standing_fired resuming.
    let events = orch.journal().query(Some(cookie), None);
    let failover = events
        .iter()
        .position(|e| e.kind == EventKind::Failover)
        .expect("failover journaled");
    assert!(
        events[failover..]
            .iter()
            .any(|e| e.kind == EventKind::StandingFired),
        "standing_fired resumes after the failover"
    );

    // Exactly-once across the incident: one tuple per window, no gap,
    // no duplicate, in schedule order.
    let ends: Vec<u64> = q
        .history()
        .expect("store attached")
        .tuples
        .iter()
        .filter(|t| t.source == "standing")
        .map(window_end)
        .collect();
    assert!(ends.len() > fired_before, "windows kept firing post-fault");
    let expected: Vec<u64> = (1..=ends.len() as u64).map(|i| i * WINDOW_NS).collect();
    assert_eq!(
        ends, expected,
        "every window materialized exactly once across the failover"
    );
}

/// Without a results store there is nothing to materialize into: the
/// submission is refused up front with a typed error.
#[test]
fn standing_query_without_store_is_refused() {
    let mut orch = Orchestrator::builder(4).build();
    deploy_web(&mut orch, 10);
    let err = orch
        .submit_standing(
            RANK_QUERY,
            StandingConfig::new(SimDuration::from_millis(100)),
        )
        .expect_err("no store, no standing query");
    assert!(matches!(err, netalytics::OrchestratorError::NoResultStore));
}
