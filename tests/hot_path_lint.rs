//! Source lint for the columnar hot path: no per-tuple `Mutex`/`RwLock`.
//!
//! The transport refactor's contract is that locks on the
//! monitor→queue→executor fast lane are taken at most once per *batch*
//! (or only on cold paths: interning, registration, scrape). Rather than
//! trusting review to keep it that way, this test greps the hot-path
//! sources: every `.lock()` / `.read()` / `.write()` call must carry a
//! `per-batch` or `cold path` justification on the same line or the
//! line directly above it. A new unannotated lock on these files fails
//! the build until its cost class is declared — and a reviewer can grep
//! for `per-batch lock` to audit every claim.

use std::fs;
use std::path::Path;

/// Files on the tuple fast lane, relative to the workspace root. Most
/// are lock-free by construction (rings, columns, codec); the queue and
/// schema registry are allowed locks only with a declared cost class.
const HOT_PATH_FILES: &[&str] = &[
    "crates/data/src/codec.rs",
    "crates/data/src/columns.rs",
    "crates/data/src/ring.rs",
    "crates/data/src/schema.rs",
    "crates/data/src/transport.rs",
    "crates/data/src/tuple.rs",
    "crates/monitor/src/pipeline.rs",
    "crates/queue/src/cluster.rs",
    "crates/queue/src/writer.rs",
    "crates/stream/src/sharded.rs",
    "crates/stream/src/spout.rs",
];

const LOCK_CALLS: &[&str] = &[".lock()", ".read()", ".write()"];
const JUSTIFICATIONS: &[&str] = &["per-batch", "cold path"];

fn is_comment(line: &str) -> bool {
    let t = line.trim_start();
    t.starts_with("//") || t.starts_with("///") || t.starts_with("//!")
}

#[test]
fn hot_path_locks_are_per_batch_or_cold_only() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut violations = Vec::new();
    let mut annotated = 0usize;
    for rel in HOT_PATH_FILES {
        let path = root.join(rel);
        let src = fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("hot-path file {rel} must exist: {e}"));
        let lines: Vec<&str> = src.lines().collect();
        for (i, line) in lines.iter().enumerate() {
            if is_comment(line) || !LOCK_CALLS.iter().any(|c| line.contains(c)) {
                continue;
            }
            let prev = if i > 0 { lines[i - 1] } else { "" };
            if JUSTIFICATIONS
                .iter()
                .any(|j| line.contains(j) || prev.contains(j))
            {
                annotated += 1;
            } else {
                violations.push(format!("{rel}:{}: {}", i + 1, line.trim()));
            }
        }
    }
    assert!(
        violations.is_empty(),
        "unjustified lock on the hot path — annotate `// per-batch lock` \
         or `// cold path` (or move the lock off the fast lane):\n{}",
        violations.join("\n")
    );
    // Guard against the lint going vacuous if files move: the queue and
    // schema registry are known to hold annotated locks today.
    assert!(
        annotated >= 10,
        "expected the known annotated lock sites, found {annotated} — \
         did the hot-path file list go stale?"
    );
}
