//! Integration: the threaded plane — monitor pipeline → queue cluster →
//! threaded Storm-style executor — used by the Fig. 5/6 experiments.

use std::sync::Arc;
use std::time::Duration;

use netalytics_data::Value;
use netalytics_monitor::{Pipeline, PipelineConfig, SampleSpec};
use netalytics_packet::{http, Packet, TcpFlags};
use netalytics_queue::{QueueCluster, QueueConfig};
use netalytics_stream::{topologies, ProcessorSpec, QueueSpout, ThreadedConfig, ThreadedExecutor};

#[test]
fn pipeline_to_queue_to_executor_counts_are_exact() {
    let cluster = Arc::new(QueueCluster::new(QueueConfig {
        brokers: 2,
        partitions: 4,
        partition_capacity: 1 << 16,
        replication: 1,
    }));
    let topo = topologies::build(
        &ProcessorSpec::new("top-k")
            .with_arg("k", "5")
            .with_arg("key", "url")
            .with_arg("par", "3"),
    )
    .unwrap();
    let exec = ThreadedExecutor::spawn(
        &topo,
        Box::new(QueueSpout::new(cluster.clone(), "http_get", "storm")),
        ThreadedConfig::default(),
    );
    let pipeline = Pipeline::spawn(PipelineConfig {
        parsers: vec!["http_get".into()],
        sample: SampleSpec::All,
        batch_size: 64,
        ..Default::default()
    })
    .unwrap();

    // 600 GETs: /hot 3x as popular as /warm.
    let src: std::net::Ipv4Addr = "10.0.0.1".parse().unwrap();
    let dst: std::net::Ipv4Addr = "10.0.0.9".parse().unwrap();
    for i in 0..600u32 {
        let url = if i % 4 == 3 { "/warm" } else { "/hot" };
        pipeline.offer(Packet::tcp(
            src,
            4000 + (i % 512) as u16,
            dst,
            80,
            TcpFlags::PSH | TcpFlags::ACK,
            1,
            1,
            &http::build_get(url, "h"),
        ));
    }
    let summary = pipeline.shutdown(false);
    assert_eq!(summary.packets_in, 600);
    assert_eq!(summary.tuples_out, 600);
    // Ship the batches into the queue like the monitor output interface.
    let topic = cluster.topic_id("http_get");
    let mut key = 0u64;
    for batch in summary.residual_batches {
        key += 1;
        cluster.produce_to(topic, key, batch.encode(), 0);
    }
    // Let the spout drain everything.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while exec.spout_tuples() < 600 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(exec.spout_tuples(), 600, "all tuples reached the executor");
    std::thread::sleep(Duration::from_millis(50));
    let out = exec.shutdown();
    let top = out
        .iter()
        .filter(|t| t.source == "rank")
        .find(|t| t.get("rank").and_then(Value::as_u64) == Some(0))
        .expect("a top-ranked key");
    assert_eq!(top.get("key").and_then(Value::as_str), Some("/hot"));
    assert_eq!(cluster.lag_of(cluster.group_id("storm"), topic), 0);
}

#[test]
fn queue_retention_sheds_under_slow_consumer() {
    let cluster = Arc::new(QueueCluster::new(QueueConfig {
        brokers: 1,
        partitions: 1,
        partition_capacity: 50,
        replication: 1,
    }));
    let t = cluster.topic_id("t");
    for i in 0..500u64 {
        cluster.produce_to(t, i, bytes::Bytes::from_static(b"x"), i);
    }
    assert_eq!(cluster.depth_of(t), 50, "bounded buffer");
    assert_eq!(cluster.dropped_of(t), 450);
    // A late consumer only sees the retained tail.
    let mut got = Vec::new();
    cluster.consume_batch(cluster.group_id("late"), t, 1_000, &mut got);
    assert_eq!(got.len(), 50);
    assert_eq!(got[0].offset, 450);
}

#[test]
fn sampler_in_pipeline_is_flow_consistent() {
    let pipeline = Pipeline::spawn(PipelineConfig {
        parsers: vec!["tcp_flow_key".into()],
        sample: SampleSpec::Rate(0.4),
        batch_size: 32,
        ..Default::default()
    })
    .unwrap();
    let src: std::net::Ipv4Addr = "10.0.0.1".parse().unwrap();
    let dst: std::net::Ipv4Addr = "10.0.0.9".parse().unwrap();
    // 50 flows x 10 packets each.
    for round in 0..10u32 {
        for port in 0..50u16 {
            pipeline.offer(Packet::tcp(
                src,
                1000 + port,
                dst,
                80,
                TcpFlags::ACK,
                round,
                0,
                b"",
            ));
        }
    }
    let summary = pipeline.shutdown(false);
    // Flow-consistent sampling admits whole flows: the per-flow tuple
    // count is 10 for every sampled flow.
    let mut per_flow: std::collections::HashMap<u64, usize> = Default::default();
    for b in &summary.residual_batches {
        for t in &b.tuples {
            *per_flow.entry(t.id).or_default() += 1;
        }
    }
    assert!(!per_flow.is_empty());
    for (flow, n) in &per_flow {
        assert_eq!(*n, 10, "flow {flow:#x} partially sampled");
    }
}
