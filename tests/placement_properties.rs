//! Integration + property tests of the placement layer's invariants
//! across random workloads and seeds.

use netalytics_placement::{
    generate_workload, place_analytics, place_monitors, placement_cost, run_once,
    AnalyticsStrategy, DataCenter, MonitorStrategy, PlacementParams, SimConfig, Strategy,
    WorkloadSpec,
};
use proptest::prelude::*;

fn workload_spec(flows: usize) -> WorkloadSpec {
    WorkloadSpec {
        total_flows: flows,
        total_rate_bps: 50_000_000_000,
        tor_p: 0.5,
        pod_p: 0.3,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every flow ends up on exactly one monitor under a covering ToR,
    /// and every monitor/aggregator respects its capacity — regardless
    /// of seed, strategy or workload size.
    #[test]
    fn full_placement_invariants(
        seed in 0u64..1_000,
        flows in 200usize..3_000,
        greedy_monitors in any::<bool>(),
        analytics_idx in 0usize..3,
    ) {
        let tree = netalytics_netsim::FatTree::new(8);
        let workload = generate_workload(&tree, &workload_spec(flows), seed);
        let mut dc = DataCenter::uniform(8, PlacementParams::default());
        let ms = if greedy_monitors { MonitorStrategy::Greedy } else { MonitorStrategy::Random };
        let mp = place_monitors(&mut dc, &workload, ms, seed);
        prop_assert!(mp.unplaced.is_empty(), "uniform idle hosts must fit all monitors");
        let mut assigned = vec![false; workload.len()];
        for m in &mp.monitors {
            prop_assert!(
                m.load_bps <= dc.params.monitor_capacity_bps || m.flows.len() == 1,
                "monitor overloaded with {} flows at {}bps", m.flows.len(), m.load_bps
            );
            for &i in &m.flows {
                prop_assert!(!assigned[i], "flow {i} double-monitored");
                assigned[i] = true;
                let f = &workload[i];
                let covers = dc.tree.edge_of_host(f.src) == m.edge
                    || dc.tree.edge_of_host(f.dst) == m.edge;
                prop_assert!(covers, "monitor's ToR must cover its flows");
            }
        }
        prop_assert!(assigned.iter().all(|&a| a));

        let strat = [
            AnalyticsStrategy::LocalRandom,
            AnalyticsStrategy::FirstFit,
            AnalyticsStrategy::Greedy,
        ][analytics_idx];
        let ap = place_analytics(&mut dc, &mp, strat, seed);
        prop_assert!(ap.unassigned.is_empty());
        let total: usize = ap.aggregators.iter().map(|a| a.monitors.len()).sum();
        prop_assert_eq!(total, mp.monitors.len());
        for a in &ap.aggregators {
            prop_assert!(
                a.load_bps <= dc.params.aggregator_capacity_bps || a.monitors.len() == 1
            );
        }
        let cost = placement_cost(&dc, &workload, &mp, &ap);
        prop_assert!(cost.bandwidth_bps_hops >= 0.0);
        prop_assert!(cost.weighted_bandwidth >= cost.bandwidth_bps_hops);
    }

    /// The paper's headline ordering holds across seeds: the network
    /// strategy never consumes more bandwidth than local-random, on
    /// sufficiently large monitored sets.
    #[test]
    fn network_strategy_dominates_local_random(seed in 0u64..20) {
        let cfg = SimConfig {
            k: 8,
            workload: workload_spec(20_000),
            params: PlacementParams::default(),
            runs: 1,
        };
        let tree = netalytics_netsim::FatTree::new(cfg.k);
        let flows = generate_workload(&tree, &cfg.workload, seed);
        let net = run_once(&cfg, &flows, 8_000, Strategy::NetalyticsNetwork, seed);
        let local = run_once(&cfg, &flows, 8_000, Strategy::LocalRandom, seed);
        prop_assert!(
            net.weighted_extra_bandwidth_pct() <= local.weighted_extra_bandwidth_pct() * 1.05,
            "net {} vs local {}",
            net.weighted_extra_bandwidth_pct(),
            local.weighted_extra_bandwidth_pct()
        );
    }
}

#[test]
fn monitored_subset_is_a_subset_and_costs_scale() {
    let cfg = SimConfig {
        k: 8,
        workload: workload_spec(30_000),
        params: PlacementParams::default(),
        runs: 1,
    };
    let tree = netalytics_netsim::FatTree::new(cfg.k);
    let flows = generate_workload(&tree, &cfg.workload, 5);
    let small = run_once(&cfg, &flows, 1_000, Strategy::NetalyticsNetwork, 5);
    let large = run_once(&cfg, &flows, 20_000, Strategy::NetalyticsNetwork, 5);
    assert!(large.bandwidth_bps_hops > small.bandwidth_bps_hops);
    assert!(large.total_processes() >= small.total_processes());
}
