//! Conformance suite for the unified [`Executor`] trait.
//!
//! Every check runs against both engines, constructed the same way
//! through [`build_executor`] — the point of the trait is that callers
//! (the aggregator NF, the orchestrator) cannot tell the deterministic
//! inline engine from the threaded one except by scheduling. The suite
//! pins down the shared contract: exact totals, flow-consistent
//! grouping under parallelism, and a graceful drain on `stop`.

use std::collections::HashMap;
use std::time::Duration;

use netalytics_data::{DataTuple, TupleBatch, Value};
use netalytics_stream::topologies::{build, ProcessorSpec};
use netalytics_stream::{
    build_executor, build_executor_with, Executor, ExecutorMode, ShardedConfig, ThreadedConfig,
};
use netalytics_telemetry::MetricsRegistry;

/// All three engine modes, with the concurrent engines configured so the
/// tests are deterministic (no wall-clock ticks) and the bounded
/// channels/rings are actually exercised (tiny capacities).
fn modes() -> Vec<(&'static str, ExecutorMode)> {
    vec![
        ("inline", ExecutorMode::Inline),
        (
            "threaded",
            ExecutorMode::Threaded(ThreadedConfig {
                tick_interval: Duration::from_secs(3600),
                channel_capacity: 4,
                ..Default::default()
            }),
        ),
        (
            "sharded",
            ExecutorMode::Sharded(ShardedConfig {
                shards: 3,
                ring_capacity: 8,
                ..Default::default()
            }),
        ),
    ]
}

fn offer_in_batches(exec: &mut dyn Executor, tuples: Vec<DataTuple>, batch: usize) {
    let mut it = tuples.into_iter().peekable();
    while it.peek().is_some() {
        let b: TupleBatch = it.by_ref().take(batch).collect();
        exec.offer(b);
    }
}

#[test]
fn totals_are_exact_in_both_modes() {
    for (name, mode) in modes() {
        let topo = build(
            &ProcessorSpec::new("group-sum")
                .with_arg("group", "host")
                .with_arg("value", "bytes"),
        )
        .unwrap();
        let mut exec = build_executor(&topo, mode);
        let tuples: Vec<DataTuple> = (0..1000u64)
            .map(|i| {
                DataTuple::new(i, 0)
                    .with("host", if i % 2 == 0 { "a" } else { "b" })
                    .with("bytes", 10.0)
            })
            .collect();
        offer_in_batches(exec.as_mut(), tuples, 32);
        assert_eq!(exec.processed(), 1000, "[{name}] offered tuples counted");
        let out = exec.stop(1);
        let mut sums: Vec<(String, f64)> = out
            .iter()
            .filter_map(|t| {
                Some((
                    t.get("host")?.to_string(),
                    t.get("sum").and_then(Value::as_f64)?,
                ))
            })
            .collect();
        sums.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(
            sums,
            vec![("a".into(), 5000.0), ("b".into(), 5000.0)],
            "[{name}] exact totals"
        );
        assert_eq!(exec.shed_tuples(), 0, "[{name}] nothing shed by default");
    }
}

#[test]
fn flow_consistent_grouping_is_preserved_under_parallelism() {
    // top-k hashes tuples to counting instances by key; if batched slab
    // routing ever split one key across instances, the per-key counts in
    // the final global ranking would come out fragmented or duplicated.
    for (name, mode) in modes() {
        let topo = build(
            &ProcessorSpec::new("top-k")
                .with_arg("k", "16")
                .with_arg("par", "4")
                .with_arg("w", "3600s")
                .with_arg("key", "url"),
        )
        .unwrap();
        let mut exec = build_executor(&topo, mode);
        // Key /p<j> appears exactly (j + 1) * 10 times, interleaved.
        let mut truth: HashMap<String, u64> = HashMap::new();
        let mut tuples = Vec::new();
        let mut id = 0u64;
        for round in 0..80u64 {
            for j in 0..8u64 {
                if round < (j + 1) * 10 {
                    let url = format!("/p{j}");
                    *truth.entry(url.clone()).or_default() += 1;
                    tuples.push(DataTuple::new(id, 1).with("url", url));
                    id += 1;
                }
            }
        }
        offer_in_batches(exec.as_mut(), tuples, 64);
        let out = exec.stop(2);
        let ranked: HashMap<String, u64> = out
            .iter()
            .filter_map(|t| {
                Some((
                    t.get("key")?.to_string(),
                    t.get("count").and_then(Value::as_u64)?,
                ))
            })
            .collect();
        assert_eq!(ranked, truth, "[{name}] per-key counts survive routing");
    }
}

#[test]
fn stop_drains_gracefully_and_later_calls_are_safe() {
    for (name, mode) in modes() {
        let topo = build(
            &ProcessorSpec::new("group-sum")
                .with_arg("group", "k")
                .with_arg("value", "v"),
        )
        .unwrap();
        let mut exec = build_executor(&topo, mode);
        let tuples: Vec<DataTuple> = (0..64u64)
            .map(|i| DataTuple::new(i, 0).with("k", "x").with("v", 1.0))
            .collect();
        offer_in_batches(exec.as_mut(), tuples, 8);
        let out = exec.stop(1);
        let total: f64 = out
            .iter()
            .filter_map(|t| t.get("sum").and_then(Value::as_f64))
            .sum();
        assert_eq!(total, 64.0, "[{name}] stop flushes every window");
        // The contract: anything after stop is safe — never blocks, never
        // panics — even though what it produces is engine-specific.
        exec.offer(
            (0..4u64)
                .map(|i| DataTuple::new(i, 0).with("k", "y").with("v", 1.0))
                .collect(),
        );
        exec.tick(2);
        let _ = exec.poll_output();
        let _ = exec.stop(3);
        let _ = exec.processed();
        let _ = exec.shed_tuples();
    }
}

#[test]
fn both_modes_report_identical_counter_totals() {
    // Same workload through both engines, each publishing into its own
    // registry: the self-telemetry counters must agree exactly — with
    // each other and with the trait accessors they back.
    let mut per_mode = Vec::new();
    for (name, mode) in modes() {
        let topo = build(
            &ProcessorSpec::new("group-sum")
                .with_arg("group", "host")
                .with_arg("value", "bytes"),
        )
        .unwrap();
        let metrics = MetricsRegistry::new();
        let mut exec = build_executor_with(&topo, mode, Some(&metrics));
        let tuples: Vec<DataTuple> = (0..500u64)
            .map(|i| {
                DataTuple::new(i, 0)
                    .with("host", if i % 3 == 0 { "a" } else { "b" })
                    .with("bytes", 2.0)
            })
            .collect();
        offer_in_batches(exec.as_mut(), tuples, 16);
        let _ = exec.stop(1);
        let snap = metrics.snapshot();
        let processed = snap.counter_total("stream.processed");
        let emitted = snap.counter_total("stream.emitted");
        let shed = snap.counter_total("stream.shed");
        assert_eq!(processed, exec.processed(), "[{name}] accessor == registry");
        assert_eq!(emitted, exec.emitted(), "[{name}] accessor == registry");
        assert_eq!(shed, exec.shed_tuples(), "[{name}] accessor == registry");
        per_mode.push((name, processed, emitted, shed));
    }
    let (_, p0, e0, s0) = per_mode[0];
    for &(name, p, e, s) in &per_mode[1..] {
        assert_eq!(p, p0, "[{name}] processed totals agree across engines");
        assert_eq!(e, e0, "[{name}] emitted totals agree across engines");
        assert_eq!(s, s0, "[{name}] shed totals agree across engines");
    }
}

#[test]
fn empty_offers_are_no_ops() {
    for (name, mode) in modes() {
        let topo = build(&ProcessorSpec::new("group-sum")).unwrap();
        let mut exec = build_executor(&topo, mode);
        exec.offer(TupleBatch::new());
        exec.offer(TupleBatch::new());
        assert_eq!(exec.processed(), 0, "[{name}] empty batches not counted");
        let out = exec.stop(1);
        assert!(out.is_empty(), "[{name}] no data in, no aggregates out");
        assert_eq!(exec.shed_tuples(), 0, "[{name}]");
    }
}
