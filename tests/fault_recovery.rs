//! Chaos end-to-end: the self-healing control loop across the whole
//! stack. A deterministic failure script kills NetAlytics processes
//! mid-query; the reconciler must detect via heartbeats, re-run
//! placement, reinstall mirror rules and keep the query's results close
//! to the no-failure baseline.

use std::sync::Arc;

use netalytics::{EventKind, Orchestrator, TimeSeriesStore};
use netalytics_apps::{sample_sink, ClientApp, Conversation, StaticHttpBehavior, TierApp};
use netalytics_netsim::{FailureScript, SimDuration, SimTime};
use netalytics_packet::http;

const QUERY: &str = "PARSE http_get FROM * TO web:80 LIMIT 1s SAMPLE * \
                     PROCESS (group-sum: group=url, value=t_ns)";

/// Web tier on host 1, a client on host 0 driving one conversation
/// every 10 ms of virtual time.
fn deploy_web(orch: &mut Orchestrator, conversations: u64) {
    orch.name_host("web", 1);
    let web_ip = orch.host_ip(1);
    orch.deploy_app(
        1,
        Box::new(TierApp::new(80, Box::new(StaticHttpBehavior::new(1.0, 3)))),
    );
    let schedule = (0..conversations)
        .map(|i| {
            (
                SimTime::from_nanos(i * 10_000_000),
                Conversation {
                    dst: (web_ip, 80),
                    requests: vec![http::build_get("/r", "web")],
                    tag: "c".into(),
                },
            )
        })
        .collect();
    orch.deploy_app(0, Box::new(ClientApp::new(schedule, sample_sink())));
}

/// The headline acceptance scenario: one monitor host fails mid-query;
/// the reconciler redeploys within 3 heartbeat intervals and the final
/// tuple count stays within 10% of a failure-free baseline.
#[test]
fn fault_monitor_host_killed_mid_query_recovers_within_bound() {
    // Failure-free baseline.
    let mut base = Orchestrator::builder(4).build();
    deploy_web(&mut base, 60);
    let baseline = base
        .run_query_resilient(QUERY, SimDuration::from_secs(1))
        .expect("baseline query");
    let baseline_tuples = baseline.aggregator.tuples_in;
    assert!(baseline_tuples > 0, "baseline saw traffic");

    // Chaos run: identical workload, monitor host dies at t=200ms.
    let hb = SimDuration::from_millis(10);
    let mut orch = Orchestrator::builder(4).heartbeat_interval(hb).build();
    deploy_web(&mut orch, 60);
    let q = orch.submit(QUERY).expect("submit");
    let cookie = q.cookie();
    let victim = q.monitor_hosts()[0];
    let fail_at = SimTime::from_nanos(200_000_000);
    let script = FailureScript::new().fail_host(fail_at, victim);
    orch.engine_mut().apply_script(&script);

    // Run (reconciling) up to the failure point, then time the repair.
    orch.run_reconciling(&q, fail_at).expect("pre-fault run");
    let took = orch
        .await_recovery(&q, SimDuration::from_millis(200))
        .expect("recovered");
    assert!(
        took.as_nanos() <= 3 * hb.as_nanos(),
        "redeployed within 3 heartbeat intervals (took {} ns)",
        took.as_nanos()
    );
    assert!(q.replacements() >= 1, "a replacement happened");
    assert_ne!(
        q.monitor_hosts()[0],
        victim,
        "placement moved off the dead host"
    );

    // Run the query out and finalize.
    let deadline = q.deadline().expect("time-limited query");
    orch.run_reconciling(&q, deadline + SimDuration::from_millis(50))
        .expect("post-fault run");
    let snap = orch.telemetry_report();
    assert!(
        snap.histogram_merged("reconcile.recovery_time_ns").count() >= 1,
        "recovery time histogram populated"
    );
    assert!(
        snap.names().contains(&"reconcile.tuples_lost"),
        "tuples_lost counter present in the report"
    );
    let report = orch.kill(&q).expect("running query");
    let tuples = report.aggregator.tuples_in;
    assert!(
        tuples as f64 >= baseline_tuples as f64 * 0.9,
        "tuple count within 10% of baseline: got {tuples}, baseline {baseline_tuples}"
    );

    // The flight recorder captured the whole incident, in order:
    // the fault firing (kill), the reconciler declaring the monitor
    // dead (detection), and the re-placement onto a live host.
    let events = orch.journal().query(Some(cookie), None);
    let kill = events
        .iter()
        .position(|e| e.kind == EventKind::ReconcileDecision && e.detail.starts_with("fault:"))
        .expect("fault firing journaled");
    let detect = events
        .iter()
        .position(|e| e.kind == EventKind::ReconcileDecision && e.detail.contains("declared dead"))
        .expect("detection journaled");
    let replace = events
        .iter()
        .position(|e| e.kind == EventKind::Failover && e.detail.contains("monitor re-placed"))
        .expect("re-placement journaled");
    assert!(
        kill < detect && detect < replace,
        "kill -> detection -> re-placement in order, got kill={kill}, \
         detect={detect}, replace={replace}"
    );
    assert!(
        events[kill].ts_ns >= fail_at.as_nanos(),
        "the fault cannot be observed before it fired"
    );
    // And the query directory reflects the repair.
    let info = orch.query_directory().get(cookie).expect("directory entry");
    assert!(info.replacements >= 1);
}

/// Killing the aggregator host fails the analytics tier over to a new
/// host; monitors re-point their batch shipping at the next flush and
/// the query still finalizes with cumulative counters.
#[test]
fn fault_aggregator_host_killed_mid_query_fails_over() {
    let mut orch = Orchestrator::builder(4).build();
    deploy_web(&mut orch, 60);
    let q = orch.submit(QUERY).expect("submit");
    let cookie = q.cookie();
    let victim = q.aggregator_host();
    let fail_at = SimTime::from_nanos(200_000_000);
    orch.engine_mut()
        .apply_script(&FailureScript::new().fail_host(fail_at, victim));

    let deadline = q.deadline().expect("time-limited query");
    orch.run_reconciling(&q, deadline + SimDuration::from_millis(50))
        .expect("reconciling run");
    assert_ne!(q.aggregator_host(), victim, "aggregator moved");
    assert!(q.replacements() >= 1);
    let report = orch.kill(&q).expect("running query");
    assert!(
        report.aggregator.tuples_in > 0,
        "tuples flowed across the failover"
    );
    let ranking = report.first();
    assert!(!ranking.is_empty(), "analytics produced results");

    // The flight recorder shows the aggregator incident too: the dead
    // aggregator is declared first, then the failover lands.
    let events = orch.journal().query(Some(cookie), None);
    let detect = events
        .iter()
        .position(|e| {
            e.kind == EventKind::ReconcileDecision
                && e.detail.contains("aggregator")
                && e.detail.contains("declared dead")
        })
        .expect("aggregator death journaled");
    let failover = events
        .iter()
        .position(|e| e.kind == EventKind::Failover && e.detail.contains("aggregator failed over"))
        .expect("aggregator failover journaled");
    assert!(detect < failover, "detection precedes the failover");
}

/// A monitor that dies and whose host comes straight back (process
/// crash, not hardware loss) is still detected via heartbeat staleness
/// and replaced.
#[test]
fn fault_crashed_monitor_process_detected_by_stale_heartbeat() {
    let hb = SimDuration::from_millis(10);
    let mut orch = Orchestrator::builder(4).heartbeat_interval(hb).build();
    deploy_web(&mut orch, 60);
    let q = orch.submit(QUERY).expect("submit");
    let victim = q.monitor_hosts()[0];
    // Crash and immediately repair: the host answers host_is_up but the
    // monitor app (and its heartbeat) is gone.
    let fail_at = SimTime::from_nanos(200_000_000);
    let script = FailureScript::new()
        .fail_host(fail_at, victim)
        .repair_host(fail_at + SimDuration::from_millis(1), victim);
    orch.engine_mut().apply_script(&script);

    orch.run_reconciling(&q, fail_at + SimDuration::from_millis(2))
        .expect("pre-fault run");
    assert!(orch.engine().host_is_up(victim), "host itself is back");
    let took = orch
        .await_recovery(&q, SimDuration::from_millis(200))
        .expect("recovered");
    // Staleness needs miss_threshold (3) beats to trip, plus one
    // reconcile tick to repair.
    assert!(
        took.as_nanos() <= 5 * hb.as_nanos(),
        "stale heartbeat detected and repaired (took {} ns)",
        took.as_nanos()
    );
    assert!(q.replacements() >= 1, "monitor was replaced");
}

/// Aggregator failover with a results store attached: every tuple the
/// store committed before the fault must still be served by
/// `query_history()` after recovery — durable results don't ride on the
/// aggregator's life.
#[test]
fn fault_aggregator_killed_with_store_keeps_committed_history() {
    // top-k with a short window releases rankings throughout the run, so
    // the store commits tuples well before the fault (unlike group-sum,
    // which releases its figures only on finish).
    const RANK_QUERY: &str = "PARSE http_get FROM * TO web:80 LIMIT 1s SAMPLE * \
                              PROCESS (top-k: k=5, w=50ms, key=url)";
    let store = Arc::new(TimeSeriesStore::in_memory());
    let mut orch = Orchestrator::builder(4)
        .result_store(Arc::clone(&store))
        .build();
    deploy_web(&mut orch, 60);
    let q = orch.submit(RANK_QUERY).expect("submit");
    let victim = q.aggregator_host();
    let fail_at = SimTime::from_nanos(200_000_000);
    orch.engine_mut()
        .apply_script(&FailureScript::new().fail_host(fail_at, victim));

    // Run up to the fault and snapshot what the store has committed.
    orch.run_reconciling(&q, fail_at).expect("pre-fault run");
    let committed = q.history().expect("store attached").tuples;
    assert!(
        !committed.is_empty(),
        "rankings were committed before the fault"
    );

    // Ride through the failover and finish the query.
    let deadline = q.deadline().expect("time-limited query");
    orch.run_reconciling(&q, deadline + SimDuration::from_millis(50))
        .expect("post-fault run");
    assert_ne!(q.aggregator_host(), victim, "aggregator moved");
    assert!(q.replacements() >= 1);
    let report = orch.kill(&q).expect("running query");
    assert!(!report.first().is_empty(), "analytics produced results");

    // Every pre-fault tuple survived: the history (sorted by timestamp,
    // stably) must start with exactly the committed prefix.
    let history = q.history().expect("history after recovery").tuples;
    assert!(history.len() >= committed.len(), "history only grows");
    assert_eq!(
        &history[..committed.len()],
        &committed[..],
        "tuples committed before the fault survived the failover intact"
    );
}

/// Query runs to completion when no failures strike, even with the
/// reconciler engaged — the control loop must be a no-op on health.
#[test]
fn fault_free_run_is_unaffected_by_the_reconciler() {
    let mut plain = Orchestrator::builder(4).build();
    deploy_web(&mut plain, 30);
    let r1 = plain
        .run_query(QUERY, SimDuration::from_secs(1))
        .expect("plain");
    let mut healing = Orchestrator::builder(4).build();
    deploy_web(&mut healing, 30);
    let r2 = healing
        .run_query_resilient(QUERY, SimDuration::from_secs(1))
        .expect("resilient");
    assert_eq!(
        r1.aggregator.tuples_in, r2.aggregator.tuples_in,
        "reconcile passes on a healthy query change nothing"
    );
}

/// SplitMix64: a tiny deterministic generator for chaos schedules.
/// The whole schedule derives from one printed seed, so any failure
/// reproduces with `NETALYTICS_CHAOS_SEED=<seed> cargo test ...`.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// The schedule seed: `NETALYTICS_CHAOS_SEED` when set (replay), a
/// time-derived value otherwise (exploration). Always printed, so a
/// red CI run carries its own reproduction instructions.
fn chaos_seed() -> u64 {
    let seed = std::env::var("NETALYTICS_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0x5EED)
        });
    eprintln!("NETALYTICS_CHAOS_SEED={seed} (set this env var to replay the schedule)");
    seed
}

/// Seeded chaos: 1-3 host kills at random times — the monitor host,
/// the aggregator host, or a bystander that may well be the host a
/// replacement just landed on — each repaired a random stretch later.
/// Whatever the draw, the reconciler must ride it out: the query
/// finishes, the control plane ends on live hosts, and every
/// replacement is journaled.
#[test]
fn fault_seeded_chaos_schedule_recovers_whatever_the_draw() {
    let seed = chaos_seed();
    let mut rng = SplitMix64(seed);
    let hb = SimDuration::from_millis(10);
    let mut orch = Orchestrator::builder(4).heartbeat_interval(hb).build();
    deploy_web(&mut orch, 60);
    let q = orch.submit(QUERY).expect("submit");
    let cookie = q.cookie();

    // Victims: the control-plane hosts plus free bystanders (hosts 0
    // and 1 carry the workload and stay up).
    let control = [q.monitor_hosts()[0], q.aggregator_host()];
    let mut pool = control.to_vec();
    pool.extend((2u32..16).filter(|h| !control.contains(h)));
    let kills = 1 + rng.below(3);
    let mut script = FailureScript::new();
    for _ in 0..kills {
        let victim = pool[rng.below(pool.len() as u64) as usize];
        let at = SimTime::from_nanos(150_000_000 + rng.below(450) * 1_000_000);
        let back = at + SimDuration::from_millis(30 + rng.below(50));
        script = script.fail_host(at, victim).repair_host(back, victim);
    }
    orch.engine_mut().apply_script(&script);

    let deadline = q.deadline().expect("time-limited query");
    orch.run_reconciling(&q, deadline + SimDuration::from_millis(50))
        .unwrap_or_else(|e| panic!("seed {seed}: reconciling run failed: {e}"));

    // Wherever the control plane ended up, it ended up on live hosts.
    for h in q.monitor_hosts() {
        assert!(orch.engine().host_is_up(h), "seed {seed}: monitor host up");
    }
    assert!(
        orch.engine().host_is_up(q.aggregator_host()),
        "seed {seed}: aggregator host up"
    );
    // Replacements (if any struck the control plane) are journaled.
    let failovers = orch
        .journal()
        .events()
        .iter()
        .filter(|e| e.cookie == Some(cookie) && e.kind == EventKind::Failover)
        .count() as u32;
    assert_eq!(
        failovers,
        q.replacements(),
        "seed {seed}: every replacement journaled"
    );
    let report = orch.kill(&q).expect("running query");
    assert!(
        report.aggregator.tuples_in > 0,
        "seed {seed}: traffic flowed through the chaos"
    );
}
