//! Integration: the §7.3 closed loop in miniature — top-k over mirrored
//! traffic drives the updater bolt, which grows the proxy's backend pool
//! through the KV store when a hotspot appears.

use netalytics::{shared_executor, AggregatorApp, MonitorApp};
use netalytics_apps::{
    sample_sink, ClientApp, Conversation, KvStore, ProxyBehavior, ScalerConfig, StaticHttpBehavior,
    TierApp, UpdaterBolt,
};
use netalytics_monitor::{Monitor, MonitorConfig, SampleSpec};
use netalytics_netsim::{Engine, LinkSpec, Network, SimTime};
use netalytics_packet::http;
use netalytics_sdn::{FlowMatch, FlowRule};
use netalytics_stream::bolts::{KeyExtractBolt, RankBolt, RollingCountBolt};
use netalytics_stream::{ExecutorMode, Grouping, SourceRef, Topology};

#[test]
fn hotspot_triggers_replication_and_load_spreads() {
    let mut engine = Engine::new(Network::fat_tree(4, LinkSpec::default()));
    let ips: Vec<_> = (0..8).map(|h| engine.network().host_ip(h)).collect();
    let (client, proxy, mon, s1, s2, agg) = (0u32, 2u32, 3u32, 4u32, 5u32, 6u32);

    for s in [s1, s2] {
        engine.set_app(
            s,
            Box::new(TierApp::new(
                80,
                Box::new(StaticHttpBehavior::new(0.5, u64::from(s))),
            )),
        );
    }
    let pool = ProxyBehavior::pool_of(&[(ips[s1 as usize], 80)]);
    engine.set_app(
        proxy,
        Box::new(TierApp::new(80, Box::new(ProxyBehavior::new(pool.clone())))),
    );
    // Hot content from t=2s: 10 URLs at ~200 req/s.
    let schedule: Vec<(SimTime, Conversation)> = (0..1_600u64)
        .map(|i| {
            (
                SimTime::from_nanos(2_000_000_000 + i * 5_000_000),
                Conversation {
                    dst: (ips[proxy as usize], 80),
                    requests: vec![http::build_get(&format!("/hot{}", i % 10), "p")],
                    tag: "hot".into(),
                },
            )
        })
        .collect();
    engine.set_app(client, Box::new(ClientApp::new(schedule, sample_sink())));

    engine.install_rule(
        engine.network().tree().edge_of_host(proxy),
        FlowRule::mirror(
            FlowMatch::any().to_host(ips[proxy as usize], Some(80)),
            mon,
            1,
        ),
    );

    let kv = KvStore::shared();
    let mut b = Topology::builder("autoscale");
    let parse = b.add_bolt("parsing", 1, || Box::new(KeyExtractBolt::new("url")));
    let count = b.add_bolt("counting", 1, || {
        Box::new(RollingCountBolt::new(1_000_000_000))
    });
    let rank = b.add_bolt("rank", 1, || Box::new(RankBolt::new(5)));
    let kv2 = kv.clone();
    let pool2 = pool.clone();
    let spare = (ips[s2 as usize], 80);
    let updater = b.add_bolt("updater", 1, move || {
        Box::new(UpdaterBolt::new(
            ScalerConfig {
                upper_threshold: 15,
                lower_threshold: 1,
                backoff_ns: 1_000_000_000,
            },
            pool2.clone(),
            vec![spare],
            kv2.clone(),
        ))
    });
    b.wire(SourceRef::Spout, parse, Grouping::Shuffle);
    b.wire(
        SourceRef::Bolt(parse),
        count,
        Grouping::Fields(vec!["key".into()]),
    );
    b.wire(SourceRef::Bolt(count), rank, Grouping::Global);
    b.wire(SourceRef::Bolt(rank), updater, Grouping::Global);
    let topo = b.build().unwrap();

    let monitor = Monitor::new(MonitorConfig {
        parsers: vec!["http_get".into()],
        sample: SampleSpec::All,
        batch_size: 32,
        preagg: None,
    })
    .unwrap();
    engine.set_app(
        mon,
        Box::new(MonitorApp::new(monitor, ips[agg as usize], None)),
    );
    engine.set_app(
        agg,
        Box::new(AggregatorApp::new(
            shared_executor(&topo, ExecutorMode::Inline),
            vec![ips[mon as usize]],
            100_000,
            10_000,
        )),
    );

    // Before the hotspot: pool unchanged.
    engine.run_until(SimTime::from_nanos(1_900_000_000));
    assert_eq!(pool.lock().len(), 1);

    // After the hotspot ramps: the updater must have added the spare.
    engine.run_until(SimTime::from_nanos(8_000_000_000));
    assert_eq!(pool.lock().len(), 2, "replica added by the top-k loop");
    assert!(
        !kv.keys_with_prefix("topk:").is_empty(),
        "ranking persisted"
    );

    // Both servers now serve traffic (round robin over the grown pool).
    let s1_served = {
        // served() is internal to the app; infer from the KV ranking and
        // link counters instead: both server hosts received bytes.
        let net = engine.network();
        let t = net.tier_traffic();
        t.total() > 0
    };
    assert!(s1_served);
}
