//! Error paths of the query front end: malformed SQL must surface as
//! typed errors at every layer — parser, compiler, orchestrator — and
//! never panic.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use netalytics::{Orchestrator, OrchestratorError};
use netalytics_query::{compile, parse, CompileError};

#[test]
fn malformed_queries_yield_typed_parse_errors() {
    let cases = [
        "",
        "garbage",
        "PARSE",
        "PARSE http_get",
        "PARSE http_get FROM * TO",
        "PARSE http_get FROM * TO h:80",
        "PARSE http_get FROM * TO h:80 LIMIT bogus SAMPLE * PROCESS (x)",
        "PARSE http_get FROM * TO h:80 LIMIT 1s SAMPLE * PROCESS",
        "PARSE http_get FROM * TO h:80 LIMIT 1s SAMPLE * PROCESS (x) trailing",
        "PARSE http_get FROM * TO h:80 LIMIT 1s SAMPLE bogus PROCESS (x)",
        "FROM * TO h:80 LIMIT 1s SAMPLE * PROCESS (x)",
        "PARSE , FROM * TO h:80 LIMIT 1s SAMPLE * PROCESS (x)",
    ];
    for src in cases {
        let err = parse(src).expect_err(src);
        assert!(
            !err.to_string().is_empty(),
            "error for {src:?} carries a message"
        );
    }
}

#[test]
fn semantic_errors_are_typed_compile_errors() {
    let mut hosts: HashMap<String, Ipv4Addr> = HashMap::new();
    hosts.insert("h1".into(), Ipv4Addr::new(10, 0, 2, 9));

    let q =
        parse("PARSE nosuch_parser FROM * TO h1:80 LIMIT 1s SAMPLE * PROCESS (group-sum)").unwrap();
    assert!(matches!(
        compile(&q, &hosts),
        Err(CompileError::UnknownParser(_))
    ));

    let q =
        parse("PARSE http_get FROM * TO nosuch:80 LIMIT 1s SAMPLE * PROCESS (group-sum)").unwrap();
    assert!(matches!(
        compile(&q, &hosts),
        Err(CompileError::UnknownHost(_))
    ));

    let q = parse("PARSE http_get FROM * TO * LIMIT 1s SAMPLE * PROCESS (group-sum)").unwrap();
    assert!(matches!(compile(&q, &hosts), Err(CompileError::Unanchored)));

    let q =
        parse("PARSE http_get FROM * TO h1:80 LIMIT 1s SAMPLE * PROCESS (nosuch-proc)").unwrap();
    assert!(matches!(
        compile(&q, &hosts),
        Err(CompileError::BadProcessor(_))
    ));
}

/// A typo in the aggregate operator name must come back as a typed
/// compile error whose message names every valid operator — not a
/// silent default or a panic.
#[test]
fn unknown_agg_operator_lists_the_valid_ones() {
    let mut hosts: HashMap<String, Ipv4Addr> = HashMap::new();
    hosts.insert("h1".into(), Ipv4Addr::new(10, 0, 2, 9));

    let q = parse("PARSE http_get FROM * TO h1:80 LIMIT 1s SAMPLE * PROCESS (agg: op=bogus)")
        .expect("syntactically fine; the operator is a semantic check");
    let err = compile(&q, &hosts).expect_err("bogus operator rejected");
    assert!(matches!(err, CompileError::BadProcessor(_)));
    let msg = err.to_string();
    assert!(msg.contains("bogus"), "names the offender: {msg}");
    for op in ["sum", "avg", "max", "min", "count"] {
        assert!(msg.contains(op), "lists valid operator {op:?}: {msg}");
    }

    // Sketch processors validate their arguments the same way.
    let q =
        parse("PARSE http_get FROM * TO h1:80 LIMIT 1s SAMPLE * PROCESS (heavy-hitters: eps=2.0)")
            .unwrap();
    assert!(matches!(
        compile(&q, &hosts),
        Err(CompileError::BadProcessor(_))
    ));
}

#[test]
fn orchestrator_surfaces_typed_errors_never_panics() {
    let mut orch = Orchestrator::builder(4).build();
    orch.name_host("web", 1);
    assert!(matches!(
        orch.submit("garbage"),
        Err(OrchestratorError::Parse(_))
    ));
    assert!(matches!(
        orch.submit("PARSE nosuch FROM * TO web:80 LIMIT 1s SAMPLE * PROCESS (group-sum)"),
        Err(OrchestratorError::Compile(_))
    ));
    assert!(matches!(
        orch.submit("PARSE http_get FROM * TO 99.9.9.9:80 LIMIT 1s SAMPLE * PROCESS (group-sum)"),
        Err(OrchestratorError::NoMonitorableEndpoint)
    ));
    // Failed submissions must not leak host reservations: a good query
    // still deploys afterwards.
    let q = orch
        .submit("PARSE http_get FROM * TO web:80 LIMIT 1s SAMPLE * PROCESS (group-sum)")
        .expect("clean state after errors");
    assert_eq!(q.monitor_hosts().len(), 1);
}
