//! Integration: query text → AST → deployment → OpenFlow semantics.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use netalytics_monitor::SampleSpec;
use netalytics_packet::{FlowKey, IpProto};
use netalytics_query::{compile, parse, Limit};
use netalytics_sdn::{Action, FlowRule, FlowTable};
use proptest::prelude::*;

fn hosts() -> HashMap<String, Ipv4Addr> {
    let mut m = HashMap::new();
    m.insert("h1".into(), Ipv4Addr::new(10, 0, 2, 9));
    m.insert("h2".into(), Ipv4Addr::new(10, 0, 3, 6));
    m
}

/// The paper's §3.3 example queries compile into working flow tables.
#[test]
fn paper_queries_drive_a_flow_table() {
    let q = parse(
        "PARSE tcp_conn_time, http_get FROM 10.0.2.8:5555 TO 10.0.2.9:80 \
         LIMIT 90s SAMPLE auto PROCESS (top-k: k=10, w=10s)",
    )
    .unwrap();
    assert_eq!(q.limit, Limit::Time(90_000_000_000));
    assert_eq!(q.sample, SampleSpec::Auto);
    let d = compile(&q, &hosts()).unwrap();
    let mut table = FlowTable::new();
    for m in &d.matches {
        table.install(FlowRule::mirror(*m, 42, 7));
    }
    let target = FlowKey::new(
        Ipv4Addr::new(10, 0, 2, 8),
        5555,
        Ipv4Addr::new(10, 0, 2, 9),
        80,
        IpProto::Tcp,
    );
    assert_eq!(
        table.lookup(&target, 64).unwrap(),
        &[Action::Native, Action::MirrorToHost(42)]
    );
    // Wrong source port: not mirrored.
    let mut other = target;
    other.src_port = 5556;
    assert!(table.lookup(&other, 64).is_none());

    let q2 = parse(
        "PARSE http_get FROM * TO h1:80, h2:3306 \
         LIMIT 5000p SAMPLE 0.1 PROCESS (diff-group: group=get)",
    )
    .unwrap();
    let d2 = compile(&q2, &hosts()).unwrap();
    assert_eq!(d2.matches.len(), 2);
    assert_eq!(d2.limit, Limit::Packets(5000));
    let mut t2 = FlowTable::new();
    for m in &d2.matches {
        t2.install(FlowRule::mirror(*m, 1, 8));
    }
    let to_h2 = FlowKey::new(
        Ipv4Addr::new(172, 16, 0, 1),
        999,
        Ipv4Addr::new(10, 0, 3, 6),
        3306,
        IpProto::Tcp,
    );
    assert!(
        t2.lookup(&to_h2, 64).is_some(),
        "wildcard FROM matches anyone"
    );
    let wrong_port = FlowKey::new(
        Ipv4Addr::new(172, 16, 0, 1),
        999,
        Ipv4Addr::new(10, 0, 3, 6),
        3307,
        IpProto::Tcp,
    );
    assert!(t2.lookup(&wrong_port, 64).is_none());
}

/// Round-trip: `Display` of a parsed query re-parses to the same AST.
#[test]
fn query_display_reparses() {
    let src = "PARSE tcp_conn_time, http_get FROM 10.0.2.8:5555 TO h1:80, 10.0.3.0/24:3306 \
               LIMIT 90s SAMPLE auto PROCESS (top-k: k=10, w=10s), (cdf: value=diff_ms)";
    let q1 = parse(src).unwrap();
    let q2 = parse(&q1.to_string()).unwrap();
    assert_eq!(q1, q2);
}

/// The three approximate-analytics operators parse, survive the
/// `Display` round-trip, and compile against the catalog without any
/// grammar extension (`-`, `.` and `+` are ordinary word characters).
#[test]
fn sketch_operators_parse_and_compile() {
    let cases = [
        "PARSE http_get FROM * TO h1:80 LIMIT 2s SAMPLE * \
         PROCESS (heavy-hitters: k=10, eps=0.001)",
        "PARSE http_get FROM * TO h1:80 LIMIT 2s SAMPLE * PROCESS (distinct: field=url, p=12)",
        "PARSE http_get FROM * TO h1:80 LIMIT 2s SAMPLE * \
         PROCESS (quantile: value=t_ns, q=0.5+0.95+0.99)",
        // All three at once: each PROCESS entry is its own pipeline.
        "PARSE http_get FROM * TO h1:80 LIMIT 2s SAMPLE * \
         PROCESS (heavy-hitters: k=5), (distinct), (quantile)",
    ];
    for src in cases {
        let q = parse(src).expect(src);
        let q2 = parse(&q.to_string()).expect("display re-parses");
        assert_eq!(q, q2, "round-trip for {src:?}");
        let d = compile(&q, &hosts()).expect(src);
        assert_eq!(d.processors.len(), q.processors.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Compiled matches are sound: a flow matching the compiled
    /// `FlowMatch` always satisfies the query's TO constraint.
    #[test]
    fn compiled_matches_are_sound(
        dst_port in 1u16..65_535,
        probe_ip in any::<u32>(),
        probe_port in 1u16..65_535,
    ) {
        let src = format!(
            "PARSE http_get FROM * TO 10.0.2.9:{dst_port} LIMIT 1s SAMPLE * PROCESS (group-sum)"
        );
        let q = parse(&src).unwrap();
        let d = compile(&q, &hosts()).unwrap();
        let flow = FlowKey::new(
            Ipv4Addr::from(probe_ip),
            probe_port,
            Ipv4Addr::new(10, 0, 2, 9),
            probe_port,
            IpProto::Tcp,
        );
        let matched = d.matches[0].matches(&flow);
        prop_assert_eq!(matched, probe_port == dst_port);
    }

    /// Valid generated queries always parse and compile.
    #[test]
    fn generated_queries_compile(
        parsers in proptest::sample::subsequence(
            vec!["tcp_flow_key", "tcp_conn_time", "tcp_pkt_size", "http_get",
                 "memcached_get", "mysql_query"], 1..4),
        port in 1u16..65_535,
        secs in 1u64..1_000,
        k in 1usize..50,
    ) {
        let src = format!(
            "PARSE {} FROM * TO h1:{port} LIMIT {secs}s SAMPLE auto PROCESS (top-k: k={k})",
            parsers.join(", ")
        );
        let q = parse(&src).unwrap();
        let d = compile(&q, &hosts()).unwrap();
        prop_assert_eq!(d.parsers.len(), parsers.len());
    }
}
