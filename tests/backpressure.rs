//! Integration: the §4.2 feedback loop end to end — an undersized
//! analytics layer pushes back until monitors shed load, and recovery
//! restores the sampling rate.

use netalytics::{shared_executor, AggregatorApp, MonitorApp};
use netalytics_monitor::{Monitor, MonitorConfig, SampleSpec};
use netalytics_netsim::{App, Ctx, Engine, LinkSpec, Network, SimDuration, SimTime};
use netalytics_packet::{Packet, TcpFlags};
use netalytics_sdn::{FlowMatch, FlowRule};
use netalytics_stream::{topologies, ExecutorMode, ProcessorSpec};

/// Sends a burst of `rate` conns/tick for `bursts` ticks, then goes quiet.
struct BurstyGen {
    dst: std::net::Ipv4Addr,
    rate: u16,
    bursts: u32,
    sent: u32,
}

impl App for BurstyGen {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.timer_in(SimDuration::from_millis(1), 0);
    }
    fn on_packet(&mut self, _p: &Packet, _ctx: &mut Ctx<'_>) {}
    fn on_timer(&mut self, _t: u64, ctx: &mut Ctx<'_>) {
        for i in 0..self.rate {
            let port = 1000u16.wrapping_add((self.sent as u16).wrapping_mul(self.rate) + i);
            ctx.send(Packet::tcp(
                ctx.ip(),
                port,
                self.dst,
                80,
                TcpFlags::SYN,
                0,
                0,
                b"",
            ));
        }
        self.sent += 1;
        if self.sent < self.bursts {
            ctx.timer_in(SimDuration::from_millis(1), 0);
        }
    }
}

#[test]
fn overload_backpressure_adapts_sampling_and_recovers() {
    let mut engine = Engine::new(Network::fat_tree(4, LinkSpec::default()));
    let dst_ip = engine.network().host_ip(1);
    let mon_ip = engine.network().host_ip(2);
    let agg_ip = engine.network().host_ip(3);
    engine.install_rule(
        0,
        FlowRule::mirror(FlowMatch::any().to_host(dst_ip, Some(80)), 2, 1),
    );
    let monitor = Monitor::new(MonitorConfig {
        parsers: vec!["tcp_flow_key".into()],
        sample: SampleSpec::Auto,
        batch_size: 32,
        preagg: None,
    })
    .unwrap();
    let topo = topologies::build(&ProcessorSpec::new("group-sum")).unwrap();
    let executor = shared_executor(&topo, ExecutorMode::Inline);
    // Deliberately tiny aggregation buffer with a slow drain.
    let agg = AggregatorApp::new(executor, vec![mon_ip], 50, 5);
    let agg_handle = agg.handle();
    let mon = MonitorApp::new(monitor, agg_ip, None);
    let mon_handle = mon.handle();
    engine.set_app(
        0,
        Box::new(BurstyGen {
            dst: dst_ip,
            rate: 40,
            bursts: 100,
            sent: 0,
        }),
    );
    engine.set_app(2, Box::new(mon));
    engine.set_app(3, Box::new(agg));

    // Phase 1: sustained burst overloads the aggregation layer.
    engine.run_until(SimTime::from_nanos(120_000_000));
    let mid_rate = mon_handle.borrow().sample_rate;
    assert!(
        agg_handle.borrow().overload_signals >= 1,
        "aggregator must signal overload"
    );
    assert!(mid_rate < 1.0, "monitor must shed load (rate {mid_rate})");
    assert!(agg_handle.borrow().dropped > 0, "buffer overflowed first");

    // Phase 2: traffic stops; drain brings the buffer under the low
    // watermark and recovery signals raise the sampling rate again.
    engine.run_until(SimTime::from_nanos(3_000_000_000));
    let final_rate = mon_handle.borrow().sample_rate;
    assert!(
        final_rate > mid_rate,
        "rate must recover ({mid_rate} -> {final_rate})"
    );
    // All buffered tuples eventually reached the executor.
    let a = agg_handle.borrow();
    assert_eq!(a.tuples_processed + a.dropped, a.tuples_in);
}
