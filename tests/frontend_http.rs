//! Integration: the production query frontend over real sockets.
//!
//! A [`QueryFrontend`] owns the orchestrator on its own thread while
//! HTTP clients drive the full lifecycle — submit, describe, stream,
//! kill, history — plus the multi-tenant admission surface: over-quota
//! tenants get a typed 429 envelope, and a high-priority submission
//! evicts a low-priority query when the fabric is full.

use std::io::{BufRead, BufReader, Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use netalytics::{Orchestrator, QueryFrontend, Tenant, TenantQuota, TimeSeriesStore};
use netalytics_apps::{sample_sink, ClientApp, Conversation, StaticHttpBehavior, TierApp};
use netalytics_netsim::SimTime;
use netalytics_packet::http;
use netalytics_sdn::InstallMode;

/// A long-lived query: the LIMIT outlives the test, so only an explicit
/// DELETE (or frontend shutdown) ends it. The 100 ms top-k window makes
/// the rank bolt re-emit continuously, so `/stream` always has lines.
const QUERY: &str = "PARSE http_get FROM * TO web:80 LIMIT 600s SAMPLE * \
                     PROCESS (top-k: k=3, w=100ms, key=url)";

/// Web tier on host 1, a client on host 0 driving conversations for a
/// long stretch of virtual time so streams always have traffic to show.
fn deploy_web(orch: &mut Orchestrator) {
    orch.name_host("web", 1);
    let web_ip = orch.host_ip(1);
    orch.deploy_app(
        1,
        Box::new(TierApp::new(80, Box::new(StaticHttpBehavior::new(1.0, 3)))),
    );
    let schedule = (0..20_000u64)
        .map(|i| {
            (
                SimTime::from_nanos(i * 10_000_000),
                Conversation {
                    dst: (web_ip, 80),
                    requests: vec![http::build_get(
                        if i % 3 == 0 { "/hot" } else { "/cold" },
                        "web",
                    )],
                    tag: "c".into(),
                },
            )
        })
        .collect();
    orch.deploy_app(0, Box::new(ClientApp::new(schedule, sample_sink())));
}

/// Minimal blocking HTTP/1.1 request. Returns (status-line, body) with
/// any chunked transfer-encoding already decoded.
fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &str,
) -> (String, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    let mut req = format!("{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n");
    for (k, v) in headers {
        req.push_str(&format!("{k}: {v}\r\n"));
    }
    req.push_str(&format!("Content-Length: {}\r\n\r\n{body}", body.len()));
    s.write_all(req.as_bytes()).expect("request");
    let mut resp = String::new();
    s.read_to_string(&mut resp).expect("response");
    let (head, raw) = resp.split_once("\r\n\r\n").expect("header/body split");
    let status = head.lines().next().unwrap_or("").to_string();
    let body = if head
        .to_ascii_lowercase()
        .contains("transfer-encoding: chunked")
    {
        dechunk(raw)
    } else {
        raw.to_string()
    };
    (status, body)
}

fn get(addr: SocketAddr, path: &str) -> (String, String) {
    request(addr, "GET", path, &[], "")
}

/// Decodes a chunked body: size lines are hex, data follows verbatim.
fn dechunk(raw: &str) -> String {
    let mut out = String::new();
    let mut rest = raw;
    while let Some((size_line, tail)) = rest.split_once("\r\n") {
        let Ok(size) = usize::from_str_radix(size_line.trim(), 16) else {
            break;
        };
        if size == 0 || tail.len() < size {
            break;
        }
        out.push_str(&tail[..size]);
        rest = tail[size..].strip_prefix("\r\n").unwrap_or("");
    }
    out
}

fn extract_cookie(descriptor: &str) -> u64 {
    let idx = descriptor
        .find("\"cookie\":")
        .expect("descriptor has a cookie")
        + 9;
    descriptor[idx..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("cookie digits")
}

/// The headline acceptance flow, on one SDN plane: POST a query, watch
/// it in the directory, read live NDJSON results off the stream, DELETE
/// it, then pull its durable history from the results endpoint.
fn lifecycle_on(mode: InstallMode) {
    let store = Arc::new(TimeSeriesStore::in_memory());
    let builder = Orchestrator::builder(4)
        .install_mode(mode)
        .result_store(store);
    let frontend = QueryFrontend::spawn("127.0.0.1:0", builder, deploy_web).expect("spawn");
    let addr = frontend.local_addr();

    // Submit over the wire; the 201 body is the directory descriptor.
    let (status, descriptor) = request(addr, "POST", "/queries", &[], QUERY);
    assert!(status.contains("201"), "{status}: {descriptor}");
    assert!(
        descriptor.contains("\"tenant\":\"default\""),
        "{descriptor}"
    );
    let cookie = extract_cookie(&descriptor);

    // Describe: listed, and running (or still deploying this instant).
    let (_, list) = get(addr, "/queries");
    assert!(list.contains(&format!("\"cookie\":{cookie}")), "{list}");
    let (status, one) = get(addr, &format!("/queries/{cookie}"));
    assert!(status.contains("200"), "{status}");
    assert!(!one.contains("\"state\":\"killed\""), "fresh query: {one}");

    // Stream: incremental result lines arrive while the query runs.
    // `?max=3` ends the stream server-side after 3 tuples.
    let mut stream = TcpStream::connect(addr).expect("connect stream");
    write!(
        stream,
        "GET /queries/{cookie}/stream?max=3 HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    )
    .expect("stream request");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut streamed = String::new();
    stream.read_to_string(&mut streamed).expect("stream body");
    let lines: Vec<&str> = streamed
        .lines()
        .filter(|l| l.starts_with('{') && l.contains("\"fields\""))
        .collect();
    assert!(
        lines.len() >= 3,
        "streamed >= 3 incremental NDJSON lines before kill, got {}: {streamed:?}",
        lines.len()
    );

    // A second subscriber still sees live lines (fan-out, not takeover),
    // this time reading incrementally and killing mid-stream.
    let mut live = TcpStream::connect(addr).expect("connect live stream");
    write!(
        live,
        "GET /queries/{cookie}/stream HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    )
    .expect("live stream request");
    live.set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut reader = BufReader::new(live);
    let mut line = String::new();
    // Skip response headers + chunk framing until a result line shows.
    let got_line = loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break false,
            Ok(_) if line.starts_with('{') && line.contains("\"fields\"") => break true,
            Ok(_) => continue,
            Err(e) => panic!("stream read failed: {e}"),
        }
    };
    assert!(
        got_line,
        "live subscriber saw a result line before the kill"
    );

    // Kill over the wire while the stream is open: 200 with a teardown
    // summary, and the open stream terminates (read hits EOF).
    let (status, summary) = request(addr, "DELETE", &format!("/queries/{cookie}"), &[], "");
    assert!(status.contains("200"), "{status}: {summary}");
    assert!(summary.contains("\"state\":\"killed\""), "{summary}");
    let mut remainder = String::new();
    reader
        .read_to_string(&mut remainder)
        .expect("stream drains to EOF after kill");

    // The directory now reports the query killed...
    let (_, one) = get(addr, &format!("/queries/{cookie}"));
    assert!(one.contains("\"state\":\"killed\""), "{one}");
    // ...killing again is a 404 with the typed envelope...
    let (status, body) = request(addr, "DELETE", &format!("/queries/{cookie}"), &[], "");
    assert!(status.contains("404"), "{status}");
    assert!(body.contains("\"code\":\"not_found\""), "{body}");
    // ...and the durable history survives the kill.
    let (status, history) = get(addr, &format!("/queries/{cookie}/results"));
    assert!(status.contains("200"), "{status}: {history}");
    assert!(history.contains("\"mode\":\"history\""), "{history}");
    let count_idx = history.find("\"count\":").expect("count field") + 8;
    let count: u64 = history[count_idx..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("count digits");
    assert!(count >= 1, "committed results replayed: {history}");

    // The journal saw the whole lifecycle over HTTP too.
    let (_, events) = get(addr, &format!("/events?cookie={cookie}"));
    for kind in ["query_submitted", "query_deployed", "query_killed"] {
        assert!(events.contains(kind), "{kind} missing from {events}");
    }
}

#[test]
fn frontend_lifecycle_proactive_plane() {
    lifecycle_on(InstallMode::Proactive);
}

#[test]
fn frontend_lifecycle_reactive_plane() {
    lifecycle_on(InstallMode::Reactive);
}

/// Submitting garbage is a 400 with the stable envelope, and an unknown
/// tenant is refused with a 403 — identity, not load.
#[test]
fn frontend_submit_errors_use_typed_envelope() {
    let frontend =
        QueryFrontend::spawn("127.0.0.1:0", Orchestrator::builder(4), deploy_web).expect("spawn");
    let addr = frontend.local_addr();

    let (status, body) = request(addr, "POST", "/queries", &[], "PARSE nonsense!!");
    assert!(status.contains("400"), "{status}: {body}");
    assert!(body.contains("\"code\":\"parse_error\""), "{body}");
    assert!(body.contains("\"message\":"), "{body}");

    let (status, body) = request(addr, "POST", "/queries", &[], "");
    assert!(status.contains("400"), "{status}: {body}");

    let (status, body) = request(addr, "POST", "/queries?tenant=nobody", &[], QUERY);
    assert!(status.contains("403"), "{status}: {body}");
    assert!(body.contains("\"code\":\"unknown_tenant\""), "{body}");
    assert!(body.contains("nobody"), "{body}");
}

/// The acceptance quota scenario: a tenant capped at one concurrent
/// query gets a typed 429 on its second submission, and killing the
/// first frees the slot.
#[test]
fn frontend_over_quota_tenant_gets_typed_429() {
    let quota = TenantQuota {
        max_concurrent_queries: 1,
        ..TenantQuota::UNLIMITED
    };
    let builder = Orchestrator::builder(8).tenant(Tenant::new("smallco", quota, 100));
    let frontend = QueryFrontend::spawn("127.0.0.1:0", builder, deploy_web).expect("spawn");
    let addr = frontend.local_addr();

    // Tenant via header on the first submit, via query param on the
    // second — both spellings address the same ledger.
    let (status, descriptor) = request(addr, "POST", "/queries", &[("X-Tenant", "smallco")], QUERY);
    assert!(status.contains("201"), "{status}: {descriptor}");
    assert!(
        descriptor.contains("\"tenant\":\"smallco\""),
        "{descriptor}"
    );
    let cookie = extract_cookie(&descriptor);

    let (status, body) = request(addr, "POST", "/queries?tenant=smallco", &[], QUERY);
    assert!(status.contains("429"), "expected 429, got {status}: {body}");
    assert!(
        body.contains("\"code\":\"quota_concurrent_queries\""),
        "{body}"
    );
    assert!(body.contains("\"detail\":\"tenant=smallco\""), "{body}");

    // The default tenant is not affected by smallco's quota.
    let (status, other) = request(addr, "POST", "/queries", &[], QUERY);
    assert!(status.contains("201"), "{status}: {other}");

    // Kill the first query: the slot frees and smallco can submit again.
    let (status, _) = request(addr, "DELETE", &format!("/queries/{cookie}"), &[], "");
    assert!(status.contains("200"), "{status}");
    let (status, body) = request(addr, "POST", "/queries?tenant=smallco", &[], QUERY);
    assert!(
        status.contains("201"),
        "slot freed by kill: {status}: {body}"
    );
}

/// The analytics read surface: `mode=aggregate` answers through the
/// history engine (plan attached), `mode=rollup` serves bucketed
/// summaries, and every malformed spelling — unknown mode, missing
/// field, sub-native bucket — is a typed 400, not a 500 or a guess.
#[test]
fn frontend_results_aggregate_and_rollup_modes() {
    let store = Arc::new(TimeSeriesStore::in_memory());
    let builder = Orchestrator::builder(4).result_store(store);
    let frontend = QueryFrontend::spawn("127.0.0.1:0", builder, deploy_web).expect("spawn");
    let addr = frontend.local_addr();

    let (status, descriptor) = request(addr, "POST", "/queries", &[], QUERY);
    assert!(status.contains("201"), "{status}: {descriptor}");
    let cookie = extract_cookie(&descriptor);

    // Wait until the sink has committed something to aggregate over.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let (_, history) = get(addr, &format!("/queries/{cookie}/results"));
        if !history.contains("\"count\":0,") {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "results never committed: {history}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // Aggregate: summed counts over the whole retained range, with the
    // execution plan in the envelope.
    let (status, body) = get(
        addr,
        &format!("/queries/{cookie}/results?mode=aggregate&field=count&agg=sum"),
    );
    assert!(status.contains("200"), "{status}: {body}");
    assert!(body.contains("\"mode\":\"aggregate\""), "{body}");
    assert!(body.contains("\"agg\":\"sum\""), "{body}");
    assert!(body.contains("\"plan\":{\"pushdown\":"), "{body}");

    // Rollup: bucketed summaries at the native width.
    let (status, body) = get(
        addr,
        &format!("/queries/{cookie}/results?mode=rollup&field=count"),
    );
    assert!(status.contains("200"), "{status}: {body}");
    assert!(body.contains("\"mode\":\"rollup\""), "{body}");
    assert!(body.contains("\"buckets\":["), "{body}");
    assert!(body.contains("\"bucket_start\":"), "{body}");

    // Typed 400s: unknown mode names every accepted spelling...
    let (status, body) = get(addr, &format!("/queries/{cookie}/results?mode=medians"));
    assert!(status.contains("400"), "{status}: {body}");
    assert!(body.contains("\"code\":\"bad_request\""), "{body}");
    assert!(
        body.contains("history|latest|range|rollup|aggregate"),
        "{body}"
    );
    // ...rollup without a field is refused up front...
    let (status, body) = get(addr, &format!("/queries/{cookie}/results?mode=rollup"));
    assert!(status.contains("400"), "{status}: {body}");
    assert!(body.contains("requires field="), "{body}");
    // ...a bucket below the native width surfaces the store's typed
    // refusal as a 400...
    let (status, body) = get(
        addr,
        &format!("/queries/{cookie}/results?mode=rollup&field=count&bucket_ms=1"),
    );
    assert!(status.contains("400"), "{status}: {body}");
    // ...and an unknown aggregate too.
    let (status, body) = get(
        addr,
        &format!("/queries/{cookie}/results?mode=aggregate&field=count&agg=mode"),
    );
    assert!(status.contains("400"), "{status}: {body}");
    assert!(body.contains("agg must be"), "{body}");
}

/// A standing query over the wire: `POST /queries?standing_every_ms=`
/// registers the continuous schedule, `standing_fired` events show up
/// on `/events`, and the materialized windows read back through the
/// ordinary `mode=range` results route under the derived series.
#[test]
fn frontend_standing_query_materializes_over_http() {
    let store = Arc::new(TimeSeriesStore::in_memory());
    let builder = Orchestrator::builder(4).result_store(store);
    let frontend = QueryFrontend::spawn("127.0.0.1:0", builder, deploy_web).expect("spawn");
    let addr = frontend.local_addr();

    // Malformed standing parameters are typed 400s before submission.
    let (status, body) = request(addr, "POST", "/queries?standing_every_ms=0", &[], QUERY);
    assert!(status.contains("400"), "{status}: {body}");
    assert!(body.contains("standing_every_ms"), "{body}");
    let (status, body) = request(
        addr,
        "POST",
        "/queries?standing_every_ms=100&standing_agg=bogus",
        &[],
        QUERY,
    );
    assert!(status.contains("400"), "{status}: {body}");
    assert!(body.contains("standing_agg"), "{body}");
    let (status, body) = request(addr, "POST", "/queries?standing_agg=sum", &[], QUERY);
    assert!(status.contains("400"), "{status}: {body}");
    assert!(body.contains("requires standing_every_ms"), "{body}");

    // A well-formed standing submit is a plain 201 descriptor.
    let (status, descriptor) = request(
        addr,
        "POST",
        "/queries?standing_every_ms=100&standing_agg=sum&standing_field=count",
        &[],
        QUERY,
    );
    assert!(status.contains("201"), "{status}: {descriptor}");
    let cookie = extract_cookie(&descriptor);

    // The reconciler fires windows as virtual time advances; no
    // subscriber is ever attached.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let (_, events) = get(addr, &format!("/events?cookie={cookie}"));
        if events.matches("standing_fired").count() >= 2 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "standing windows never fired: {events}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // The materialized aggregates are ordinary range reads on the
    // derived series.
    let (status, body) = get(
        addr,
        &format!(
            "/queries/{cookie}/results?mode=range&group=standing:sum:count&from=0&to={}",
            u64::MAX
        ),
    );
    assert!(status.contains("200"), "{status}: {body}");
    assert!(body.contains("\"window_end\":"), "{body}");
    assert!(body.contains("\"agg\":\"sum\""), "{body}");
}

/// Priority eviction over the wire: bulk (priority 10) fills the
/// fabric until a submit hits 503 `no_free_host`; then ops
/// (priority 200) submits, a bulk query is evicted to make room, and
/// the eviction is visible in the directory and the journal.
#[test]
fn frontend_priority_eviction_frees_capacity() {
    let builder = Orchestrator::builder(4)
        .tenant(Tenant::new("bulk", TenantQuota::UNLIMITED, 10))
        .tenant(Tenant::new("ops", TenantQuota::UNLIMITED, 200));
    let frontend = QueryFrontend::spawn("127.0.0.1:0", builder, deploy_web).expect("spawn");
    let addr = frontend.local_addr();

    // Fill the fabric with bulk queries until placement refuses.
    let mut bulk_cookies = Vec::new();
    let mut saturated = false;
    for _ in 0..8 {
        let (status, body) = request(addr, "POST", "/queries?tenant=bulk", &[], QUERY);
        if status.contains("201") {
            bulk_cookies.push(extract_cookie(&body));
        } else {
            assert!(status.contains("503"), "{status}: {body}");
            assert!(body.contains("\"code\":\"no_free_host\""), "{body}");
            saturated = true;
            break;
        }
    }
    assert!(saturated, "fabric saturates within 8 bulk queries");
    assert!(!bulk_cookies.is_empty(), "some bulk queries were admitted");

    // Ops outranks bulk: its submission evicts instead of failing.
    let (status, descriptor) = request(addr, "POST", "/queries?tenant=ops", &[], QUERY);
    assert!(
        status.contains("201"),
        "eviction made room: {status}: {descriptor}"
    );
    assert!(descriptor.contains("\"tenant\":\"ops\""), "{descriptor}");

    // Exactly one bulk query lost its slot, and the flight recorder
    // explains why.
    let killed: Vec<u64> = bulk_cookies
        .iter()
        .copied()
        .filter(|c| {
            let (_, one) = get(addr, &format!("/queries/{c}"));
            one.contains("\"state\":\"killed\"")
        })
        .collect();
    assert_eq!(killed.len(), 1, "one bulk victim, got {killed:?}");
    let (_, events) = get(addr, &format!("/events?cookie={}", killed[0]));
    assert!(events.contains("query_evicted"), "{events}");
    assert!(
        events.contains(r#"higher-priority \"ops\""#),
        "victim's record names the evictor: {events}"
    );
}
