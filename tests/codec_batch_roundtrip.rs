//! Wire-codec round-trip guarantees for the batch-first data plane.
//!
//! Every hop — parser worker → [`QueueWriter`] → partition → spout —
//! moves encoded [`TupleBatch`]es, so the codec must round-trip exactly:
//! empty batches, unicode in every string position, the numeric extremes,
//! and (because `NaN != NaN`) byte-identical re-encoding.
//!
//! [`QueueWriter`]: netalytics_queue::QueueWriter

use netalytics_data::{DataTuple, TupleBatch, Value};
use proptest::prelude::*;

/// Encode → decode → encode; asserts the buffer is fully consumed and the
/// second encoding is byte-identical to the first.
fn roundtrip(batch: &TupleBatch) -> TupleBatch {
    let wire = batch.encode();
    let mut buf = wire.clone();
    let back = TupleBatch::decode(&mut buf).expect("decode");
    assert!(buf.is_empty(), "decode must consume the whole batch");
    assert_eq!(wire, back.encode(), "re-encoding must be byte-identical");
    back
}

#[test]
fn empty_batch_roundtrips() {
    let back = roundtrip(&TupleBatch::new());
    assert!(back.is_empty());
    assert_eq!(back.len(), 0);
}

#[test]
fn unicode_survives_every_string_position() {
    let t = DataTuple::new(7, 9)
        .from_source("解析器")
        .with("url", "/emoji/🦀🛰️")
        .with("ключ", "значение")
        .with("mixed", "ascii-läuft-ß-ok");
    let back = roundtrip(&TupleBatch::from_tuples(vec![t.clone()]));
    assert_eq!(back.tuples, vec![t]);
    assert_eq!(
        back.tuples[0].get("url").and_then(Value::as_str),
        Some("/emoji/🦀🛰️")
    );
}

#[test]
fn numeric_extremes_roundtrip_exactly() {
    let t = DataTuple::new(u64::MAX, u64::MAX)
        .with("u_max", u64::MAX)
        .with("u_min", 0u64)
        .with("i_min", i64::MIN)
        .with("i_max", i64::MAX)
        .with("f_max", f64::MAX)
        .with("f_tiny", f64::MIN_POSITIVE)
        .with("f_neg0", -0.0f64)
        .with("f_inf", f64::INFINITY)
        .with("f_ninf", f64::NEG_INFINITY);
    let back = roundtrip(&TupleBatch::from_tuples(vec![t.clone()]));
    assert_eq!(back.tuples, vec![t]);
    let got = &back.tuples[0];
    assert_eq!(got.get("u_max").and_then(Value::as_u64), Some(u64::MAX));
    assert_eq!(
        got.get("f_inf").and_then(Value::as_f64),
        Some(f64::INFINITY)
    );
    // -0.0 must keep its sign bit, not collapse to +0.0.
    let neg0 = got.get("f_neg0").and_then(Value::as_f64).unwrap();
    assert!(neg0 == 0.0 && neg0.is_sign_negative());
}

#[test]
fn nan_roundtrips_byte_identically() {
    // NaN breaks PartialEq-based comparison, so the byte-identity check
    // inside `roundtrip` is the meaningful assertion here.
    let t = DataTuple::new(1, 2).with("nan", f64::NAN);
    let back = roundtrip(&TupleBatch::from_tuples(vec![t]));
    assert!(back.tuples[0]
        .get("nan")
        .and_then(Value::as_f64)
        .unwrap()
        .is_nan());
}

#[test]
fn truncated_batch_errors_instead_of_panicking() {
    let batch: TupleBatch = (0..4u64)
        .map(|i| DataTuple::new(i, i).with("k", "v"))
        .collect();
    let wire = batch.encode();
    for cut in 0..wire.len() {
        let mut short = wire.slice(..cut);
        assert!(
            TupleBatch::decode(&mut short).is_err(),
            "prefix of {cut} bytes must not decode"
        );
    }
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::I64),
        any::<u64>().prop_map(Value::U64),
        any::<f64>().prop_map(Value::F64),
        ".{0,24}".prop_map(Value::Str), // mixed ascii/unicode
        proptest::collection::vec(any::<u8>(), 0..32).prop_map(Value::Bytes),
    ]
}

prop_compose! {
    fn arb_tuple()(
        id in any::<u64>(),
        ts in any::<u64>(),
        source in ".{0,12}",
        fields in proptest::collection::vec(("[a-z_]{1,8}", arb_value()), 0..6),
    ) -> DataTuple {
        let mut t = DataTuple::new(id, ts).from_source(source);
        for (k, v) in fields {
            t = t.with(k, v);
        }
        t
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_batch_roundtrips_byte_identically(
        tuples in proptest::collection::vec(arb_tuple(), 0..12),
    ) {
        let batch = TupleBatch::from_tuples(tuples);
        let n = batch.len();
        let back = roundtrip(&batch);
        prop_assert_eq!(back.len(), n);
    }
}
