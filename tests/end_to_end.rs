//! Integration: the full Fig. 1 pipeline — query → SDN rules → NFV
//! monitors → aggregation → analytics → results — on the emulated
//! data center.

use netalytics::Orchestrator;
use netalytics_apps::{sample_sink, ClientApp, Conversation, StaticHttpBehavior, TierApp};
use netalytics_netsim::{SimDuration, SimTime};
use netalytics_packet::http;

/// Builds a k=4 data center with a web server on host 1 and a client on
/// host 0 fetching `urls` round-robin.
fn web_setup(urls: &[&str], requests: u64) -> (Orchestrator, netalytics_apps::SampleSink) {
    let mut orch = Orchestrator::builder(4).build();
    orch.name_host("web", 1);
    let web_ip = orch.host_ip(1);
    orch.deploy_app(
        1,
        Box::new(TierApp::new(
            80,
            Box::new(StaticHttpBehavior::new(2.0, 5).with_body_bytes(256)),
        )),
    );
    let sink = sample_sink();
    let schedule = (0..requests)
        .map(|i| {
            (
                SimTime::from_nanos(i * 4_000_000),
                Conversation {
                    dst: (web_ip, 80),
                    requests: vec![http::build_get(
                        urls[(i % urls.len() as u64) as usize],
                        "web",
                    )],
                    tag: urls[(i % urls.len() as u64) as usize].to_string(),
                },
            )
        })
        .collect();
    orch.deploy_app(0, Box::new(ClientApp::new(schedule, sink.clone())));
    (orch, sink)
}

#[test]
fn top_k_query_ranks_urls_correctly() {
    let (mut orch, _sink) = web_setup(&["/a", "/a", "/a", "/b", "/b", "/c"], 300);
    let report = orch
        .run_query(
            "PARSE http_get FROM * TO web:80 LIMIT 2s SAMPLE * \
             PROCESS (top-k: k=3, w=60s, key=url)",
            SimDuration::from_secs(2),
        )
        .expect("query runs");
    let ranking = report.first().final_ranking();
    assert_eq!(ranking.len(), 3);
    assert_eq!(ranking[0].0, "/a");
    assert_eq!(ranking[1].0, "/b");
    assert_eq!(ranking[2].0, "/c");
    assert!(ranking[0].1 > ranking[1].1 && ranking[1].1 > ranking[2].1);
    // The paper's efficiency claim: tuple traffic is smaller than the
    // mirrored raw traffic. (This query mirrors only the request
    // direction — tiny SYN/GET/FIN frames — so the factor is modest here;
    // `traffic_reduction` measures the realistic full-mix factor.)
    let stats = &report.monitor_stats[0];
    assert!(stats.reduction_factor().expect("emitted output") > 1.2);
}

#[test]
fn diff_group_measures_per_destination_latency() {
    let (mut orch, sink) = web_setup(&["/x"], 200);
    let report = orch
        .run_query(
            "PARSE tcp_conn_time FROM * TO web:80 LIMIT 2s SAMPLE * \
             PROCESS (diff-group-avg: group=dst_ip)",
            SimDuration::from_secs(2),
        )
        .expect("query runs");
    let groups = report.first().group_values("dst_ip", "avg");
    assert_eq!(groups.len(), 1, "one destination: {groups:?}");
    let measured = groups.values().next().copied().unwrap();
    // Cross-check against the application's own ground truth.
    let client_avg: f64 = {
        let s = sink.borrow();
        s.iter().map(|x| x.rt_ms()).sum::<f64>() / s.len() as f64
    };
    assert!(
        (measured - client_avg).abs() < client_avg * 0.25,
        "NetAlytics {measured:.2}ms vs client {client_avg:.2}ms"
    );
}

#[test]
fn packet_limit_caps_monitoring() {
    let (mut orch, _sink) = web_setup(&["/x"], 300);
    let report = orch
        .run_query(
            "PARSE tcp_flow_key FROM * TO web:80 LIMIT 100p SAMPLE * \
             PROCESS (group-sum: group=dst_ip, value=dst_port)",
            SimDuration::from_secs(2),
        )
        .expect("query runs");
    assert_eq!(report.monitor_stats[0].packets_seen, 100);
}

#[test]
fn monitoring_stops_after_finalize() {
    let (mut orch, _sink) = web_setup(&["/x"], 500);
    let q = orch
        .submit("PARSE http_get FROM * TO web:80 LIMIT 1s SAMPLE * PROCESS (group-sum)")
        .expect("submit");
    orch.run_until(SimTime::from_nanos(1_000_000_000));
    let mirrored_before = orch.engine().stats().mirrored;
    assert!(mirrored_before > 0, "mirroring active during the query");
    orch.kill(&q);
    orch.run_until(SimTime::from_nanos(2_000_000_000));
    let mirrored_after = orch.engine().stats().mirrored;
    assert_eq!(
        mirrored_before, mirrored_after,
        "rules removed: no mirroring after finalize"
    );
}

#[test]
fn sampling_reduces_monitored_share() {
    let (mut orch, _sink) = web_setup(&["/x"], 400);
    let report = orch
        .run_query(
            "PARSE tcp_flow_key FROM * TO web:80 LIMIT 2s SAMPLE 0.2 \
             PROCESS (group-sum: group=dst_ip, value=dst_port)",
            SimDuration::from_secs(2),
        )
        .expect("query runs");
    let s = &report.monitor_stats[0];
    assert!(s.packets_seen > 0);
    let frac = s.packets_sampled as f64 / s.packets_seen as f64;
    assert!(frac < 0.5, "sampled fraction {frac}");
    assert!(frac > 0.02, "sampled fraction {frac}");
}

#[test]
fn two_parsers_feed_the_url_join() {
    let (mut orch, _sink) = web_setup(&["/fast", "/slow"], 200);
    let report = orch
        .run_query(
            "PARSE tcp_conn_time, http_get FROM * TO web:80 LIMIT 2s SAMPLE * \
             PROCESS (url-avg)",
            SimDuration::from_secs(2),
        )
        .expect("query runs");
    let per_url = report.first().group_values("url", "avg");
    assert_eq!(per_url.len(), 2, "{per_url:?}");
    assert!(per_url.contains_key("/fast"));
    assert!(per_url.contains_key("/slow"));
}

#[test]
fn monitoring_traffic_is_visible_but_bounded() {
    let (mut orch, _sink) = web_setup(&["/x"], 300);
    // Measure baseline traffic with no query.
    orch.run_until(SimTime::from_nanos(500_000_000));
    let before = orch.engine().network().tier_traffic().total();
    let _ = orch
        .run_query(
            "PARSE http_get FROM * TO web:80 LIMIT 1s SAMPLE * PROCESS (group-sum)",
            SimDuration::from_secs(1),
        )
        .expect("query runs");
    let after = orch.engine().network().tier_traffic().total();
    let mirrored = orch.engine().stats().mirrored;
    assert!(mirrored > 0);
    assert!(after > before, "monitoring adds traffic");
}

#[test]
fn concurrent_queries_are_isolated() {
    // Two queries with different parsers and processors run at the same
    // time against the same traffic; each gets its own monitors, rules
    // (cookies) and results.
    let (mut orch, _sink) = web_setup(&["/a", "/b"], 400);
    let q1 = orch
        .submit(
            "PARSE http_get FROM * TO web:80 LIMIT 2s SAMPLE * \
             PROCESS (top-k: k=2, w=60s, key=url)",
        )
        .expect("q1");
    let q2 = orch
        .submit(
            "PARSE tcp_conn_time FROM * TO web:80 LIMIT 2s SAMPLE * \
             PROCESS (diff-group-avg: group=dst_ip)",
        )
        .expect("q2");
    assert_ne!(q1.cookie(), q2.cookie());
    assert_ne!(
        q1.monitor_hosts(),
        q2.monitor_hosts(),
        "each query gets its own monitor host"
    );
    orch.run_until(SimTime::from_nanos(2_100_000_000));
    let r1 = orch.kill(&q1).expect("q1 running");
    let r2 = orch.kill(&q2).expect("q2 running");
    let ranking = r1.first().final_ranking();
    assert_eq!(ranking.len(), 2);
    assert_eq!(ranking[0].0, "/a");
    let groups = r2.first().group_values("dst_ip", "avg");
    assert_eq!(groups.len(), 1);
    assert!(*groups.values().next().unwrap() > 0.0);
    // Neither query's tuples leaked into the other's results.
    assert!(r1.first().tuples.iter().all(|t| t.source == "rank"));
    assert!(r2.first().tuples.iter().all(|t| t.source == "agg"));
}
