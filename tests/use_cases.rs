//! Integration: miniature versions of the three §7 case studies,
//! asserting the diagnostic *shapes* the paper reports.

use netalytics::Orchestrator;
use netalytics_apps::{
    sample_sink, AppServerBehavior, ClientApp, Conversation, MemcachedBehavior, MysqlBehavior,
    ProxyBehavior, TierApp,
};
use netalytics_netsim::{SimDuration, SimTime};
use netalytics_packet::http;

/// §7.1 in miniature: the misconfigured app server shows up in per-tier
/// latencies and backend throughput, exactly like Figs. 9 and 11.
#[test]
fn multi_tier_misconfiguration_is_diagnosable() {
    let mut orch = Orchestrator::builder(4).build();
    let (proxy, app1, app2, db, cache) = (2u32, 4, 5, 8, 9);
    for (n, h) in [("app1", app1), ("app2", app2), ("db", db), ("cache", cache)] {
        orch.name_host(n, h);
    }
    let (app1_ip, app2_ip, db_ip, cache_ip) = (
        orch.host_ip(app1),
        orch.host_ip(app2),
        orch.host_ip(db),
        orch.host_ip(cache),
    );
    orch.deploy_app(
        db,
        Box::new(TierApp::new(3306, Box::new(MysqlBehavior::new(30.0, 1)))),
    );
    orch.deploy_app(
        cache,
        Box::new(TierApp::new(
            11211,
            Box::new(MemcachedBehavior::new(0.5, 2)),
        )),
    );
    orch.deploy_app(
        app1,
        Box::new(TierApp::new(
            80,
            Box::new(AppServerBehavior::new(
                (db_ip, 3306),
                (cache_ip, 11211),
                0.05,
                3,
            )),
        )),
    );
    orch.deploy_app(
        app2,
        Box::new(TierApp::new(
            80,
            Box::new(AppServerBehavior::new(
                (db_ip, 3306),
                (cache_ip, 11211),
                0.8,
                4,
            )),
        )),
    );
    let pool = ProxyBehavior::pool_of(&[(app1_ip, 80), (app2_ip, 80)]);
    orch.deploy_app(
        proxy,
        Box::new(TierApp::new(80, Box::new(ProxyBehavior::new(pool)))),
    );
    let sink = sample_sink();
    let proxy_ip = orch.host_ip(proxy);
    let schedule = (0..600u64)
        .map(|i| {
            (
                SimTime::from_nanos(i * 40_000_000),
                Conversation {
                    dst: (proxy_ip, 80),
                    requests: vec![http::build_get(&format!("/p{}", i % 7), "p")],
                    tag: "c".into(),
                },
            )
        })
        .collect();
    orch.deploy_app(0, Box::new(ClientApp::new(schedule, sink.clone())));

    let report = orch
        .run_query(
            "PARSE tcp_conn_time FROM * TO app1:80, app2:80, db:3306, cache:11211 \
             LIMIT 11s SAMPLE * PROCESS (diff-group-avg: group=dst_ip)",
            SimDuration::from_secs(11),
        )
        .expect("per-tier query");
    let tiers = report.first().group_values("dst_ip", "avg");
    let a1 = tiers[&app1_ip.to_string()];
    let a2 = tiers[&app2_ip.to_string()];
    assert!(
        a1 > 2.5 * a2,
        "misconfigured app1 ({a1:.1}ms) must be much slower than app2 ({a2:.1}ms)"
    );
    // Paper Fig. 9: backend times are similar from both app servers.
    let db_t = tiers[&db_ip.to_string()];
    let cache_t = tiers[&cache_ip.to_string()];
    assert!(
        db_t > 10.0 * cache_t,
        "db ({db_t:.1}) >> cache ({cache_t:.2})"
    );

    // Fig. 11 shape: app1 pushes much more to MySQL than app2.
    let report2 = orch
        .run_query(
            "PARSE tcp_pkt_size FROM app1, app2 TO db:3306, cache:11211 \
             LIMIT 10s SAMPLE * PROCESS (group-sum: group=src_ip+dst_ip, value=bytes)",
            SimDuration::from_secs(10),
        )
        .expect("throughput query");
    let mut app1_db = 0.0;
    let mut app2_db = 0.0;
    for t in &report2.first().tuples {
        let (Some(src), Some(dst), Some(sum)) = (
            t.get("src_ip").map(ToString::to_string),
            t.get("dst_ip").map(ToString::to_string),
            t.get("sum").and_then(netalytics_data::Value::as_f64),
        ) else {
            continue;
        };
        if dst == db_ip.to_string() {
            if src == app1_ip.to_string() {
                app1_db = sum;
            } else if src == app2_ip.to_string() {
                app2_db = sum;
            }
        }
    }
    assert!(
        app1_db > 2.0 * app2_db,
        "app1->db bytes {app1_db} must dwarf app2->db {app2_db}"
    );
}

/// §7.2 in miniature: the buggy page is visibly too fast, and per-query
/// MySQL latencies are observable despite shared connections (Fig. 14/15).
#[test]
fn buggy_page_and_per_query_latency_are_visible() {
    use netalytics_apps::{Endpoint, Plan, TierBehavior};
    use netalytics_packet::mysql;

    struct Php {
        db: Endpoint,
    }
    impl TierBehavior for Php {
        fn plan(&mut self, request: &[u8], _src: Endpoint, _now: u64) -> Plan {
            let Some(req) = http::parse_request(request) else {
                return Plan::Drop;
            };
            if req.url == "/overdue-bug.php" {
                return Plan::Respond {
                    delay: netalytics_netsim::SimDuration::from_millis(2),
                    payload: http::build_response(200, b"empty"),
                    close: true,
                };
            }
            Plan::Backend {
                dst: self.db,
                requests: vec![
                    mysql::build_query("SELECT_SLOW overdue"),
                    mysql::build_query("SELECT_CHEAP fmt"),
                ],
                post_delay: netalytics_netsim::SimDuration::from_millis(1),
                payload: http::build_response(200, b"report"),
                close: true,
            }
        }
    }

    let mut orch = Orchestrator::builder(4).build();
    let (web, db) = (4u32, 8u32);
    orch.name_host("h1", web);
    orch.name_host("h2", db);
    let db_ip = orch.host_ip(db);
    let web_ip = orch.host_ip(web);
    orch.deploy_app(
        db,
        Box::new(TierApp::new(
            3306,
            Box::new(
                MysqlBehavior::new(5.0, 7)
                    .with_statement("SELECT_SLOW", 60.0)
                    .with_statement("SELECT_CHEAP", 1.0),
            ),
        )),
    );
    orch.deploy_app(
        web,
        Box::new(TierApp::new(80, Box::new(Php { db: (db_ip, 3306) }))),
    );
    let sink = sample_sink();
    let schedule = (0..400u64)
        .map(|i| {
            let url = if i % 2 == 0 {
                "/overdue.php"
            } else {
                "/overdue-bug.php"
            };
            (
                SimTime::from_nanos(i * 60_000_000),
                Conversation {
                    dst: (web_ip, 80),
                    requests: vec![http::build_get(url, "h1")],
                    tag: url.to_string(),
                },
            )
        })
        .collect();
    orch.deploy_app(0, Box::new(ClientApp::new(schedule, sink)));

    // Fig. 13/14: per-URL average via the joined query.
    let r = orch
        .run_query(
            "PARSE tcp_conn_time, http_get FROM * TO h1:80 LIMIT 11s SAMPLE * \
             PROCESS (url-avg)",
            SimDuration::from_secs(11),
        )
        .expect("url query");
    let per_url = r.first().group_values("url", "avg");
    let ok = per_url["/overdue.php"];
    let bug = per_url["/overdue-bug.php"];
    assert!(
        ok > 10.0 * bug,
        "buggy page ({bug:.1}ms) must be suspiciously faster than {ok:.1}ms"
    );

    // Fig. 15: per-query latencies show two modes (slow + cheap).
    let r2 = orch
        .run_query(
            "PARSE mysql_query FROM * TO h2:3306 LIMIT 10s SAMPLE * \
             PROCESS (histogram: value=rt_ms, bucket=20)",
            SimDuration::from_secs(10),
        )
        .expect("mysql query");
    let buckets: Vec<(f64, u64)> = r2
        .first()
        .tuples
        .iter()
        .filter_map(|t| {
            Some((
                t.get("bucket_lo")
                    .and_then(netalytics_data::Value::as_f64)?,
                t.get("freq").and_then(netalytics_data::Value::as_u64)?,
            ))
        })
        .collect();
    assert!(
        buckets.iter().any(|(lo, _)| *lo < 20.0),
        "cheap mode present: {buckets:?}"
    );
    assert!(
        buckets.iter().any(|(lo, _)| *lo >= 40.0),
        "slow mode present: {buckets:?}"
    );
}
