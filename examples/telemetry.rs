//! Self-telemetry: watch NetAlytics watch itself.
//!
//! Same scenario as `quickstart` — a web server, a client, one query —
//! but the point here is the orchestrator's metrics registry: every
//! layer (monitors, the aggregation queue, the stream executor, the
//! emulated fabric) publishes into one registry, and
//! `telemetry_report()` returns a point-in-time snapshot with the
//! end-to-end capture-to-analytics latency histogram.
//!
//! Run with: `cargo run --release --example telemetry`

use netalytics::Orchestrator;
use netalytics_apps::{sample_sink, ClientApp, Conversation, StaticHttpBehavior, TierApp};
use netalytics_netsim::{SimDuration, SimTime};
use netalytics_packet::http;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut orch = Orchestrator::builder(4).build();

    orch.name_host("web", 1);
    let web_ip = orch.host_ip(1);
    orch.deploy_app(
        1,
        Box::new(TierApp::new(
            80,
            Box::new(StaticHttpBehavior::new(2.0, 7).with_body_bytes(512)),
        )),
    );
    let sink = sample_sink();
    let urls = ["/video/7", "/video/7", "/video/2", "/index"];
    let schedule = (0..400u64)
        .map(|i| {
            (
                SimTime::from_nanos(i * 3_000_000),
                Conversation {
                    dst: (web_ip, 80),
                    requests: vec![http::build_get(urls[(i % 4) as usize], "web")],
                    tag: urls[(i % 4) as usize].to_string(),
                },
            )
        })
        .collect();
    orch.deploy_app(0, Box::new(ClientApp::new(schedule, sink)));

    orch.run_query(
        "PARSE http_get FROM * TO web:80 LIMIT 2s SAMPLE * \
         PROCESS (top-k: k=3, w=10s, key=url)",
        SimDuration::from_secs(2),
    )?;

    // The registry outlives the query: scrape it after finalize.
    let snap = orch.telemetry_report();

    println!("== Prometheus exposition (every layer, one scrape) ==");
    print!("{}", snap.render_prometheus());

    let e2e = snap.histogram_merged("e2e.tuple_latency_ns");
    println!("\n== end-to-end tuple latency (capture -> analytics) ==");
    println!("  samples: {}", e2e.count());
    println!("  p50: {:.3} ms", e2e.p50() as f64 / 1e6);
    println!("  p95: {:.3} ms", e2e.p95() as f64 / 1e6);
    println!("  p99: {:.3} ms", e2e.p99() as f64 / 1e6);
    println!("  max: {:.3} ms", e2e.max() as f64 / 1e6);

    println!("\n== same snapshot as JSON ==");
    println!("{}", snap.render_json());
    Ok(())
}
