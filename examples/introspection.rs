//! Live introspection: take the runtime's pulse with `curl`.
//!
//! Runs the quickstart scenario with query-scoped tracing enabled, then
//! binds the introspection endpoint and fetches each route the way an
//! operator would. The server keeps running after the demo requests so
//! you can point a browser or `curl` at it:
//!
//! ```text
//! curl http://127.0.0.1:9900/metrics          # Prometheus exposition
//! curl http://127.0.0.1:9900/queries          # query directory
//! curl http://127.0.0.1:9900/trace/1          # slowest span waterfalls
//! curl http://127.0.0.1:9900/events?cookie=1  # flight-recorder journal
//! ```
//!
//! Run with: `cargo run --release --example introspection`

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};

use netalytics::{Orchestrator, TraceConfig};
use netalytics_apps::{sample_sink, ClientApp, Conversation, StaticHttpBehavior, TierApp};
use netalytics_netsim::{SimDuration, SimTime};
use netalytics_packet::http;

fn get(addr: SocketAddr, path: &str) -> String {
    let mut s = TcpStream::connect(addr).expect("connect");
    write!(
        s,
        "GET {path} HTTP/1.1\r\nHost: demo\r\nConnection: close\r\n\r\n"
    )
    .expect("request");
    let mut resp = String::new();
    s.read_to_string(&mut resp).expect("response");
    resp.split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .unwrap_or(resp)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Trace every batch — a demo wants waterfalls, not 1-in-64 samples.
    let mut orch = Orchestrator::builder(4)
        .tracing(TraceConfig {
            sample_every: 1,
            ..TraceConfig::default()
        })
        .build();

    orch.name_host("web", 1);
    let web_ip = orch.host_ip(1);
    orch.deploy_app(
        1,
        Box::new(TierApp::new(80, Box::new(StaticHttpBehavior::new(2.0, 7)))),
    );
    let urls = ["/video/7", "/video/7", "/video/2", "/index"];
    let schedule = (0..200u64)
        .map(|i| {
            (
                SimTime::from_nanos(i * 5_000_000),
                Conversation {
                    dst: (web_ip, 80),
                    requests: vec![http::build_get(urls[(i % 4) as usize], "web")],
                    tag: urls[(i % 4) as usize].to_string(),
                },
            )
        })
        .collect();
    orch.deploy_app(0, Box::new(ClientApp::new(schedule, sample_sink())));

    let q = orch.submit(
        "PARSE http_get FROM * TO web:80 LIMIT 1s SAMPLE * \
         PROCESS (top-k: k=3, w=10s, key=url)",
    )?;
    let cookie = q.cookie();
    let deadline = q.deadline().expect("time-limited query");
    orch.run_reconciling(&q, deadline + SimDuration::from_millis(50))?;
    orch.kill(&q);

    // Port 0 picks a free ephemeral port; swap in "127.0.0.1:9900" to
    // get the stable address the doc comment advertises.
    let srv = orch.serve("127.0.0.1:0")?;
    let addr = srv.local_addr();
    println!("introspection listening on http://{addr}\n");

    println!("== GET /queries ==");
    println!("{}\n", get(addr, "/queries"));

    println!("== GET /trace/{cookie} (K slowest waterfalls) ==");
    println!("{}\n", get(addr, &format!("/trace/{cookie}")));

    println!("== GET /events?cookie={cookie} (flight recorder) ==");
    println!("{}\n", get(addr, &format!("/events?cookie={cookie}")));

    println!("== GET /metrics (trace.* series only) ==");
    for line in get(addr, "/metrics").lines() {
        if line.starts_with("trace_") {
            println!("{line}");
        }
    }

    println!("\nserver stays up for 10s — try: curl http://{addr}/");
    std::thread::sleep(std::time::Duration::from_secs(10));
    Ok(())
}
