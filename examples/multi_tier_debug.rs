//! Use case §7.1 — Multi-Tier Performance Debugging (Figs. 9, 10, 11).
//!
//! A two-tier web application: a proxy load-balances across two app
//! servers, each of which consults either Memcached or MySQL. App
//! server 1 is *misconfigured* — it almost never uses the cache — so
//! client response times are bimodal. Two NetAlytics queries find the
//! culprit without touching any server:
//!
//! 1. `tcp_conn_time` + `diff-group-avg` — per-tier response times
//!    (Fig. 9): the proxy→app1 hop is ~4x slower than proxy→app2.
//! 2. `tcp_pkt_size` + `group-sum` — per-connection throughput
//!    (Fig. 11): app1 pushes ~3x more bytes to MySQL and far fewer to
//!    Memcached, exposing the misconfiguration.
//!
//! Run with: `cargo run --release --example multi_tier_debug`

use netalytics::Orchestrator;
use netalytics_apps::{
    sample_sink, AppServerBehavior, ClientApp, Conversation, MemcachedBehavior, MysqlBehavior,
    ProxyBehavior, TierApp,
};
use netalytics_netsim::{SimDuration, SimTime};
use netalytics_packet::http;

fn histogram(samples: &[f64], bucket_ms: f64) -> Vec<(f64, usize)> {
    let mut buckets = std::collections::BTreeMap::new();
    for &s in samples {
        *buckets.entry((s / bucket_ms) as i64).or_insert(0usize) += 1;
    }
    buckets
        .into_iter()
        .map(|(b, n)| (b as f64 * bucket_ms, n))
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut orch = Orchestrator::builder(4).build();

    // Topology roles (paper Fig. 9): client → proxy → {app1, app2} →
    // {MySQL, Memcached}.
    let (client, proxy, app1, app2, db, cache) = (0u32, 2u32, 4u32, 5u32, 8u32, 9u32);
    for (name, host) in [
        ("proxy", proxy),
        ("app1", app1),
        ("app2", app2),
        ("db", db),
        ("cache", cache),
    ] {
        orch.name_host(name, host);
    }
    let ip = |h| -> std::net::Ipv4Addr { orch.host_ip(h) };
    let (proxy_ip, app1_ip, app2_ip, db_ip, cache_ip) =
        (ip(proxy), ip(app1), ip(app2), ip(db), ip(cache));

    // Backends: MySQL ~30 ms per lookup, Memcached ~0.5 ms.
    orch.deploy_app(
        db,
        Box::new(TierApp::new(3306, Box::new(MysqlBehavior::new(30.0, 11)))),
    );
    orch.deploy_app(
        cache,
        Box::new(TierApp::new(
            11211,
            Box::new(MemcachedBehavior::new(0.5, 12)),
        )),
    );
    // App servers: app2 healthy (80% cache hits), app1 MISCONFIGURED
    // (5% cache hits — nearly everything goes to the slow database).
    orch.deploy_app(
        app1,
        Box::new(TierApp::new(
            80,
            Box::new(AppServerBehavior::new(
                (db_ip, 3306),
                (cache_ip, 11211),
                0.05,
                13,
            )),
        )),
    );
    orch.deploy_app(
        app2,
        Box::new(TierApp::new(
            80,
            Box::new(AppServerBehavior::new(
                (db_ip, 3306),
                (cache_ip, 11211),
                0.80,
                14,
            )),
        )),
    );
    // Proxy round-robins across both app servers.
    let pool = ProxyBehavior::pool_of(&[(app1_ip, 80), (app2_ip, 80)]);
    orch.deploy_app(
        proxy,
        Box::new(TierApp::new(80, Box::new(ProxyBehavior::new(pool)))),
    );
    // Client: 900 requests over ~45s of virtual time (both queries run
    // against live traffic, one after the other).
    let sink = sample_sink();
    let schedule = (0..900u64)
        .map(|i| {
            (
                SimTime::from_nanos(i * 50_000_000),
                Conversation {
                    dst: (proxy_ip, 80),
                    requests: vec![http::build_get(&format!("/page{}", i % 20), "proxy")],
                    tag: "client".into(),
                },
            )
        })
        .collect();
    orch.deploy_app(client, Box::new(ClientApp::new(schedule, sink.clone())));

    // ---- Fig. 10: the symptom — bimodal client response times. ----
    // Warm the system up while the first query runs.
    println!("== Query 1: per-tier response times (Fig. 9) ==");
    println!("PARSE tcp_conn_time FROM * TO app1:80, app2:80, db:3306, cache:11211");
    println!("LIMIT 21s SAMPLE * PROCESS (diff-group-avg: group=dst_ip)\n");
    let report = orch.run_query(
        "PARSE tcp_conn_time FROM * TO app1:80, app2:80, db:3306, cache:11211 \
         LIMIT 21s SAMPLE * PROCESS (diff-group-avg: group=dst_ip)",
        SimDuration::from_secs(21),
    )?;
    let per_tier = report.first().group_values("dst_ip", "avg");
    let name_of = |ip_s: &str| -> &str {
        if ip_s == app1_ip.to_string() {
            "proxy -> AppServer1"
        } else if ip_s == app2_ip.to_string() {
            "proxy -> AppServer2"
        } else if ip_s == db_ip.to_string() {
            "app   -> MySQL"
        } else if ip_s == cache_ip.to_string() {
            "app   -> Memcached"
        } else {
            "other"
        }
    };
    for (ip_s, avg) in &per_tier {
        println!("  {:<22} avg {avg:8.2} ms", name_of(ip_s));
    }
    let a1 = per_tier.get(&app1_ip.to_string()).copied().unwrap_or(0.0);
    let a2 = per_tier.get(&app2_ip.to_string()).copied().unwrap_or(1.0);
    println!(
        "  => AppServer1 is {:.1}x slower than AppServer2\n",
        a1 / a2
    );

    println!("== Fig. 10: client-side response time histogram (bimodal) ==");
    let rts: Vec<f64> = sink.borrow().iter().map(|s| s.rt_ms()).collect();
    for (lo, n) in histogram(&rts, 10.0) {
        println!(
            "  {:>5.0}-{:<5.0} ms | {}",
            lo,
            lo + 10.0,
            "#".repeat(n.min(70))
        );
    }
    println!();

    // ---- Fig. 11: root cause — per-connection throughput. ----
    println!("== Query 2: backend throughput (Fig. 11) ==");
    println!("PARSE tcp_pkt_size FROM app1, app2 TO db:3306, cache:11211");
    println!("LIMIT 20s SAMPLE * PROCESS (group-sum: group=src_ip+dst_ip, value=bytes)\n");
    let report2 = orch.run_query(
        "PARSE tcp_pkt_size FROM app1, app2 TO db:3306, cache:11211 \
         LIMIT 20s SAMPLE * PROCESS (group-sum: group=src_ip+dst_ip, value=bytes)",
        SimDuration::from_secs(20),
    )?;
    let mut rows: Vec<(String, String, f64)> = report2
        .first()
        .tuples
        .iter()
        .filter_map(|t| {
            Some((
                t.get("src_ip")?.to_string(),
                t.get("dst_ip")?.to_string(),
                t.get("sum")?.as_f64()?,
            ))
        })
        .collect();
    rows.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
    // Keep only the request direction (app -> backend); the monitors also
    // report the mirrored response direction.
    rows.retain(|(src, dst, _)| {
        (*src == app1_ip.to_string() || *src == app2_ip.to_string())
            && (*dst == db_ip.to_string() || *dst == cache_ip.to_string())
    });
    let mut app1_db = 0.0;
    let mut app2_db = 0.0;
    for (src, dst, bytes) in &rows {
        let s = if *src == app1_ip.to_string() {
            "AppServer1"
        } else {
            "AppServer2"
        };
        let d = if *dst == db_ip.to_string() {
            "MySQL"
        } else {
            "Memcached"
        };
        println!("  {s} -> {d:<10} {bytes:>10.0} bytes");
        if *dst == db_ip.to_string() {
            if *src == app1_ip.to_string() {
                app1_db = *bytes;
            } else {
                app2_db = *bytes;
            }
        }
    }
    println!(
        "\n  => AppServer1 sends {:.1}x more traffic to MySQL than AppServer2:",
        app1_db / app2_db.max(1.0)
    );
    println!("     AppServer1 is misconfigured and bypasses the cache.");
    Ok(())
}
