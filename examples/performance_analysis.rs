//! Use case §7.2 — Coordinated Performance Analysis (Figs. 12-15).
//!
//! A PHP-style web application executes SQL against a Sakila-like DVD
//! rental database. NetAlytics queries spanning network and application
//! layers break performance down page by page and query by query:
//!
//! * Fig. 12 — response-time histogram for all connections
//!   (`tcp_conn_time` + `histogram`).
//! * Fig. 13 — per-URL response-time CDFs (`tcp_conn_time, http_get` +
//!   `url-cdf`): pages differ by orders of magnitude.
//! * Fig. 14 — a buggy page (`overdue-bug.php`) that *skips* its database
//!   queries completes suspiciously fast — regression testing from the
//!   network.
//! * Fig. 15 — per-SQL-query latency histogram (`mysql_query` +
//!   `histogram`), visible even though many queries share one TCP
//!   connection.
//!
//! Plus the §7.2 overhead comparison: MySQL's general query log costs
//! ~20% throughput, while NetAlytics observes passively at zero cost.
//!
//! Run with: `cargo run --release --example performance_analysis`

use netalytics::Orchestrator;
use netalytics_apps::{
    sample_sink, ClientApp, Conversation, Endpoint, MysqlBehavior, Plan, TierApp, TierBehavior,
};
use netalytics_netsim::{SimDuration, SimTime};
use netalytics_packet::{http, mysql};

/// The web application's pages and the SQL each one runs (the paper's
/// Sakila sample queries). `overdue-bug.php` has the §7.2 bug: a wrong
/// variable name means it never issues its queries.
const PAGES: [(&str, &[&str]); 6] = [
    ("/simple.php", &["SELECT_CHEAP 1"]),
    (
        "/polyglot-actors.php",
        &[
            "SELECT_MED actors",
            "SELECT_CHEAP langs",
            "SELECT_CHEAP names",
        ],
    ),
    (
        "/expensive-films.php",
        &["SELECT_SLOW films", "SELECT_MED inventory"],
    ),
    (
        "/country-max-payments.php",
        &[
            "SELECT_HUGE payments",
            "SELECT_SLOW grouping",
            "SELECT_MED join",
            "SELECT_CHEAP fmt",
        ],
    ),
    (
        "/overdue.php",
        &[
            "SELECT_SLOW overdue",
            "SELECT_MED rentals",
            "SELECT_CHEAP fmt",
        ],
    ),
    ("/overdue-bug.php", &[]),
];

/// The PHP tier: looks up the page's statement list and runs it against
/// MySQL on one persistent connection, then renders.
struct PhpBehavior {
    db: Endpoint,
}

impl TierBehavior for PhpBehavior {
    fn plan(&mut self, request: &[u8], _src: Endpoint, _now_ns: u64) -> Plan {
        let Some(req) = http::parse_request(request) else {
            return Plan::Drop;
        };
        let statements: &[&str] = PAGES
            .iter()
            .find(|(url, _)| *url == req.url)
            .map(|(_, s)| *s)
            .unwrap_or(&[]);
        if statements.is_empty() {
            // The buggy page: renders without querying (minimal latency).
            return Plan::Respond {
                delay: SimDuration::from_millis(2),
                payload: http::build_response(200, b"<html>empty report</html>"),
                close: true,
            };
        }
        Plan::Backend {
            dst: self.db,
            requests: statements.iter().map(|s| mysql::build_query(s)).collect(),
            post_delay: SimDuration::from_millis(1),
            payload: http::build_response(200, b"<html>report</html>"),
            close: true,
        }
    }
}

fn print_histogram(values: &[f64], bucket: f64, unit: &str) {
    let mut buckets = std::collections::BTreeMap::new();
    for &v in values {
        *buckets.entry((v / bucket) as i64).or_insert(0usize) += 1;
    }
    for (b, n) in buckets {
        println!(
            "  {:>6.0}-{:<6.0} {unit} | {}",
            b as f64 * bucket,
            (b + 1) as f64 * bucket,
            "#".repeat(n.min(70))
        );
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut orch = Orchestrator::builder(4).build();
    let (client, web, db) = (0u32, 4u32, 8u32);
    orch.name_host("h1", web);
    orch.name_host("h2", db);
    let (web_ip, db_ip) = (orch.host_ip(web), orch.host_ip(db));

    // MySQL backend: statement classes with distinct costs.
    orch.deploy_app(
        db,
        Box::new(TierApp::new(
            3306,
            Box::new(
                MysqlBehavior::new(3.0, 21)
                    .with_statement("SELECT_CHEAP", 1.0)
                    .with_statement("SELECT_MED", 8.0)
                    .with_statement("SELECT_SLOW", 60.0)
                    .with_statement("SELECT_HUGE", 400.0),
            ),
        )),
    );
    orch.deploy_app(
        web,
        Box::new(TierApp::new(
            80,
            Box::new(PhpBehavior { db: (db_ip, 3306) }),
        )),
    );

    // Client cycles through the pages for ~50 virtual seconds.
    let sink = sample_sink();
    let schedule = (0..600u64)
        .map(|i| {
            let url = PAGES[(i % PAGES.len() as u64) as usize].0;
            (
                SimTime::from_nanos(i * 80_000_000),
                Conversation {
                    dst: (web_ip, 80),
                    requests: vec![http::build_get(url, "h1")],
                    tag: url.to_string(),
                },
            )
        })
        .collect();
    orch.deploy_app(client, Box::new(ClientApp::new(schedule, sink.clone())));

    // ---- Fig. 12: all-connection response-time histogram. ----
    println!("== Fig. 12: web response-time histogram ==");
    println!("PARSE tcp_conn_time FROM * TO h1:80 LIMIT 48s SAMPLE *");
    println!("PROCESS (diff-group: group=dst_ip)\n");
    let r12 = orch.run_query(
        "PARSE tcp_conn_time FROM * TO h1:80 LIMIT 48s SAMPLE * \
         PROCESS (diff-group: group=dst_ip)",
        SimDuration::from_secs(48),
    )?;
    let rts = r12.first().values("diff_ms");
    print_histogram(&rts, 50.0, "ms");
    println!("  ({} connections measured)\n", rts.len());

    // ---- Figs. 13/14: per-URL CDFs (runs against continuing traffic —
    //      extend the client schedule by reusing the earlier samples). ----
    // The client is done; replay a second batch for the joined query.
    let sink2 = sample_sink();
    let t0 = orch.now();
    let schedule2 = (0..600u64)
        .map(|i| {
            let url = PAGES[(i % PAGES.len() as u64) as usize].0;
            (
                t0 + SimDuration::from_nanos(i * 80_000_000),
                Conversation {
                    dst: (web_ip, 80),
                    requests: vec![http::build_get(url, "h1")],
                    tag: url.to_string(),
                },
            )
        })
        .collect();
    orch.deploy_app(
        1,
        Box::new(ClientApp::new(schedule2, sink2).with_port_base(20_000)),
    );

    println!("== Figs. 13/14: per-URL response-time CDFs ==");
    println!("PARSE tcp_conn_time, http_get FROM * TO h1:80 LIMIT 50s SAMPLE *");
    println!("PROCESS (url-cdf)\n");
    let r13 = orch.run_query(
        "PARSE tcp_conn_time, http_get FROM * TO h1:80 LIMIT 50s SAMPLE * \
         PROCESS (url-cdf)",
        SimDuration::from_secs(50),
    )?;
    // Print the median and p95 per URL from the CDF points.
    let mut per_url: std::collections::BTreeMap<String, Vec<(f64, f64)>> = Default::default();
    for t in &r13.first().tuples {
        if let (Some(g), Some(v), Some(p)) = (
            t.get("group").map(ToString::to_string),
            t.get("value").and_then(netalytics_data::Value::as_f64),
            t.get("p").and_then(netalytics_data::Value::as_f64),
        ) {
            per_url.entry(g).or_default().push((v, p));
        }
    }
    println!(
        "  {:<28} {:>10} {:>10} {:>10}",
        "page", "p50 (ms)", "p95 (ms)", "n"
    );
    for (url, points) in &per_url {
        let q = |target: f64| {
            points
                .iter()
                .find(|(_, p)| *p >= target)
                .map(|(v, _)| *v)
                .unwrap_or(f64::NAN)
        };
        println!(
            "  {:<28} {:>10.1} {:>10.1} {:>10}",
            url,
            q(0.5),
            q(0.95),
            points.len()
        );
    }
    let ok = per_url
        .get("/overdue.php")
        .and_then(|p| p.first())
        .map(|(v, _)| *v);
    let bug = per_url
        .get("/overdue-bug.php")
        .and_then(|p| p.last())
        .map(|(v, _)| *v);
    if let (Some(ok), Some(bug)) = (ok, bug) {
        println!("\n  Fig. 14: overdue-bug.php max {bug:.1} ms << overdue.php min {ok:.1} ms");
        println!("  => the page completes *too fast*: its DB queries never ran (the bug).\n");
    }

    // ---- Fig. 15: per-SQL-query latencies. ----
    let sink3 = sample_sink();
    let t0 = orch.now();
    let schedule3 = (0..400u64)
        .map(|i| {
            let url = PAGES[(i % 5) as usize].0; // skip the buggy page
            (
                t0 + SimDuration::from_nanos(i * 80_000_000),
                Conversation {
                    dst: (web_ip, 80),
                    requests: vec![http::build_get(url, "h1")],
                    tag: url.to_string(),
                },
            )
        })
        .collect();
    orch.deploy_app(
        5,
        Box::new(ClientApp::new(schedule3, sink3).with_port_base(30_000)),
    );
    println!("== Fig. 15: per-SQL-query response-time histogram ==");
    println!("PARSE mysql_query FROM * TO h2:3306 LIMIT 34s SAMPLE *");
    println!("PROCESS (histogram: value=rt_ms, bucket=5)\n");
    let r15 = orch.run_query(
        "PARSE mysql_query FROM * TO h2:3306 LIMIT 34s SAMPLE * \
         PROCESS (histogram: value=rt_ms, bucket=5)",
        SimDuration::from_secs(34),
    )?;
    for t in &r15.first().tuples {
        let lo = t
            .get("bucket_lo")
            .and_then(netalytics_data::Value::as_f64)
            .unwrap_or(0.0);
        let n = t
            .get("freq")
            .and_then(netalytics_data::Value::as_u64)
            .unwrap_or(0);
        println!(
            "  {:>6.0}-{:<6.0} ms | {}",
            lo,
            lo + 5.0,
            "#".repeat((n as usize).min(70))
        );
    }

    // ---- §7.2 overhead comparison (text) ----
    println!("\n== §7.2 overhead: query log vs NetAlytics ==");
    let mut plain = MysqlBehavior::new(3.0, 99).with_statement("SELECT_CHEAP", 0.02);
    let mut logged = MysqlBehavior::new(3.0, 99)
        .with_statement("SELECT_CHEAP", 0.02)
        .with_query_log(0.005);
    let qps = |b: &mut MysqlBehavior| {
        let total_ms: f64 = (0..10_000).map(|_| b.service_ms("SELECT_CHEAP 1")).sum();
        10_000.0 / (total_ms / 1e3)
    };
    let (q_plain, q_logged) = (qps(&mut plain), qps(&mut logged));
    println!("  no logging        : {q_plain:>9.0} queries/s");
    println!(
        "  general query log : {q_logged:>9.0} queries/s ({:.0}% drop)",
        100.0 * (1.0 - q_logged / q_plain)
    );
    println!("  NetAlytics        : {q_plain:>9.0} queries/s (passive mirror, no overhead)");
    Ok(())
}
