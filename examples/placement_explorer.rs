//! Placement explorer — inspect what the §4.1 algorithms actually do.
//!
//! Builds a configurable fat-tree workload, runs one composite strategy,
//! and prints the physical placement: which racks host monitors, where
//! the aggregators landed, per-monitor load, and the resulting costs.
//!
//! Usage: `cargo run --release --example placement_explorer -- [k] [strategy] [monitored]`
//! where strategy is `local-random`, `node`, or `network` (default).

use netalytics_placement::{
    generate_workload, place_analytics, place_monitors, placement_cost, DataCenter,
    PlacementParams, Strategy, WorkloadSpec,
};

fn main() {
    let mut args = std::env::args().skip(1);
    let k: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let strategy = match args.next().as_deref() {
        Some("local-random") => Strategy::LocalRandom,
        Some("node") => Strategy::NetalyticsNode,
        _ => Strategy::NetalyticsNetwork,
    };
    let tree = netalytics_netsim::FatTree::new(k);
    let spec = WorkloadSpec {
        total_flows: (tree.num_hosts() as usize) * 200,
        total_rate_bps: u64::from(tree.num_hosts()) * 1_200_000_000,
        tor_p: 0.5,
        pod_p: 0.3,
    };
    let monitored: usize = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(spec.total_flows / 4);
    println!(
        "k={k} ({} hosts), {} flows @ {:.1} Tbps, monitoring {} flows, strategy {}",
        tree.num_hosts(),
        spec.total_flows,
        spec.total_rate_bps as f64 / 1e12,
        monitored,
        strategy.name()
    );

    let all = generate_workload(&tree, &spec, 2016);
    let flows: Vec<_> = all.iter().copied().take(monitored).collect();
    let mut dc = DataCenter::randomized(k, PlacementParams::default(), 2016);
    let (ms, as_) = match strategy {
        Strategy::LocalRandom => (
            netalytics_placement::MonitorStrategy::Random,
            netalytics_placement::AnalyticsStrategy::LocalRandom,
        ),
        Strategy::NetalyticsNode => (
            netalytics_placement::MonitorStrategy::Random,
            netalytics_placement::AnalyticsStrategy::FirstFit,
        ),
        Strategy::NetalyticsNetwork => (
            netalytics_placement::MonitorStrategy::Greedy,
            netalytics_placement::AnalyticsStrategy::Greedy,
        ),
    };
    let mp = place_monitors(&mut dc, &flows, ms, 7);
    let ap = place_analytics(&mut dc, &mp, as_, 7);
    let mut cost = placement_cost(&dc, &flows, &mp, &ap);
    cost.workload_bps_hops = 0.0;
    cost.workload_weighted = 0.0;
    for f in &all {
        cost.workload_bps_hops += f.rate_bps as f64 * f64::from(dc.hops(f.src, f.dst));
        cost.workload_weighted += f.rate_bps as f64 * f64::from(dc.weighted_hops(f.src, f.dst));
    }

    println!("\n== monitors ({}) ==", mp.monitors.len());
    println!(
        "{:>6} {:>6} {:>6} {:>8} {:>12}",
        "#", "host", "rack", "flows", "load (Gbps)"
    );
    for (i, m) in mp.monitors.iter().enumerate().take(20) {
        println!(
            "{:>6} {:>6} {:>6} {:>8} {:>12.2}",
            i,
            m.host,
            m.edge,
            m.flows.len(),
            m.load_bps as f64 / 1e9
        );
    }
    if mp.monitors.len() > 20 {
        println!("   ... {} more", mp.monitors.len() - 20);
    }

    println!("\n== aggregators ({}) ==", ap.aggregators.len());
    println!(
        "{:>6} {:>6} {:>5} {:>10} {:>14} {:>16}",
        "#", "host", "pod", "monitors", "load (Gbps)", "mean dist (hops)"
    );
    for (i, a) in ap.aggregators.iter().enumerate().take(20) {
        let mean_hops: f64 = a
            .monitors
            .iter()
            .map(|&mi| f64::from(dc.hops(mp.monitors[mi].host, a.host)))
            .sum::<f64>()
            / a.monitors.len().max(1) as f64;
        println!(
            "{:>6} {:>6} {:>5} {:>10} {:>14.2} {:>16.2}",
            i,
            a.host,
            dc.tree.pod_of(a.host),
            a.monitors.len(),
            a.load_bps as f64 / 1e9,
            mean_hops
        );
    }
    if ap.aggregators.len() > 20 {
        println!("   ... {} more", ap.aggregators.len() - 20);
    }

    println!("\n== cost ==");
    println!(
        "  extra bandwidth        : {:.4}%",
        cost.extra_bandwidth_pct()
    );
    println!(
        "  weighted extra bandwidth: {:.4}%",
        cost.weighted_extra_bandwidth_pct()
    );
    println!(
        "  processes               : {} ({} monitors + {} aggregators + {} processors)",
        cost.total_processes(),
        cost.monitors,
        cost.aggregators,
        cost.processors
    );
}
