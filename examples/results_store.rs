//! Durable results: replay a query's output from disk after an
//! orchestrator restart.
//!
//! Attaches a disk-backed [`TimeSeriesStore`] to the orchestrator, runs
//! a top-k query, then tears the whole orchestrator down — data center,
//! apps, analytics, everything — and rebuilds it from scratch over the
//! same store directory. The query's committed output is still there:
//! the store replays it from the segmented log, and the store's
//! range/rollup API serves time-windowed slices of it.
//!
//! Run with: `cargo run --release --example results_store`

use std::sync::Arc;

use netalytics::{Orchestrator, ResultSet, SeriesKey, TimeSeriesStore};
use netalytics_apps::{sample_sink, ClientApp, Conversation, StaticHttpBehavior, TierApp};
use netalytics_netsim::{SimDuration, SimTime};
use netalytics_packet::http;

const QUERY: &str = "PARSE http_get FROM * TO web:80 LIMIT 2s SAMPLE * \
                     PROCESS (top-k: k=3, w=500ms, key=url)";

fn deploy_web(orch: &mut Orchestrator) {
    orch.name_host("web", 1);
    let web_ip = orch.host_ip(1);
    orch.deploy_app(
        1,
        Box::new(TierApp::new(80, Box::new(StaticHttpBehavior::new(2.0, 7)))),
    );
    let urls = ["/video/7", "/video/7", "/video/2", "/index"];
    let schedule = (0..200u64)
        .map(|i| {
            (
                SimTime::from_nanos(i * 8_000_000),
                Conversation {
                    dst: (web_ip, 80),
                    requests: vec![http::build_get(urls[(i % 4) as usize], "web")],
                    tag: String::new(),
                },
            )
        })
        .collect();
    orch.deploy_app(0, Box::new(ClientApp::new(schedule, sample_sink())));
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("netalytics-results-{}", std::process::id()));

    // ---- First life: run the query with a durable store attached. ----
    let store = Arc::new(TimeSeriesStore::open(&dir)?);
    let mut orch = Orchestrator::builder(4)
        .result_store(Arc::clone(&store))
        .build();
    deploy_web(&mut orch);

    let q = orch.submit(QUERY)?;
    let cookie = q.cookie();
    let deadline = q.deadline().expect("time-limited query");
    orch.run_reconciling(&q, deadline + SimDuration::from_millis(50))?;
    let report = orch.kill(&q).expect("running query");

    println!("== first life ==");
    println!("  live result tuples : {}", report.first().len());
    let stats = store.stats();
    println!(
        "  store committed    : {} tuples, {} frames, {} bytes on disk",
        stats.tuples, stats.frames, stats.log_bytes
    );

    // ---- Restart: drop everything, reopen the directory cold. ----
    drop(orch);
    drop(store);

    let reopened = Arc::new(TimeSeriesStore::open(&dir)?);

    // The handle from the first life is gone with its orchestrator; the
    // cookie addresses the durable history directly on the store.
    let history = ResultSet::new(reopened.query_history(cookie)?);
    println!("\n== after restart (replayed from disk) ==");
    println!("  history tuples     : {}", history.len());
    assert_eq!(
        history.len(),
        report.first().len(),
        "every committed tuple survived the restart"
    );
    println!("  last window ranking:");
    for (rank, (url, count)) in history.final_ranking().iter().enumerate() {
        println!("    #{} {url}  ({count} requests)", rank + 1);
    }

    // The store's own API slices the same data by series and time.
    let series = SeriesKey::new(cookie, "");
    let latest = reopened.latest(&series).expect("query emitted tuples");
    let half = latest.ts_ns / 2;
    let early = reopened.range(&series, 0, half)?;
    let late = reopened.range(&series, half + 1, u64::MAX)?;
    println!("\n== range queries on series {series} ==");
    println!("  first half         : {} tuples", early.len());
    println!("  second half        : {} tuples", late.len());
    println!(
        "  p95(count) rollup  : {:?}",
        reopened
            .rollup(&series, "count", 0, u64::MAX, 1_000_000_000)?
            .iter()
            .map(|p| p.p95())
            .collect::<Vec<_>>()
    );

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
