//! Use case §7.3 — Real-Time Popularity Monitoring (Figs. 16, 17).
//!
//! Part 1 (Fig. 16): run the top-k topology over a YouTube-like request
//! trace (synthetic Zipf-with-churn stand-in for the Zink et al. trace)
//! and show how even top content's popularity fluctuates over time.
//!
//! Part 2 (Fig. 17): close the loop. A proxy serves video requests from
//! a pool of web servers; NetAlytics monitors HTTP GETs, ranks content
//! in rolling windows, and an Updater bolt grows the pool (replicating
//! hot content) when the top URL's frequency crosses a threshold. When a
//! hotspot starts, the auto-scaler brings two replicas online and load
//! shifts off the overloaded server.
//!
//! Run with: `cargo run --release --example popularity_autoscale`

use std::cell::RefCell;
use std::rc::Rc;

use netalytics::{shared_executor, AggregatorApp, MonitorApp};
use netalytics_apps::{
    generate_trace, sample_sink, ClientApp, Conversation, Endpoint, KvStore, Plan, ProxyBehavior,
    ScalerConfig, StaticHttpBehavior, TierApp, TierBehavior, TraceSpec, UpdaterBolt,
};
use netalytics_data::{DataTuple, Value};
use netalytics_monitor::{Monitor, MonitorConfig, SampleSpec};
use netalytics_netsim::{Engine, LinkSpec, Network, SimTime};
use netalytics_packet::http;
use netalytics_sdn::{FlowMatch, FlowRule};
use netalytics_stream::bolts::{KeyExtractBolt, RankBolt, RollingCountBolt};
use netalytics_stream::{ExecutorMode, Grouping, InlineExecutor, SourceRef, Topology};

fn part1_trace_topk() {
    println!("== Fig. 16: content popularity over time (synthetic trace) ==\n");
    let spec = TraceSpec {
        num_items: 300,
        requests_per_interval: 3_000,
        intervals: 20,
        churn: 0.35,
        ..Default::default()
    };
    let trace = generate_trace(&spec, 2016);
    let topo = netalytics_stream::topologies::build(
        &netalytics_stream::ProcessorSpec::new("top-k")
            .with_arg("k", "10")
            .with_arg("w", "1s")
            .with_arg("key", "url"),
    )
    .expect("catalog topology");
    let mut exec = InlineExecutor::new(&topo);
    // Track the popularity score (count relative to the window max) of
    // the videos that rank #2 and #3 in the first window.
    let mut tracked: Vec<String> = Vec::new();
    let mut series: Vec<Vec<f64>> = vec![Vec::new(), Vec::new()];
    let mut last_window_seen = 0;
    for (i, req) in trace.iter().enumerate() {
        exec.push(DataTuple::new(i as u64, req.ts_ns).with("url", req.url.clone()));
        let window = req.ts_ns / spec.interval_ns;
        if window != last_window_seen {
            last_window_seen = window;
            exec.tick(req.ts_ns);
            let out = exec.take_output();
            let ranked: Vec<(String, u64)> = out
                .iter()
                .filter_map(|t| {
                    Some((
                        t.get("key")?.to_string(),
                        t.get("count").and_then(Value::as_u64)?,
                    ))
                })
                .collect();
            if ranked.is_empty() {
                continue;
            }
            if tracked.is_empty() && ranked.len() > 3 {
                tracked = vec![ranked[1].0.clone(), ranked[2].0.clone()];
                println!(
                    "tracking the initially 2nd/3rd most popular videos: {} and {}\n",
                    tracked[0], tracked[1]
                );
            }
            let max = ranked.iter().map(|(_, c)| *c).max().unwrap_or(1) as f64;
            for (slot, url) in tracked.iter().enumerate() {
                let score = ranked
                    .iter()
                    .find(|(k, _)| k == url)
                    .map(|(_, c)| 100.0 * *c as f64 / max)
                    .unwrap_or(0.0);
                series[slot].push(score);
            }
        }
    }
    println!("time(s)  video-A  video-B   (100 = most popular that window)");
    for (i, (a, b)) in series[0].iter().zip(&series[1]).enumerate() {
        println!("  {:>4}   {:>6.1}   {:>6.1}", i, a, b);
    }
    println!();
}

/// Proxy wrapper that logs (time, backend) per forwarded request so we
/// can plot Fig. 17's per-server request rates.
struct RecordingProxy {
    inner: ProxyBehavior,
    log: Rc<RefCell<Vec<(u64, Endpoint)>>>,
}

impl TierBehavior for RecordingProxy {
    fn plan(&mut self, request: &[u8], src: Endpoint, now_ns: u64) -> Plan {
        let plan = self.inner.plan(request, src, now_ns);
        if let Plan::Backend { dst, .. } = &plan {
            self.log.borrow_mut().push((now_ns, *dst));
        }
        plan
    }
}

#[allow(clippy::too_many_lines)]
fn part2_autoscale() {
    println!("== Fig. 17: top-k-driven dynamic replication ==\n");
    let mut engine = Engine::new(Network::fat_tree(4, LinkSpec::default()));

    // Hosts: clients 0,1; proxy 2; web servers 4 (active), 5, 6 (spares);
    // monitor 3; aggregator 7.
    let (c1, c2, proxy, mon, s1, s2, s3, agg) = (0u32, 1, 2, 3, 4, 5, 6, 7);
    let ips: Vec<std::net::Ipv4Addr> = (0..8).map(|h| engine.network().host_ip(h)).collect();
    let net_ip = |h: u32| ips[h as usize];
    for s in [s1, s2, s3] {
        engine.set_app(
            s,
            Box::new(TierApp::new(
                80,
                Box::new(StaticHttpBehavior::new(1.0, u64::from(s)).with_body_bytes(256)),
            )),
        );
    }
    let pool = ProxyBehavior::pool_of(&[(net_ip(s1), 80)]);
    let proxy_log = Rc::new(RefCell::new(Vec::new()));
    engine.set_app(
        proxy,
        Box::new(TierApp::new(
            80,
            Box::new(RecordingProxy {
                inner: ProxyBehavior::new(pool.clone()),
                log: proxy_log.clone(),
            }),
        )),
    );

    // Client 1: steady background load over 1000 distinct URLs.
    let sink1 = sample_sink();
    let bg: Vec<(SimTime, Conversation)> = (0..2_400u64)
        .map(|i| {
            (
                SimTime::from_nanos(i * 12_500_000), // 80 req/s for 30s
                Conversation {
                    dst: (net_ip(proxy), 80),
                    requests: vec![http::build_get(&format!("/u{}", i % 1000), "p")],
                    tag: "bg".into(),
                },
            )
        })
        .collect();
    engine.set_app(c1, Box::new(ClientApp::new(bg, sink1)));
    // Client 2: after t=10s, hammers 10 hot URLs.
    let sink2 = sample_sink();
    let hot: Vec<(SimTime, Conversation)> = (0..6_000u64)
        .map(|i| {
            (
                SimTime::from_nanos(10_000_000_000 + i * 3_300_000), // ~300 req/s
                Conversation {
                    dst: (net_ip(proxy), 80),
                    requests: vec![http::build_get(&format!("/hot{}", i % 10), "p")],
                    tag: "hot".into(),
                },
            )
        })
        .collect();
    engine.set_app(
        c2,
        Box::new(ClientApp::new(hot, sink2).with_port_base(28_000)),
    );

    // NetAlytics: mirror proxy-bound HTTP at the clients' ToR (edge 0
    // covers both clients) and at the proxy's ToR; one monitor suffices
    // at the proxy's rack since all requests converge there.
    let proxy_edge = engine.network().tree().edge_of_host(proxy);
    engine.install_rule(
        proxy_edge, // edge switch ids equal their index
        FlowRule::mirror(FlowMatch::any().to_host(net_ip(proxy), Some(80)), mon, 1)
            .with_priority(100),
    );

    // Custom topology: the catalog top-k chain plus the Updater bolt.
    let kv = KvStore::shared();
    let mut b = Topology::builder("top-k-autoscale");
    let parse = b.add_bolt("parsing", 1, || Box::new(KeyExtractBolt::new("url")));
    let count = b.add_bolt("counting", 2, || {
        Box::new(RollingCountBolt::new(1_000_000_000))
    });
    let local = b.add_bolt("rank_local", 2, || Box::new(RankBolt::new(10)));
    let global = b.add_bolt("rank_global", 1, || Box::new(RankBolt::new(10)));
    let kv2 = kv.clone();
    let pool2 = pool.clone();
    let spares = vec![(net_ip(s2), 80), (net_ip(s3), 80)];
    let updater = b.add_bolt("updater", 1, move || {
        Box::new(UpdaterBolt::new(
            ScalerConfig {
                // Hot client: ~300 req/s over 10 URLs = ~30 per URL per 1s
                // window; background top URLs count ~1.
                upper_threshold: 25,
                lower_threshold: 2,
                backoff_ns: 3_000_000_000,
            },
            pool2.clone(),
            spares.clone(),
            kv2.clone(),
        ))
    });
    b.wire(SourceRef::Spout, parse, Grouping::Shuffle);
    b.wire(
        SourceRef::Bolt(parse),
        count,
        Grouping::Fields(vec!["key".into()]),
    );
    b.wire(
        SourceRef::Bolt(count),
        local,
        Grouping::Fields(vec!["key".into()]),
    );
    b.wire(SourceRef::Bolt(local), global, Grouping::Global);
    b.wire(SourceRef::Bolt(global), updater, Grouping::Global);
    let topo = b.build().expect("valid topology");
    let executor = shared_executor(&topo, ExecutorMode::Inline);

    let monitor = Monitor::new(MonitorConfig {
        parsers: vec!["http_get".into()],
        sample: SampleSpec::All,
        batch_size: 64,
        preagg: None,
    })
    .expect("stock parser");
    engine.set_app(mon, Box::new(MonitorApp::new(monitor, net_ip(agg), None)));
    engine.set_app(
        agg,
        Box::new(AggregatorApp::new(
            executor,
            vec![net_ip(mon)],
            100_000,
            10_000,
        )),
    );

    engine.run_until(SimTime::from_nanos(30_000_000_000));

    // Fig. 17: requests per server per second.
    let log = proxy_log.borrow();
    let names = [
        (net_ip(s1), "server1"),
        (net_ip(s2), "server2"),
        (net_ip(s3), "server3"),
    ];
    println!("per-server forwarded requests per second:");
    println!("  t(s)   server1  server2  server3");
    for sec in 0..30u64 {
        let lo = sec * 1_000_000_000;
        let hi = lo + 1_000_000_000;
        let mut counts = [0usize; 3];
        for (t, dst) in log.iter() {
            if *t >= lo && *t < hi {
                if let Some(i) = names.iter().position(|(ip, _)| *ip == dst.0) {
                    counts[i] += 1;
                }
            }
        }
        println!(
            "  {:>4}   {:>7}  {:>7}  {:>7}",
            sec, counts[0], counts[1], counts[2]
        );
    }
    println!("\nfinal pool size: {}", pool.lock().len());
    println!("top-k snapshot in KV store:");
    for key in kv.keys_with_prefix("topk:").iter().take(3) {
        println!("  {key} = {}", kv.get(key).unwrap_or_default());
    }
}

fn main() {
    part1_trace_topk();
    part2_autoscale();
}
