//! The production query frontend, driven the way an administrator
//! would drive it: over HTTP.
//!
//! Spawns a [`QueryFrontend`] over an emulated 8-host data center with
//! a web tier and client traffic, then acts as its own HTTP client —
//! POSTs a windowed top-k query, tails live NDJSON results off
//! `/queries/{cookie}/stream`, DELETEs the query, and replays its
//! durable history from `/queries/{cookie}/results`.
//!
//! Run with: `cargo run --release --example frontend`

use std::io::{BufRead, BufReader, Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use netalytics::{Orchestrator, QueryFrontend, Tenant, TenantQuota, TimeSeriesStore};
use netalytics_apps::{sample_sink, ClientApp, Conversation, StaticHttpBehavior, TierApp};
use netalytics_netsim::SimTime;
use netalytics_packet::http;

const QUERY: &str = "PARSE http_get FROM * TO web:80 LIMIT 600s SAMPLE * \
                     PROCESS (top-k: k=3, w=100ms, key=url)";

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> String {
    let mut s = TcpStream::connect(addr).expect("connect");
    write!(
        s,
        "{method} {path} HTTP/1.1\r\nHost: demo\r\nConnection: close\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("request");
    let mut resp = String::new();
    s.read_to_string(&mut resp).expect("response");
    resp.split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or(resp)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An 8-host fabric: web tier on host 1, a client on host 0 issuing
    // a GET every 10 ms of virtual time with a skewed URL mix.
    let builder = Orchestrator::builder(8)
        .result_store(Arc::new(TimeSeriesStore::in_memory()))
        .tenant(Tenant::new("demo-team", TenantQuota::standard(), 120));
    let frontend = QueryFrontend::spawn("127.0.0.1:0", builder, |orch| {
        orch.name_host("web", 1);
        let web_ip = orch.host_ip(1);
        orch.deploy_app(
            1,
            Box::new(TierApp::new(80, Box::new(StaticHttpBehavior::new(1.0, 3)))),
        );
        let urls = ["/video/7", "/video/7", "/video/2", "/index"];
        let schedule = (0..20_000u64)
            .map(|i| {
                (
                    SimTime::from_nanos(i * 10_000_000),
                    Conversation {
                        dst: (web_ip, 80),
                        requests: vec![http::build_get(urls[(i % 4) as usize], "web")],
                        tag: String::new(),
                    },
                )
            })
            .collect();
        orch.deploy_app(0, Box::new(ClientApp::new(schedule, sample_sink())));
    })?;
    let addr = frontend.local_addr();
    println!("frontend listening on http://{addr}");

    // Submit over the wire; the 201 body is the query descriptor.
    let descriptor = request(addr, "POST", "/queries?tenant=demo-team", QUERY);
    println!("\nPOST /queries\n  {descriptor}");
    let idx = descriptor
        .find("\"cookie\":")
        .expect("cookie in descriptor")
        + 9;
    let cookie: u64 = descriptor[idx..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()?;

    // Tail the live stream: every 100 ms virtual window the rank bolt
    // re-emits its top URLs; `?max=6` ends the stream after 6 lines.
    println!("\nGET /queries/{cookie}/stream?max=6");
    let mut s = TcpStream::connect(addr)?;
    write!(
        s,
        "GET /queries/{cookie}/stream?max=6 HTTP/1.1\r\nHost: demo\r\nConnection: close\r\n\r\n"
    )?;
    s.set_read_timeout(Some(Duration::from_secs(60)))?;
    let mut shown = 0;
    let mut line = String::new();
    let mut reader = BufReader::new(s);
    while reader.read_line(&mut line)? > 0 {
        if line.starts_with('{') && line.contains("\"fields\"") {
            println!("  {}", line.trim_end());
            shown += 1;
        }
        line.clear();
    }
    assert!(shown >= 1, "the stream produced live result lines");

    // Kill the query and replay its committed history from the store.
    let summary = request(addr, "DELETE", &format!("/queries/{cookie}"), "");
    println!("\nDELETE /queries/{cookie}\n  {summary}");
    let history = request(addr, "GET", &format!("/queries/{cookie}/results"), "");
    let count = history
        .find("\"count\":")
        .map(|i| {
            history[i + 8..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
        })
        .unwrap_or_default();
    println!("\nGET /queries/{cookie}/results\n  {count} durable tuples survive the kill");

    let (delivered, shed) = frontend.stream_stats(cookie).expect("hub retained");
    println!("\nstream accounting: {delivered} delivered, {shed} shed");
    Ok(())
}
