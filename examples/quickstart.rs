//! Quickstart: monitor a web server's traffic and rank its hottest URLs.
//!
//! Builds a k=4 fat-tree data center, deploys a web server and a client,
//! submits one NetAlytics query and prints the result — the complete
//! Fig. 1 pipeline in ~60 lines.
//!
//! Run with: `cargo run --release --example quickstart`

use netalytics::Orchestrator;
use netalytics_apps::{sample_sink, ClientApp, Conversation, StaticHttpBehavior, TierApp};
use netalytics_netsim::{SimDuration, SimTime};
use netalytics_packet::http;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. An emulated data center: 16 hosts, 10 GbE links.
    let mut orch = Orchestrator::builder(4).build();

    // 2. A web server on host 1 ...
    orch.name_host("web", 1);
    let web_ip = orch.host_ip(1);
    orch.deploy_app(
        1,
        Box::new(TierApp::new(
            80,
            Box::new(StaticHttpBehavior::new(2.0, 7).with_body_bytes(512)),
        )),
    );

    // 3. ... and a client issuing 300 GETs with skewed URL popularity.
    let sink = sample_sink();
    let urls = ["/video/7", "/video/7", "/video/7", "/video/2", "/index"];
    let schedule = (0..300u64)
        .map(|i| {
            (
                SimTime::from_nanos(i * 3_000_000),
                Conversation {
                    dst: (web_ip, 80),
                    requests: vec![http::build_get(urls[(i % 5) as usize], "web")],
                    tag: urls[(i % 5) as usize].to_string(),
                },
            )
        })
        .collect();
    orch.deploy_app(0, Box::new(ClientApp::new(schedule, sink.clone())));

    // 4. One NetAlytics query: mirror traffic to web:80, parse HTTP GETs,
    //    rank URLs in 10s windows. No application changes anywhere.
    let report = orch.run_query(
        "PARSE http_get FROM * TO web:80 LIMIT 2s SAMPLE * \
         PROCESS (top-k: k=3, w=10s, key=url)",
        SimDuration::from_secs(2),
    )?;

    println!("== top-3 URLs (final window) ==");
    for (rank, (url, count)) in report.first().final_ranking().iter().enumerate() {
        println!("  #{} {url}  ({count} requests)", rank + 1);
    }

    let stats = &report.monitor_stats[0];
    println!("\n== monitor ==");
    println!("  packets seen     : {}", stats.packets_seen);
    println!("  tuples emitted   : {}", stats.tuples_out);
    println!(
        "  data reduction   : {:.1}x (raw bytes in / tuple bytes out)",
        stats.reduction_factor().unwrap_or(f64::NAN)
    );
    println!("\n== aggregation ==");
    println!("  tuples in        : {}", report.aggregator.tuples_in);
    println!(
        "  tuples processed : {}",
        report.aggregator.tuples_processed
    );

    let samples = sink.borrow();
    let avg: f64 = samples.iter().map(|s| s.rt_ms()).sum::<f64>() / samples.len() as f64;
    println!("\n== application (client view, untouched by monitoring) ==");
    println!("  conversations    : {}", samples.len());
    println!("  mean response    : {avg:.2} ms");
    Ok(())
}
