//! §4.2 — Feedback-driven sampling, visualized.
//!
//! An undersized analytics deployment cannot keep up with a traffic
//! burst. Without feedback, the aggregation buffers overflow and data is
//! silently lost; with the §4.2 back-pressure loop, the aggregator's
//! watermark signals make the monitor shed flows *early* (before any
//! network or parsing cost), and the sampling rate recovers when the
//! burst passes.
//!
//! Prints the monitor's sampling rate and the aggregation buffer's
//! behaviour over time, for both configurations.
//!
//! Run with: `cargo run --release --example feedback_sampling`

use netalytics::{shared_executor, AggregatorApp, MonitorApp};
use netalytics_monitor::{Monitor, MonitorConfig, SampleSpec};
use netalytics_netsim::{App, Ctx, Engine, LinkSpec, Network, SimDuration, SimTime};
use netalytics_packet::{Packet, TcpFlags};
use netalytics_sdn::{FlowMatch, FlowRule};
use netalytics_stream::{topologies, ExecutorMode, ProcessorSpec};

/// Open-loop generator: `rate` new flows per millisecond between
/// `from_ms` and `to_ms`.
struct Burst {
    dst: std::net::Ipv4Addr,
    rate: u16,
    from_ms: u64,
    to_ms: u64,
    tick: u64,
}

impl App for Burst {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.timer_in(SimDuration::from_millis(self.from_ms), 0);
    }
    fn on_packet(&mut self, _p: &Packet, _ctx: &mut Ctx<'_>) {}
    fn on_timer(&mut self, _t: u64, ctx: &mut Ctx<'_>) {
        for i in 0..self.rate {
            let port = (self.tick as u16).wrapping_mul(self.rate).wrapping_add(i);
            ctx.send(Packet::tcp(
                ctx.ip(),
                1000u16.wrapping_add(port),
                self.dst,
                80,
                TcpFlags::SYN,
                0,
                0,
                b"",
            ));
        }
        self.tick += 1;
        if self.from_ms + self.tick < self.to_ms {
            ctx.timer_in(SimDuration::from_millis(1), 0);
        }
    }
}

struct RunResult {
    /// (t_ms, sampling rate) series.
    rates: Vec<(u64, f64)>,
    processed: u64,
    dropped: u64,
    overloads: u64,
}

fn run(sample: SampleSpec) -> RunResult {
    let mut engine = Engine::new(Network::fat_tree(4, LinkSpec::default()));
    let dst_ip = engine.network().host_ip(1);
    let mon_ip = engine.network().host_ip(2);
    let agg_ip = engine.network().host_ip(3);
    engine.install_rule(
        0,
        FlowRule::mirror(FlowMatch::any().to_host(dst_ip, Some(80)), 2, 1),
    );
    let monitor = Monitor::new(MonitorConfig {
        parsers: vec!["tcp_flow_key".into()],
        sample,
        batch_size: 64,
        preagg: None,
    })
    .expect("stock parser");
    let topo = topologies::build(&ProcessorSpec::new("group-sum")).expect("catalog");
    let executor = shared_executor(&topo, ExecutorMode::Inline);
    // Undersized aggregation: small buffer, slow drain.
    let agg = AggregatorApp::new(executor, vec![mon_ip], 400, 20);
    let agg_handle = agg.handle();
    let mon = MonitorApp::new(monitor, agg_ip, None);
    let mon_handle = mon.handle();
    engine.set_app(
        0,
        Box::new(Burst {
            dst: dst_ip,
            rate: 30,
            from_ms: 100,
            to_ms: 600,
            tick: 0,
        }),
    );
    engine.set_app(2, Box::new(mon));
    engine.set_app(3, Box::new(agg));

    let mut rates = Vec::new();
    for step in 0..40u64 {
        engine.run_until(SimTime::from_nanos((step + 1) * 50_000_000));
        rates.push((step * 50, mon_handle.borrow().sample_rate));
    }
    let a = agg_handle.borrow();
    RunResult {
        rates,
        processed: a.tuples_processed,
        dropped: a.dropped,
        overloads: a.overload_signals,
    }
}

fn main() {
    println!("== §4.2 feedback-driven sampling under a 500ms burst ==\n");
    let auto = run(SampleSpec::Auto);
    let fixed = run(SampleSpec::All);

    println!("monitor sampling rate over time (burst: t=100..600ms):\n");
    println!("{:>8} {:>14} {:>14}", "t (ms)", "SAMPLE auto", "SAMPLE *");
    for ((t, r_auto), (_, r_fixed)) in auto.rates.iter().zip(&fixed.rates) {
        if t % 200 == 0 {
            println!("{t:>8} {r_auto:>14.3} {r_fixed:>14.3}");
        }
    }
    println!("\naggregation-layer outcome:");
    println!(
        "{:>16} {:>12} {:>12} {:>12}",
        "", "processed", "dropped", "overloads"
    );
    println!(
        "{:>16} {:>12} {:>12} {:>12}",
        "SAMPLE auto", auto.processed, auto.dropped, auto.overloads
    );
    println!(
        "{:>16} {:>12} {:>12} {:>12}",
        "SAMPLE *", fixed.processed, fixed.dropped, fixed.overloads
    );
    let auto_loss = auto.dropped as f64 / (auto.dropped + auto.processed).max(1) as f64;
    let fixed_loss = fixed.dropped as f64 / (fixed.dropped + fixed.processed).max(1) as f64;
    println!(
        "\nuncontrolled loss {:.1}% -> with feedback {:.1}%: the monitor sheds",
        100.0 * fixed_loss,
        100.0 * auto_loss
    );
    println!("whole flows at the collector instead of losing arbitrary tuples at");
    println!("a full buffer, and the rate climbs back once the burst ends.");
}
