//! Record model and wire codec shared across the NetAlytics stack.
//!
//! The NetAlytics paper (§3.1) has NFV monitors emit small *data tuples* —
//! an ID (usually the hash of the packet 5-tuple) plus a handful of typed
//! fields — which flow through the aggregation layer (Kafka in the paper,
//! `netalytics-queue` here) into the stream processor (Storm in the paper,
//! `netalytics-stream` here).
//!
//! This crate defines that record model:
//!
//! * [`Value`] — a small dynamically-typed scalar.
//! * [`DataTuple`] — an identified, timestamped bag of named [`Value`]s.
//! * [`TupleBatch`] — the unit monitors ship to aggregators (§3.1 batching).
//! * [`codec`] — a compact, dependency-free binary encoding used on the
//!   emulated wire (stand-in for the JSON/Kafka encoding of §5.2).
//!
//! # Examples
//!
//! ```
//! use netalytics_data::{DataTuple, Value};
//!
//! let t = DataTuple::new(0xfeed, 42)
//!     .with("url", "/index.html")
//!     .with("bytes", 512u64);
//! assert_eq!(t.get("url").and_then(Value::as_str), Some("/index.html"));
//! let bytes = t.encode();
//! let back = DataTuple::decode(&mut bytes.clone()).unwrap();
//! assert_eq!(t, back);
//! ```

pub mod codec;
pub mod columns;
pub mod ring;
pub mod schema;
pub mod transport;
pub mod tuple;
pub mod value;

pub use codec::{CodecError, Decode, Encode};
pub use columns::{BatchBuilder, ColumnBatch, StrColumn, COLUMNAR_MAGIC};
pub use ring::{spsc, Consumer, PopError, Producer, PushError};
pub use schema::{FieldId, Schema};
pub use transport::{BatchSink, CollectSink, SinkClosed};
pub use tuple::{DataTuple, TraceCtx, TupleBatch};
pub use value::Value;
