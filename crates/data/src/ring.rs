//! Bounded single-producer single-consumer ring for the shared-nothing
//! fast lane.
//!
//! Both the columnar monitor pipeline (parser worker → sink drain) and
//! the sharded stream executor (worker → worker mesh) move sealed
//! batches over exactly one producer thread and one consumer thread per
//! edge. That restriction buys a wait-free queue: no locks, no CAS
//! loops — each side owns one index and only *reads* the other's.
//!
//! Layout follows the classic Lamport ring refined with cache-line
//! padding: `head` (consumer-owned) and `tail` (producer-owned) live on
//! separate 64-byte lines so the two threads never false-share, and the
//! capacity is a power of two so wrapping is a mask. Indices are free
//! running (`usize` wrap-around) which distinguishes full from empty
//! without a spare slot.
//!
//! The module compiles against [loom] when built with
//! `RUSTFLAGS="--cfg loom"`; atomics and `UnsafeCell` are swapped for
//! loom's checked versions so the ordering protocol is model-checked
//! (see `crates/data/tests/loom_ring.rs` and the CI `loom` job).
//!
//! [loom]: https://github.com/tokio-rs/loom

use std::mem::MaybeUninit;
use std::sync::Arc;

#[cfg(loom)]
use loom::cell::UnsafeCell;
#[cfg(loom)]
use loom::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
#[cfg(not(loom))]
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// `std` stand-in mirroring `loom::cell::UnsafeCell`'s closure API so
/// the ring body is identical under both builds.
#[cfg(not(loom))]
struct UnsafeCell<T>(std::cell::UnsafeCell<T>);

#[cfg(not(loom))]
impl<T> UnsafeCell<T> {
    fn new(v: T) -> Self {
        UnsafeCell(std::cell::UnsafeCell::new(v))
    }

    fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        f(self.0.get())
    }
}

/// Pads (and aligns) its contents to a 64-byte cache line so the
/// producer- and consumer-owned indices never false-share.
#[repr(align(64))]
struct CachePadded<T>(T);

struct Inner<T> {
    mask: usize,
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Next slot to pop. Written only by the consumer.
    head: CachePadded<AtomicUsize>,
    /// Next slot to push. Written only by the producer.
    tail: CachePadded<AtomicUsize>,
    producer_alive: AtomicBool,
    consumer_alive: AtomicBool,
}

// Safety: values of T cross from producer to consumer thread (Send
// required); the slot protocol guarantees exclusive access to each slot.
unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Sole owner at this point: drop whatever is still in flight.
        let mut h = self.head.0.load(Ordering::Relaxed);
        let t = self.tail.0.load(Ordering::Relaxed);
        while h != t {
            self.slots[h & self.mask].with_mut(|p| unsafe { (*p).assume_init_drop() });
            h = h.wrapping_add(1);
        }
    }
}

/// Error returned by [`Producer::push`]; carries the value back.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The ring is full; retry after the consumer drains.
    Full(T),
    /// The consumer is gone; no push will ever succeed again.
    Disconnected(T),
}

/// Error returned by [`Consumer::pop`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PopError {
    /// The ring is empty right now; retry later.
    Empty,
    /// The ring is empty and the producer is gone: end of stream.
    Disconnected,
}

/// The producing half of an SPSC ring. Not clonable: exactly one
/// producer thread may hold it.
pub struct Producer<T> {
    inner: Arc<Inner<T>>,
}

/// The consuming half of an SPSC ring. Not clonable: exactly one
/// consumer thread may hold it.
pub struct Consumer<T> {
    inner: Arc<Inner<T>>,
}

/// Creates a bounded SPSC ring holding at least `capacity` items
/// (rounded up to the next power of two, minimum 2).
pub fn spsc<T: Send>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let slots: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect();
    let inner = Arc::new(Inner {
        mask: cap - 1,
        slots,
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
        producer_alive: AtomicBool::new(true),
        consumer_alive: AtomicBool::new(true),
    });
    (
        Producer {
            inner: Arc::clone(&inner),
        },
        Consumer { inner },
    )
}

impl<T> Producer<T> {
    /// Capacity of the ring (a power of two).
    pub fn capacity(&self) -> usize {
        self.inner.mask + 1
    }

    /// True if the consumer half has been dropped.
    pub fn is_disconnected(&self) -> bool {
        !self.inner.consumer_alive.load(Ordering::Acquire)
    }

    /// Appends `v` at the tail.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] if the ring has no free slot,
    /// [`PushError::Disconnected`] if the consumer is gone; both return
    /// the value so nothing is lost.
    pub fn push(&mut self, v: T) -> Result<(), PushError<T>> {
        let inner = &*self.inner;
        if !inner.consumer_alive.load(Ordering::Acquire) {
            return Err(PushError::Disconnected(v));
        }
        // We own tail; Relaxed is enough to read our own last store.
        let tail = inner.tail.0.load(Ordering::Relaxed);
        let head = inner.head.0.load(Ordering::Acquire);
        if tail.wrapping_sub(head) > inner.mask {
            return Err(PushError::Full(v));
        }
        inner.slots[tail & inner.mask].with_mut(|p| unsafe { (*p).write(v) });
        // Release publishes the slot write to the consumer's Acquire load.
        inner.tail.0.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }
}

impl<T> Consumer<T> {
    /// Capacity of the ring (a power of two).
    pub fn capacity(&self) -> usize {
        self.inner.mask + 1
    }

    /// Items currently queued (a snapshot; racy by nature).
    pub fn len(&self) -> usize {
        let head = self.inner.head.0.load(Ordering::Relaxed);
        let tail = self.inner.tail.0.load(Ordering::Acquire);
        tail.wrapping_sub(head)
    }

    /// True if the ring is empty right now (a snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes and returns the head item.
    ///
    /// # Errors
    ///
    /// [`PopError::Empty`] if nothing is queued,
    /// [`PopError::Disconnected`] once the ring is empty *and* the
    /// producer is gone (every pushed item is still delivered first).
    pub fn pop(&mut self) -> Result<T, PopError> {
        let inner = &*self.inner;
        // We own head; Relaxed is enough to read our own last store.
        let head = inner.head.0.load(Ordering::Relaxed);
        let mut tail = inner.tail.0.load(Ordering::Acquire);
        if head == tail {
            if inner.producer_alive.load(Ordering::Acquire) {
                return Err(PopError::Empty);
            }
            // The producer died; re-check so pushes that landed before
            // its alive-flag store are not mistaken for end-of-stream.
            tail = inner.tail.0.load(Ordering::Acquire);
            if head == tail {
                return Err(PopError::Disconnected);
            }
        }
        let v = inner.slots[head & inner.mask].with_mut(|p| unsafe { (*p).assume_init_read() });
        // Release hands the emptied slot back to the producer.
        inner.head.0.store(head.wrapping_add(1), Ordering::Release);
        Ok(v)
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        self.inner.producer_alive.store(false, Ordering::Release);
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        self.inner.consumer_alive.store(false, Ordering::Release);
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_within_capacity() {
        let (mut tx, mut rx) = spsc::<u32>(4);
        for i in 0..4 {
            tx.push(i).unwrap();
        }
        assert!(matches!(tx.push(99), Err(PushError::Full(99))));
        for i in 0..4 {
            assert_eq!(rx.pop(), Ok(i));
        }
        assert_eq!(rx.pop(), Err(PopError::Empty));
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let (tx, _rx) = spsc::<u8>(5);
        assert_eq!(tx.capacity(), 8);
        let (tx, _rx) = spsc::<u8>(0);
        assert_eq!(tx.capacity(), 2);
    }

    #[test]
    fn wraparound_preserves_order() {
        let (mut tx, mut rx) = spsc::<u64>(2);
        for i in 0..100u64 {
            tx.push(i).unwrap();
            tx.push(i + 1000).unwrap();
            assert_eq!(rx.pop(), Ok(i));
            assert_eq!(rx.pop(), Ok(i + 1000));
        }
    }

    #[test]
    fn consumer_drop_disconnects_producer() {
        let (mut tx, rx) = spsc::<u8>(2);
        drop(rx);
        assert!(tx.is_disconnected());
        assert!(matches!(tx.push(1), Err(PushError::Disconnected(1))));
    }

    #[test]
    fn producer_drop_delivers_remainder_then_disconnects() {
        let (mut tx, mut rx) = spsc::<u8>(4);
        tx.push(7).unwrap();
        tx.push(8).unwrap();
        drop(tx);
        assert_eq!(rx.pop(), Ok(7));
        assert_eq!(rx.pop(), Ok(8));
        assert_eq!(rx.pop(), Err(PopError::Disconnected));
    }

    #[test]
    fn in_flight_items_are_dropped_with_the_ring() {
        let strong = Arc::new(());
        let (mut tx, rx) = spsc::<Arc<()>>(4);
        tx.push(Arc::clone(&strong)).unwrap();
        tx.push(Arc::clone(&strong)).unwrap();
        assert_eq!(Arc::strong_count(&strong), 3);
        drop(tx);
        drop(rx);
        assert_eq!(Arc::strong_count(&strong), 1);
    }

    #[test]
    fn len_tracks_occupancy() {
        let (mut tx, mut rx) = spsc::<u8>(8);
        assert!(rx.is_empty());
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        assert_eq!(rx.len(), 2);
        rx.pop().unwrap();
        assert_eq!(rx.len(), 1);
    }

    #[test]
    fn thread_pair_moves_everything_in_order() {
        const N: u64 = 100_000;
        let (mut tx, mut rx) = spsc::<u64>(64);
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                let mut v = i;
                loop {
                    match tx.push(v) {
                        Ok(()) => break,
                        Err(PushError::Full(back)) => {
                            v = back;
                            std::hint::spin_loop();
                        }
                        Err(PushError::Disconnected(_)) => panic!("consumer died"),
                    }
                }
            }
        });
        let mut next = 0u64;
        loop {
            match rx.pop() {
                Ok(v) => {
                    assert_eq!(v, next, "FIFO order");
                    next += 1;
                }
                Err(PopError::Empty) => std::hint::spin_loop(),
                Err(PopError::Disconnected) => break,
            }
        }
        assert_eq!(next, N, "no loss");
        producer.join().unwrap();
    }
}
