//! Dynamically typed scalar values carried in [`crate::DataTuple`] fields.

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A scalar value emitted by a parser or produced by an analytics bolt.
///
/// `Value` deliberately stays small: parsers extract a *miniscule* amount of
/// data per packet (paper §3.1), so the universe of field types is a handful
/// of scalars plus short strings/byte blobs.
///
/// # Examples
///
/// ```
/// use netalytics_data::Value;
///
/// let v = Value::from(3.5f64);
/// assert_eq!(v.as_f64(), Some(3.5));
/// assert_eq!(Value::from("GET").to_string(), "GET");
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub enum Value {
    /// Absent / not-applicable.
    #[default]
    Null,
    /// Boolean flag (e.g. "SYN seen").
    Bool(bool),
    /// Signed counter / delta.
    I64(i64),
    /// Unsigned counter, byte count, hash, IP-as-integer.
    U64(u64),
    /// Measurement (latency in ms, rate, ratio).
    F64(f64),
    /// Short text (URL, SQL statement, memcached key).
    Str(String),
    /// Raw bytes (opaque payload slices).
    Bytes(Vec<u8>),
}

impl Value {
    /// Returns the boolean if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the value as an `i64` if it is any integer type that fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            Value::U64(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// Returns the value as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// Returns the value as an `f64`; integers are widened.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            Value::I64(v) => Some(*v as f64),
            Value::U64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Returns the string slice if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the byte slice if this is a [`Value::Bytes`].
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// True if the value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// A stable small integer identifying the variant, used by the codec.
    pub(crate) fn tag(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::I64(_) => 2,
            Value::U64(_) => 3,
            Value::F64(_) => 4,
            Value::Str(_) => 5,
            Value::Bytes(_) => 6,
        }
    }

    /// Total ordering used by ranking bolts (top-k, min, max).
    ///
    /// Values of different types order by variant tag; `F64` uses
    /// [`f64::total_cmp`] so NaN does not poison rankings.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (I64(a), I64(b)) => a.cmp(b),
            (U64(a), U64(b)) => a.cmp(b),
            (F64(a), F64(b)) => a.total_cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Bytes(a), Bytes(b)) => a.cmp(b),
            // Mixed numerics compare as f64 when both sides are numeric.
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x.total_cmp(&y),
                _ => a.tag().cmp(&b.tag()),
            },
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::U64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Str(s) => f.write_str(s),
            Value::Bytes(b) => write!(f, "<{} bytes>", b.len()),
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I64(v as i64)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}
impl From<u16> for Value {
    fn from(v: u16) -> Self {
        Value::U64(v as u64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Bytes(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_variants() {
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::from(-3i64).as_i64(), Some(-3));
        assert_eq!(Value::from(7u64).as_u64(), Some(7));
        assert_eq!(Value::from(7u64).as_i64(), Some(7));
        assert_eq!(Value::from(-1i64).as_u64(), None);
        assert_eq!(Value::from(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::from(vec![1u8, 2]).as_bytes(), Some(&[1u8, 2][..]));
        assert!(Value::Null.is_null());
        assert!(!Value::from(0u64).is_null());
    }

    #[test]
    fn integers_widen_to_f64() {
        assert_eq!(Value::from(4u64).as_f64(), Some(4.0));
        assert_eq!(Value::from(-4i64).as_f64(), Some(-4.0));
    }

    #[test]
    fn total_cmp_orders_numbers() {
        let a = Value::from(1.0);
        let b = Value::from(2u64);
        assert_eq!(a.total_cmp(&b), Ordering::Less);
        assert_eq!(b.total_cmp(&a), Ordering::Greater);
        assert_eq!(a.total_cmp(&a.clone()), Ordering::Equal);
    }

    #[test]
    fn total_cmp_handles_nan() {
        let nan = Value::from(f64::NAN);
        // total ordering: NaN is comparable with itself.
        assert_eq!(nan.total_cmp(&nan.clone()), Ordering::Equal);
    }

    #[test]
    fn display_is_never_empty() {
        for v in [
            Value::Null,
            Value::from(false),
            Value::from(0i64),
            Value::from(0u64),
            Value::from(0.0),
            Value::from(""),
            Value::from(Vec::new()),
        ] {
            // Even the empty string renders as a (possibly empty) str; the
            // debug form is what must be non-empty.
            assert!(!format!("{v:?}").is_empty());
        }
    }

    #[test]
    fn mixed_non_numeric_orders_by_tag() {
        let s = Value::from("a");
        let b = Value::from(true);
        assert_eq!(b.total_cmp(&s), Ordering::Less);
        assert_eq!(s.total_cmp(&b), Ordering::Greater);
    }
}
