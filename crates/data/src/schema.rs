//! Field-name interning: the schema registry behind the columnar path.
//!
//! Row-oriented [`DataTuple`]s carry every field name as a heap `String`,
//! so the hot path pays an allocation and a byte-compare per field
//! lookup. The columnar path replaces names with [`FieldId`]s — small
//! dense integers handed out by a process-wide interner — so batches
//! store one `u32` per column and field lookups are integer compares.
//!
//! Interning is the cold path: parsers and bolts intern their field
//! names once at startup and keep the `FieldId`s. The registry is a
//! `RwLock` over an append-only table; the read lock is only taken when
//! a *new* name is seen (conversion of foreign tuples) and never
//! per-tuple. Names are leaked into `'static` storage on first intern so
//! [`FieldId::name`] can return `&'static str` with no lock on the read
//! side after the id is resolved.
//!
//! [`DataTuple`]: crate::DataTuple
//!
//! # Examples
//!
//! ```
//! use netalytics_data::FieldId;
//!
//! let url = FieldId::intern("url");
//! assert_eq!(url, FieldId::intern("url"));
//! assert_eq!(url.name(), "url");
//! ```

use std::collections::HashMap;
use std::sync::OnceLock;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

/// An interned field name: a dense `u32` handle into the process-wide
/// [`Schema`] registry.
///
/// Ids are stable for the lifetime of the process (the registry is
/// append-only) but are **not** stable across processes — the columnar
/// wire format ships a per-batch name dictionary and re-interns on
/// decode instead of trusting raw ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FieldId(pub u32);

impl FieldId {
    /// Interns `name`, returning its id (allocating one on first sight).
    pub fn intern(name: &str) -> FieldId {
        Schema::global().intern(name)
    }

    /// Resolves the id back to its name.
    ///
    /// # Panics
    ///
    /// Panics if the id was not produced by [`FieldId::intern`] in this
    /// process (e.g. deserialized from another process's table).
    pub fn name(self) -> &'static str {
        Schema::global()
            .resolve(self)
            .expect("FieldId not present in this process's schema registry")
    }
}

impl std::fmt::Display for FieldId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match Schema::global().resolve(*self) {
            Some(name) => f.write_str(name),
            None => write!(f, "field#{}", self.0),
        }
    }
}

/// The process-wide field-name interner.
///
/// One instance exists per process ([`Schema::global`]); all columnar
/// batches share it so a [`FieldId`] means the same name everywhere.
pub struct Schema {
    // cold path: interning happens once per distinct name, never per tuple.
    inner: RwLock<SchemaInner>,
}

#[derive(Default)]
struct SchemaInner {
    names: Vec<&'static str>,
    ids: HashMap<&'static str, u32>,
}

impl Schema {
    /// The process-wide registry.
    pub fn global() -> &'static Schema {
        static GLOBAL: OnceLock<Schema> = OnceLock::new();
        GLOBAL.get_or_init(|| Schema {
            inner: RwLock::new(SchemaInner::default()),
        })
    }

    /// Interns `name`, returning its [`FieldId`].
    pub fn intern(&self, name: &str) -> FieldId {
        // cold path: hit the read lock only when resolving a name to an
        // id; callers cache the returned FieldId.
        // cold path
        if let Some(&id) = self.inner.read().ids.get(name) {
            return FieldId(id);
        }
        let mut w = self.inner.write(); // cold path: first sight of a name
        if let Some(&id) = w.ids.get(name) {
            return FieldId(id);
        }
        // Leak the name so resolution hands out &'static str. Bounded by
        // the number of distinct field names, which is tiny and fixed.
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let id = w.names.len() as u32;
        w.names.push(leaked);
        w.ids.insert(leaked, id);
        FieldId(id)
    }

    /// Returns the name behind `id`, or `None` for a foreign id.
    pub fn resolve(&self, id: FieldId) -> Option<&'static str> {
        self.inner.read().names.get(id.0 as usize).copied() // cold path
    }

    /// Number of names interned so far.
    pub fn len(&self) -> usize {
        self.inner.read().names.len() // cold path
    }

    /// True if nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = FieldId::intern("schema_test_url");
        let b = FieldId::intern("schema_test_url");
        assert_eq!(a, b);
        assert_eq!(a.name(), "schema_test_url");
    }

    #[test]
    fn distinct_names_get_distinct_ids() {
        let a = FieldId::intern("schema_test_a");
        let b = FieldId::intern("schema_test_b");
        assert_ne!(a, b);
        assert_eq!(a.name(), "schema_test_a");
        assert_eq!(b.name(), "schema_test_b");
    }

    #[test]
    fn foreign_id_resolves_to_none() {
        assert_eq!(Schema::global().resolve(FieldId(u32::MAX)), None);
        assert!(FieldId(u32::MAX).to_string().contains("field#"));
    }

    #[test]
    fn display_shows_name() {
        let id = FieldId::intern("schema_test_display");
        assert_eq!(id.to_string(), "schema_test_display");
    }

    #[test]
    fn interning_is_thread_safe() {
        let handles: Vec<_> = (0..4)
            .map(|_| std::thread::spawn(|| FieldId::intern("schema_test_race")))
            .collect();
        let ids: Vec<FieldId> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }
}
