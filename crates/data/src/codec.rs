//! Compact binary encoding for [`DataTuple`]s.
//!
//! The paper's prototype serialized tuples as JSON into Kafka (§5.2,
//! "Output Interface"). We use a small fixed-width binary format instead:
//! it is unambiguous, allocation-light, and keeps the monitor→aggregator
//! traffic accounting (reduction-factor experiments) honest.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! tuple   := id:u64 ts:u64 source:str16 nfields:u16 field*
//! field   := key:str16 value
//! value   := tag:u8 payload
//! str16   := len:u16 bytes
//! bytes32 := len:u32 bytes
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::tuple::{DataTuple, TraceCtx};
use crate::value::Value;

/// Top bit of a batch's count/rows word: set ⇔ a 24-byte [`TraceCtx`]
/// follows the word. Real batches never approach 2^31 entries, so the
/// bit is free, and untraced frames stay byte-identical to the legacy
/// encoding.
pub(crate) const TRACE_CTX_FLAG: u32 = 0x8000_0000;

pub(crate) fn put_trace_ctx(buf: &mut BytesMut, ctx: &TraceCtx) {
    buf.put_u64_le(ctx.cookie);
    buf.put_u64_le(ctx.batch_id);
    buf.put_u64_le(ctx.born_ns);
}

pub(crate) fn take_trace_ctx(buf: &mut Bytes) -> Result<TraceCtx, CodecError> {
    need(buf, 24, "trace context")?;
    Ok(TraceCtx {
        cookie: buf.get_u64_le(),
        batch_id: buf.get_u64_le(),
        born_ns: buf.get_u64_le(),
    })
}

/// Errors produced when decoding malformed or truncated buffers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the value was complete.
    Truncated {
        /// What was being decoded when the data ran out.
        context: &'static str,
    },
    /// The buffer content is structurally invalid.
    Corrupt(&'static str),
    /// A string field held invalid UTF-8.
    InvalidUtf8,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated { context } => {
                write!(f, "truncated buffer while decoding {context}")
            }
            CodecError::Corrupt(what) => write!(f, "corrupt encoding: {what}"),
            CodecError::InvalidUtf8 => write!(f, "invalid UTF-8 in string field"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Types that can append themselves to a byte buffer.
pub trait Encode {
    /// Appends the binary form of `self` to `buf`.
    fn encode(&self, buf: &mut BytesMut);
}

/// Types that can be decoded from the front of a byte buffer.
pub trait Decode: Sized {
    /// Decodes one value from the front of `buf`, advancing it.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] if the buffer is truncated or malformed.
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError>;
}

pub(crate) fn need(buf: &Bytes, n: usize, context: &'static str) -> Result<(), CodecError> {
    if buf.len() < n {
        Err(CodecError::Truncated { context })
    } else {
        Ok(())
    }
}

pub(crate) fn put_u32(buf: &mut BytesMut, v: u32) {
    buf.put_u32_le(v);
}

pub(crate) fn take_u32(buf: &mut Bytes) -> Result<u32, CodecError> {
    need(buf, 4, "u32")?;
    Ok(buf.get_u32_le())
}

pub(crate) fn put_str16(buf: &mut BytesMut, s: &str) {
    let len = s.len().min(u16::MAX as usize);
    buf.put_u16_le(len as u16);
    buf.put_slice(&s.as_bytes()[..len]);
}

pub(crate) fn take_str16(buf: &mut Bytes) -> Result<String, CodecError> {
    need(buf, 2, "string length")?;
    let len = buf.get_u16_le() as usize;
    need(buf, len, "string body")?;
    let raw = buf.split_to(len);
    String::from_utf8(raw.to_vec()).map_err(|_| CodecError::InvalidUtf8)
}

impl Encode for Value {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(self.tag());
        match self {
            Value::Null => {}
            Value::Bool(b) => buf.put_u8(*b as u8),
            Value::I64(v) => buf.put_i64_le(*v),
            Value::U64(v) => buf.put_u64_le(*v),
            Value::F64(v) => buf.put_f64_le(*v),
            Value::Str(s) => {
                let len = s.len().min(u32::MAX as usize);
                buf.put_u32_le(len as u32);
                buf.put_slice(&s.as_bytes()[..len]);
            }
            Value::Bytes(b) => {
                buf.put_u32_le(b.len() as u32);
                buf.put_slice(b);
            }
        }
    }
}

impl Decode for Value {
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        need(buf, 1, "value tag")?;
        let tag = buf.get_u8();
        Ok(match tag {
            0 => Value::Null,
            1 => {
                need(buf, 1, "bool")?;
                match buf.get_u8() {
                    0 => Value::Bool(false),
                    1 => Value::Bool(true),
                    _ => return Err(CodecError::Corrupt("bool byte not 0/1")),
                }
            }
            2 => {
                need(buf, 8, "i64")?;
                Value::I64(buf.get_i64_le())
            }
            3 => {
                need(buf, 8, "u64")?;
                Value::U64(buf.get_u64_le())
            }
            4 => {
                need(buf, 8, "f64")?;
                Value::F64(buf.get_f64_le())
            }
            5 => {
                need(buf, 4, "string length")?;
                let len = buf.get_u32_le() as usize;
                need(buf, len, "string body")?;
                let raw = buf.split_to(len);
                Value::Str(String::from_utf8(raw.to_vec()).map_err(|_| CodecError::InvalidUtf8)?)
            }
            6 => {
                need(buf, 4, "bytes length")?;
                let len = buf.get_u32_le() as usize;
                need(buf, len, "bytes body")?;
                Value::Bytes(buf.split_to(len).to_vec())
            }
            _ => return Err(CodecError::Corrupt("unknown value tag")),
        })
    }
}

impl Encode for DataTuple {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.id);
        buf.put_u64_le(self.ts_ns);
        put_str16(buf, &self.source);
        buf.put_u16_le(self.fields.len().min(u16::MAX as usize) as u16);
        for (k, v) in self.fields.iter().take(u16::MAX as usize) {
            put_str16(buf, k);
            v.encode(buf);
        }
    }
}

impl Decode for DataTuple {
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        need(buf, 16, "tuple header")?;
        let id = buf.get_u64_le();
        let ts_ns = buf.get_u64_le();
        let source = take_str16(buf)?;
        need(buf, 2, "field count")?;
        let n = buf.get_u16_le() as usize;
        let mut fields = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let k = take_str16(buf)?;
            let v = Value::decode(buf)?;
            fields.push((k, v));
        }
        Ok(DataTuple {
            id,
            ts_ns,
            source,
            fields,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) -> Value {
        let mut buf = BytesMut::new();
        v.encode(&mut buf);
        let mut b = buf.freeze();
        let out = Value::decode(&mut b).unwrap();
        assert!(b.is_empty());
        out
    }

    #[test]
    fn value_variants_roundtrip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::I64(i64::MIN),
            Value::U64(u64::MAX),
            Value::F64(-0.0),
            Value::Str("héllo".into()),
            Value::Bytes(vec![0, 255, 3]),
        ] {
            assert_eq!(roundtrip(&v), v);
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut b = Bytes::from_static(&[99]);
        assert_eq!(
            Value::decode(&mut b),
            Err(CodecError::Corrupt("unknown value tag"))
        );
    }

    #[test]
    fn bad_bool_rejected() {
        let mut b = Bytes::from_static(&[1, 7]);
        assert!(Value::decode(&mut b).is_err());
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(5);
        buf.put_u32_le(2);
        buf.put_slice(&[0xff, 0xfe]);
        let mut b = buf.freeze();
        assert_eq!(Value::decode(&mut b), Err(CodecError::InvalidUtf8));
    }

    #[test]
    fn errors_display() {
        let e = CodecError::Truncated { context: "u32" };
        assert!(e.to_string().contains("u32"));
        assert!(!CodecError::InvalidUtf8.to_string().is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_value() -> impl Strategy<Value = Value> {
        prop_oneof![
            Just(Value::Null),
            any::<bool>().prop_map(Value::Bool),
            any::<i64>().prop_map(Value::I64),
            any::<u64>().prop_map(Value::U64),
            any::<f64>().prop_map(Value::F64),
            ".{0,64}".prop_map(Value::Str),
            proptest::collection::vec(any::<u8>(), 0..64).prop_map(Value::Bytes),
        ]
    }

    prop_compose! {
        fn arb_tuple()(
            id in any::<u64>(),
            ts in any::<u64>(),
            source in "[a-z_]{0,16}",
            fields in proptest::collection::vec(("[a-z]{1,8}", arb_value()), 0..8),
        ) -> DataTuple {
            DataTuple { id, ts_ns: ts, source, fields }
        }
    }

    proptest! {
        #[test]
        fn tuple_roundtrips(t in arb_tuple()) {
            let mut b = t.encode();
            let back = DataTuple::decode(&mut b).unwrap();
            // NaN != NaN under PartialEq for F64; compare via encoding.
            prop_assert_eq!(t.encode(), back.encode());
            prop_assert!(b.is_empty());
        }

        #[test]
        fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let mut b = Bytes::from(bytes);
            let _ = DataTuple::decode(&mut b);
        }

        #[test]
        fn batch_roundtrips(ts in proptest::collection::vec(arb_tuple(), 0..16)) {
            let batch = crate::tuple::TupleBatch::from_tuples(ts);
            let mut b = batch.encode();
            let back = crate::tuple::TupleBatch::decode(&mut b).unwrap();
            prop_assert_eq!(batch.encode(), back.encode());
        }
    }
}
