//! Data tuples: the records monitors emit and analytics engines process.

use std::fmt;

use bytes::{Bytes, BytesMut};
use serde::{Deserialize, Serialize};

use crate::codec::{self, CodecError, Decode, Encode};
use crate::value::Value;

/// A single record emitted by a parser (paper §3.1).
///
/// The first element of each tuple is an *ID field*, usually the hash of the
/// packet n-tuple, which lets downstream processors join information from
/// multiple parsers about the same flow. The timestamp is virtual (emulated
/// plane) or wall-clock nanoseconds (threaded plane).
///
/// # Examples
///
/// ```
/// use netalytics_data::{DataTuple, Value};
///
/// let t = DataTuple::new(1, 1_000)
///     .with("dst", "10.0.0.9")
///     .with("rt_ms", 12.5);
/// assert_eq!(t.get("rt_ms").and_then(Value::as_f64), Some(12.5));
/// assert!(t.get("missing").is_none());
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DataTuple {
    /// Flow / aggregation identifier (paper: hash of the packet n-tuple).
    pub id: u64,
    /// Emission timestamp in nanoseconds.
    pub ts_ns: u64,
    /// Name of the parser (or bolt) that produced this tuple.
    pub source: String,
    /// Named fields, in emission order.
    pub fields: Vec<(String, Value)>,
}

impl DataTuple {
    /// Creates an empty tuple with the given flow `id` and timestamp.
    pub fn new(id: u64, ts_ns: u64) -> Self {
        DataTuple {
            id,
            ts_ns,
            source: String::new(),
            fields: Vec::new(),
        }
    }

    /// Sets the producing parser/bolt name (builder style).
    pub fn from_source(mut self, source: impl Into<String>) -> Self {
        self.source = source.into();
        self
    }

    /// Appends a field (builder style).
    ///
    /// This *always* appends, even when a field named `key` already
    /// exists — tuples allow duplicate field names and [`DataTuple::get`]
    /// returns the first match. Use [`DataTuple::set`] for
    /// replace-semantics.
    pub fn with(mut self, key: impl Into<String>, value: impl Into<Value>) -> Self {
        self.fields.push((key.into(), value.into()));
        self
    }

    /// Appends a field in place. Like [`DataTuple::with`], this appends
    /// unconditionally; duplicates are allowed.
    pub fn push(&mut self, key: impl Into<String>, value: impl Into<Value>) {
        self.fields.push((key.into(), value.into()));
    }

    /// Sets a field, replacing the *first* existing field named `key`
    /// (the one [`DataTuple::get`] reads) or appending if absent. Later
    /// duplicates, if any, are left untouched.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<Value>) {
        let key = key.into();
        let value = value.into();
        match self.fields.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => *v = value,
            None => self.fields.push((key, value)),
        }
    }

    /// Returns the first field with the given key, if any.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if the tuple carries no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Approximate encoded size in bytes, used for traffic accounting
    /// (the paper's 10:1 monitor→aggregator reduction factor).
    pub fn wire_size(&self) -> usize {
        let mut n = 8 + 8 + 2 + self.source.len();
        for (k, v) in &self.fields {
            n += 2 + k.len();
            n += 1 + match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::I64(_) | Value::U64(_) | Value::F64(_) => 8,
                Value::Str(s) => 4 + s.len(),
                Value::Bytes(b) => 4 + b.len(),
            };
        }
        n
    }

    /// Encodes the tuple with the compact binary [`codec`].
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_size());
        Encode::encode(self, &mut buf);
        buf.freeze()
    }

    /// Decodes one tuple from the front of `buf`, advancing it.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] if the buffer is truncated or malformed.
    pub fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        Decode::decode(buf)
    }
}

impl fmt::Display for DataTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:#x} @{}ns {}:", self.id, self.ts_ns, self.source)?;
        for (k, v) in &self.fields {
            write!(f, " {k}={v}")?;
        }
        f.write_str("]")
    }
}

/// Query-scoped trace context stamped into a sampled batch at the
/// parser and carried with the batch across every hop — queue, spout,
/// bolt chain, store sink — so each stage can attribute its span to the
/// same end-to-end trace.
///
/// 24 bytes on the wire, `Copy`, and optional: batches without a
/// context encode byte-identically to the legacy format (the presence
/// flag rides the top bit of the count/rows word, which real batch
/// sizes never reach).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TraceCtx {
    /// Query cookie the batch belongs to.
    pub cookie: u64,
    /// Tracer-allocated id, unique per sampled batch within a process.
    pub batch_id: u64,
    /// Capture timestamp of the oldest tuple in the batch, in the clock
    /// domain of the plane that stamped it (virtual or wall ns).
    pub born_ns: u64,
}

/// A batch of tuples shipped from a monitor to the aggregation layer in one
/// message (paper §3.1: "aggregating tuples produced by all parsers and
/// having the monitor send them in batches").
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TupleBatch {
    /// Tuples in this batch, oldest first.
    pub tuples: Vec<DataTuple>,
    /// Trace context, present on the head-sampled subset of batches.
    #[serde(default)]
    pub trace: Option<TraceCtx>,
}

impl TupleBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a batch from a vector of tuples.
    pub fn from_tuples(tuples: Vec<DataTuple>) -> Self {
        TupleBatch {
            tuples,
            trace: None,
        }
    }

    /// Number of tuples in the batch.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if the batch holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Total wire size of the batch payload.
    pub fn wire_size(&self) -> usize {
        let trace = if self.trace.is_some() { 24 } else { 0 };
        4 + trace + self.tuples.iter().map(DataTuple::wire_size).sum::<usize>()
    }

    /// Encodes the whole batch. A trace context, when present, is
    /// flagged in the top bit of the count word and shipped right after
    /// it; untraced batches encode byte-identically to the legacy form.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_size());
        let mut count = self.tuples.len() as u32;
        debug_assert_eq!(count & codec::TRACE_CTX_FLAG, 0, "batch count overflow");
        if self.trace.is_some() {
            count |= codec::TRACE_CTX_FLAG;
        }
        codec::put_u32(&mut buf, count);
        if let Some(ctx) = &self.trace {
            codec::put_trace_ctx(&mut buf, ctx);
        }
        for t in &self.tuples {
            Encode::encode(t, &mut buf);
        }
        buf.freeze()
    }

    /// Decodes a batch previously produced by [`TupleBatch::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] if the buffer is truncated or malformed.
    pub fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        let raw = codec::take_u32(buf)?;
        let trace = if raw & codec::TRACE_CTX_FLAG != 0 {
            Some(codec::take_trace_ctx(buf)?)
        } else {
            None
        };
        let n = (raw & !codec::TRACE_CTX_FLAG) as usize;
        // Guard against absurd counts from corrupt input.
        if n > buf.len() {
            return Err(CodecError::Corrupt("batch count exceeds payload"));
        }
        let mut tuples = Vec::with_capacity(n);
        for _ in 0..n {
            tuples.push(DataTuple::decode(buf)?);
        }
        Ok(TupleBatch { tuples, trace })
    }

    /// Appends one tuple to the batch.
    pub fn push(&mut self, tuple: DataTuple) {
        self.tuples.push(tuple);
    }

    /// Borrowing iterator over the tuples.
    pub fn iter(&self) -> std::slice::Iter<'_, DataTuple> {
        self.tuples.iter()
    }

    /// Takes the current contents (tuples and trace context), leaving the
    /// batch empty (its capacity is retained so producers can keep filling
    /// the same allocation).
    pub fn take(&mut self) -> TupleBatch {
        TupleBatch {
            tuples: std::mem::take(&mut self.tuples),
            trace: self.trace.take(),
        }
    }

    /// Consumes the batch and returns the raw tuple vector.
    pub fn into_tuples(self) -> Vec<DataTuple> {
        self.tuples
    }

    /// Splits the batch into chunks of at most `max` tuples.
    ///
    /// The last chunk holds the remainder; an empty batch yields no chunks.
    /// Used where a transport caps its message size (UDP framing, queue
    /// segment limits).
    ///
    /// # Examples
    ///
    /// ```
    /// use netalytics_data::{DataTuple, TupleBatch};
    ///
    /// let batch: TupleBatch = (0..5).map(|i| DataTuple::new(i, 0)).collect();
    /// let sizes: Vec<usize> = batch.split_into(2).map(|c| c.len()).collect();
    /// assert_eq!(sizes, [2, 2, 1]);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `max` is zero.
    pub fn split_into(self, max: usize) -> impl Iterator<Item = TupleBatch> {
        assert!(max > 0, "chunk size must be positive");
        let mut rest = self.tuples;
        // The first chunk inherits the trace context; duplicating it
        // would double-count the batch in every downstream stage.
        let mut trace = self.trace;
        std::iter::from_fn(move || {
            if rest.is_empty() {
                return None;
            }
            let tail = rest.split_off(rest.len().min(max));
            let head = std::mem::replace(&mut rest, tail);
            Some(TupleBatch {
                tuples: head,
                trace: trace.take(),
            })
        })
    }
}

impl FromIterator<DataTuple> for TupleBatch {
    fn from_iter<I: IntoIterator<Item = DataTuple>>(iter: I) -> Self {
        TupleBatch {
            tuples: iter.into_iter().collect(),
            trace: None,
        }
    }
}

impl Extend<DataTuple> for TupleBatch {
    fn extend<I: IntoIterator<Item = DataTuple>>(&mut self, iter: I) {
        self.tuples.extend(iter);
    }
}

impl IntoIterator for TupleBatch {
    type Item = DataTuple;
    type IntoIter = std::vec::IntoIter<DataTuple>;

    fn into_iter(self) -> Self::IntoIter {
        self.tuples.into_iter()
    }
}

impl<'a> IntoIterator for &'a TupleBatch {
    type Item = &'a DataTuple;
    type IntoIter = std::slice::Iter<'a, DataTuple>;

    fn into_iter(self) -> Self::IntoIter {
        self.tuples.iter()
    }
}

impl From<Vec<DataTuple>> for TupleBatch {
    fn from(tuples: Vec<DataTuple>) -> Self {
        TupleBatch::from_tuples(tuples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DataTuple {
        DataTuple::new(0xabcd, 99)
            .from_source("http_get")
            .with("url", "/a.html")
            .with("size", 128u64)
            .with("rt", 1.5)
            .with("syn", true)
            .with("delta", -2i64)
            .with("blob", vec![1u8, 2, 3])
            .with("none", Value::Null)
    }

    #[test]
    fn get_returns_first_match() {
        let mut t = sample();
        t.push("url", "/second");
        assert_eq!(t.get("url").and_then(Value::as_str), Some("/a.html"));
    }

    #[test]
    fn with_appends_duplicates_but_set_replaces() {
        // Regression: `with` keeps append semantics (duplicates pile up)
        // while `set` replaces the first occurrence in place.
        let mut t = DataTuple::new(1, 0).with("url", "/a").with("url", "/b");
        assert_eq!(t.len(), 2, "with() appends even for duplicate keys");
        t.set("url", "/c");
        assert_eq!(t.len(), 2, "set() replaces instead of appending");
        assert_eq!(t.get("url").and_then(Value::as_str), Some("/c"));
        assert_eq!(
            t.fields[1].1.as_str(),
            Some("/b"),
            "later duplicates untouched"
        );
        t.set("bytes", 42u64);
        assert_eq!(t.len(), 3, "set() appends when the key is absent");
        assert_eq!(t.get("bytes").and_then(Value::as_u64), Some(42));
    }

    #[test]
    fn roundtrip_encode_decode() {
        let t = sample();
        let mut b = t.encode();
        let back = DataTuple::decode(&mut b).unwrap();
        assert_eq!(t, back);
        assert!(b.is_empty(), "decode must consume the whole tuple");
    }

    #[test]
    fn batch_roundtrip() {
        let batch: TupleBatch = (0..17)
            .map(|i| DataTuple::new(i, i * 10).with("n", i))
            .collect();
        let mut b = batch.encode();
        let back = TupleBatch::decode(&mut b).unwrap();
        assert_eq!(batch, back);
    }

    #[test]
    fn truncated_buffer_is_error() {
        let t = sample();
        let enc = t.encode();
        for cut in 0..enc.len() {
            let mut b = enc.slice(..cut);
            assert!(
                DataTuple::decode(&mut b).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn corrupt_batch_count_is_error() {
        let mut buf = BytesMut::new();
        codec::put_u32(&mut buf, u32::MAX);
        let mut b = buf.freeze();
        assert!(TupleBatch::decode(&mut b).is_err());
    }

    #[test]
    fn wire_size_tracks_encoded_size() {
        let t = sample();
        let enc = t.encode();
        // wire_size is an estimate; it must be within 25% of reality and
        // never smaller than half.
        let est = t.wire_size();
        assert!(est >= enc.len() / 2 && est <= enc.len() * 2);
    }

    #[test]
    fn split_into_covers_all_tuples_in_order() {
        let batch: TupleBatch = (0..10).map(|i| DataTuple::new(i, 0)).collect();
        let chunks: Vec<TupleBatch> = batch.clone().split_into(3).collect();
        assert_eq!(
            chunks.iter().map(TupleBatch::len).collect::<Vec<_>>(),
            [3, 3, 3, 1]
        );
        let rejoined: Vec<DataTuple> = chunks.into_iter().flatten().collect();
        assert_eq!(rejoined, batch.tuples);
        assert_eq!(TupleBatch::new().split_into(4).count(), 0);
    }

    #[test]
    fn take_empties_but_preserves_contents() {
        let mut batch: TupleBatch = (0..4).map(|i| DataTuple::new(i, 0)).collect();
        let taken = batch.take();
        assert_eq!(taken.len(), 4);
        assert!(batch.is_empty());
    }

    fn ctx() -> TraceCtx {
        TraceCtx {
            cookie: 7,
            batch_id: 42,
            born_ns: 1_000,
        }
    }

    #[test]
    fn traced_batch_roundtrips() {
        let mut batch: TupleBatch = (0..3).map(|i| DataTuple::new(i, i * 5)).collect();
        batch.trace = Some(ctx());
        let mut b = batch.encode();
        let back = TupleBatch::decode(&mut b).unwrap();
        assert_eq!(back.trace, Some(ctx()));
        assert_eq!(back, batch);
        assert!(b.is_empty());
    }

    #[test]
    fn untraced_encoding_is_byte_identical_to_legacy() {
        // A batch without a trace context must encode exactly as before
        // the flag bit existed: old decoders keep working on new frames.
        let batch: TupleBatch = (0..2).map(|i| DataTuple::new(i, 0)).collect();
        let enc = batch.encode();
        assert_eq!(&enc[..4], &(2u32).to_le_bytes());
        assert_eq!(enc.len(), 4 + 2 * (8 + 8 + 2 + 2));
    }

    #[test]
    fn traced_empty_buffer_after_flag_is_error() {
        let mut buf = BytesMut::new();
        codec::put_u32(&mut buf, codec::TRACE_CTX_FLAG | 1);
        let mut b = buf.freeze();
        assert!(TupleBatch::decode(&mut b).is_err(), "missing trace context");
    }

    #[test]
    fn take_and_split_move_the_trace_context_once() {
        let mut batch: TupleBatch = (0..5).map(|i| DataTuple::new(i, 0)).collect();
        batch.trace = Some(ctx());
        let taken = batch.take();
        assert_eq!(taken.trace, Some(ctx()));
        assert_eq!(batch.trace, None, "take() moves the context out");
        let chunks: Vec<TupleBatch> = taken.split_into(2).collect();
        assert_eq!(chunks[0].trace, Some(ctx()));
        assert!(
            chunks[1..].iter().all(|c| c.trace.is_none()),
            "only the first chunk keeps the context"
        );
    }

    #[test]
    fn display_contains_fields() {
        let s = sample().to_string();
        assert!(s.contains("url=/a.html"));
        assert!(s.contains("http_get"));
    }
}
