//! The batch hand-off contract between pipeline stages.
//!
//! Every seam in the data plane — monitor → queue, queue → stream, stream →
//! external consumers — moves whole [`TupleBatch`]es, never individual
//! tuples. A producer holds some `dyn BatchSink` and calls [`BatchSink::ship`]
//! once per batch; the sink either accepts the batch (enqueuing, encoding, or
//! forwarding it as one unit) or reports that the downstream side is gone.
//!
//! Implementations must be cheap to share across producer threads: parser
//! workers in `netalytics-monitor` all ship into one sink concurrently, so
//! `ship` takes `&self` and implementors handle their own synchronization.

use parking_lot::Mutex;

use crate::columns::ColumnBatch;
use crate::tuple::TupleBatch;

/// Error returned when a sink's downstream consumer has disconnected.
///
/// Carries the batch back to the caller so no tuples are silently lost; the
/// producer decides whether to retry elsewhere, count the drop, or stop.
#[derive(Debug, Clone, PartialEq)]
pub struct SinkClosed(pub TupleBatch);

impl std::fmt::Display for SinkClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "batch sink closed ({} tuples returned to producer)",
            self.0.len()
        )
    }
}

impl std::error::Error for SinkClosed {}

/// A destination that accepts tuple batches as indivisible units.
///
/// This is the one transport abstraction shared by all layers: the monitor
/// pipeline ships into a queue-backed sink, benchmarks ship into channel
/// sinks, and tests ship into in-memory collectors.
pub trait BatchSink: Send + Sync {
    /// Hands one batch downstream.
    ///
    /// Empty batches are accepted and may be dropped by the implementation.
    ///
    /// # Errors
    ///
    /// Returns [`SinkClosed`] with the rejected batch if the downstream
    /// consumer has disconnected and will never accept more data.
    fn ship(&self, batch: TupleBatch) -> Result<(), SinkClosed>;

    /// Hands one sealed columnar batch downstream.
    ///
    /// The default bridges to [`BatchSink::ship`] by converting to rows,
    /// so every existing sink accepts columnar producers unchanged;
    /// columnar-aware sinks (the queue writer) override this to keep the
    /// batch in column form end to end.
    ///
    /// # Errors
    ///
    /// Returns [`SinkClosed`] (carrying the row form of the rejected
    /// batch) if the downstream consumer has disconnected.
    fn ship_columns(&self, columns: ColumnBatch) -> Result<(), SinkClosed> {
        self.ship(columns.to_batch())
    }
}

/// A sink that appends batches to a shared vector, for tests and examples.
#[derive(Default)]
pub struct CollectSink {
    batches: Mutex<Vec<TupleBatch>>,
}

impl CollectSink {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes every batch shipped so far.
    pub fn drain(&self) -> Vec<TupleBatch> {
        std::mem::take(&mut self.batches.lock()) // per-batch lock
    }

    /// Total number of tuples shipped so far.
    pub fn tuple_count(&self) -> usize {
        self.batches.lock().iter().map(TupleBatch::len).sum() // per-batch lock
    }
}

impl BatchSink for CollectSink {
    fn ship(&self, batch: TupleBatch) -> Result<(), SinkClosed> {
        self.batches.lock().push(batch); // per-batch lock
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::DataTuple;

    #[test]
    fn collect_sink_accumulates_batches() {
        let sink = CollectSink::new();
        sink.ship(TupleBatch::from_tuples(vec![DataTuple::new(1, 0)]))
            .unwrap();
        sink.ship(TupleBatch::from_tuples(vec![
            DataTuple::new(2, 0),
            DataTuple::new(3, 0),
        ]))
        .unwrap();
        assert_eq!(sink.tuple_count(), 3);
        let drained = sink.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(sink.tuple_count(), 0);
    }

    #[test]
    fn ship_columns_bridges_to_row_sinks_by_default() {
        let sink = CollectSink::new();
        let batch = TupleBatch::from_tuples(vec![
            DataTuple::new(1, 5).with("url", "/a"),
            DataTuple::new(2, 6).with("url", "/b"),
        ]);
        sink.ship_columns(ColumnBatch::from_batch(&batch)).unwrap();
        let drained = sink.drain();
        assert_eq!(drained, vec![batch], "lossless row bridge");
    }

    #[test]
    fn sink_closed_reports_batch_size() {
        let e = SinkClosed(TupleBatch::from_tuples(vec![DataTuple::new(9, 9)]));
        assert!(e.to_string().contains("1 tuples"));
    }
}
