//! Columnar tuple batches: the hot-path record layout.
//!
//! A [`TupleBatch`] stores each record as a heap `String` source plus a
//! `Vec<(String, Value)>` — two allocations per field before a bolt ever
//! sees the data. A [`ColumnBatch`] stores the same records transposed:
//! one typed column per distinct `(field, type)` pair (`u64`/`i64`/`f64`
//! vectors, bit-packed bools, string/byte arenas), a presence bitmap per
//! column, and per-row *layouts* (deduplicated field sequences) that
//! make the transform lossless — field order, duplicate field names,
//! explicit nulls, and mixed types per name all survive a round trip.
//!
//! Field names are interned through the process-wide [`Schema`]
//! registry ([`FieldId`]); batches carry `u32` handles, not strings.
//! The wire format ships a per-batch name dictionary and re-interns on
//! decode, so frames are portable across processes.
//!
//! Frames open with a magic word `>= 0xFFFF_0000`. A legacy
//! [`TupleBatch::decode`] reads that as an absurd tuple count and
//! rejects the frame, while [`ColumnBatch::is_columnar_frame`] detects
//! it in O(1) — consumers on mixed topics dispatch on the first four
//! bytes.
//!
//! [`Schema`]: crate::Schema

use std::collections::HashMap;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::codec::{
    need, put_str16, put_trace_ctx, put_u32, take_str16, take_trace_ctx, take_u32, CodecError,
    TRACE_CTX_FLAG,
};
use crate::schema::FieldId;
use crate::tuple::{DataTuple, TraceCtx, TupleBatch};
use crate::value::Value;

/// First four wire bytes of a columnar frame (little-endian). Any value
/// `>= 0xFFFF_0000` is unreachable as a legacy batch tuple count, which
/// is what makes the two framings distinguishable.
pub const COLUMNAR_MAGIC: u32 = 0xFFFF_C01A;
const COLUMNAR_VERSION: u8 = 2;

/// Arena wire forms for string/bytes columns: `encode` picks whichever
/// is smaller per column.
const ARENA_PLAIN: u8 = 0;
const ARENA_DICT: u8 = 1;

/// Distinct-value ceiling for the dictionary scan. Past this the
/// column is effectively unique-valued and the scan stops paying.
const ARENA_DICT_MAX: usize = 4096;

/// One deduplicated per-row field sequence.
#[derive(Debug, Clone, PartialEq)]
struct Layout {
    /// `(field, value tag)` per position, in emission order.
    fields: Vec<(FieldId, u8)>,
    /// Column index backing each position.
    cols: Vec<u32>,
}

/// Typed storage of one column. Values are dense: entry `k` belongs to
/// the `k`-th row whose presence bit is set.
#[derive(Debug, Clone, PartialEq)]
enum ColumnData {
    /// Explicit nulls: presence bits only.
    Null(usize),
    Bool(Vec<bool>),
    I64(Vec<i64>),
    U64(Vec<u64>),
    F64(Vec<f64>),
    Str {
        offsets: Vec<u32>,
        bytes: Vec<u8>,
    },
    Bytes {
        offsets: Vec<u32>,
        bytes: Vec<u8>,
    },
}

impl ColumnData {
    fn for_tag(tag: u8) -> ColumnData {
        match tag {
            0 => ColumnData::Null(0),
            1 => ColumnData::Bool(Vec::new()),
            2 => ColumnData::I64(Vec::new()),
            3 => ColumnData::U64(Vec::new()),
            4 => ColumnData::F64(Vec::new()),
            5 => ColumnData::Str {
                offsets: Vec::new(),
                bytes: Vec::new(),
            },
            6 => ColumnData::Bytes {
                offsets: Vec::new(),
                bytes: Vec::new(),
            },
            _ => unreachable!("value tags are 0..=6"),
        }
    }

    fn len(&self) -> usize {
        match self {
            ColumnData::Null(n) => *n,
            ColumnData::Bool(v) => v.len(),
            ColumnData::I64(v) => v.len(),
            ColumnData::U64(v) => v.len(),
            ColumnData::F64(v) => v.len(),
            ColumnData::Str { offsets, .. } | ColumnData::Bytes { offsets, .. } => offsets.len(),
        }
    }

    /// Reconstructs the `k`-th stored value as an owned [`Value`].
    fn value_at(&self, k: usize) -> Value {
        fn slice<'a>(offsets: &[u32], bytes: &'a [u8], k: usize) -> &'a [u8] {
            let start = if k == 0 { 0 } else { offsets[k - 1] as usize };
            &bytes[start..offsets[k] as usize]
        }
        match self {
            ColumnData::Null(_) => Value::Null,
            ColumnData::Bool(v) => Value::Bool(v[k]),
            ColumnData::I64(v) => Value::I64(v[k]),
            ColumnData::U64(v) => Value::U64(v[k]),
            ColumnData::F64(v) => Value::F64(v[k]),
            ColumnData::Str { offsets, bytes } => Value::Str(
                std::str::from_utf8(slice(offsets, bytes, k))
                    .expect("column arena holds validated UTF-8")
                    .to_owned(),
            ),
            ColumnData::Bytes { offsets, bytes } => Value::Bytes(slice(offsets, bytes, k).to_vec()),
        }
    }
}

/// One typed column plus the bitmap of rows it covers.
#[derive(Debug, Clone, PartialEq)]
struct Column {
    field: FieldId,
    tag: u8,
    /// Bit `r` set ⇔ row `r` holds a value in this column.
    presence: Vec<u64>,
    data: ColumnData,
}

/// FNV-1a: a tiny non-DoS-resistant hash. The dictionary scan hashes
/// attacker-free short keys on the encode hot path, where SipHash's
/// per-byte cost is the wrong trade.
struct Fnv(u64);

impl std::hash::Hasher for Fnv {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }
}

struct FnvBuild;

impl std::hash::BuildHasher for FnvBuild {
    type Hasher = Fnv;
    fn build_hasher(&self) -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
}

/// Writes a string/bytes arena, choosing per column between the plain
/// form (per-value offsets + concatenated bytes) and a dictionary form
/// (each distinct value once + per-value `u16` indices) — whichever is
/// smaller on the wire. Monitoring streams are heavily repetitive (one
/// URL, one user-agent, one status string across a whole batch), so the
/// dictionary routinely collapses a column to ~2 bytes per row.
fn put_arena(buf: &mut BytesMut, offsets: &[u32], bytes: &[u8]) {
    let n = offsets.len();
    let plain_cost = 4 * n + 4 + bytes.len();
    let mut dict: Vec<&[u8]> = Vec::new();
    let mut index: HashMap<&[u8], u16, FnvBuild> = HashMap::with_hasher(FnvBuild);
    let mut ids: Vec<u16> = Vec::with_capacity(n);
    let mut dict_bytes = 0usize;
    let mut viable = n >= 8; // tiny columns: not worth the scan
    let mut start = 0usize;
    // Homogeneous batches dominate the hot path, so runs of one value
    // bypass the map with a single slice compare. (per-batch scan)
    let mut last: Option<(&[u8], u16)> = None;
    for &end in offsets {
        if !viable {
            break;
        }
        let v = &bytes[start..end as usize];
        start = end as usize;
        if v.len() > u16::MAX as usize {
            viable = false;
            break;
        }
        let id = match last {
            Some((lv, lid)) if lv == v => lid,
            _ => {
                let next = dict.len() as u16;
                *index.entry(v).or_insert_with(|| {
                    dict_bytes += 2 + v.len();
                    dict.push(v);
                    next
                })
            }
        };
        last = Some((v, id));
        ids.push(id);
        if dict.len() > ARENA_DICT_MAX {
            // Effectively unique-valued: the dictionary can't pay.
            viable = false;
            break;
        }
    }
    let dict_cost = 2 + dict_bytes + 2 * n;
    if viable && dict_cost < plain_cost {
        buf.put_u8(ARENA_DICT);
        buf.put_u16_le(dict.len() as u16);
        for v in &dict {
            buf.put_u16_le(v.len() as u16);
            buf.put_slice(v);
        }
        for &id in &ids {
            buf.put_u16_le(id);
        }
    } else {
        buf.put_u8(ARENA_PLAIN);
        for &o in offsets {
            put_u32(buf, o);
        }
        assert!(bytes.len() <= u32::MAX as usize, "columnar arena limit");
        put_u32(buf, bytes.len() as u32);
        buf.put_slice(bytes);
    }
}

fn set_bit(bits: &mut Vec<u64>, row: usize) {
    let word = row / 64;
    if bits.len() <= word {
        bits.resize(word + 1, 0);
    }
    bits[word] |= 1u64 << (row % 64);
}

fn popcount(bits: &[u64]) -> usize {
    bits.iter().map(|w| w.count_ones() as usize).sum()
}

/// A sealed batch of records in columnar form.
///
/// Build one with [`BatchBuilder`] (parsers write columns directly) or
/// convert from rows with [`ColumnBatch::from_batch`]; both directions
/// of the `TupleBatch` ⇄ `ColumnBatch` conversion are lossless.
///
/// # Examples
///
/// ```
/// use netalytics_data::{BatchBuilder, ColumnBatch, FieldId};
///
/// let bytes = FieldId::intern("bytes");
/// let mut b = BatchBuilder::new();
/// for i in 0..3u64 {
///     b.begin_row(i, i * 10, "http_get");
///     b.field_u64(bytes, 512 + i);
///     b.end_row();
/// }
/// let cols = b.finish();
/// assert_eq!(cols.u64s(bytes), Some(&[512, 513, 514][..]));
/// let mut frame = cols.encode();
/// let back = ColumnBatch::decode(&mut frame).unwrap();
/// assert_eq!(back.to_batch(), cols.to_batch());
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ColumnBatch {
    rows: usize,
    ids: Vec<u64>,
    ts: Vec<u64>,
    /// Per-row index into `source_names`.
    sources: Vec<u32>,
    source_names: Vec<String>,
    layouts: Vec<Layout>,
    /// Per-row index into `layouts`.
    row_layouts: Vec<u32>,
    columns: Vec<Column>,
    /// Trace context, present on the head-sampled subset of batches.
    trace: Option<TraceCtx>,
}

impl ColumnBatch {
    /// Number of records.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of records (alias mirroring [`TupleBatch::len`]).
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True if the batch holds no records.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Flow ids, one per row (zero-copy).
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// Timestamps in nanoseconds, one per row (zero-copy).
    pub fn timestamps(&self) -> &[u64] {
        &self.ts
    }

    /// The trace context carried by this batch, if it was sampled.
    pub fn trace(&self) -> Option<TraceCtx> {
        self.trace
    }

    /// Stamps (or clears) the trace context.
    pub fn set_trace(&mut self, trace: Option<TraceCtx>) {
        self.trace = trace;
    }

    fn find(&self, field: FieldId, tag: u8) -> Option<&Column> {
        self.columns
            .iter()
            .find(|c| c.field == field && c.tag == tag)
    }

    /// The dense `u64` values of `field` (first occurrence), in row
    /// order over the rows where the field is present. Zero-copy.
    pub fn u64s(&self, field: FieldId) -> Option<&[u64]> {
        match &self.find(field, 3)?.data {
            ColumnData::U64(v) => Some(v),
            _ => None,
        }
    }

    /// The dense `i64` values of `field`, as [`ColumnBatch::u64s`].
    pub fn i64s(&self, field: FieldId) -> Option<&[i64]> {
        match &self.find(field, 2)?.data {
            ColumnData::I64(v) => Some(v),
            _ => None,
        }
    }

    /// The dense `f64` values of `field`, as [`ColumnBatch::u64s`].
    pub fn f64s(&self, field: FieldId) -> Option<&[f64]> {
        match &self.find(field, 4)?.data {
            ColumnData::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The string values of `field` as a zero-copy arena view.
    pub fn strs(&self, field: FieldId) -> Option<StrColumn<'_>> {
        match &self.find(field, 5)?.data {
            ColumnData::Str { offsets, bytes } => Some(StrColumn { offsets, bytes }),
            _ => None,
        }
    }

    /// Converts a row batch, interning every field name. Lossless: the
    /// result of [`ColumnBatch::to_batch`] equals the input.
    pub fn from_batch(batch: &TupleBatch) -> ColumnBatch {
        let mut b = BatchBuilder::new();
        // Per-call name cache so repeated fields hit the global interner
        // (and its lock) once per distinct name, not once per tuple.
        let mut names: HashMap<&str, FieldId> = HashMap::new();
        for t in batch.iter() {
            b.begin_row(t.id, t.ts_ns, &t.source);
            for (k, v) in &t.fields {
                let fid = *names
                    .entry(k.as_str())
                    .or_insert_with(|| FieldId::intern(k));
                b.field(fid, v);
            }
            b.end_row();
        }
        let mut cols = b.finish();
        cols.trace = batch.trace;
        cols
    }

    /// Reconstructs the row form. Field order, duplicate names, explicit
    /// nulls and per-row sources are all restored exactly.
    pub fn to_batch(&self) -> TupleBatch {
        let mut cursors = vec![0usize; self.columns.len()];
        let mut tuples = Vec::with_capacity(self.rows);
        for r in 0..self.rows {
            let layout = &self.layouts[self.row_layouts[r] as usize];
            let mut fields = Vec::with_capacity(layout.fields.len());
            for (pos, &(fid, _tag)) in layout.fields.iter().enumerate() {
                let cidx = layout.cols[pos] as usize;
                let k = cursors[cidx];
                cursors[cidx] += 1;
                fields.push((fid.name().to_owned(), self.columns[cidx].data.value_at(k)));
            }
            tuples.push(DataTuple {
                id: self.ids[r],
                ts_ns: self.ts[r],
                source: self.source_names[self.sources[r] as usize].clone(),
                fields,
            });
        }
        let mut out = TupleBatch::from_tuples(tuples);
        out.trace = self.trace;
        out
    }

    /// True if `buf` starts with a columnar frame (vs a legacy row
    /// batch). O(1): peeks the four-byte magic.
    pub fn is_columnar_frame(buf: &[u8]) -> bool {
        buf.len() >= 4 && u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) == COLUMNAR_MAGIC
    }

    /// Approximate encoded size in bytes, used for traffic accounting.
    pub fn wire_size(&self) -> usize {
        let mut n = 4 + 1 + 4; // magic, version, rows
        if self.trace.is_some() {
            n += 24;
        }
        n += 2 + self
            .columns
            .iter()
            .map(|c| 2 + c.field.name().len())
            .sum::<usize>();
        n += 2 + self.source_names.iter().map(|s| 2 + s.len()).sum::<usize>();
        n += self.rows * (8 + 8 + 2); // ids, ts, source idx
        n += 2 + self
            .layouts
            .iter()
            .map(|l| 2 + 3 * l.fields.len())
            .sum::<usize>();
        if self.layouts.len() > 1 {
            n += 2 * self.rows;
        }
        let presence_bytes = self.rows.div_ceil(8);
        n += 2;
        for c in &self.columns {
            n += 3 + 4 + presence_bytes;
            n += match &c.data {
                ColumnData::Null(_) => 0,
                ColumnData::Bool(v) => v.len().div_ceil(8),
                ColumnData::I64(v) => 8 * v.len(),
                ColumnData::U64(v) => 8 * v.len(),
                ColumnData::F64(v) => 8 * v.len(),
                ColumnData::Str { offsets, bytes } | ColumnData::Bytes { offsets, bytes } => {
                    // Upper bound: the plain arena form. A dictionary-
                    // compressed column encodes smaller than this.
                    1 + 4 * offsets.len() + 4 + bytes.len()
                }
            };
        }
        n
    }

    /// Encodes the batch as one self-describing columnar frame.
    ///
    /// # Panics
    ///
    /// Panics if a single batch exceeds a wire limit: `u32::MAX` rows,
    /// or more than `u16::MAX` distinct fields, sources, layouts or
    /// columns. Real batches are a few thousand rows of a handful of
    /// fields.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_size());
        put_u32(&mut buf, COLUMNAR_MAGIC);
        buf.put_u8(COLUMNAR_VERSION);
        // The top bit of the rows word flags a trailing trace context,
        // exactly like the legacy batch count word.
        assert!(
            self.rows < TRACE_CTX_FLAG as usize,
            "columnar frame row limit"
        );
        let mut rows_word = self.rows as u32;
        if self.trace.is_some() {
            rows_word |= TRACE_CTX_FLAG;
        }
        put_u32(&mut buf, rows_word);
        if let Some(ctx) = &self.trace {
            put_trace_ctx(&mut buf, ctx);
        }

        // Field-name dictionary, in first-use column order. Layout field
        // sets are always a subset of column field sets by construction.
        let mut dict: Vec<FieldId> = Vec::new();
        let mut dict_idx: HashMap<FieldId, u16> = HashMap::new();
        for c in &self.columns {
            dict_idx.entry(c.field).or_insert_with(|| {
                dict.push(c.field);
                assert!(dict.len() <= u16::MAX as usize, "columnar field limit");
                (dict.len() - 1) as u16
            });
        }
        buf.put_u16_le(dict.len() as u16);
        for fid in &dict {
            put_str16(&mut buf, fid.name());
        }

        assert!(
            self.source_names.len() <= u16::MAX as usize,
            "columnar source limit"
        );
        buf.put_u16_le(self.source_names.len() as u16);
        for s in &self.source_names {
            put_str16(&mut buf, s);
        }

        for &id in &self.ids {
            buf.put_u64_le(id);
        }
        for &ts in &self.ts {
            buf.put_u64_le(ts);
        }
        for &s in &self.sources {
            buf.put_u16_le(s as u16);
        }

        assert!(
            self.layouts.len() <= u16::MAX as usize,
            "columnar layout limit"
        );
        buf.put_u16_le(self.layouts.len() as u16);
        for l in &self.layouts {
            assert!(
                l.fields.len() <= u16::MAX as usize,
                "columnar layout width limit"
            );
            buf.put_u16_le(l.fields.len() as u16);
            for &(fid, tag) in &l.fields {
                buf.put_u16_le(dict_idx[&fid]);
                buf.put_u8(tag);
            }
        }
        if self.layouts.len() > 1 {
            for &l in &self.row_layouts {
                buf.put_u16_le(l as u16);
            }
        }

        assert!(
            self.columns.len() <= u16::MAX as usize,
            "columnar column limit"
        );
        buf.put_u16_le(self.columns.len() as u16);
        let presence_bytes = self.rows.div_ceil(8);
        for c in &self.columns {
            buf.put_u16_le(dict_idx[&c.field]);
            buf.put_u8(c.tag);
            let n = c.data.len();
            assert!(n <= u32::MAX as usize, "columnar value limit");
            put_u32(&mut buf, n as u32);
            for j in 0..presence_bytes {
                let word = j / 8;
                let shift = (j % 8) * 8;
                let byte = c.presence.get(word).map_or(0u8, |w| (w >> shift) as u8);
                buf.put_u8(byte);
            }
            match &c.data {
                ColumnData::Null(_) => {}
                ColumnData::Bool(v) => {
                    let mut byte = 0u8;
                    for (i, &b) in v.iter().enumerate() {
                        if b {
                            byte |= 1 << (i % 8);
                        }
                        if i % 8 == 7 {
                            buf.put_u8(byte);
                            byte = 0;
                        }
                    }
                    if v.len() % 8 != 0 {
                        buf.put_u8(byte);
                    }
                }
                ColumnData::I64(v) => {
                    for &x in v {
                        buf.put_i64_le(x);
                    }
                }
                ColumnData::U64(v) => {
                    for &x in v {
                        buf.put_u64_le(x);
                    }
                }
                ColumnData::F64(v) => {
                    for &x in v {
                        buf.put_f64_le(x);
                    }
                }
                ColumnData::Str { offsets, bytes } | ColumnData::Bytes { offsets, bytes } => {
                    put_arena(&mut buf, offsets, bytes);
                }
            }
        }
        buf.freeze()
    }

    /// Decodes a frame produced by [`ColumnBatch::encode`], re-interning
    /// the shipped field-name dictionary.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on truncation, a wrong magic/version, or
    /// any structural inconsistency (dangling dictionary index, layout
    /// referencing a missing column, presence/value count mismatch).
    pub fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        if take_u32(buf)? != COLUMNAR_MAGIC {
            return Err(CodecError::Corrupt("not a columnar frame"));
        }
        need(buf, 1, "columnar version")?;
        if buf.get_u8() != COLUMNAR_VERSION {
            return Err(CodecError::Corrupt("unknown columnar version"));
        }
        let raw_rows = take_u32(buf)?;
        let trace = if raw_rows & TRACE_CTX_FLAG != 0 {
            Some(take_trace_ctx(buf)?)
        } else {
            None
        };
        let rows = (raw_rows & !TRACE_CTX_FLAG) as usize;
        // Every row costs >= 18 bytes of fixed arrays below.
        if rows as u64 * 18 > buf.len() as u64 {
            return Err(CodecError::Corrupt("row count exceeds payload"));
        }

        need(buf, 2, "field dictionary size")?;
        let nfields = buf.get_u16_le() as usize;
        let mut dict = Vec::with_capacity(nfields);
        for _ in 0..nfields {
            dict.push(FieldId::intern(&take_str16(buf)?));
        }

        need(buf, 2, "source dictionary size")?;
        let nsources = buf.get_u16_le() as usize;
        let mut source_names = Vec::with_capacity(nsources);
        for _ in 0..nsources {
            source_names.push(take_str16(buf)?);
        }

        need(buf, 8 * rows, "row ids")?;
        let ids: Vec<u64> = (0..rows).map(|_| buf.get_u64_le()).collect();
        need(buf, 8 * rows, "row timestamps")?;
        let ts: Vec<u64> = (0..rows).map(|_| buf.get_u64_le()).collect();
        need(buf, 2 * rows, "row sources")?;
        let mut sources = Vec::with_capacity(rows);
        for _ in 0..rows {
            let s = buf.get_u16_le() as u32;
            if s as usize >= source_names.len() {
                return Err(CodecError::Corrupt("row source out of dictionary"));
            }
            sources.push(s);
        }

        need(buf, 2, "layout count")?;
        let nlayouts = buf.get_u16_le() as usize;
        if nlayouts == 0 && rows > 0 {
            return Err(CodecError::Corrupt("rows without layouts"));
        }
        let mut layout_fields: Vec<Vec<(FieldId, u8)>> = Vec::with_capacity(nlayouts);
        for _ in 0..nlayouts {
            need(buf, 2, "layout width")?;
            let w = buf.get_u16_le() as usize;
            need(buf, 3 * w, "layout fields")?;
            let mut fields = Vec::with_capacity(w);
            for _ in 0..w {
                let fidx = buf.get_u16_le() as usize;
                let tag = buf.get_u8();
                if fidx >= dict.len() {
                    return Err(CodecError::Corrupt("layout field out of dictionary"));
                }
                if tag > 6 {
                    return Err(CodecError::Corrupt("unknown value tag"));
                }
                fields.push((dict[fidx], tag));
            }
            layout_fields.push(fields);
        }
        let row_layouts: Vec<u32> = if nlayouts > 1 {
            need(buf, 2 * rows, "row layouts")?;
            let mut v = Vec::with_capacity(rows);
            for _ in 0..rows {
                let l = buf.get_u16_le() as u32;
                if l as usize >= nlayouts {
                    return Err(CodecError::Corrupt("row layout out of range"));
                }
                v.push(l);
            }
            v
        } else {
            vec![0; rows]
        };

        need(buf, 2, "column count")?;
        let ncols = buf.get_u16_le() as usize;
        let presence_bytes = rows.div_ceil(8);
        let mut columns = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            need(buf, 3, "column header")?;
            let fidx = buf.get_u16_le() as usize;
            let tag = buf.get_u8();
            if fidx >= dict.len() {
                return Err(CodecError::Corrupt("column field out of dictionary"));
            }
            if tag > 6 {
                return Err(CodecError::Corrupt("unknown value tag"));
            }
            let n = take_u32(buf)? as usize;
            if n > rows {
                return Err(CodecError::Corrupt("column holds more values than rows"));
            }
            need(buf, presence_bytes, "column presence")?;
            let mut presence = vec![0u64; rows.div_ceil(64)];
            for j in 0..presence_bytes {
                let byte = buf.get_u8() as u64;
                presence[j / 8] |= byte << ((j % 8) * 8);
            }
            if popcount(&presence) != n {
                return Err(CodecError::Corrupt("presence bits disagree with count"));
            }
            let data = match tag {
                0 => ColumnData::Null(n),
                1 => {
                    let nbytes = n.div_ceil(8);
                    need(buf, nbytes, "bool column")?;
                    let mut v = Vec::with_capacity(n);
                    let mut byte = 0u8;
                    for i in 0..n {
                        if i % 8 == 0 {
                            byte = buf.get_u8();
                        }
                        v.push(byte & (1 << (i % 8)) != 0);
                    }
                    ColumnData::Bool(v)
                }
                2 => {
                    need(buf, 8 * n, "i64 column")?;
                    ColumnData::I64((0..n).map(|_| buf.get_i64_le()).collect())
                }
                3 => {
                    need(buf, 8 * n, "u64 column")?;
                    ColumnData::U64((0..n).map(|_| buf.get_u64_le()).collect())
                }
                4 => {
                    need(buf, 8 * n, "f64 column")?;
                    ColumnData::F64((0..n).map(|_| buf.get_f64_le()).collect())
                }
                5 | 6 => {
                    need(buf, 1, "arena encoding")?;
                    let (offsets, bytes) = match buf.get_u8() {
                        ARENA_PLAIN => {
                            need(buf, 4 * n, "arena offsets")?;
                            let offsets: Vec<u32> = (0..n).map(|_| buf.get_u32_le()).collect();
                            let total = take_u32(buf)? as usize;
                            if offsets.last().is_some_and(|&last| last as usize != total)
                                || offsets.windows(2).any(|w| w[0] > w[1])
                                || (n == 0 && total != 0)
                            {
                                return Err(CodecError::Corrupt("arena offsets inconsistent"));
                            }
                            need(buf, total, "arena bytes")?;
                            (offsets, buf.split_to(total).to_vec())
                        }
                        ARENA_DICT => {
                            need(buf, 2, "arena dictionary size")?;
                            let ndict = buf.get_u16_le() as usize;
                            let mut entries: Vec<Vec<u8>> = Vec::with_capacity(ndict);
                            for _ in 0..ndict {
                                need(buf, 2, "arena dictionary entry length")?;
                                let len = buf.get_u16_le() as usize;
                                need(buf, len, "arena dictionary entry")?;
                                entries.push(buf.split_to(len).to_vec());
                            }
                            need(buf, 2 * n, "arena indices")?;
                            let mut ids = Vec::with_capacity(n);
                            let mut total = 0u64;
                            for _ in 0..n {
                                let id = buf.get_u16_le() as usize;
                                let v = entries
                                    .get(id)
                                    .ok_or(CodecError::Corrupt("arena index out of dictionary"))?;
                                total += v.len() as u64;
                                ids.push(id);
                            }
                            if total > u32::MAX as u64 {
                                return Err(CodecError::Corrupt("arena overflow"));
                            }
                            let mut offsets = Vec::with_capacity(n);
                            let mut bytes = Vec::with_capacity(total as usize);
                            for id in ids {
                                bytes.extend_from_slice(&entries[id]);
                                offsets.push(bytes.len() as u32);
                            }
                            (offsets, bytes)
                        }
                        _ => return Err(CodecError::Corrupt("unknown arena encoding")),
                    };
                    if tag == 5 {
                        // Validate every value slice, not just the arena:
                        // a corrupt offset could split a multi-byte char.
                        let mut start = 0usize;
                        for &end in &offsets {
                            if std::str::from_utf8(&bytes[start..end as usize]).is_err() {
                                return Err(CodecError::InvalidUtf8);
                            }
                            start = end as usize;
                        }
                        ColumnData::Str { offsets, bytes }
                    } else {
                        ColumnData::Bytes { offsets, bytes }
                    }
                }
                _ => unreachable!("tag validated above"),
            };
            columns.push(Column {
                field: dict[fidx],
                tag,
                presence,
                data,
            });
        }

        // Rebuild each layout's column mapping: the k-th column sharing
        // a (field, tag) pair serves the k-th occurrence in a row.
        let mut occ_map: HashMap<(FieldId, u8, usize), u32> = HashMap::new();
        let mut occ_count: HashMap<(FieldId, u8), usize> = HashMap::new();
        for (i, c) in columns.iter().enumerate() {
            let occ = occ_count.entry((c.field, c.tag)).or_insert(0);
            occ_map.insert((c.field, c.tag, *occ), i as u32);
            *occ += 1;
        }
        let mut layouts = Vec::with_capacity(nlayouts);
        for fields in layout_fields {
            let mut cols = Vec::with_capacity(fields.len());
            for (pos, &(fid, tag)) in fields.iter().enumerate() {
                let occ = fields[..pos]
                    .iter()
                    .filter(|&&(f, t)| f == fid && t == tag)
                    .count();
                match occ_map.get(&(fid, tag, occ)) {
                    Some(&c) => cols.push(c),
                    None => return Err(CodecError::Corrupt("layout references missing column")),
                }
            }
            layouts.push(Layout { fields, cols });
        }

        // Cross-check: the number of (row, position) references into each
        // column must equal its value count, so row reconstruction can
        // never run a cursor off the end.
        let mut layout_rows = vec![0usize; nlayouts];
        for &l in &row_layouts {
            layout_rows[l as usize] += 1;
        }
        let mut refs = vec![0usize; columns.len()];
        for (l, layout) in layouts.iter().enumerate() {
            for &c in &layout.cols {
                refs[c as usize] += layout_rows[l];
            }
        }
        for (c, col) in columns.iter().enumerate() {
            if refs[c] != col.data.len() {
                return Err(CodecError::Corrupt(
                    "layout references disagree with column",
                ));
            }
        }

        Ok(ColumnBatch {
            rows,
            ids,
            ts,
            sources,
            source_names,
            layouts,
            row_layouts,
            columns,
            trace,
        })
    }
}

impl From<&TupleBatch> for ColumnBatch {
    fn from(batch: &TupleBatch) -> Self {
        ColumnBatch::from_batch(batch)
    }
}

/// Zero-copy view of one string column: an arena plus end offsets.
#[derive(Debug, Clone, Copy)]
pub struct StrColumn<'a> {
    offsets: &'a [u32],
    bytes: &'a [u8],
}

impl<'a> StrColumn<'a> {
    /// Number of strings in the column.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// True if the column holds no strings.
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// The `k`-th string, borrowed straight from the arena.
    pub fn get(&self, k: usize) -> Option<&'a str> {
        if k >= self.offsets.len() {
            return None;
        }
        let start = if k == 0 {
            0
        } else {
            self.offsets[k - 1] as usize
        };
        let end = self.offsets[k] as usize;
        Some(std::str::from_utf8(&self.bytes[start..end]).expect("validated UTF-8"))
    }

    /// Iterates the strings in value order.
    pub fn iter(&self) -> impl Iterator<Item = &'a str> {
        let this = *self;
        (0..this.len()).map(move |k| this.get(k).unwrap())
    }
}

/// Streaming writer that builds a [`ColumnBatch`] row by row, appending
/// values straight into typed columns — no intermediate [`DataTuple`].
///
/// Call [`begin_row`](BatchBuilder::begin_row), any number of `field_*`
/// appends, then [`end_row`](BatchBuilder::end_row);
/// [`finish`](BatchBuilder::finish) seals the batch and resets the
/// builder for reuse (allocation maps are retained).
#[derive(Default)]
pub struct BatchBuilder {
    rows: usize,
    ids: Vec<u64>,
    ts: Vec<u64>,
    sources: Vec<u32>,
    source_names: Vec<String>,
    layouts: Vec<Layout>,
    row_layouts: Vec<u32>,
    columns: Vec<Column>,
    source_index: HashMap<String, u32>,
    layout_index: HashMap<Vec<(FieldId, u8)>, u32>,
    column_index: HashMap<(FieldId, u8, usize), u32>,
    cur_sig: Vec<(FieldId, u8)>,
    cur_cols: Vec<u32>,
    in_row: bool,
}

impl BatchBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rows completed so far (excluding any open row).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// True if no row has been completed yet.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Opens a new row with the given flow id, timestamp and source.
    ///
    /// # Panics
    ///
    /// Panics if the previous row was not closed with
    /// [`end_row`](BatchBuilder::end_row).
    pub fn begin_row(&mut self, id: u64, ts_ns: u64, source: &str) {
        assert!(!self.in_row, "begin_row while a row is open");
        self.in_row = true;
        self.ids.push(id);
        self.ts.push(ts_ns);
        let sidx = match self.source_index.get(source) {
            Some(&i) => i,
            None => {
                let i = self.source_names.len() as u32;
                self.source_names.push(source.to_owned());
                self.source_index.insert(source.to_owned(), i);
                i
            }
        };
        self.sources.push(sidx);
        self.cur_sig.clear();
        self.cur_cols.clear();
    }

    fn column_for(&mut self, field: FieldId, tag: u8) -> usize {
        // Occurrence = how many times this (field, tag) already appeared
        // in the open row; duplicates land in distinct columns.
        let occ = self
            .cur_sig
            .iter()
            .filter(|&&(f, t)| f == field && t == tag)
            .count();
        let cidx = match self.column_index.get(&(field, tag, occ)) {
            Some(&c) => c,
            None => {
                let c = self.columns.len() as u32;
                self.columns.push(Column {
                    field,
                    tag,
                    presence: Vec::new(),
                    data: ColumnData::for_tag(tag),
                });
                self.column_index.insert((field, tag, occ), c);
                c
            }
        };
        self.cur_sig.push((field, tag));
        self.cur_cols.push(cidx);
        let row = self.rows;
        set_bit(&mut self.columns[cidx as usize].presence, row);
        cidx as usize
    }

    /// Appends an explicit null.
    pub fn field_null(&mut self, field: FieldId) {
        let c = self.column_for(field, 0);
        if let ColumnData::Null(n) = &mut self.columns[c].data {
            *n += 1;
        }
    }

    /// Appends a boolean value.
    pub fn field_bool(&mut self, field: FieldId, v: bool) {
        let c = self.column_for(field, 1);
        if let ColumnData::Bool(vec) = &mut self.columns[c].data {
            vec.push(v);
        }
    }

    /// Appends a signed integer value.
    pub fn field_i64(&mut self, field: FieldId, v: i64) {
        let c = self.column_for(field, 2);
        if let ColumnData::I64(vec) = &mut self.columns[c].data {
            vec.push(v);
        }
    }

    /// Appends an unsigned integer value.
    pub fn field_u64(&mut self, field: FieldId, v: u64) {
        let c = self.column_for(field, 3);
        if let ColumnData::U64(vec) = &mut self.columns[c].data {
            vec.push(v);
        }
    }

    /// Appends a float value.
    pub fn field_f64(&mut self, field: FieldId, v: f64) {
        let c = self.column_for(field, 4);
        if let ColumnData::F64(vec) = &mut self.columns[c].data {
            vec.push(v);
        }
    }

    /// Appends a string value into the column's arena — no per-value
    /// allocation.
    pub fn field_str(&mut self, field: FieldId, s: &str) {
        let c = self.column_for(field, 5);
        if let ColumnData::Str { offsets, bytes } = &mut self.columns[c].data {
            bytes.extend_from_slice(s.as_bytes());
            offsets.push(bytes.len() as u32);
        }
    }

    /// Appends a byte-blob value into the column's arena.
    pub fn field_bytes(&mut self, field: FieldId, b: &[u8]) {
        let c = self.column_for(field, 6);
        if let ColumnData::Bytes { offsets, bytes } = &mut self.columns[c].data {
            bytes.extend_from_slice(b);
            offsets.push(bytes.len() as u32);
        }
    }

    /// Appends any [`Value`] by dispatching on its variant.
    pub fn field(&mut self, field: FieldId, v: &Value) {
        match v {
            Value::Null => self.field_null(field),
            Value::Bool(b) => self.field_bool(field, *b),
            Value::I64(x) => self.field_i64(field, *x),
            Value::U64(x) => self.field_u64(field, *x),
            Value::F64(x) => self.field_f64(field, *x),
            Value::Str(s) => self.field_str(field, s),
            Value::Bytes(b) => self.field_bytes(field, b),
        }
    }

    /// Closes the open row, deduplicating its layout.
    ///
    /// # Panics
    ///
    /// Panics if no row is open.
    pub fn end_row(&mut self) {
        assert!(self.in_row, "end_row without begin_row");
        self.in_row = false;
        let lidx = match self.layout_index.get(&self.cur_sig) {
            Some(&l) => l,
            None => {
                let l = self.layouts.len() as u32;
                self.layouts.push(Layout {
                    fields: self.cur_sig.clone(),
                    cols: self.cur_cols.clone(),
                });
                self.layout_index.insert(self.cur_sig.clone(), l);
                l
            }
        };
        self.row_layouts.push(lidx);
        self.rows += 1;
    }

    /// Seals and returns the batch, resetting the builder for reuse.
    ///
    /// # Panics
    ///
    /// Panics if a row is still open.
    pub fn finish(&mut self) -> ColumnBatch {
        assert!(!self.in_row, "finish with a row open");
        self.source_index.clear();
        self.layout_index.clear();
        self.column_index.clear();
        ColumnBatch {
            rows: std::mem::take(&mut self.rows),
            ids: std::mem::take(&mut self.ids),
            ts: std::mem::take(&mut self.ts),
            sources: std::mem::take(&mut self.sources),
            source_names: std::mem::take(&mut self.source_names),
            layouts: std::mem::take(&mut self.layouts),
            row_layouts: std::mem::take(&mut self.row_layouts),
            columns: std::mem::take(&mut self.columns),
            trace: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_batch() -> TupleBatch {
        vec![
            DataTuple::new(1, 10)
                .from_source("http_get")
                .with("url", "/a.html")
                .with("bytes", 512u64)
                .with("rt", 1.5),
            DataTuple::new(2, 20)
                .from_source("http_get")
                .with("url", "/b.html")
                .with("bytes", 256u64)
                .with("rt", 2.5),
            DataTuple::new(3, 30)
                .from_source("dns")
                .with("qname", "x.example")
                .with("none", Value::Null)
                .with("ok", true)
                .with("delta", -4i64)
                .with("blob", vec![1u8, 2, 3]),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn row_column_roundtrip_is_identity() {
        let batch = sample_batch();
        let cols = ColumnBatch::from_batch(&batch);
        assert_eq!(cols.rows(), 3);
        assert_eq!(cols.to_batch(), batch);
    }

    #[test]
    fn empty_batch_roundtrips() {
        let batch = TupleBatch::new();
        let cols = ColumnBatch::from_batch(&batch);
        assert!(cols.is_empty());
        assert_eq!(cols.to_batch(), batch);
        let mut frame = cols.encode();
        let back = ColumnBatch::decode(&mut frame).unwrap();
        assert_eq!(back.to_batch(), batch);
    }

    #[test]
    fn duplicate_and_mixed_type_fields_survive() {
        let batch: TupleBatch = vec![DataTuple::new(9, 1)
            .from_source("weird")
            .with("k", "first")
            .with("k", "second")
            .with("k", 7u64)
            .with("k", Value::Null)]
        .into_iter()
        .collect();
        let cols = ColumnBatch::from_batch(&batch);
        assert_eq!(cols.to_batch(), batch);
        let mut frame = cols.encode();
        let back = ColumnBatch::decode(&mut frame).unwrap();
        assert_eq!(back.to_batch(), batch);
    }

    #[test]
    fn wire_roundtrip_preserves_rows() {
        let batch = sample_batch();
        let cols = ColumnBatch::from_batch(&batch);
        let mut frame = cols.encode();
        assert!(ColumnBatch::is_columnar_frame(&frame));
        let back = ColumnBatch::decode(&mut frame).unwrap();
        assert!(frame.is_empty(), "decode consumes the whole frame");
        assert_eq!(back.to_batch(), batch);
    }

    #[test]
    fn trace_context_survives_conversion_and_wire() {
        let mut batch = sample_batch();
        batch.trace = Some(TraceCtx {
            cookie: 3,
            batch_id: 99,
            born_ns: 10,
        });
        let cols = ColumnBatch::from_batch(&batch);
        assert_eq!(cols.trace(), batch.trace, "from_batch carries the context");
        assert_eq!(cols.to_batch(), batch, "to_batch restores it");
        let mut frame = cols.encode();
        assert!(ColumnBatch::is_columnar_frame(&frame));
        let back = ColumnBatch::decode(&mut frame).unwrap();
        assert_eq!(back.trace(), batch.trace, "wire roundtrip preserves it");
        assert_eq!(back.to_batch(), batch);
    }

    #[test]
    fn untraced_columnar_frame_has_no_trace_flag() {
        let cols = ColumnBatch::from_batch(&sample_batch());
        let frame = cols.encode();
        // Bytes 5..9 are the rows word; the trace flag must be clear.
        let rows_word = u32::from_le_bytes([frame[5], frame[6], frame[7], frame[8]]);
        assert_eq!(rows_word, 3);
    }

    #[test]
    fn legacy_decoder_rejects_columnar_frames() {
        let cols = ColumnBatch::from_batch(&sample_batch());
        let mut frame = cols.encode();
        assert!(TupleBatch::decode(&mut frame.clone()).is_err());
        assert!(ColumnBatch::decode(&mut frame).is_ok());
    }

    #[test]
    fn columnar_decoder_rejects_legacy_frames() {
        let mut frame = sample_batch().encode();
        assert_eq!(
            ColumnBatch::decode(&mut frame),
            Err(CodecError::Corrupt("not a columnar frame"))
        );
    }

    #[test]
    fn accessors_expose_typed_slices() {
        let cols = ColumnBatch::from_batch(&sample_batch());
        let bytes = FieldId::intern("bytes");
        let rt = FieldId::intern("rt");
        let url = FieldId::intern("url");
        assert_eq!(cols.u64s(bytes), Some(&[512, 256][..]));
        assert_eq!(cols.f64s(rt), Some(&[1.5, 2.5][..]));
        let urls: Vec<&str> = cols.strs(url).unwrap().iter().collect();
        assert_eq!(urls, ["/a.html", "/b.html"]);
        assert_eq!(cols.ids(), &[1, 2, 3]);
        assert_eq!(cols.timestamps(), &[10, 20, 30]);
        assert_eq!(cols.u64s(FieldId::intern("columns_test_absent")), None);
    }

    #[test]
    fn builder_writes_columns_directly() {
        let url = FieldId::intern("url");
        let n = FieldId::intern("n");
        let mut b = BatchBuilder::new();
        for i in 0..70u64 {
            b.begin_row(i, i, "gen");
            b.field_str(url, if i % 2 == 0 { "/even" } else { "/odd" });
            b.field_u64(n, i);
            b.end_row();
        }
        let cols = b.finish();
        assert_eq!(cols.rows(), 70);
        assert_eq!(cols.u64s(n).unwrap().len(), 70);
        // Builder is reusable after finish.
        assert!(b.is_empty());
        b.begin_row(0, 0, "gen");
        b.field_u64(n, 1);
        b.end_row();
        assert_eq!(b.finish().rows(), 1);
        // One layout -> no per-row layout table on the wire, still decodes.
        let mut frame = cols.encode();
        let back = ColumnBatch::decode(&mut frame).unwrap();
        assert_eq!(back.to_batch(), cols.to_batch());
    }

    #[test]
    fn truncated_frames_are_errors() {
        let cols = ColumnBatch::from_batch(&sample_batch());
        let enc = cols.encode();
        for cut in 0..enc.len() {
            let mut b = enc.slice(..cut);
            assert!(
                ColumnBatch::decode(&mut b).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn wire_size_tracks_encoded_size() {
        let cols = ColumnBatch::from_batch(&sample_batch());
        let enc = cols.encode();
        let est = cols.wire_size();
        assert!(est >= enc.len() / 2 && est <= enc.len() * 2);
    }

    #[test]
    fn repetitive_string_columns_dictionary_compress() {
        let repetitive: TupleBatch = (0..128u64)
            .map(|i| {
                DataTuple::new(i, i)
                    .from_source("http_get")
                    .with("url", if i % 2 == 0 { "/a" } else { "/b" })
            })
            .collect();
        let unique: TupleBatch = (0..128u64)
            .map(|i| {
                DataTuple::new(i, i)
                    .from_source("http_get")
                    .with("url", format!("/page/{i}/{}", i * 7919))
            })
            .collect();
        for batch in [&repetitive, &unique] {
            let cols = ColumnBatch::from_batch(batch);
            let mut frame = cols.encode();
            let back = ColumnBatch::decode(&mut frame).unwrap();
            assert_eq!(back.to_batch(), *batch, "arena forms roundtrip exactly");
        }
        let rep_frame = ColumnBatch::from_batch(&repetitive).encode().len();
        let uniq_frame = ColumnBatch::from_batch(&unique).encode().len();
        // Two distinct values across 128 rows: the dictionary holds both
        // once and spends 2 bytes per row, where the plain arena spends
        // 4 offset bytes plus the value bytes — over 1.5 KiB apart here
        // (both frames share ~2.3 KiB of fixed id/ts/source arrays).
        assert!(
            rep_frame + 1500 < uniq_frame,
            "dictionary form ({rep_frame}B) beats plain ({uniq_frame}B)"
        );
    }

    #[test]
    fn columnar_frames_are_smaller_than_row_frames() {
        // Homogeneous batches (the hot-path shape) shed the per-tuple
        // field-name and source repetition.
        let batch: TupleBatch = (0..256u64)
            .map(|i| {
                DataTuple::new(i, i)
                    .from_source("http_get")
                    .with("url", "/index.html")
                    .with("bytes", 512u64)
                    .with("rt_ms", 1.25)
            })
            .collect();
        let row = batch.encode().len();
        let col = ColumnBatch::from_batch(&batch).encode().len();
        assert!(
            col * 2 < row,
            "columnar frame ({col}B) should be under half the row frame ({row}B)"
        );
    }
}
