//! Loom model checks for the SPSC ring's ordering protocol.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"` with the `loom` crate
//! injected (the CI `loom` job does `cargo add --target 'cfg(loom)'
//! loom -p netalytics-data` before running); a normal `cargo test`
//! builds this file to nothing. Loom exhaustively explores every
//! interleaving of the producer/consumer atomics, so an Acquire/Release
//! mistake in `ring.rs` fails here deterministically instead of
//! flaking on real hardware.
#![cfg(loom)]

use netalytics_data::{spsc, PopError, PushError};

/// Every pushed value is popped exactly once, in order, across all
/// interleavings — including wrap-around on a capacity-2 ring.
#[test]
fn loom_fifo_no_loss() {
    loom::model(|| {
        let (mut tx, mut rx) = spsc::<u32>(2);
        let producer = loom::thread::spawn(move || {
            for i in 0..3u32 {
                let mut v = i;
                loop {
                    match tx.push(v) {
                        Ok(()) => break,
                        Err(PushError::Full(back)) => {
                            v = back;
                            loom::thread::yield_now();
                        }
                        Err(PushError::Disconnected(_)) => unreachable!(),
                    }
                }
            }
        });
        let mut next = 0u32;
        while next < 3 {
            match rx.pop() {
                Ok(v) => {
                    assert_eq!(v, next, "FIFO order");
                    next += 1;
                }
                Err(PopError::Empty) => loom::thread::yield_now(),
                Err(PopError::Disconnected) => panic!("lost {} items", 3 - next),
            }
        }
        producer.join().unwrap();
    });
}

/// A producer dropping mid-stream still delivers everything it pushed
/// before the consumer observes disconnection.
#[test]
fn loom_disconnect_delivers_tail() {
    loom::model(|| {
        let (mut tx, mut rx) = spsc::<u32>(2);
        let producer = loom::thread::spawn(move || {
            tx.push(1).unwrap();
            tx.push(2).unwrap();
            // tx drops here.
        });
        let mut got = Vec::new();
        loop {
            match rx.pop() {
                Ok(v) => got.push(v),
                Err(PopError::Empty) => loom::thread::yield_now(),
                Err(PopError::Disconnected) => break,
            }
        }
        assert_eq!(got, [1, 2], "tail delivered before end-of-stream");
        producer.join().unwrap();
    });
}

/// Consumer-side drop: the producer eventually observes disconnection
/// and keeps ownership of the rejected value.
#[test]
fn loom_consumer_drop_rejects_push() {
    loom::model(|| {
        let (mut tx, rx) = spsc::<u32>(2);
        let consumer = loom::thread::spawn(move || drop(rx));
        consumer.join().unwrap();
        match tx.push(7) {
            Err(PushError::Disconnected(7)) => {}
            other => panic!("expected Disconnected(7), got {other:?}"),
        }
    });
}
