//! The monitor proper: sampler → parsers → batched tuple output.
//!
//! This is the *inline* (single-threaded, deterministic) form used on the
//! discrete-event plane; [`crate::pipeline`] is the threaded form used for
//! throughput experiments (Fig. 5). Both share the same parsers.

use std::sync::Arc;

use netalytics_data::{DataTuple, TraceCtx, TupleBatch};
use netalytics_packet::Packet;
use netalytics_sketch::{PreAgg, PreAggSpec};
use netalytics_telemetry::Tracer;

use crate::parser::{make_parser, Parser};
use crate::sampler::{FeedbackSignal, FlowSampler, SampleSpec};

/// Configuration of one monitor instance.
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Registry names of the parsers to run (paper `PARSE` clause).
    pub parsers: Vec<String>,
    /// Sampling requested by the query's `SAMPLE` clause.
    pub sample: SampleSpec,
    /// Tuples per output batch (§3.1: tuples are sent in batches).
    pub batch_size: usize,
    /// When set, parsed tuples the spec covers fold into a bounded
    /// in-monitor sketch and only a per-drain delta ships — the §5.2
    /// data-reduction idea pushed from the aggregation layer all the
    /// way into the NFV monitor.
    pub preagg: Option<PreAggSpec>,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            parsers: vec!["tcp_flow_key".into()],
            sample: SampleSpec::All,
            batch_size: 64,
            preagg: None,
        }
    }
}

/// Traffic-accounting counters of one monitor, used to report the
/// monitor→aggregator data-reduction factor (the paper assumes ~10:1 for
/// the Fig. 6 analysis).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MonitorStats {
    /// Packets offered to the monitor.
    pub packets_seen: u64,
    /// Packets passing the sampler.
    pub packets_sampled: u64,
    /// Raw bytes across sampled packets.
    pub bytes_in: u64,
    /// Tuples emitted by parsers.
    pub tuples_out: u64,
    /// Encoded bytes across emitted batches.
    pub bytes_out: u64,
    /// Parsed tuples folded into the pre-aggregation sketch instead of
    /// being shipped raw.
    pub tuples_folded: u64,
    /// Sketch delta tuples shipped in place of the folded raw tuples.
    pub sketches_out: u64,
}

impl MonitorStats {
    /// Raw-traffic-to-tuple-traffic reduction factor (input bytes per
    /// output byte); `None` until something was emitted.
    pub fn reduction_factor(&self) -> Option<f64> {
        if self.bytes_out == 0 {
            None
        } else {
            Some(self.bytes_in as f64 / self.bytes_out as f64)
        }
    }

    /// How many tuples would have crossed the monitor→aggregator queue
    /// without pre-aggregation, per tuple that actually did; `None`
    /// until something was emitted.
    pub fn fold_factor(&self) -> Option<f64> {
        if self.tuples_out == 0 {
            None
        } else {
            Some((self.tuples_folded + self.tuples_out) as f64 / self.tuples_out as f64)
        }
    }

    /// Publishes this snapshot as `monitor.*` gauges labeled
    /// `{monitor=name}`. The inline monitor runs on the deterministic
    /// plane where the per-event cost of live instruments would distort
    /// the simulation, so stats stay a plain struct and are exported on
    /// scrape instead.
    pub fn export(&self, metrics: &netalytics_telemetry::MetricsRegistry, name: &str) {
        let l: &[(&str, &str)] = &[("monitor", name)];
        metrics
            .gauge("monitor.packets_seen", l)
            .set(self.packets_seen as i64);
        metrics
            .gauge("monitor.packets_sampled", l)
            .set(self.packets_sampled as i64);
        metrics
            .gauge("monitor.bytes_in", l)
            .set(self.bytes_in as i64);
        metrics
            .gauge("monitor.tuples_out", l)
            .set(self.tuples_out as i64);
        metrics
            .gauge("monitor.bytes_out", l)
            .set(self.bytes_out as i64);
        metrics
            .gauge("monitor.tuples_folded", l)
            .set(self.tuples_folded as i64);
        metrics
            .gauge("monitor.sketches_out", l)
            .set(self.sketches_out as i64);
    }
}

/// Error constructing a monitor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MonitorError {
    /// A parser name was not found in the registry.
    UnknownParser(String),
    /// The configuration listed no parsers.
    NoParsers,
}

impl std::fmt::Display for MonitorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MonitorError::UnknownParser(name) => write!(f, "unknown parser {name:?}"),
            MonitorError::NoParsers => f.write_str("monitor configured with no parsers"),
        }
    }
}

impl std::error::Error for MonitorError {}

/// An NFV monitor instance (inline execution).
///
/// # Examples
///
/// ```
/// use netalytics_monitor::{Monitor, MonitorConfig, SampleSpec};
/// use netalytics_packet::{Packet, TcpFlags};
///
/// let mut m = Monitor::new(MonitorConfig {
///     parsers: vec!["tcp_conn_time".into()],
///     sample: SampleSpec::All,
///     batch_size: 8,
///     preagg: None,
/// })?;
/// let syn = Packet::tcp(
///     "10.0.0.1".parse()?, 4000, "10.0.0.2".parse()?, 80,
///     TcpFlags::SYN, 0, 0, b"",
/// );
/// m.process(&syn);
/// let batches = m.drain(0);
/// assert_eq!(batches.iter().map(|b| b.len()).sum::<usize>(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Monitor {
    parsers: Vec<Box<dyn Parser>>,
    sampler: FlowSampler,
    batch_size: usize,
    pending: Vec<DataTuple>,
    preagg: Option<PreAgg>,
    stats: MonitorStats,
    /// When set, drained batches are head-sampled and stamped with a
    /// trace context scoped to this query cookie.
    tracing: Option<(u64, Arc<Tracer>)>,
}

impl std::fmt::Debug for Monitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Monitor")
            .field(
                "parsers",
                &self.parsers.iter().map(|p| p.name()).collect::<Vec<_>>(),
            )
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Monitor {
    /// Builds a monitor from `config`.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError`] for an empty parser list or unknown names.
    pub fn new(config: MonitorConfig) -> Result<Self, MonitorError> {
        if config.parsers.is_empty() {
            return Err(MonitorError::NoParsers);
        }
        let parsers = config
            .parsers
            .iter()
            .map(|n| make_parser(n).ok_or_else(|| MonitorError::UnknownParser(n.clone())))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Monitor {
            parsers,
            sampler: FlowSampler::new(config.sample),
            batch_size: config.batch_size.max(1),
            pending: Vec::new(),
            preagg: config.preagg.map(PreAgg::new),
            stats: MonitorStats::default(),
            tracing: None,
        })
    }

    /// Enables query-scoped tracing: drained batches are head-sampled
    /// per the tracer's config, and sampled ones carry a [`TraceCtx`]
    /// for `cookie` downstream (plus a `parse` span covering capture →
    /// drain on the caller's clock).
    pub fn set_tracing(&mut self, cookie: u64, tracer: Arc<Tracer>) {
        self.tracing = Some((cookie, tracer));
    }

    /// Folds `pending[start..]` into the pre-aggregation sketch; tuples
    /// the spec does not cover (missing field) stay raw.
    fn fold_pending(&mut self, start: usize) {
        let Some(pa) = &mut self.preagg else {
            return;
        };
        let tail: Vec<DataTuple> = self.pending.drain(start..).collect();
        for t in tail {
            if pa.offer(&t) {
                self.stats.tuples_folded += 1;
            } else {
                self.pending.push(t);
            }
        }
    }

    /// Offers one packet to the monitor; every parser sees each sampled
    /// packet (the collector fans a descriptor out to all parser queues).
    pub fn process(&mut self, packet: &Packet) {
        self.stats.packets_seen += 1;
        if !self.sampler.accept(packet) {
            return;
        }
        self.stats.packets_sampled += 1;
        self.stats.bytes_in += packet.len() as u64;
        let start = self.pending.len();
        for p in &mut self.parsers {
            p.on_packet(packet, &mut self.pending);
        }
        self.fold_pending(start);
    }

    /// Flushes aggregating parsers and drains pending tuples into batches
    /// of at most `batch_size`, updating output-byte accounting.
    pub fn drain(&mut self, now_ns: u64) -> Vec<TupleBatch> {
        let start = self.pending.len();
        for p in &mut self.parsers {
            p.flush(now_ns, &mut self.pending);
        }
        self.fold_pending(start);
        if let Some(pa) = &mut self.preagg {
            if let Some(delta) = pa.take_delta(now_ns, now_ns) {
                self.pending.push(delta);
                self.stats.sketches_out += 1;
            }
        }
        let mut out = Vec::new();
        while !self.pending.is_empty() {
            let take = self.pending.len().min(self.batch_size);
            let mut batch = TupleBatch::from_tuples(self.pending.drain(..take).collect());
            if let Some((cookie, tracer)) = &self.tracing {
                if let Some(batch_id) = tracer.sample_batch() {
                    // Born at the oldest tuple's capture time; the parse
                    // span runs from there to this drain.
                    let born_ns = batch
                        .tuples
                        .iter()
                        .map(|t| t.ts_ns)
                        .min()
                        .unwrap_or(now_ns)
                        .min(now_ns);
                    batch.trace = Some(TraceCtx {
                        cookie: *cookie,
                        batch_id,
                        born_ns,
                    });
                    tracer.record_span(0, *cookie, batch_id, born_ns, "parse", born_ns, now_ns);
                }
            }
            self.stats.tuples_out += batch.len() as u64;
            self.stats.bytes_out += batch.wire_size() as u64;
            out.push(batch);
        }
        out
    }

    /// Forwards an aggregation-layer feedback signal to the sampler.
    pub fn on_feedback(&mut self, signal: FeedbackSignal) {
        self.sampler.on_feedback(signal);
    }

    /// The current effective sampling rate.
    pub fn sample_rate(&self) -> f64 {
        self.sampler.rate()
    }

    /// Traffic counters.
    pub fn stats(&self) -> MonitorStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netalytics_packet::{http, TcpFlags};
    use std::net::Ipv4Addr;

    const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 9);

    fn http_pkt(url: &str) -> Packet {
        Packet::tcp(
            A,
            4000,
            B,
            80,
            TcpFlags::PSH | TcpFlags::ACK,
            1,
            1,
            &http::build_get(url, "b"),
        )
    }

    #[test]
    fn unknown_parser_rejected() {
        let err = Monitor::new(MonitorConfig {
            parsers: vec!["bogus".into()],
            ..Default::default()
        })
        .unwrap_err();
        assert_eq!(err, MonitorError::UnknownParser("bogus".into()));
        assert!(err.to_string().contains("bogus"));
    }

    #[test]
    fn empty_parser_list_rejected() {
        let err = Monitor::new(MonitorConfig {
            parsers: vec![],
            ..Default::default()
        })
        .unwrap_err();
        assert_eq!(err, MonitorError::NoParsers);
    }

    #[test]
    fn multiple_parsers_see_each_packet() {
        let mut m = Monitor::new(MonitorConfig {
            parsers: vec!["tcp_flow_key".into(), "http_get".into()],
            sample: SampleSpec::All,
            batch_size: 100,
            preagg: None,
        })
        .unwrap();
        m.process(&http_pkt("/a"));
        let tuples: Vec<_> = m.drain(0).into_iter().flatten().collect();
        assert_eq!(tuples.len(), 2, "one tuple from each parser");
        let sources: Vec<_> = tuples.iter().map(|t| t.source.clone()).collect();
        assert!(sources.contains(&"tcp_flow_key".to_string()));
        assert!(sources.contains(&"http_get".to_string()));
    }

    #[test]
    fn batches_respect_batch_size() {
        let mut m = Monitor::new(MonitorConfig {
            parsers: vec!["tcp_flow_key".into()],
            sample: SampleSpec::All,
            batch_size: 10,
            preagg: None,
        })
        .unwrap();
        for i in 0..25 {
            m.process(&Packet::tcp(A, 4000 + i, B, 80, TcpFlags::ACK, 0, 0, b""));
        }
        let batches = m.drain(0);
        let sizes: Vec<_> = batches.iter().map(TupleBatch::len).collect();
        assert_eq!(sizes, vec![10, 10, 5]);
    }

    #[test]
    fn reduction_factor_is_substantial_for_http() {
        let mut m = Monitor::new(MonitorConfig {
            parsers: vec!["http_get".into()],
            sample: SampleSpec::All,
            batch_size: 64,
            preagg: None,
        })
        .unwrap();
        // Realistic mix: one GET per 10 data packets of 1 KB.
        for i in 0..50u32 {
            m.process(&http_pkt(&format!("/page{}", i % 5)));
            for j in 0..10u32 {
                m.process(&Packet::tcp(
                    B,
                    80,
                    A,
                    4000,
                    TcpFlags::ACK,
                    i * 100 + j,
                    0,
                    &vec![0u8; 1024],
                ));
            }
        }
        m.drain(0);
        let r = m.stats().reduction_factor().unwrap();
        assert!(r > 10.0, "reduction factor {r} should exceed 10x");
    }

    #[test]
    fn preagg_folds_tuples_into_one_delta_per_drain() {
        use netalytics_sketch::{PreAggSpec, Sketch, SKETCH_SOURCE};

        let mut m = Monitor::new(MonitorConfig {
            parsers: vec!["http_get".into()],
            sample: SampleSpec::All,
            batch_size: 64,
            preagg: Some(PreAggSpec::HeavyHitters {
                key_field: "url".into(),
                eps: 0.01,
            }),
        })
        .unwrap();
        for i in 0..100u32 {
            m.process(&http_pkt(&format!("/page{}", i % 5)));
        }
        let tuples: Vec<_> = m.drain(7_000).into_iter().flatten().collect();
        // 100 parsed tuples collapse to one sketch delta over the queue.
        assert_eq!(tuples.len(), 1);
        assert_eq!(tuples[0].source, SKETCH_SOURCE);
        let Some(Ok(Sketch::HeavyHitters(ss))) = Sketch::from_tuple(&tuples[0]) else {
            panic!("delta tuple must carry a heavy-hitters sketch");
        };
        assert_eq!(ss.estimate("/page0").map(|e| e.count), Some(20));

        let s = m.stats();
        assert_eq!(s.tuples_folded, 100);
        assert_eq!(s.sketches_out, 1);
        assert_eq!(s.tuples_out, 1);
        assert!(s.fold_factor().unwrap() >= 10.0);

        // Delta semantics: the next drain starts from an empty sketch.
        assert!(m.drain(8_000).is_empty());
    }

    #[test]
    fn preagg_ships_uncovered_tuples_raw() {
        use netalytics_sketch::PreAggSpec;

        // tcp_flow_key tuples have no "url" field, so nothing folds.
        let mut m = Monitor::new(MonitorConfig {
            parsers: vec!["tcp_flow_key".into()],
            sample: SampleSpec::All,
            batch_size: 64,
            preagg: Some(PreAggSpec::HeavyHitters {
                key_field: "url".into(),
                eps: 0.01,
            }),
        })
        .unwrap();
        for i in 0..10 {
            m.process(&Packet::tcp(A, 4000 + i, B, 80, TcpFlags::ACK, 0, 0, b""));
        }
        let tuples: Vec<_> = m.drain(0).into_iter().flatten().collect();
        assert_eq!(tuples.len(), 10, "uncovered tuples pass through raw");
        assert_eq!(m.stats().tuples_folded, 0);
        assert_eq!(m.stats().sketches_out, 0);
    }

    #[test]
    fn tracing_stamps_sampled_batches_and_records_parse_spans() {
        use netalytics_telemetry::{TraceConfig, Tracer};

        let mut m = Monitor::new(MonitorConfig {
            parsers: vec!["tcp_flow_key".into()],
            sample: SampleSpec::All,
            batch_size: 4,
            preagg: None,
        })
        .unwrap();
        let tracer = std::sync::Arc::new(Tracer::new(TraceConfig {
            sample_every: 1,
            ..TraceConfig::default()
        }));
        m.set_tracing(42, std::sync::Arc::clone(&tracer));
        for i in 0..8 {
            m.process(&Packet::tcp(A, 4000 + i, B, 80, TcpFlags::ACK, 0, 0, b""));
        }
        let batches = m.drain(5_000);
        assert_eq!(batches.len(), 2);
        for b in &batches {
            let ctx = b.trace.expect("sample_every=1 stamps every batch");
            assert_eq!(ctx.cookie, 42);
            assert!(ctx.batch_id > 0);
        }
        assert_ne!(batches[0].trace, batches[1].trace, "distinct batch ids");
        let falls = tracer.waterfalls(42);
        assert!(!falls.is_empty());
        assert_eq!(falls[0].spans[0].stage, "parse");
    }

    #[test]
    fn untraced_monitor_leaves_batches_unstamped() {
        let mut m = Monitor::new(MonitorConfig::default()).unwrap();
        m.process(&Packet::tcp(A, 4000, B, 80, TcpFlags::ACK, 0, 0, b""));
        assert!(m.drain(0).iter().all(|b| b.trace.is_none()));
    }

    #[test]
    fn sampling_reduces_sampled_count() {
        let mut m = Monitor::new(MonitorConfig {
            parsers: vec!["tcp_flow_key".into()],
            sample: SampleSpec::Rate(0.2),
            batch_size: 64,
            preagg: None,
        })
        .unwrap();
        for i in 0..1000u16 {
            m.process(&Packet::tcp(A, i, B, 80, TcpFlags::ACK, 0, 0, b""));
        }
        let s = m.stats();
        assert_eq!(s.packets_seen, 1000);
        assert!(s.packets_sampled < 400, "sampled {}", s.packets_sampled);
        assert!(s.packets_sampled > 50);
    }

    #[test]
    fn feedback_reaches_sampler() {
        let mut m = Monitor::new(MonitorConfig {
            parsers: vec!["tcp_flow_key".into()],
            sample: SampleSpec::Auto,
            batch_size: 64,
            preagg: None,
        })
        .unwrap();
        assert_eq!(m.sample_rate(), 1.0);
        m.on_feedback(FeedbackSignal::Overloaded);
        assert_eq!(m.sample_rate(), 0.5);
    }
}
