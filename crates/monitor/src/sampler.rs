//! Flow-hash sampling with feedback-driven adaptation (paper §3.3, §4.2).
//!
//! "a sampling rate to apply at the monitor can be specified, which is
//! enforced by hashing each packet's n-tuple to do sampling by flow, not
//! packet"; `auto` engages "the feedback-driven sampling mechanism", where
//! aggregation-layer overload signals shrink the rate and recovery signals
//! let it grow back.

use netalytics_packet::Packet;
use serde::{Deserialize, Serialize};

/// Sampling mode requested by a query's `SAMPLE` clause.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum SampleSpec {
    /// `*` — sampling disabled, every packet passes.
    #[default]
    All,
    /// A fixed flow-sampling probability in `(0, 1]`.
    Rate(f64),
    /// `auto` — adaptive rate driven by aggregation-layer feedback.
    Auto,
}

/// Back-pressure signal from the aggregation layer (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeedbackSignal {
    /// Aggregator buffers above the high watermark: shed load.
    Overloaded,
    /// Buffers back below the low watermark: recover.
    Healthy,
}

/// Flow-consistent sampler: a flow is either fully sampled or fully
/// skipped, decided by its stable hash, so per-flow analyses stay intact.
///
/// # Examples
///
/// ```
/// use netalytics_monitor::{FlowSampler, SampleSpec};
/// use netalytics_packet::{Packet, TcpFlags};
///
/// let mut s = FlowSampler::new(SampleSpec::Rate(0.5));
/// let pkt = Packet::tcp(
///     "10.0.0.1".parse()?, 4000, "10.0.0.2".parse()?, 80,
///     TcpFlags::SYN, 0, 0, b"",
/// );
/// // A flow's verdict never changes between packets.
/// let first = s.accept(&pkt);
/// for _ in 0..10 {
///     assert_eq!(s.accept(&pkt), first);
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct FlowSampler {
    spec: SampleSpec,
    /// Current effective rate in [min_rate, 1].
    rate: f64,
    /// Floor for adaptive decay.
    min_rate: f64,
    /// Salt so co-located samplers pick different flow subsets.
    salt: u64,
    accepted: u64,
    dropped: u64,
}

impl FlowSampler {
    /// Multiplicative decrease factor on overload.
    const DECREASE: f64 = 0.5;
    /// Multiplicative increase factor on recovery.
    const INCREASE: f64 = 1.25;

    /// Creates a sampler for the given spec.
    pub fn new(spec: SampleSpec) -> Self {
        let rate = match spec {
            SampleSpec::All => 1.0,
            SampleSpec::Rate(r) => r.clamp(0.0, 1.0),
            SampleSpec::Auto => 1.0,
        };
        FlowSampler {
            spec,
            rate,
            min_rate: 0.01,
            salt: DEFAULT_SALT,
            accepted: 0,
            dropped: 0,
        }
    }

    /// Builder: sets the hash salt (distinct monitors sample distinct
    /// flow subsets when salted differently).
    pub fn with_salt(mut self, salt: u64) -> Self {
        self.salt = salt;
        self
    }

    /// The current effective sampling rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Decides whether `packet`'s flow is sampled.
    ///
    /// Non-IP packets are accepted only when sampling is disabled.
    pub fn accept(&mut self, packet: &Packet) -> bool {
        if self.rate >= 1.0 {
            self.accepted += 1;
            return true;
        }
        let Some(flow) = packet.flow_key() else {
            self.dropped += 1;
            return false;
        };
        // Map the flow's salted hash to [0,1) and compare to the rate:
        // a flow stays on the same side while the rate is unchanged, and
        // rate increases only add flows, never drop previously kept ones.
        let h = mix64(flow.canonical_hash() ^ self.salt);
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        if u < self.rate {
            self.accepted += 1;
            true
        } else {
            self.dropped += 1;
            false
        }
    }

    /// Applies an aggregation-layer feedback signal; only `auto` samplers
    /// adapt (fixed-rate specs are the administrator's explicit choice).
    pub fn on_feedback(&mut self, signal: FeedbackSignal) {
        if self.spec != SampleSpec::Auto {
            return;
        }
        match signal {
            FeedbackSignal::Overloaded => {
                self.rate = (self.rate * Self::DECREASE).max(self.min_rate);
            }
            FeedbackSignal::Healthy => {
                self.rate = (self.rate * Self::INCREASE).min(1.0);
            }
        }
    }

    /// `(accepted, dropped)` packet counts so far.
    pub fn counts(&self) -> (u64, u64) {
        (self.accepted, self.dropped)
    }
}

/// Default hash salt for samplers that do not set one explicitly.
const DEFAULT_SALT: u64 = 0x5eed_0f1e_7a11_0abc;

/// SplitMix64 finalizer: diffuses the salt through all hash bits so even
/// adjacent salts select uncorrelated flow subsets.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netalytics_packet::TcpFlags;
    use std::net::Ipv4Addr;

    fn pkt(port: u16) -> Packet {
        Packet::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            port,
            Ipv4Addr::new(10, 0, 0, 2),
            80,
            TcpFlags::ACK,
            0,
            0,
            b"",
        )
    }

    #[test]
    fn all_accepts_everything() {
        let mut s = FlowSampler::new(SampleSpec::All);
        for p in 0..100 {
            assert!(s.accept(&pkt(p)));
        }
        assert_eq!(s.counts(), (100, 0));
    }

    #[test]
    fn rate_is_approximately_honoured_across_flows() {
        let mut s = FlowSampler::new(SampleSpec::Rate(0.3));
        let kept = (0..5000).filter(|&p| s.accept(&pkt(p))).count();
        let frac = kept as f64 / 5000.0;
        assert!((0.25..0.35).contains(&frac), "kept fraction {frac}");
    }

    #[test]
    fn verdict_is_per_flow_not_per_packet() {
        let mut s = FlowSampler::new(SampleSpec::Rate(0.5));
        for port in 0..50 {
            let first = s.accept(&pkt(port));
            for _ in 0..5 {
                assert_eq!(s.accept(&pkt(port)), first);
            }
        }
    }

    #[test]
    fn both_directions_share_a_verdict() {
        let mut s = FlowSampler::new(SampleSpec::Rate(0.5));
        for port in 0..50u16 {
            let fwd = pkt(port);
            let rev = Packet::tcp(
                Ipv4Addr::new(10, 0, 0, 2),
                80,
                Ipv4Addr::new(10, 0, 0, 1),
                port,
                TcpFlags::ACK,
                0,
                0,
                b"",
            );
            assert_eq!(s.accept(&fwd), s.accept(&rev));
        }
    }

    #[test]
    fn auto_adapts_down_and_recovers() {
        let mut s = FlowSampler::new(SampleSpec::Auto);
        assert_eq!(s.rate(), 1.0);
        s.on_feedback(FeedbackSignal::Overloaded);
        s.on_feedback(FeedbackSignal::Overloaded);
        assert_eq!(s.rate(), 0.25);
        s.on_feedback(FeedbackSignal::Healthy);
        assert!((s.rate() - 0.3125).abs() < 1e-12);
        for _ in 0..50 {
            s.on_feedback(FeedbackSignal::Healthy);
        }
        assert_eq!(s.rate(), 1.0, "recovery is capped at full rate");
    }

    #[test]
    fn fixed_rate_ignores_feedback() {
        let mut s = FlowSampler::new(SampleSpec::Rate(0.1));
        s.on_feedback(FeedbackSignal::Overloaded);
        assert_eq!(s.rate(), 0.1);
    }

    #[test]
    fn rate_floor_holds() {
        let mut s = FlowSampler::new(SampleSpec::Auto);
        for _ in 0..100 {
            s.on_feedback(FeedbackSignal::Overloaded);
        }
        assert!(s.rate() >= 0.01);
    }

    #[test]
    fn different_salts_pick_different_flows() {
        let mut a = FlowSampler::new(SampleSpec::Rate(0.5)).with_salt(1);
        let mut b = FlowSampler::new(SampleSpec::Rate(0.5)).with_salt(2);
        let diff = (0..200)
            .filter(|&p| a.accept(&pkt(p)) != b.accept(&pkt(p)))
            .count();
        assert!(diff > 20, "salts should decorrelate selections ({diff})");
    }
}
