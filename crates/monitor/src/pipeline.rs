//! The threaded monitor pipeline — Figure 3 of the paper.
//!
//! "NetAlytics monitor framework includes the collector, parsers, and an
//! output interface" built on DPDK's zero-copy, lock-free primitives with
//! multi-level queuing and batching (§5.1-5.2). Here:
//!
//! * the **collector** thread pulls packets off the input ring and pushes
//!   a cheap descriptor clone ([`netalytics_packet::Packet`] is refcounted
//!   [`bytes::Bytes`]) into each parser's queue — no payload copies;
//! * each **parser** runs on its own worker thread(s) with a bounded
//!   queue; a full queue drops descriptors early (the adaptive-sampling
//!   load-shedding of §5.1);
//! * the **output interface** batches tuples and hands them to a sink.
//!
//! With [`PipelineConfig::columnar`] set, the parser→output seam runs the
//! columnar fast lane instead: workers parse straight into
//! [`BatchBuilder`]s (interned field ids, typed columns) and hand sealed
//! [`ColumnBatch`]es over lock-free SPSC rings to one shipper thread
//! that ships via [`BatchSink::ship_columns`].

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use netalytics_data::{
    spsc, BatchBuilder, BatchSink, ColumnBatch, Consumer, DataTuple, PopError, Producer, PushError,
    TraceCtx, TupleBatch,
};
use netalytics_packet::Packet;
use netalytics_sketch::{PreAgg, PreAggSpec};
use netalytics_telemetry::{wall_now_ns, Counter, Gauge, Histogram, MetricsRegistry, Tracer};

use crate::monitor::MonitorError;
use crate::parser::{make_parser, Parser};
use crate::sampler::{FlowSampler, SampleSpec};

/// Configuration of a threaded pipeline.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Parser registry names; each gets its own worker thread(s).
    pub parsers: Vec<String>,
    /// Worker threads per parser (paper Fig. 3: "One parser process may
    /// run multiple worker threads; this provides scalability for
    /// computationally intensive parsing functions"). Workers of one
    /// parser receive packets by flow hash, so stateful parsers keep
    /// seeing whole flows ("based on the packet flow ID to ensure
    /// consistent processing of flows", §5.2).
    pub workers_per_parser: usize,
    /// Sampling applied at the collector.
    pub sample: SampleSpec,
    /// Depth of the collector input ring.
    pub input_depth: usize,
    /// Depth of each parser queue.
    pub parser_depth: usize,
    /// Tuples per output batch.
    pub batch_size: usize,
    /// Optional metrics registry: when set, pipeline counters register as
    /// `monitor.*` series and the workers additionally record per-parser
    /// queue depth, output batch sizes, and (sampled) parse latency.
    pub metrics: Option<Arc<MetricsRegistry>>,
    /// How often the collector refreshes the pipeline's wall-clock
    /// heartbeat even when no packets arrive. An orchestrator that polls
    /// [`Pipeline::heartbeat_age`] declares the monitor dead once the age
    /// exceeds a few intervals.
    pub heartbeat_interval: Duration,
    /// When set, each parser worker folds covered tuples into its own
    /// bounded sketch and ships periodic deltas instead of raw tuples
    /// (deltas from different workers merge downstream, so totals are
    /// preserved).
    pub preagg: Option<PreAggSpec>,
    /// Route parser output through the columnar fast lane: each worker
    /// appends emissions into a [`BatchBuilder`], seals a [`ColumnBatch`]
    /// every `batch_size` rows, and hands it over a lock-free SPSC ring
    /// to a single shipper thread (ships via
    /// [`BatchSink::ship_columns`], or converts to rows for the
    /// [`Pipeline::batches`] channel). Ignored — the row path runs —
    /// when `preagg` is also set, because sketch folding consumes row
    /// tuples.
    pub columnar: bool,
    /// Query-scoped tracing as `(cookie, tracer)`: parser workers
    /// head-sample sealed batches per the tracer's config, stamp them
    /// with a [`TraceCtx`] for downstream stages, and record a `parse`
    /// span (batch open → seal, wall clock).
    pub tracing: Option<(u64, Arc<Tracer>)>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            parsers: vec!["tcp_conn_time".into()],
            workers_per_parser: 1,
            sample: SampleSpec::All,
            input_depth: 8192,
            parser_depth: 8192,
            batch_size: 128,
            metrics: None,
            heartbeat_interval: Duration::from_millis(100),
            preagg: None,
            columnar: false,
            tracing: None,
        }
    }
}

/// Folded tuples a worker accumulates before shipping a sketch delta.
const PREAGG_FLUSH_TUPLES: u64 = 1024;

/// Shared pipeline counters — telemetry [`Counter`]s, so a pipeline built
/// with [`PipelineConfig::metrics`] shares these very cells with the
/// registry's `monitor.*` series (no double accounting, no extra cost).
/// Without a registry they are free-standing atomics.
#[derive(Debug)]
pub struct PipelineCounters {
    /// Packets accepted into the input ring (`monitor.packets_in`).
    pub packets_in: Arc<Counter>,
    /// Raw bytes across accepted packets (`monitor.bytes_in`).
    pub bytes_in: Arc<Counter>,
    /// Descriptors dropped because a parser queue was full
    /// (`monitor.queue_drops`).
    pub queue_drops: Arc<Counter>,
    /// Packets rejected by the sampler (`monitor.sampler_drops`).
    pub sampler_drops: Arc<Counter>,
    /// Tuples emitted across all parsers (`monitor.tuples_out`).
    pub tuples_out: Arc<Counter>,
    /// Encoded batch bytes emitted (`monitor.bytes_out`).
    pub bytes_out: Arc<Counter>,
    /// Parsed tuples folded into pre-aggregation sketches
    /// (`monitor.tuples_folded`).
    pub tuples_folded: Arc<Counter>,
    /// Sketch delta tuples shipped (`monitor.sketches_out`).
    pub sketches_out: Arc<Counter>,
}

impl PipelineCounters {
    fn new(metrics: Option<&MetricsRegistry>) -> Self {
        let counter = |name: &str| match metrics {
            Some(m) => m.counter(name, &[]),
            None => Arc::new(Counter::new()),
        };
        PipelineCounters {
            packets_in: counter("monitor.packets_in"),
            bytes_in: counter("monitor.bytes_in"),
            queue_drops: counter("monitor.queue_drops"),
            sampler_drops: counter("monitor.sampler_drops"),
            tuples_out: counter("monitor.tuples_out"),
            bytes_out: counter("monitor.bytes_out"),
            tuples_folded: counter("monitor.tuples_folded"),
            sketches_out: counter("monitor.sketches_out"),
        }
    }
}

/// Per-worker instruments, present only when the pipeline has a registry.
struct WorkerTelemetry {
    queue_depth: Arc<Gauge>,
    batch_size: Arc<Histogram>,
    parse_latency: Arc<Histogram>,
}

/// Record one parse latency for every `LATENCY_SAMPLE` packets: keeps the
/// two `Instant::now` calls off most of the hot path so the instrumented
/// pipeline stays within the ≤5 % overhead budget.
const LATENCY_SAMPLE: u64 = 32;

/// Sealed column batches queued per worker ring on the columnar lane.
const COLUMNAR_RING_DEPTH: usize = 64;

/// Blocking push onto a worker's output ring: spins (yielding) while the
/// shipper catches up. A disconnected shipper means the pipeline is
/// tearing down, so the batch is dropped — same contract as a closed
/// output channel on the row path.
fn push_blocking(ring: &mut Producer<ColumnBatch>, mut batch: ColumnBatch) {
    loop {
        match ring.push(batch) {
            Ok(()) => return,
            Err(PushError::Full(b)) => {
                batch = b;
                std::thread::yield_now();
            }
            Err(PushError::Disconnected(_)) => return,
        }
    }
}

/// Head-samples a freshly sealed column batch: stamps the trace context
/// and records the `parse` span (batch open → seal, wall clock).
fn stamp_columns(
    batch: &mut ColumnBatch,
    tracing: &Option<(u64, Arc<Tracer>)>,
    widx: usize,
    open_ns: &mut Option<u64>,
) {
    let Some((cookie, tracer)) = tracing else {
        return;
    };
    let born_ns = open_ns.take().unwrap_or_else(wall_now_ns);
    if let Some(batch_id) = tracer.sample_batch() {
        let now = wall_now_ns();
        batch.set_trace(Some(TraceCtx {
            cookie: *cookie,
            batch_id,
            born_ns,
        }));
        tracer.record_span(widx, *cookie, batch_id, born_ns, "parse", born_ns, now);
    }
}

/// Row-path twin of [`stamp_columns`].
fn stamp_rows(
    batch: &mut TupleBatch,
    tracing: &Option<(u64, Arc<Tracer>)>,
    widx: usize,
    open_ns: &mut Option<u64>,
) {
    let Some((cookie, tracer)) = tracing else {
        return;
    };
    let born_ns = open_ns.take().unwrap_or_else(wall_now_ns);
    if let Some(batch_id) = tracer.sample_batch() {
        let now = wall_now_ns();
        batch.trace = Some(TraceCtx {
            cookie: *cookie,
            batch_id,
            born_ns,
        });
        tracer.record_span(widx, *cookie, batch_id, born_ns, "parse", born_ns, now);
    }
}

/// Body of one columnar parser worker: parse straight into a
/// [`BatchBuilder`], seal every `batch_size` rows, and push the sealed
/// [`ColumnBatch`] onto this worker's SPSC ring (one producer — this
/// thread; one consumer — the shipper).
fn columnar_worker(
    mut parser: Box<dyn Parser>,
    prx: Receiver<Packet>,
    mut ring: Producer<ColumnBatch>,
    batch_size: usize,
    telemetry: Option<WorkerTelemetry>,
    widx: usize,
    tracing: Option<(u64, Arc<Tracer>)>,
) {
    let mut builder = BatchBuilder::new();
    let mut seen = 0u64;
    // Wall time the in-progress batch received its first row.
    let mut open_ns: Option<u64> = None;
    while let Ok(pkt) = prx.recv() {
        seen += 1;
        if telemetry.is_some() && seen.is_multiple_of(LATENCY_SAMPLE) {
            let t0 = Instant::now();
            parser.on_packet_columns(&pkt, &mut builder);
            if let Some(tel) = &telemetry {
                tel.parse_latency.record(t0.elapsed().as_nanos() as u64);
            }
        } else {
            parser.on_packet_columns(&pkt, &mut builder);
        }
        if tracing.is_some() && open_ns.is_none() && builder.rows() > 0 {
            open_ns = Some(wall_now_ns());
        }
        if builder.rows() >= batch_size {
            let mut batch = builder.finish();
            stamp_columns(&mut batch, &tracing, widx, &mut open_ns);
            if let Some(tel) = &telemetry {
                tel.batch_size.record(batch.rows() as u64);
                tel.queue_depth.set(prx.len() as i64);
            }
            push_blocking(&mut ring, batch);
        }
    }
    // Input closed: final parser flush, then the residual batch.
    parser.flush_columns(0, &mut builder);
    if !builder.is_empty() {
        let mut batch = builder.finish();
        stamp_columns(&mut batch, &tracing, widx, &mut open_ns);
        if let Some(tel) = &telemetry {
            tel.batch_size.record(batch.rows() as u64);
        }
        push_blocking(&mut ring, batch);
    }
    if let Some(tel) = &telemetry {
        tel.queue_depth.set(0);
    }
}

/// A running threaded monitor pipeline.
///
/// Feed packets with [`Pipeline::offer`]; collect output batches from
/// [`Pipeline::batches`]; stop with [`Pipeline::shutdown`].
pub struct Pipeline {
    input: Sender<Packet>,
    output: Receiver<TupleBatch>,
    counters: Arc<PipelineCounters>,
    stop: Arc<AtomicBool>,
    handles: Vec<JoinHandle<()>>,
    /// Nanoseconds since `epoch` of the collector's last liveness beat.
    heartbeat_ns: Arc<AtomicU64>,
    epoch: Instant,
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field("threads", &self.handles.len())
            .finish_non_exhaustive()
    }
}

impl Pipeline {
    /// Spawns the collector and one worker per parser. Output batches
    /// accumulate on the internal channel, [`Pipeline::batches`].
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError`] for an empty or unknown parser list.
    pub fn spawn(config: PipelineConfig) -> Result<Self, MonitorError> {
        Self::spawn_inner(config, None)
    }

    /// Spawns the pipeline with its output interface wired straight into
    /// `sink` — parser workers [`ship`](BatchSink::ship) each full batch
    /// from their own thread, so no relay threads sit between the monitor
    /// and the aggregation layer. [`Pipeline::batches`] stays empty in
    /// this mode.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError`] for an empty or unknown parser list.
    pub fn spawn_with_sink(
        config: PipelineConfig,
        sink: Arc<dyn BatchSink>,
    ) -> Result<Self, MonitorError> {
        Self::spawn_inner(config, Some(sink))
    }

    fn spawn_inner(
        config: PipelineConfig,
        sink: Option<Arc<dyn BatchSink>>,
    ) -> Result<Self, MonitorError> {
        if config.parsers.is_empty() {
            return Err(MonitorError::NoParsers);
        }
        // Validate up front so we fail before spawning threads.
        for name in &config.parsers {
            if make_parser(name).is_none() {
                return Err(MonitorError::UnknownParser(name.clone()));
            }
        }
        let counters = Arc::new(PipelineCounters::new(config.metrics.as_deref()));
        let stop = Arc::new(AtomicBool::new(false));
        let (in_tx, in_rx) = bounded::<Packet>(config.input_depth);
        let (out_tx, out_rx) = bounded::<TupleBatch>(config.input_depth);

        let mut handles = Vec::new();
        // Per parser: the worker queues its dispatcher fans into (Fig. 3's
        // two-level queuing — one instance per worker, flow-consistent).
        let mut parser_txs: Vec<Vec<Sender<Packet>>> = Vec::new();
        let workers = config.workers_per_parser.max(1);
        // Pre-aggregation folds row tuples, so it keeps the row path.
        let columnar = config.columnar && config.preagg.is_none();
        // Consumer halves of the columnar worker rings (shipper-owned).
        let mut col_rings: Vec<Consumer<ColumnBatch>> = Vec::new();

        for name in &config.parsers {
            let mut worker_txs = Vec::with_capacity(workers);
            for w in 0..workers {
                let (ptx, prx) = bounded::<Packet>(config.parser_depth);
                worker_txs.push(ptx);
                let mut parser = make_parser(name).expect("validated above");
                let batch_size = config.batch_size.max(1);
                let telemetry = config.metrics.as_deref().map(|m| {
                    let worker = w.to_string();
                    let l: &[(&str, &str)] = &[("parser", name), ("worker", &worker)];
                    WorkerTelemetry {
                        queue_depth: m.gauge("monitor.parser_queue_depth", l),
                        batch_size: m.histogram("monitor.batch_size", &[("parser", name)]),
                        parse_latency: m.histogram("monitor.parse_latency_ns", &[("parser", name)]),
                    }
                });
                // Stable worker index, used to pick a tracer span shard.
                let widx = handles.len();
                if columnar {
                    let (tx, rx) = spsc::<ColumnBatch>(COLUMNAR_RING_DEPTH);
                    col_rings.push(rx);
                    let tracing = config.tracing.clone();
                    let handle = std::thread::Builder::new()
                        .name(format!("parser-{name}-{w}"))
                        .spawn(move || {
                            columnar_worker(parser, prx, tx, batch_size, telemetry, widx, tracing)
                        })
                        .expect("spawn parser thread");
                    handles.push(handle);
                    continue;
                }
                let out_tx = out_tx.clone();
                let sink = sink.clone();
                let counters = counters.clone();
                let preagg_spec = config.preagg.clone();
                let tracing = config.tracing.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("parser-{name}-{w}"))
                    .spawn(move || {
                        let mut pending: Vec<DataTuple> = Vec::with_capacity(batch_size);
                        let flush_to_sink =
                            |pending: &mut Vec<DataTuple>, open_ns: &mut Option<u64>| {
                                if pending.is_empty() {
                                    return;
                                }
                                let mut batch = TupleBatch::from_tuples(std::mem::take(pending));
                                stamp_rows(&mut batch, &tracing, widx, open_ns);
                                counters.tuples_out.add(batch.len() as u64);
                                counters.bytes_out.add(batch.wire_size() as u64);
                                if let Some(tel) = &telemetry {
                                    tel.batch_size.record(batch.len() as u64);
                                    tel.queue_depth.set(prx.len() as i64);
                                }
                                // If the consumer went away we just drop output.
                                match &sink {
                                    Some(s) => {
                                        let _ = s.ship(batch);
                                    }
                                    None => {
                                        let _ = out_tx.send(batch);
                                    }
                                }
                            };
                        let mut preagg = preagg_spec.map(PreAgg::new);
                        let mut last_ts = 0u64;
                        // Folds `pending[start..]` into the worker's
                        // sketch; uncovered tuples stay raw.
                        let fold = |pa: &mut Option<PreAgg>,
                                    pending: &mut Vec<DataTuple>,
                                    start: usize,
                                    last_ts: &mut u64| {
                            let Some(pa) = pa.as_mut() else { return };
                            let tail: Vec<DataTuple> = pending.drain(start..).collect();
                            for t in tail {
                                if pa.offer(&t) {
                                    *last_ts = (*last_ts).max(t.ts_ns);
                                    counters.tuples_folded.inc();
                                } else {
                                    pending.push(t);
                                }
                            }
                        };
                        let mut seen = 0u64;
                        // Wall time the in-progress batch got its first tuple.
                        let mut open_ns: Option<u64> = None;
                        while let Ok(pkt) = prx.recv() {
                            seen += 1;
                            let start = pending.len();
                            if telemetry.is_some() && seen.is_multiple_of(LATENCY_SAMPLE) {
                                let t0 = std::time::Instant::now();
                                parser.on_packet(&pkt, &mut pending);
                                if let Some(tel) = &telemetry {
                                    tel.parse_latency.record(t0.elapsed().as_nanos() as u64);
                                }
                            } else {
                                parser.on_packet(&pkt, &mut pending);
                            }
                            fold(&mut preagg, &mut pending, start, &mut last_ts);
                            if let Some(pa) = &mut preagg {
                                if pa.folded() >= PREAGG_FLUSH_TUPLES {
                                    if let Some(delta) = pa.take_delta(last_ts, last_ts) {
                                        counters.sketches_out.inc();
                                        pending.push(delta);
                                    }
                                }
                            }
                            if tracing.is_some() && open_ns.is_none() && !pending.is_empty() {
                                open_ns = Some(wall_now_ns());
                            }
                            if pending.len() >= batch_size {
                                flush_to_sink(&mut pending, &mut open_ns);
                            }
                        }
                        // Input closed: final flush (aggregating parsers),
                        // then the residual sketch delta.
                        let start = pending.len();
                        parser.flush(0, &mut pending);
                        fold(&mut preagg, &mut pending, start, &mut last_ts);
                        if let Some(pa) = &mut preagg {
                            if let Some(delta) = pa.take_delta(last_ts, last_ts) {
                                counters.sketches_out.inc();
                                pending.push(delta);
                            }
                        }
                        flush_to_sink(&mut pending, &mut open_ns);
                        if let Some(tel) = &telemetry {
                            tel.queue_depth.set(0);
                        }
                    })
                    .expect("spawn parser thread");
                handles.push(handle);
            }
            parser_txs.push(worker_txs);
        }

        // Columnar fast lane: one shipper drains every worker ring (each
        // ring keeps exactly one producer and one consumer) and ships
        // sealed column batches downstream without touching row form —
        // unless output goes to the legacy batch channel.
        if columnar {
            let counters = counters.clone();
            let sink = sink.clone();
            let out_tx = out_tx.clone();
            let mut rings = col_rings;
            let handle = std::thread::Builder::new()
                .name("col-shipper".into())
                .spawn(move || {
                    let mut alive = vec![true; rings.len()];
                    loop {
                        let mut idle = true;
                        for (i, ring) in rings.iter_mut().enumerate() {
                            if !alive[i] {
                                continue;
                            }
                            loop {
                                match ring.pop() {
                                    Ok(cols) => {
                                        idle = false;
                                        counters.tuples_out.add(cols.rows() as u64);
                                        counters.bytes_out.add(cols.wire_size() as u64);
                                        // A gone consumer means we drop
                                        // output, like the row path.
                                        match &sink {
                                            Some(s) => {
                                                let _ = s.ship_columns(cols);
                                            }
                                            None => {
                                                let _ = out_tx.send(cols.to_batch());
                                            }
                                        }
                                    }
                                    Err(PopError::Empty) => break,
                                    Err(PopError::Disconnected) => {
                                        alive[i] = false;
                                        break;
                                    }
                                }
                            }
                        }
                        if alive.iter().all(|a| !a) {
                            return;
                        }
                        if idle {
                            std::thread::sleep(Duration::from_micros(50));
                        }
                    }
                })
                .expect("spawn columnar shipper");
            handles.push(handle);
        }
        drop(out_tx);

        // Collector thread.
        let epoch = Instant::now();
        let heartbeat_ns = Arc::new(AtomicU64::new(0));
        {
            let counters = counters.clone();
            let stop = stop.clone();
            let heartbeat_ns = heartbeat_ns.clone();
            let beat_every = config.heartbeat_interval.max(Duration::from_millis(1));
            let mut sampler = FlowSampler::new(config.sample);
            let handle = std::thread::Builder::new()
                .name("collector".into())
                .spawn(move || {
                    loop {
                        // Liveness beat on every pass, so an idle but
                        // healthy monitor keeps announcing itself.
                        heartbeat_ns.store(epoch.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        let pkt = match in_rx.recv_timeout(beat_every) {
                            Ok(pkt) => pkt,
                            Err(RecvTimeoutError::Timeout) => continue,
                            Err(RecvTimeoutError::Disconnected) => break,
                        };
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        if !sampler.accept(&pkt) {
                            counters.sampler_drops.inc();
                            continue;
                        }
                        counters.packets_in.inc();
                        counters.bytes_in.add(pkt.len() as u64);
                        // Flow-consistent worker dispatch within each
                        // parser, round-robin fallback for non-IP frames.
                        let flow_slot = pkt.flow_key().map(|f| f.canonical_hash() as usize);
                        for worker_txs in &parser_txs {
                            let slot = flow_slot.unwrap_or(0) % worker_txs.len();
                            // Zero-copy fan-out: descriptor clone only.
                            match worker_txs[slot].try_send(pkt.clone()) {
                                Ok(()) => {}
                                Err(TrySendError::Full(_)) => {
                                    counters.queue_drops.inc();
                                }
                                Err(TrySendError::Disconnected(_)) => return,
                            }
                        }
                    }
                    // parser_txs drop here, closing parser inputs.
                })
                .expect("spawn collector thread");
            handles.push(handle);
        }

        Ok(Pipeline {
            input: in_tx,
            output: out_rx,
            counters,
            stop,
            handles,
            heartbeat_ns,
            epoch,
        })
    }

    /// Offers a packet to the pipeline, blocking if the input ring is full
    /// (a generator can thus measure sustainable throughput).
    pub fn offer(&self, packet: Packet) {
        let _ = self.input.send(packet);
    }

    /// Offers without blocking; returns `false` if the ring was full.
    pub fn try_offer(&self, packet: Packet) -> bool {
        self.input.try_send(packet).is_ok()
    }

    /// A clonable handle to the input ring, letting external generator
    /// threads feed the pipeline directly.
    pub fn clone_input(&self) -> Sender<Packet> {
        self.input.clone()
    }

    /// The output batch stream.
    pub fn batches(&self) -> &Receiver<TupleBatch> {
        &self.output
    }

    /// Shared counters.
    pub fn counters(&self) -> &PipelineCounters {
        &self.counters
    }

    /// Nanoseconds (since pipeline start) of the collector's most recent
    /// liveness beat. Beats continue while idle, so a stalled value means
    /// the collector thread itself is gone.
    pub fn last_heartbeat_ns(&self) -> u64 {
        self.heartbeat_ns.load(Ordering::Relaxed)
    }

    /// Wall-clock time since the collector last beat. Compare against a
    /// multiple of [`PipelineConfig::heartbeat_interval`] to declare the
    /// monitor dead.
    pub fn heartbeat_age(&self) -> Duration {
        self.epoch
            .elapsed()
            .saturating_sub(Duration::from_nanos(self.last_heartbeat_ns()))
    }

    /// Stops all threads and waits for them; pending queue contents are
    /// processed (graceful drain) unless `abandon` is set.
    pub fn shutdown(mut self, abandon: bool) -> PipelineSummary {
        if abandon {
            self.stop.store(true, Ordering::Relaxed);
        }
        drop(self.input); // closes the collector loop
                          // Blocking drain: every worker holds an output sender it drops on
                          // exit, so recv() hands us each buffered batch as it arrives and
                          // disconnects exactly when the last worker is done — no polling,
                          // and parser threads never block on a full output channel.
        let drain: Vec<TupleBatch> = {
            let mut v = Vec::new();
            while let Ok(b) = self.output.recv() {
                v.push(b);
            }
            v
        };
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        PipelineSummary {
            packets_in: self.counters.packets_in.get(),
            bytes_in: self.counters.bytes_in.get(),
            queue_drops: self.counters.queue_drops.get(),
            sampler_drops: self.counters.sampler_drops.get(),
            tuples_out: self.counters.tuples_out.get(),
            bytes_out: self.counters.bytes_out.get(),
            tuples_folded: self.counters.tuples_folded.get(),
            sketches_out: self.counters.sketches_out.get(),
            residual_batches: drain,
        }
    }
}

/// Final counter snapshot returned by [`Pipeline::shutdown`].
#[derive(Debug)]
pub struct PipelineSummary {
    /// Packets accepted into the pipeline.
    pub packets_in: u64,
    /// Raw bytes accepted.
    pub bytes_in: u64,
    /// Descriptors dropped at full parser queues.
    pub queue_drops: u64,
    /// Packets the sampler rejected.
    pub sampler_drops: u64,
    /// Tuples emitted.
    pub tuples_out: u64,
    /// Encoded output bytes.
    pub bytes_out: u64,
    /// Parsed tuples folded into pre-aggregation sketches.
    pub tuples_folded: u64,
    /// Sketch delta tuples shipped.
    pub sketches_out: u64,
    /// Batches that were still in the output channel at shutdown.
    pub residual_batches: Vec<TupleBatch>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use netalytics_packet::{http, TcpFlags};
    use std::net::Ipv4Addr;

    const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 9);

    #[test]
    fn rejects_bad_config() {
        assert!(Pipeline::spawn(PipelineConfig {
            parsers: vec![],
            ..Default::default()
        })
        .is_err());
        assert!(Pipeline::spawn(PipelineConfig {
            parsers: vec!["nope".into()],
            ..Default::default()
        })
        .is_err());
    }

    #[test]
    fn processes_packets_end_to_end() {
        let p = Pipeline::spawn(PipelineConfig {
            parsers: vec!["http_get".into()],
            batch_size: 4,
            ..Default::default()
        })
        .unwrap();
        for i in 0..20 {
            p.offer(Packet::tcp(
                A,
                4000 + i,
                B,
                80,
                TcpFlags::PSH | TcpFlags::ACK,
                1,
                1,
                &http::build_get(&format!("/u{i}"), "b"),
            ));
        }
        let summary = p.shutdown(false);
        assert_eq!(summary.packets_in, 20);
        assert_eq!(summary.tuples_out, 20);
        let total: usize = summary.residual_batches.iter().map(TupleBatch::len).sum();
        assert_eq!(total, 20, "all tuples must surface in batches");
        assert!(summary.bytes_out > 0);
    }

    #[test]
    fn two_parsers_both_see_traffic() {
        let p = Pipeline::spawn(PipelineConfig {
            parsers: vec!["tcp_conn_time".into(), "http_get".into()],
            batch_size: 1,
            ..Default::default()
        })
        .unwrap();
        p.offer(Packet::tcp(A, 1, B, 80, TcpFlags::SYN, 0, 0, b""));
        p.offer(Packet::tcp(
            A,
            1,
            B,
            80,
            TcpFlags::PSH | TcpFlags::ACK,
            1,
            1,
            &http::build_get("/x", "b"),
        ));
        let summary = p.shutdown(false);
        let sources: std::collections::HashSet<String> = summary
            .residual_batches
            .iter()
            .flat_map(|b| b.tuples.iter().map(|t| t.source.clone()))
            .collect();
        assert!(sources.contains("tcp_conn_time"), "{sources:?}");
        assert!(sources.contains("http_get"), "{sources:?}");
    }

    #[test]
    fn sink_mode_ships_batches_without_relay() {
        let sink = Arc::new(netalytics_data::CollectSink::new());
        let p = Pipeline::spawn_with_sink(
            PipelineConfig {
                parsers: vec!["http_get".into()],
                batch_size: 4,
                ..Default::default()
            },
            sink.clone(),
        )
        .unwrap();
        for i in 0..20 {
            p.offer(Packet::tcp(
                A,
                4000 + i,
                B,
                80,
                TcpFlags::PSH | TcpFlags::ACK,
                1,
                1,
                &http::build_get(&format!("/s{i}"), "b"),
            ));
        }
        let summary = p.shutdown(false);
        assert_eq!(summary.tuples_out, 20);
        assert!(
            summary.residual_batches.is_empty(),
            "sink mode bypasses the internal channel"
        );
        assert_eq!(sink.tuple_count(), 20, "all tuples reached the sink");
    }

    #[test]
    fn columnar_mode_ships_through_the_ring() {
        let sink = Arc::new(netalytics_data::CollectSink::new());
        let p = Pipeline::spawn_with_sink(
            PipelineConfig {
                parsers: vec!["http_get".into()],
                batch_size: 4,
                columnar: true,
                ..Default::default()
            },
            sink.clone(),
        )
        .unwrap();
        for i in 0..20 {
            p.offer(Packet::tcp(
                A,
                4000 + i,
                B,
                80,
                TcpFlags::PSH | TcpFlags::ACK,
                1,
                1,
                &http::build_get(&format!("/col{i}"), "b"),
            ));
        }
        let s = p.shutdown(false);
        assert_eq!(s.packets_in, 20);
        assert_eq!(s.tuples_out, 20);
        assert!(s.bytes_out > 0);
        assert!(s.residual_batches.is_empty(), "sink mode bypasses channel");
        assert_eq!(sink.tuple_count(), 20, "all tuples reached the sink");
    }

    #[test]
    fn columnar_mode_feeds_the_batch_channel_as_rows() {
        let p = Pipeline::spawn(PipelineConfig {
            parsers: vec!["http_get".into()],
            workers_per_parser: 2,
            batch_size: 4,
            columnar: true,
            ..Default::default()
        })
        .unwrap();
        for i in 0..40 {
            p.offer(Packet::tcp(
                A,
                4000 + i,
                B,
                80,
                TcpFlags::PSH | TcpFlags::ACK,
                1,
                1,
                &http::build_get(&format!("/row{i}"), "b"),
            ));
        }
        let s = p.shutdown(false);
        assert_eq!(s.tuples_out, 40);
        let urls: std::collections::HashSet<String> = s
            .residual_batches
            .iter()
            .flat_map(|b| b.tuples.iter())
            .filter_map(|t| t.get("url").and_then(netalytics_data::Value::as_str))
            .map(str::to_owned)
            .collect();
        assert_eq!(urls.len(), 40, "every GET surfaced exactly once");
    }

    #[test]
    fn columnar_with_preagg_falls_back_to_rows() {
        use netalytics_sketch::PreAggSpec;
        let p = Pipeline::spawn(PipelineConfig {
            parsers: vec!["http_get".into()],
            batch_size: 16,
            columnar: true,
            preagg: Some(PreAggSpec::HeavyHitters {
                key_field: "url".into(),
                eps: 0.001,
            }),
            ..Default::default()
        })
        .unwrap();
        for i in 0..100u16 {
            p.offer(Packet::tcp(
                A,
                4000 + i,
                B,
                80,
                TcpFlags::PSH | TcpFlags::ACK,
                1,
                1,
                &http::build_get(&format!("/f{}", i % 4), "b"),
            ));
        }
        let s = p.shutdown(false);
        assert_eq!(s.tuples_folded, 100, "row path in effect: preagg folds");
        assert!(s.sketches_out >= 1);
    }

    #[test]
    fn registry_mode_reports_monitor_metrics() {
        use netalytics_telemetry::MetricValue;
        let metrics = Arc::new(MetricsRegistry::new());
        let p = Pipeline::spawn(PipelineConfig {
            parsers: vec!["http_get".into()],
            batch_size: 4,
            metrics: Some(Arc::clone(&metrics)),
            ..Default::default()
        })
        .unwrap();
        for i in 0..64 {
            p.offer(Packet::tcp(
                A,
                4000 + i,
                B,
                80,
                TcpFlags::PSH | TcpFlags::ACK,
                1,
                1,
                &http::build_get(&format!("/m{i}"), "b"),
            ));
        }
        let summary = p.shutdown(false);
        let snap = metrics.snapshot();
        assert_eq!(snap.counter_total("monitor.packets_in"), summary.packets_in);
        assert_eq!(snap.counter_total("monitor.tuples_out"), 64);
        let batches = snap.histogram_merged("monitor.batch_size");
        assert_eq!(batches.sum(), 64, "batch sizes sum to the tuple total");
        assert!(batches.max() <= 4);
        let lat = snap.histogram_merged("monitor.parse_latency_ns");
        assert!(lat.count() >= 1, "latency sampled at 1/{LATENCY_SAMPLE}");
        match snap.get(
            "monitor.parser_queue_depth",
            &[("parser", "http_get"), ("worker", "0")],
        ) {
            Some(MetricValue::Gauge(d)) => assert_eq!(*d, 0, "drained at shutdown"),
            other => panic!("queue depth gauge missing: {other:?}"),
        }
    }

    #[test]
    fn tracing_stamps_batches_on_both_lanes() {
        use netalytics_telemetry::{TraceConfig, Tracer};
        for columnar in [false, true] {
            let tracer = Arc::new(Tracer::new(TraceConfig {
                sample_every: 1,
                ..TraceConfig::default()
            }));
            let p = Pipeline::spawn(PipelineConfig {
                parsers: vec!["http_get".into()],
                batch_size: 4,
                columnar,
                tracing: Some((9, Arc::clone(&tracer))),
                ..Default::default()
            })
            .unwrap();
            for i in 0..8 {
                p.offer(Packet::tcp(
                    A,
                    4000 + i,
                    B,
                    80,
                    TcpFlags::PSH | TcpFlags::ACK,
                    1,
                    1,
                    &http::build_get(&format!("/t{i}"), "b"),
                ));
            }
            let s = p.shutdown(false);
            assert!(!s.residual_batches.is_empty());
            for b in &s.residual_batches {
                let ctx = b.trace.expect("sample_every=1 stamps every batch");
                assert_eq!(ctx.cookie, 9, "columnar={columnar}");
            }
            let falls = tracer.waterfalls(9);
            assert!(!falls.is_empty(), "columnar={columnar}");
            assert_eq!(falls[0].spans[0].stage, "parse");
        }
    }

    #[test]
    fn preagg_cuts_tuples_over_queue_but_preserves_totals() {
        use netalytics_sketch::{PreAggSpec, Sketch};

        let p = Pipeline::spawn(PipelineConfig {
            parsers: vec!["http_get".into()],
            workers_per_parser: 2,
            batch_size: 16,
            preagg: Some(PreAggSpec::HeavyHitters {
                key_field: "url".into(),
                eps: 0.001,
            }),
            ..Default::default()
        })
        .unwrap();
        for i in 0..400u16 {
            p.offer(Packet::tcp(
                A,
                4000 + i,
                B,
                80,
                TcpFlags::PSH | TcpFlags::ACK,
                1,
                1,
                &http::build_get(&format!("/h{}", i % 4), "b"),
            ));
        }
        let s = p.shutdown(false);
        assert_eq!(s.tuples_folded, 400, "every GET folds into a sketch");
        assert!(
            s.sketches_out >= 1 && s.sketches_out <= 2,
            "one residual delta per worker, got {}",
            s.sketches_out
        );
        assert_eq!(s.tuples_out, s.sketches_out, "only deltas cross the queue");
        // Worker deltas merge back to exact totals at sketch capacity.
        let mut merged: Option<Sketch> = None;
        for t in s.residual_batches.iter().flat_map(|b| b.tuples.iter()) {
            let sk = Sketch::from_tuple(t)
                .expect("sketch tuple")
                .expect("decodes");
            match &mut merged {
                None => merged = Some(sk),
                Some(m) => m.merge(&sk).expect("same kind"),
            }
        }
        let Some(Sketch::HeavyHitters(ss)) = merged else {
            panic!("expected a heavy-hitters sketch");
        };
        for k in 0..4 {
            assert_eq!(ss.estimate(&format!("/h{k}")).map(|e| e.count), Some(100));
        }
    }

    #[test]
    fn fault_heartbeat_beats_while_idle_and_stops_at_shutdown() {
        let p = Pipeline::spawn(PipelineConfig {
            parsers: vec!["http_get".into()],
            heartbeat_interval: Duration::from_millis(5),
            ..Default::default()
        })
        .unwrap();
        std::thread::sleep(Duration::from_millis(40));
        let first = p.last_heartbeat_ns();
        assert!(first > 0, "collector beat without any traffic");
        std::thread::sleep(Duration::from_millis(40));
        assert!(p.last_heartbeat_ns() > first, "heartbeat keeps advancing");
        assert!(p.heartbeat_age() < Duration::from_secs(1));
        p.shutdown(false);
    }

    #[test]
    fn sampler_drops_are_counted() {
        let p = Pipeline::spawn(PipelineConfig {
            parsers: vec!["tcp_flow_key".into()],
            sample: SampleSpec::Rate(0.2),
            ..Default::default()
        })
        .unwrap();
        for i in 0..500u16 {
            p.offer(Packet::tcp(A, i, B, 80, TcpFlags::ACK, 0, 0, b""));
        }
        let s = p.shutdown(false);
        assert!(s.sampler_drops > 200, "drops {}", s.sampler_drops);
        assert_eq!(s.packets_in + s.sampler_drops, 500);
    }

    #[test]
    fn overload_sheds_at_parser_queue() {
        // A tiny parser queue plus a burst bigger than it can hold must
        // produce queue drops rather than unbounded memory.
        let p = Pipeline::spawn(PipelineConfig {
            parsers: vec!["mysql_query".into()],
            input_depth: 4096,
            parser_depth: 2,
            batch_size: 1024,
            ..Default::default()
        })
        .unwrap();
        // Use mysql parser with packets that require real work.
        let payload = netalytics_packet::mysql::build_query(
            "SELECT * FROM film JOIN actor USING (id) WHERE title LIKE '%X%'",
        );
        for _ in 0..5000 {
            p.offer(Packet::tcp(
                A,
                1,
                B,
                3306,
                TcpFlags::PSH | TcpFlags::ACK,
                1,
                1,
                &payload,
            ));
        }
        let s = p.shutdown(false);
        assert_eq!(s.packets_in, 5000);
        // Either the parser kept up or drops were recorded; totals must
        // reconcile exactly.
        assert_eq!(s.tuples_out, 0, "queries without responses emit nothing");
        assert!(s.queue_drops < 5000);
    }
}

#[cfg(test)]
mod worker_tests {
    use super::*;
    use netalytics_packet::{http, Packet, TcpFlags};
    use std::net::Ipv4Addr;

    const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 9);

    #[test]
    fn multi_worker_parser_preserves_totals() {
        let p = Pipeline::spawn(PipelineConfig {
            parsers: vec!["http_get".into()],
            workers_per_parser: 4,
            batch_size: 8,
            ..Default::default()
        })
        .unwrap();
        for i in 0..200u16 {
            p.offer(Packet::tcp(
                A,
                4000 + i,
                B,
                80,
                TcpFlags::PSH | TcpFlags::ACK,
                1,
                1,
                &http::build_get(&format!("/w{i}"), "b"),
            ));
        }
        let s = p.shutdown(false);
        assert_eq!(s.packets_in, 200);
        assert_eq!(s.tuples_out, 200, "no tuple lost or duplicated");
        let total: usize = s.residual_batches.iter().map(|b| b.len()).sum();
        assert_eq!(total, 200);
    }

    #[test]
    fn multi_worker_dispatch_is_flow_consistent() {
        // A stateful parser (mysql_query) must see a flow's query and
        // response on the SAME worker or pairing breaks.
        let p = Pipeline::spawn(PipelineConfig {
            parsers: vec!["mysql_query".into()],
            workers_per_parser: 4,
            batch_size: 1,
            ..Default::default()
        })
        .unwrap();
        for i in 0..50u16 {
            let port = 4000 + i;
            p.offer(Packet::tcp(
                A,
                port,
                B,
                3306,
                TcpFlags::PSH | TcpFlags::ACK,
                1,
                1,
                &netalytics_packet::mysql::build_query("SELECT 1"),
            ));
            p.offer(Packet::tcp(
                B,
                3306,
                A,
                port,
                TcpFlags::PSH | TcpFlags::ACK,
                1,
                2,
                &netalytics_packet::mysql::build_ok(1),
            ));
        }
        let s = p.shutdown(false);
        assert_eq!(
            s.tuples_out, 50,
            "every query/response pair must land on one worker"
        );
    }
}
