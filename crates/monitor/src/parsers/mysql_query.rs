//! `mysql_query` — parse MySQL queries and responses (Table 1, App layer).
//!
//! "Since MySQL permits several queries to be sent over a single TCP
//! connection, measuring the full connection time hides the individual
//! query times. We have implemented a mysql parser which observes a TCP
//! stream to detect individual query/response pairs. This parser emits
//! timing information on a per-query basis, as well as the query statement
//! itself." (§7.2, Fig. 15)

use std::collections::HashMap;

use netalytics_data::DataTuple;
use netalytics_packet::{mysql, Packet};

use crate::parser::Parser;

/// Pairs `COM_QUERY` packets with the next server response on the same
/// connection and emits one tuple per query with its latency.
#[derive(Debug, Default)]
pub struct MysqlQueryParser {
    /// Per-connection FIFO of outstanding (sql, sent_ns) queries.
    outstanding: HashMap<u64, Vec<(String, u64)>>,
}

impl MysqlQueryParser {
    /// Creates the parser.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of queries awaiting a response (for overload tests).
    pub fn outstanding_len(&self) -> usize {
        self.outstanding.values().map(Vec::len).sum()
    }
}

impl Parser for MysqlQueryParser {
    fn name(&self) -> &'static str {
        "mysql_query"
    }

    fn on_packet(&mut self, packet: &Packet, out: &mut Vec<DataTuple>) {
        let Ok(view) = packet.view() else { return };
        if view.tcp.is_none() || view.payload.is_empty() {
            return;
        }
        let Some(flow) = packet.flow_key() else {
            return;
        };
        let conn = flow.canonical_hash();
        // Heuristic direction split: queries go client->server (toward the
        // MySQL port), responses come back. We try the client parse first;
        // a COM_QUERY frame never starts with 0x00/0xff markers.
        if let Some(mysql::ClientMessage::Query { sql }) = mysql::parse_client(view.payload) {
            self.outstanding
                .entry(conn)
                .or_default()
                .push((sql, packet.ts_ns));
            return;
        }
        if mysql::parse_server(view.payload).is_some() {
            if let Some(queue) = self.outstanding.get_mut(&conn) {
                if !queue.is_empty() {
                    let (sql, sent_ns) = queue.remove(0);
                    let rt_ms = packet.ts_ns.saturating_sub(sent_ns) as f64 / 1e6;
                    out.push(
                        DataTuple::new(conn, packet.ts_ns)
                            .from_source(self.name())
                            .with("sql", sql)
                            .with("rt_ms", rt_ms)
                            .with("dst_ip", flow.src_ip.to_string()),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netalytics_data::Value;
    use netalytics_packet::TcpFlags;
    use std::net::Ipv4Addr;

    const C: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const S: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 6);

    fn query_pkt(sql: &str, ts: u64) -> Packet {
        Packet::tcp(
            C,
            4000,
            S,
            3306,
            TcpFlags::PSH | TcpFlags::ACK,
            1,
            1,
            &mysql::build_query(sql),
        )
        .at_time(ts)
    }

    fn ok_pkt(ts: u64) -> Packet {
        Packet::tcp(
            S,
            3306,
            C,
            4000,
            TcpFlags::PSH | TcpFlags::ACK,
            1,
            2,
            &mysql::build_ok(1),
        )
        .at_time(ts)
    }

    #[test]
    fn pairs_query_with_response() {
        let mut p = MysqlQueryParser::new();
        let mut out = Vec::new();
        p.on_packet(&query_pkt("SELECT 1", 1_000_000), &mut out);
        assert_eq!(p.outstanding_len(), 1);
        p.on_packet(&ok_pkt(3_000_000), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get("sql").and_then(Value::as_str), Some("SELECT 1"));
        assert_eq!(out[0].get("rt_ms").and_then(Value::as_f64), Some(2.0));
        assert_eq!(p.outstanding_len(), 0);
    }

    #[test]
    fn pipelined_queries_pair_in_order() {
        let mut p = MysqlQueryParser::new();
        let mut out = Vec::new();
        p.on_packet(&query_pkt("Q1", 0), &mut out);
        p.on_packet(&query_pkt("Q2", 1_000_000), &mut out);
        p.on_packet(&ok_pkt(2_000_000), &mut out);
        p.on_packet(&ok_pkt(5_000_000), &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].get("sql").and_then(Value::as_str), Some("Q1"));
        assert_eq!(out[1].get("sql").and_then(Value::as_str), Some("Q2"));
        assert_eq!(out[1].get("rt_ms").and_then(Value::as_f64), Some(4.0));
    }

    #[test]
    fn response_without_query_is_ignored() {
        let mut p = MysqlQueryParser::new();
        let mut out = Vec::new();
        p.on_packet(&ok_pkt(1), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn result_set_also_completes_query() {
        let mut p = MysqlQueryParser::new();
        let mut out = Vec::new();
        p.on_packet(&query_pkt("SELECT * FROM t", 0), &mut out);
        let rs = Packet::tcp(
            S,
            3306,
            C,
            4000,
            TcpFlags::PSH | TcpFlags::ACK,
            1,
            2,
            &mysql::build_result_set(1, 3),
        )
        .at_time(7_000_000);
        p.on_packet(&rs, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get("rt_ms").and_then(Value::as_f64), Some(7.0));
    }
}
