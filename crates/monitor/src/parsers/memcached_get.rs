//! `memcached_get` — parse memcached get requests (Table 1, App layer).

use netalytics_data::DataTuple;
use netalytics_packet::{memcached, Packet};

use crate::parser::Parser;

/// Extracts keys from memcached `get` requests and hit/miss from
/// responses.
#[derive(Debug, Default)]
pub struct MemcachedGetParser {
    _private: (),
}

impl MemcachedGetParser {
    /// Creates the parser.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Parser for MemcachedGetParser {
    fn name(&self) -> &'static str {
        "memcached_get"
    }

    fn on_packet(&mut self, packet: &Packet, out: &mut Vec<DataTuple>) {
        let Ok(view) = packet.view() else { return };
        if view.tcp.is_none() || view.payload.is_empty() {
            return;
        }
        let Some(flow) = packet.flow_key() else {
            return;
        };
        let id = flow.canonical_hash();
        if let Some(memcached::Command::Get { key }) = memcached::parse_command(view.payload) {
            out.push(
                DataTuple::new(id, packet.ts_ns)
                    .from_source(self.name())
                    .with("kind", "request")
                    .with("key", key)
                    .with("dst_ip", flow.dst_ip.to_string())
                    .with("t_ns", packet.ts_ns),
            );
        } else if view.payload.starts_with(b"VALUE ") || view.payload.starts_with(b"END") {
            out.push(
                DataTuple::new(id, packet.ts_ns)
                    .from_source(self.name())
                    .with("kind", "response")
                    .with("hit", memcached::response_is_hit(view.payload))
                    .with("t_ns", packet.ts_ns),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netalytics_data::Value;
    use netalytics_packet::TcpFlags;
    use std::net::Ipv4Addr;

    const C: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const S: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 7);

    #[test]
    fn get_and_hit_miss() {
        let mut p = MemcachedGetParser::new();
        let mut out = Vec::new();
        let req = Packet::tcp(
            C,
            4000,
            S,
            11211,
            TcpFlags::PSH | TcpFlags::ACK,
            1,
            1,
            &memcached::build_get("user:1"),
        );
        let hit = Packet::tcp(
            S,
            11211,
            C,
            4000,
            TcpFlags::PSH | TcpFlags::ACK,
            1,
            2,
            &memcached::build_value_response("user:1", Some(b"v")),
        );
        let miss = Packet::tcp(
            S,
            11211,
            C,
            4000,
            TcpFlags::PSH | TcpFlags::ACK,
            2,
            3,
            &memcached::build_value_response("user:2", None),
        );
        p.on_packet(&req, &mut out);
        p.on_packet(&hit, &mut out);
        p.on_packet(&miss, &mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].get("key").and_then(Value::as_str), Some("user:1"));
        assert_eq!(out[1].get("hit").and_then(Value::as_bool), Some(true));
        assert_eq!(out[2].get("hit").and_then(Value::as_bool), Some(false));
        assert_eq!(out[0].id, out[1].id);
    }

    #[test]
    fn set_commands_and_noise_skipped() {
        let mut p = MemcachedGetParser::new();
        let mut out = Vec::new();
        let set = Packet::tcp(
            C,
            4000,
            S,
            11211,
            TcpFlags::PSH | TcpFlags::ACK,
            1,
            1,
            &memcached::build_set("k", b"v"),
        );
        let noise = Packet::tcp(C, 4000, S, 11211, TcpFlags::ACK, 2, 1, b"hello");
        p.on_packet(&set, &mut out);
        p.on_packet(&noise, &mut out);
        assert!(out.is_empty());
    }
}
