//! `tcp_pkt_size` — calculate TCP packet size (Table 1, Net layer).
//!
//! Used by the §7.1 case study with a `group-sum` processor to compute
//! per-connection throughput (Fig. 11).

use netalytics_data::DataTuple;
use netalytics_packet::Packet;

use crate::parser::Parser;

/// Emits per-packet payload sizes, aggregated per flow between flushes to
/// keep tuple volume low (parsers "produce aggregate statistics about
/// flows", §3.1).
#[derive(Debug, Default)]
pub struct TcpPktSizeParser {
    /// (flow hash, src, dst) → (payload bytes, packets) since last flush.
    acc: Vec<(u64, String, String, u64, u64)>,
}

impl TcpPktSizeParser {
    /// Creates the parser.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Parser for TcpPktSizeParser {
    fn name(&self) -> &'static str {
        "tcp_pkt_size"
    }

    fn on_packet(&mut self, packet: &Packet, _out: &mut Vec<DataTuple>) {
        let Ok(view) = packet.view() else { return };
        let (Some(ip), Some(_tcp)) = (view.ipv4, view.tcp) else {
            return;
        };
        let flow = packet.flow_key().expect("tcp view implies flow key");
        let id = flow.stable_hash();
        let bytes = view.payload.len() as u64;
        match self.acc.iter_mut().find(|(h, ..)| *h == id) {
            Some((_, _, _, b, n)) => {
                *b += bytes;
                *n += 1;
            }
            None => self
                .acc
                .push((id, ip.src.to_string(), ip.dst.to_string(), bytes, 1)),
        }
    }

    fn flush(&mut self, now_ns: u64, out: &mut Vec<DataTuple>) {
        for (id, src, dst, bytes, pkts) in self.acc.drain(..) {
            out.push(
                DataTuple::new(id, now_ns)
                    .from_source("tcp_pkt_size")
                    .with("src_ip", src)
                    .with("dst_ip", dst)
                    .with("bytes", bytes)
                    .with("pkts", pkts),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netalytics_data::Value;
    use netalytics_packet::TcpFlags;
    use std::net::Ipv4Addr;

    const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    #[test]
    fn aggregates_per_flow_until_flush() {
        let mut p = TcpPktSizeParser::new();
        let mut out = Vec::new();
        for i in 0..3u32 {
            let pkt = Packet::tcp(A, 4000, B, 80, TcpFlags::ACK, i, 0, &[0u8; 100]);
            p.on_packet(&pkt, &mut out);
        }
        let other = Packet::tcp(A, 4001, B, 80, TcpFlags::ACK, 0, 0, &[0u8; 10]);
        p.on_packet(&other, &mut out);
        assert!(out.is_empty(), "nothing emitted before flush");
        p.flush(999, &mut out);
        assert_eq!(out.len(), 2, "one tuple per flow");
        let big = out
            .iter()
            .find(|t| t.get("bytes").and_then(Value::as_u64) == Some(300))
            .expect("300-byte flow present");
        assert_eq!(big.get("pkts").and_then(Value::as_u64), Some(3));
        assert_eq!(big.ts_ns, 999);
        // Second flush emits nothing new.
        out.clear();
        p.flush(1000, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn ignores_non_tcp() {
        let mut p = TcpPktSizeParser::new();
        let mut out = Vec::new();
        p.on_packet(&Packet::udp(A, 1, B, 2, b"xxx"), &mut out);
        p.flush(1, &mut out);
        assert!(out.is_empty());
    }
}
