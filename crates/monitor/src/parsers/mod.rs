//! The six stock parsers of paper Table 1.
//!
//! | Parser | Layer | Description |
//! |---|---|---|
//! | `tcp_flow_key` | Net | extract src_ip, dst_ip, src_port, dst_port |
//! | `tcp_conn_time` | Net | detect SYN/FIN/RST flags |
//! | `tcp_pkt_size` | Net | calculate tcp packet size |
//! | `memcached_get` | App | parse memcached get request |
//! | `http_get` | App | parse http get request and response |
//! | `mysql_query` | App | parse mysql query and response |

mod http_get;
mod memcached_get;
mod mysql_query;
mod tcp_conn_time;
mod tcp_flow_key;
mod tcp_pkt_size;

pub use http_get::HttpGetParser;
pub use memcached_get::MemcachedGetParser;
pub use mysql_query::MysqlQueryParser;
pub use tcp_conn_time::TcpConnTimeParser;
pub use tcp_flow_key::TcpFlowKeyParser;
pub use tcp_pkt_size::TcpPktSizeParser;
