//! `tcp_conn_time` — detect SYN/FIN/RST flags (Table 1, Net layer).
//!
//! "The parser reports the start and end time of each TCP connection"
//! (§7.1). It is nearly stateless: it "simply emits a data tuple when a
//! SYN or FIN flag is seen" (§6.1), tagged so the `diff` processor block
//! can subtract start from end per connection.

use netalytics_data::DataTuple;
use netalytics_packet::{Packet, TcpFlags};

use crate::parser::Parser;

/// Emits `start`/`end` events keyed by the direction-independent flow
/// hash, so both connection halves aggregate under one ID.
#[derive(Debug, Default)]
pub struct TcpConnTimeParser {
    _private: (),
}

impl TcpConnTimeParser {
    /// Creates the parser.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Parser for TcpConnTimeParser {
    fn name(&self) -> &'static str {
        "tcp_conn_time"
    }

    fn on_packet(&mut self, packet: &Packet, out: &mut Vec<DataTuple>) {
        let Ok(view) = packet.view() else { return };
        let (Some(ip), Some(tcp)) = (view.ipv4, view.tcp) else {
            return;
        };
        // Only the initial SYN (not SYN-ACK) marks connection start, and
        // the ID must be direction-independent so start and end join.
        let event = if tcp.flags.contains(TcpFlags::SYN) && !tcp.flags.contains(TcpFlags::ACK) {
            "start"
        } else if tcp.flags.intersects(TcpFlags::FIN | TcpFlags::RST) {
            "end"
        } else {
            return;
        };
        let flow = packet.flow_key().expect("tcp view implies flow key");
        // Orient addressing by the connection initiator: for `start` the
        // packet already flows initiator->server; for `end` either side
        // may close, so report the canonical server side as dst.
        let (src_ip, dst_ip) = if event == "start" || flow.canonical() == flow {
            (ip.src, ip.dst)
        } else {
            (ip.dst, ip.src)
        };
        out.push(
            DataTuple::new(flow.canonical_hash(), packet.ts_ns)
                .from_source(self.name())
                .with("event", event)
                .with("t_ns", packet.ts_ns)
                .with("src_ip", src_ip.to_string())
                .with("dst_ip", dst_ip.to_string())
                .with(
                    "dst_port",
                    if event == "start" {
                        tcp.dst_port
                    } else {
                        flow.canonical().dst_port
                    },
                ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netalytics_data::Value;
    use std::net::Ipv4Addr;

    const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn run(pkts: &[Packet]) -> Vec<DataTuple> {
        let mut p = TcpConnTimeParser::new();
        let mut out = Vec::new();
        for pkt in pkts {
            p.on_packet(pkt, &mut out);
        }
        out
    }

    #[test]
    fn syn_and_fin_events_share_id() {
        let syn = Packet::tcp(A, 4000, B, 80, TcpFlags::SYN, 0, 0, b"").at_time(100);
        // Server closes: FIN travels B -> A.
        let fin =
            Packet::tcp(B, 80, A, 4000, TcpFlags::FIN | TcpFlags::ACK, 9, 9, b"").at_time(5_100);
        let out = run(&[syn, fin]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].get("event").and_then(Value::as_str), Some("start"));
        assert_eq!(out[1].get("event").and_then(Value::as_str), Some("end"));
        assert_eq!(out[0].id, out[1].id, "start/end must join on one ID");
        assert_eq!(out[0].get("t_ns").and_then(Value::as_u64), Some(100));
        assert_eq!(out[1].get("t_ns").and_then(Value::as_u64), Some(5_100));
    }

    #[test]
    fn syn_ack_and_data_are_ignored() {
        let synack = Packet::tcp(B, 80, A, 4000, TcpFlags::SYN | TcpFlags::ACK, 0, 1, b"");
        let data = Packet::tcp(A, 4000, B, 80, TcpFlags::PSH | TcpFlags::ACK, 1, 1, b"x");
        assert!(run(&[synack, data]).is_empty());
    }

    #[test]
    fn rst_counts_as_end() {
        let rst = Packet::tcp(A, 4000, B, 80, TcpFlags::RST, 0, 0, b"");
        let out = run(&[rst]);
        assert_eq!(out[0].get("event").and_then(Value::as_str), Some("end"));
    }

    #[test]
    fn non_tcp_ignored() {
        let udp = Packet::udp(A, 1, B, 2, b"");
        assert!(run(&[udp]).is_empty());
    }
}
