//! `tcp_flow_key` — extract the transport 5-tuple (Table 1, Net layer).

use netalytics_data::DataTuple;
use netalytics_packet::Packet;

use crate::parser::Parser;

/// Emits one tuple per TCP packet carrying the flow's addressing.
///
/// The tuple ID is the flow's stable hash, letting processors join this
/// addressing information with measurements from other parsers.
#[derive(Debug, Default)]
pub struct TcpFlowKeyParser {
    emitted: u64,
}

impl TcpFlowKeyParser {
    /// Creates the parser.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Parser for TcpFlowKeyParser {
    fn name(&self) -> &'static str {
        "tcp_flow_key"
    }

    fn on_packet(&mut self, packet: &Packet, out: &mut Vec<DataTuple>) {
        let Some(flow) = packet.flow_key() else {
            return;
        };
        if flow.proto != 6 {
            return;
        }
        self.emitted += 1;
        out.push(
            DataTuple::new(flow.stable_hash(), packet.ts_ns)
                .from_source(self.name())
                .with("src_ip", flow.src_ip.to_string())
                .with("dst_ip", flow.dst_ip.to_string())
                .with("src_port", flow.src_port)
                .with("dst_port", flow.dst_port),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netalytics_data::Value;
    use netalytics_packet::TcpFlags;
    use std::net::Ipv4Addr;

    #[test]
    fn emits_addressing_fields() {
        let mut p = TcpFlowKeyParser::new();
        let pkt = Packet::tcp(
            Ipv4Addr::new(10, 0, 2, 8),
            5555,
            Ipv4Addr::new(10, 0, 2, 9),
            80,
            TcpFlags::SYN,
            0,
            0,
            b"",
        );
        let mut out = Vec::new();
        p.on_packet(&pkt, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(
            out[0].get("src_ip").and_then(Value::as_str),
            Some("10.0.2.8")
        );
        assert_eq!(out[0].get("dst_port").and_then(Value::as_u64), Some(80));
        assert_eq!(out[0].id, pkt.flow_key().unwrap().stable_hash());
    }

    #[test]
    fn skips_udp_and_garbage() {
        let mut p = TcpFlowKeyParser::new();
        let mut out = Vec::new();
        let udp = Packet::udp(
            Ipv4Addr::new(1, 1, 1, 1),
            1,
            Ipv4Addr::new(2, 2, 2, 2),
            2,
            b"",
        );
        p.on_packet(&udp, &mut out);
        let junk = Packet::from_bytes(bytes::Bytes::from_static(b"nonsense"), 0);
        p.on_packet(&junk, &mut out);
        assert!(out.is_empty());
    }
}
