//! `http_get` — parse HTTP GET requests and responses (Table 1, App layer).
//!
//! "We provide a http_get parser that can extract the URL of an HTTP GET
//! request" (§3.1); responses contribute the status code and, joined by
//! flow ID, per-URL timing (Fig. 13).

use std::fmt::Write as _;

use netalytics_data::{BatchBuilder, DataTuple, FieldId};
use netalytics_packet::{http, Packet};

use crate::parser::Parser;

/// Extracts GET URLs from requests and status codes from responses.
///
/// Overrides [`Parser::on_packet_columns`] natively: field ids are
/// interned once at construction and values (including the formatted
/// peer IP, via a reused scratch buffer) append straight into column
/// arenas — the columnar pipeline parses GETs without a single
/// per-packet heap allocation beyond the URL itself.
#[derive(Debug)]
pub struct HttpGetParser {
    f_kind: FieldId,
    f_url: FieldId,
    f_status: FieldId,
    f_dst_ip: FieldId,
    f_src_ip: FieldId,
    f_t_ns: FieldId,
    /// Scratch for IP formatting on the columnar path.
    ip_buf: String,
}

impl HttpGetParser {
    /// Creates the parser.
    pub fn new() -> Self {
        HttpGetParser {
            f_kind: FieldId::intern("kind"),
            f_url: FieldId::intern("url"),
            f_status: FieldId::intern("status"),
            f_dst_ip: FieldId::intern("dst_ip"),
            f_src_ip: FieldId::intern("src_ip"),
            f_t_ns: FieldId::intern("t_ns"),
            ip_buf: String::new(),
        }
    }
}

impl Default for HttpGetParser {
    fn default() -> Self {
        Self::new()
    }
}

impl Parser for HttpGetParser {
    fn name(&self) -> &'static str {
        "http_get"
    }

    fn on_packet(&mut self, packet: &Packet, out: &mut Vec<DataTuple>) {
        let Ok(view) = packet.view() else { return };
        if view.tcp.is_none() || view.payload.is_empty() {
            return;
        }
        let Some(flow) = packet.flow_key() else {
            return;
        };
        // Requests and responses of one connection share an ID so the
        // processor can pair them (canonical = direction-independent).
        let id = flow.canonical_hash();
        if let Some(req) = http::parse_request(view.payload) {
            if req.method == http::Method::Get {
                out.push(
                    DataTuple::new(id, packet.ts_ns)
                        .from_source(self.name())
                        .with("kind", "request")
                        .with("url", req.url)
                        .with("dst_ip", flow.dst_ip.to_string())
                        .with("t_ns", packet.ts_ns),
                );
            }
        } else if let Some(status) = http::parse_status(view.payload) {
            out.push(
                DataTuple::new(id, packet.ts_ns)
                    .from_source(self.name())
                    .with("kind", "response")
                    .with("status", u64::from(status))
                    .with("src_ip", flow.src_ip.to_string())
                    .with("t_ns", packet.ts_ns),
            );
        }
    }

    fn on_packet_columns(&mut self, packet: &Packet, out: &mut BatchBuilder) {
        let Ok(view) = packet.view() else { return };
        if view.tcp.is_none() || view.payload.is_empty() {
            return;
        }
        let Some(flow) = packet.flow_key() else {
            return;
        };
        let id = flow.canonical_hash();
        if let Some(req) = http::parse_request(view.payload) {
            if req.method == http::Method::Get {
                out.begin_row(id, packet.ts_ns, "http_get");
                out.field_str(self.f_kind, "request");
                out.field_str(self.f_url, &req.url);
                self.ip_buf.clear();
                let _ = write!(self.ip_buf, "{}", flow.dst_ip);
                out.field_str(self.f_dst_ip, &self.ip_buf);
                out.field_u64(self.f_t_ns, packet.ts_ns);
                out.end_row();
            }
        } else if let Some(status) = http::parse_status(view.payload) {
            out.begin_row(id, packet.ts_ns, "http_get");
            out.field_str(self.f_kind, "response");
            out.field_u64(self.f_status, u64::from(status));
            self.ip_buf.clear();
            let _ = write!(self.ip_buf, "{}", flow.src_ip);
            out.field_str(self.f_src_ip, &self.ip_buf);
            out.field_u64(self.f_t_ns, packet.ts_ns);
            out.end_row();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netalytics_data::Value;
    use netalytics_packet::TcpFlags;
    use std::net::Ipv4Addr;

    const C: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const S: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 9);

    fn parse(pkts: &[Packet]) -> Vec<DataTuple> {
        let mut p = HttpGetParser::new();
        let mut out = Vec::new();
        for pkt in pkts {
            p.on_packet(pkt, &mut out);
        }
        out
    }

    #[test]
    fn request_and_response_pair_by_id() {
        let req = Packet::tcp(
            C,
            4000,
            S,
            80,
            TcpFlags::PSH | TcpFlags::ACK,
            1,
            1,
            &http::build_get("/videos/7", "s"),
        );
        let resp = Packet::tcp(
            S,
            80,
            C,
            4000,
            TcpFlags::PSH | TcpFlags::ACK,
            1,
            2,
            &http::build_response(200, b"data"),
        );
        let out = parse(&[req, resp]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].get("url").and_then(Value::as_str), Some("/videos/7"));
        assert_eq!(out[1].get("status").and_then(Value::as_u64), Some(200));
        assert_eq!(out[0].id, out[1].id, "request/response join on one ID");
    }

    #[test]
    fn native_columnar_path_matches_row_path_exactly() {
        let req = Packet::tcp(
            C,
            4000,
            S,
            80,
            TcpFlags::PSH | TcpFlags::ACK,
            1,
            1,
            &http::build_get("/videos/7", "s"),
        );
        let resp = Packet::tcp(
            S,
            80,
            C,
            4000,
            TcpFlags::PSH | TcpFlags::ACK,
            1,
            2,
            &http::build_response(200, b"data"),
        );
        let rows = parse(&[req.clone(), resp.clone()]);
        let mut p = HttpGetParser::new();
        let mut b = netalytics_data::BatchBuilder::new();
        p.on_packet_columns(&req, &mut b);
        p.on_packet_columns(&resp, &mut b);
        let back: Vec<DataTuple> = b.finish().to_batch().into_tuples();
        assert_eq!(back, rows, "field order, types and ids all agree");
    }

    #[test]
    fn post_requests_skipped() {
        let post = Packet::tcp(
            C,
            4000,
            S,
            80,
            TcpFlags::PSH | TcpFlags::ACK,
            1,
            1,
            b"POST /submit HTTP/1.1\r\n\r\n",
        );
        assert!(parse(&[post]).is_empty());
    }

    #[test]
    fn empty_and_binary_payloads_skipped() {
        let empty = Packet::tcp(C, 4000, S, 80, TcpFlags::ACK, 1, 1, b"");
        let binary = Packet::tcp(C, 4000, S, 80, TcpFlags::ACK, 1, 1, &[0xde, 0xad, 0xbe]);
        assert!(parse(&[empty, binary]).is_empty());
    }

    #[test]
    fn udp_skipped() {
        let udp = Packet::udp(C, 1, S, 80, b"GET / HTTP/1.1\r\n");
        assert!(parse(&[udp]).is_empty());
    }
}
