//! `http_get` — parse HTTP GET requests and responses (Table 1, App layer).
//!
//! "We provide a http_get parser that can extract the URL of an HTTP GET
//! request" (§3.1); responses contribute the status code and, joined by
//! flow ID, per-URL timing (Fig. 13).

use netalytics_data::DataTuple;
use netalytics_packet::{http, Packet};

use crate::parser::Parser;

/// Extracts GET URLs from requests and status codes from responses.
#[derive(Debug, Default)]
pub struct HttpGetParser {
    _private: (),
}

impl HttpGetParser {
    /// Creates the parser.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Parser for HttpGetParser {
    fn name(&self) -> &'static str {
        "http_get"
    }

    fn on_packet(&mut self, packet: &Packet, out: &mut Vec<DataTuple>) {
        let Ok(view) = packet.view() else { return };
        if view.tcp.is_none() || view.payload.is_empty() {
            return;
        }
        let Some(flow) = packet.flow_key() else {
            return;
        };
        // Requests and responses of one connection share an ID so the
        // processor can pair them (canonical = direction-independent).
        let id = flow.canonical_hash();
        if let Some(req) = http::parse_request(view.payload) {
            if req.method == http::Method::Get {
                out.push(
                    DataTuple::new(id, packet.ts_ns)
                        .from_source(self.name())
                        .with("kind", "request")
                        .with("url", req.url)
                        .with("dst_ip", flow.dst_ip.to_string())
                        .with("t_ns", packet.ts_ns),
                );
            }
        } else if let Some(status) = http::parse_status(view.payload) {
            out.push(
                DataTuple::new(id, packet.ts_ns)
                    .from_source(self.name())
                    .with("kind", "response")
                    .with("status", u64::from(status))
                    .with("src_ip", flow.src_ip.to_string())
                    .with("t_ns", packet.ts_ns),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netalytics_data::Value;
    use netalytics_packet::TcpFlags;
    use std::net::Ipv4Addr;

    const C: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const S: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 9);

    fn parse(pkts: &[Packet]) -> Vec<DataTuple> {
        let mut p = HttpGetParser::new();
        let mut out = Vec::new();
        for pkt in pkts {
            p.on_packet(pkt, &mut out);
        }
        out
    }

    #[test]
    fn request_and_response_pair_by_id() {
        let req = Packet::tcp(
            C,
            4000,
            S,
            80,
            TcpFlags::PSH | TcpFlags::ACK,
            1,
            1,
            &http::build_get("/videos/7", "s"),
        );
        let resp = Packet::tcp(
            S,
            80,
            C,
            4000,
            TcpFlags::PSH | TcpFlags::ACK,
            1,
            2,
            &http::build_response(200, b"data"),
        );
        let out = parse(&[req, resp]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].get("url").and_then(Value::as_str), Some("/videos/7"));
        assert_eq!(out[1].get("status").and_then(Value::as_u64), Some(200));
        assert_eq!(out[0].id, out[1].id, "request/response join on one ID");
    }

    #[test]
    fn post_requests_skipped() {
        let post = Packet::tcp(
            C,
            4000,
            S,
            80,
            TcpFlags::PSH | TcpFlags::ACK,
            1,
            1,
            b"POST /submit HTTP/1.1\r\n\r\n",
        );
        assert!(parse(&[post]).is_empty());
    }

    #[test]
    fn empty_and_binary_payloads_skipped() {
        let empty = Packet::tcp(C, 4000, S, 80, TcpFlags::ACK, 1, 1, b"");
        let binary = Packet::tcp(C, 4000, S, 80, TcpFlags::ACK, 1, 1, &[0xde, 0xad, 0xbe]);
        assert!(parse(&[empty, binary]).is_empty());
    }

    #[test]
    fn udp_skipped() {
        let udp = Packet::udp(C, 1, S, 80, b"GET / HTTP/1.1\r\n");
        assert!(parse(&[udp]).is_empty());
    }
}
