//! The parser framework: pluggable protocol extractors (paper §3.1).
//!
//! "When a monitor is instantiated, it is instructed to run one or more
//! parsers, capable of extracting information related to a given protocol
//! or application. ... system administrators can develop their own parsers
//! with a simple interface: they define a packet handler function called
//! when each packet arrives and make use of the monitoring library's output
//! functions to emit the desired information."

use netalytics_data::DataTuple;
use netalytics_packet::Packet;

use crate::parsers;

/// A protocol parser running inside a monitor.
///
/// Implementations must be cheap per packet — parsers "simply extract a
/// small amount of data from each packet or produce aggregate statistics
/// about flows"; heavier analysis belongs in the stream processor.
///
/// # Examples
///
/// A custom parser counting packets per flow (the paper advertises ~12
/// lines for a new parser; this one is close):
///
/// ```
/// use netalytics_data::DataTuple;
/// use netalytics_monitor::Parser;
/// use netalytics_packet::Packet;
///
/// struct PktCount;
/// impl Parser for PktCount {
///     fn name(&self) -> &'static str { "pkt_count" }
///     fn on_packet(&mut self, pkt: &Packet, out: &mut Vec<DataTuple>) {
///         if let Some(flow) = pkt.flow_key() {
///             out.push(
///                 DataTuple::new(flow.stable_hash(), pkt.ts_ns)
///                     .from_source(self.name())
///                     .with("n", 1u64),
///             );
///         }
///     }
/// }
/// ```
pub trait Parser: Send {
    /// The registry name of this parser (e.g. `http_get`).
    fn name(&self) -> &'static str;

    /// Handles one packet, appending any emitted tuples to `out`.
    fn on_packet(&mut self, packet: &Packet, out: &mut Vec<DataTuple>);

    /// Periodic flush for parsers that aggregate across packets; called
    /// by the monitor between batches. Default: nothing buffered.
    fn flush(&mut self, _now_ns: u64, _out: &mut Vec<DataTuple>) {}
}

/// Names of all stock parsers, as listed in paper Table 1.
pub const STOCK_PARSERS: [&str; 6] = [
    "tcp_flow_key",
    "tcp_conn_time",
    "tcp_pkt_size",
    "memcached_get",
    "http_get",
    "mysql_query",
];

/// Instantiates a stock parser by registry name.
///
/// Returns `None` for unknown names; the query compiler validates names
/// against [`STOCK_PARSERS`] before deployment.
pub fn make_parser(name: &str) -> Option<Box<dyn Parser>> {
    Some(match name {
        "tcp_flow_key" => Box::new(parsers::TcpFlowKeyParser::new()),
        "tcp_conn_time" => Box::new(parsers::TcpConnTimeParser::new()),
        "tcp_pkt_size" => Box::new(parsers::TcpPktSizeParser::new()),
        "memcached_get" => Box::new(parsers::MemcachedGetParser::new()),
        "http_get" => Box::new(parsers::HttpGetParser::new()),
        "mysql_query" => Box::new(parsers::MysqlQueryParser::new()),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_stock_parsers_instantiate() {
        for name in STOCK_PARSERS {
            let p = make_parser(name).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(p.name(), name);
        }
    }

    #[test]
    fn unknown_parser_is_none() {
        assert!(make_parser("quic_spin_bit").is_none());
        assert!(make_parser("").is_none());
    }
}
