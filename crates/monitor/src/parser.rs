//! The parser framework: pluggable protocol extractors (paper §3.1).
//!
//! "When a monitor is instantiated, it is instructed to run one or more
//! parsers, capable of extracting information related to a given protocol
//! or application. ... system administrators can develop their own parsers
//! with a simple interface: they define a packet handler function called
//! when each packet arrives and make use of the monitoring library's output
//! functions to emit the desired information."

use netalytics_data::{BatchBuilder, DataTuple, FieldId};
use netalytics_packet::Packet;

use crate::parsers;

/// A protocol parser running inside a monitor.
///
/// Implementations must be cheap per packet — parsers "simply extract a
/// small amount of data from each packet or produce aggregate statistics
/// about flows"; heavier analysis belongs in the stream processor.
///
/// # Examples
///
/// A custom parser counting packets per flow (the paper advertises ~12
/// lines for a new parser; this one is close):
///
/// ```
/// use netalytics_data::DataTuple;
/// use netalytics_monitor::Parser;
/// use netalytics_packet::Packet;
///
/// struct PktCount;
/// impl Parser for PktCount {
///     fn name(&self) -> &'static str { "pkt_count" }
///     fn on_packet(&mut self, pkt: &Packet, out: &mut Vec<DataTuple>) {
///         if let Some(flow) = pkt.flow_key() {
///             out.push(
///                 DataTuple::new(flow.stable_hash(), pkt.ts_ns)
///                     .from_source(self.name())
///                     .with("n", 1u64),
///             );
///         }
///     }
/// }
/// ```
pub trait Parser: Send {
    /// The registry name of this parser (e.g. `http_get`).
    fn name(&self) -> &'static str;

    /// Handles one packet, appending any emitted tuples to `out`.
    fn on_packet(&mut self, packet: &Packet, out: &mut Vec<DataTuple>);

    /// Periodic flush for parsers that aggregate across packets; called
    /// by the monitor between batches. Default: nothing buffered.
    fn flush(&mut self, _now_ns: u64, _out: &mut Vec<DataTuple>) {}

    /// Columnar variant of [`Parser::on_packet`]: emissions go straight
    /// into a [`BatchBuilder`] (interned field ids, typed columns, arena
    /// strings) instead of heap [`DataTuple`]s. The default bridges
    /// through [`Parser::on_packet`], so every parser works under the
    /// columnar pipeline unchanged; hot parsers override it to skip the
    /// row detour (see `HttpGetParser`).
    fn on_packet_columns(&mut self, packet: &Packet, out: &mut BatchBuilder) {
        let mut rows = Vec::new();
        self.on_packet(packet, &mut rows);
        append_rows(out, &rows);
    }

    /// Columnar variant of [`Parser::flush`]; same default bridge as
    /// [`Parser::on_packet_columns`].
    fn flush_columns(&mut self, now_ns: u64, out: &mut BatchBuilder) {
        let mut rows = Vec::new();
        self.flush(now_ns, &mut rows);
        append_rows(out, &rows);
    }
}

/// Appends row-form tuples to a columnar builder — the bridge behind the
/// default [`Parser::on_packet_columns`]/[`Parser::flush_columns`].
pub fn append_rows(out: &mut BatchBuilder, rows: &[DataTuple]) {
    for t in rows {
        out.begin_row(t.id, t.ts_ns, &t.source);
        for (k, v) in &t.fields {
            out.field(FieldId::intern(k), v);
        }
        out.end_row();
    }
}

/// Names of all stock parsers, as listed in paper Table 1.
pub const STOCK_PARSERS: [&str; 6] = [
    "tcp_flow_key",
    "tcp_conn_time",
    "tcp_pkt_size",
    "memcached_get",
    "http_get",
    "mysql_query",
];

/// Instantiates a stock parser by registry name.
///
/// Returns `None` for unknown names; the query compiler validates names
/// against [`STOCK_PARSERS`] before deployment.
pub fn make_parser(name: &str) -> Option<Box<dyn Parser>> {
    Some(match name {
        "tcp_flow_key" => Box::new(parsers::TcpFlowKeyParser::new()),
        "tcp_conn_time" => Box::new(parsers::TcpConnTimeParser::new()),
        "tcp_pkt_size" => Box::new(parsers::TcpPktSizeParser::new()),
        "memcached_get" => Box::new(parsers::MemcachedGetParser::new()),
        "http_get" => Box::new(parsers::HttpGetParser::new()),
        "mysql_query" => Box::new(parsers::MysqlQueryParser::new()),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_stock_parsers_instantiate() {
        for name in STOCK_PARSERS {
            let p = make_parser(name).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(p.name(), name);
        }
    }

    #[test]
    fn unknown_parser_is_none() {
        assert!(make_parser("quic_spin_bit").is_none());
        assert!(make_parser("").is_none());
    }

    #[test]
    fn default_columnar_bridge_matches_row_output() {
        use netalytics_packet::TcpFlags;
        use std::net::Ipv4Addr;
        let pkt = Packet::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            4000,
            Ipv4Addr::new(10, 0, 0, 9),
            80,
            TcpFlags::ACK,
            1,
            1,
            b"x",
        );
        for name in STOCK_PARSERS {
            let mut rows = Vec::new();
            make_parser(name).unwrap().on_packet(&pkt, &mut rows);
            let mut b = BatchBuilder::new();
            make_parser(name).unwrap().on_packet_columns(&pkt, &mut b);
            let back: Vec<DataTuple> = b.finish().to_batch().into_tuples();
            assert_eq!(back, rows, "columnar bridge lossless for {name}");
        }
    }
}
