//! NFV packet monitor for the NetAlytics reproduction (paper §3.1, §5).
//!
//! A *monitor* is a software network function that receives a mirrored
//! packet stream, runs one or more protocol [`Parser`]s over every sampled
//! packet, and emits compact data tuples in batches toward the aggregation
//! layer. The paper builds this on DPDK; we reproduce its architecture —
//! zero-copy fan-out, per-parser queues and workers, early drops, batching
//! — on top of refcounted packet buffers and lock-free channels.
//!
//! Two execution forms share the same parsers:
//!
//! * [`Monitor`] — inline, deterministic; used on the discrete-event plane.
//! * [`Pipeline`] — threaded (collector + per-parser workers); used by the
//!   Fig. 5 throughput experiments.
//!
//! Sampling is by flow, not packet ([`FlowSampler`]), and adapts to
//! aggregation-layer back-pressure ([`FeedbackSignal`], §4.2).
//!
//! # Examples
//!
//! ```
//! use netalytics_monitor::{Monitor, MonitorConfig, SampleSpec};
//! use netalytics_packet::{http, Packet, TcpFlags};
//!
//! let mut monitor = Monitor::new(MonitorConfig {
//!     parsers: vec!["http_get".into(), "tcp_conn_time".into()],
//!     sample: SampleSpec::Auto,
//!     batch_size: 32,
//!     preagg: None,
//! })?;
//!
//! let syn = Packet::tcp("10.0.2.8".parse()?, 5555, "10.0.2.9".parse()?, 80,
//!                       TcpFlags::SYN, 0, 0, b"");
//! let get = Packet::tcp("10.0.2.8".parse()?, 5555, "10.0.2.9".parse()?, 80,
//!                       TcpFlags::PSH | TcpFlags::ACK, 1, 1,
//!                       &http::build_get("/index.html", "h1"));
//! monitor.process(&syn);
//! monitor.process(&get);
//! let tuples: usize = monitor.drain(0).iter().map(|b| b.len()).sum();
//! assert_eq!(tuples, 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod monitor;
pub mod parser;
pub mod parsers;
pub mod pipeline;
pub mod sampler;

pub use monitor::{Monitor, MonitorConfig, MonitorError, MonitorStats};
pub use parser::{append_rows, make_parser, Parser, STOCK_PARSERS};
pub use pipeline::{Pipeline, PipelineConfig, PipelineCounters, PipelineSummary};
pub use sampler::{FeedbackSignal, FlowSampler, SampleSpec};
