//! Property tests for the algebraic laws the reduction tree relies on:
//! merge must be associative and commutative (so partials can combine
//! in any grouping/order across bolts and executor modes) and the empty
//! sketch must be a merge identity (so an idle monitor's lack of deltas
//! changes nothing).
//!
//! CMS, HLL, and the quantile sketch merge *exactly* (elementwise
//! sum / max), so we assert structural equality. SpaceSaving merges
//! exactly while under capacity and within its error bound once
//! truncation kicks in, so commutativity/identity are structural but
//! associativity is asserted at the guarantee level: every reported
//! `(count, err)` still brackets the true count and `err ≤ N/capacity`.

use std::collections::HashMap;

use netalytics_sketch::{Cms, Hll, QuantileSketch, Sketch, SpaceSaving};
use proptest::prelude::*;

/// A small key universe so proptest generates plenty of collisions.
fn keys() -> impl Strategy<Value = Vec<(u8, u8)>> {
    proptest::collection::vec((0u8..32, 1u8..=4), 0..60)
}

fn cms_of(items: &[(u8, u8)]) -> Cms {
    let mut s = Cms::with_dims(64, 4);
    for &(k, n) in items {
        s.record(format!("k{k}").as_bytes(), u64::from(n));
    }
    s
}

fn hll_of(items: &[(u8, u8)]) -> Hll {
    let mut s = Hll::new(8);
    for &(k, _) in items {
        s.record(format!("k{k}").as_bytes());
    }
    s
}

fn quant_of(items: &[(u8, u8)]) -> QuantileSketch {
    let mut s = QuantileSketch::new();
    for &(k, n) in items {
        s.record(u64::from(k) * 100 + u64::from(n));
    }
    s
}

fn ss_of(items: &[(u8, u8)], capacity: usize) -> SpaceSaving {
    let mut s = SpaceSaving::with_capacity(capacity);
    for &(k, n) in items {
        s.record(&format!("k{k}"), u64::from(n));
    }
    s
}

fn merged<T: Clone>(a: &T, b: &T, f: impl Fn(&mut T, &T)) -> T {
    let mut out = a.clone();
    f(&mut out, b);
    out
}

proptest! {
    #[test]
    fn cms_merge_laws(a in keys(), b in keys(), c in keys()) {
        let (sa, sb, sc) = (cms_of(&a), cms_of(&b), cms_of(&c));
        let m = |x: &mut Cms, y: &Cms| x.merge(y).unwrap();
        // Commutative.
        prop_assert_eq!(merged(&sa, &sb, m), merged(&sb, &sa, m));
        // Associative.
        let ab_c = merged(&merged(&sa, &sb, m), &sc, m);
        let a_bc = merged(&sa, &merged(&sb, &sc, m), m);
        prop_assert_eq!(ab_c, a_bc);
        // Empty identity.
        prop_assert_eq!(merged(&sa, &Cms::with_dims(64, 4), m), sa);
    }

    #[test]
    fn cms_overestimates_only_within_bound(a in keys()) {
        let sketch = cms_of(&a);
        let mut exact: HashMap<u8, u64> = HashMap::new();
        for &(k, n) in &a {
            *exact.entry(k).or_default() += u64::from(n);
        }
        for k in 0u8..32 {
            let truth = exact.get(&k).copied().unwrap_or(0);
            let est = sketch.estimate(format!("k{k}").as_bytes());
            prop_assert!(est >= truth, "underestimate: {} < {}", est, truth);
            prop_assert!(
                est <= truth + sketch.error_bound(),
                "overestimate beyond eps*N: {} > {} + {}",
                est, truth, sketch.error_bound()
            );
        }
    }

    #[test]
    fn hll_merge_laws(a in keys(), b in keys(), c in keys()) {
        let (sa, sb, sc) = (hll_of(&a), hll_of(&b), hll_of(&c));
        let m = |x: &mut Hll, y: &Hll| x.merge(y).unwrap();
        prop_assert_eq!(merged(&sa, &sb, m), merged(&sb, &sa, m));
        let ab_c = merged(&merged(&sa, &sb, m), &sc, m);
        let a_bc = merged(&sa, &merged(&sb, &sc, m), m);
        prop_assert_eq!(ab_c, a_bc);
        prop_assert_eq!(merged(&sa, &Hll::new(8), m), sa.clone());
        // Idempotent: max-merge of a sketch with itself is itself.
        prop_assert_eq!(merged(&sa, &sa, m), sa);
    }

    #[test]
    fn quantile_merge_laws(a in keys(), b in keys(), c in keys()) {
        let (sa, sb, sc) = (quant_of(&a), quant_of(&b), quant_of(&c));
        let m = |x: &mut QuantileSketch, y: &QuantileSketch| x.merge(y).unwrap();
        prop_assert_eq!(merged(&sa, &sb, m), merged(&sb, &sa, m));
        let ab_c = merged(&merged(&sa, &sb, m), &sc, m);
        let a_bc = merged(&sa, &merged(&sb, &sc, m), m);
        prop_assert_eq!(ab_c, a_bc);
        prop_assert_eq!(merged(&sa, &QuantileSketch::new(), m), sa);
    }

    #[test]
    fn spacesaving_commutative_and_identity(a in keys(), b in keys()) {
        // Truncating capacity (8 < 32 possible keys) — commutativity and
        // the empty identity hold structurally even under truncation.
        let (sa, sb) = (ss_of(&a, 8), ss_of(&b, 8));
        let m = |x: &mut SpaceSaving, y: &SpaceSaving| x.merge(y).unwrap();
        prop_assert_eq!(merged(&sa, &sb, m), merged(&sb, &sa, m));
        prop_assert_eq!(merged(&sa, &SpaceSaving::with_capacity(8), m), sa);
    }

    #[test]
    fn spacesaving_associative_without_truncation(
        a in keys(), b in keys(), c in keys()
    ) {
        // Capacity covers the whole key universe: no eviction, no
        // truncation, merge is the exact keywise sum — fully associative.
        let (sa, sb, sc) = (ss_of(&a, 64), ss_of(&b, 64), ss_of(&c, 64));
        let m = |x: &mut SpaceSaving, y: &SpaceSaving| x.merge(y).unwrap();
        let ab_c = merged(&merged(&sa, &sb, m), &sc, m);
        let a_bc = merged(&sa, &merged(&sb, &sc, m), m);
        prop_assert_eq!(ab_c, a_bc);
    }

    #[test]
    fn spacesaving_merge_keeps_guarantees(a in keys(), b in keys(), c in keys()) {
        // Under truncation, any merge grouping still brackets the truth.
        let m = |x: &mut SpaceSaving, y: &SpaceSaving| x.merge(y).unwrap();
        let combined = merged(
            &merged(&ss_of(&a, 8), &ss_of(&b, 8), m),
            &ss_of(&c, 8),
            m,
        );
        let mut exact: HashMap<u8, u64> = HashMap::new();
        let mut n = 0u64;
        for &(k, w) in a.iter().chain(&b).chain(&c) {
            *exact.entry(k).or_default() += u64::from(w);
            n += u64::from(w);
        }
        prop_assert_eq!(combined.total(), n);
        for k in 0u8..32 {
            let truth = exact.get(&k).copied().unwrap_or(0);
            if let Some(e) = combined.estimate(&format!("k{k}")) {
                prop_assert!(e.count >= truth, "count below truth");
                prop_assert!(
                    e.count.saturating_sub(e.err) <= truth,
                    "lower bound {} above truth {}",
                    e.count - e.err, truth
                );
            }
        }
    }

    #[test]
    fn sketch_enum_wire_roundtrip(a in keys()) {
        for s in [
            Sketch::Cms(cms_of(&a)),
            Sketch::HeavyHitters(ss_of(&a, 8)),
            Sketch::Distinct(hll_of(&a)),
            Sketch::Quantile(quant_of(&a)),
        ] {
            let bytes = s.encode();
            prop_assert_eq!(Sketch::decode(&bytes).unwrap(), s);
        }
    }
}
