//! Count-Min Sketch with conservative update.
//!
//! A `depth × width` grid of counters. Each key hashes to one cell per
//! row; a point estimate is the minimum over its cells, which can only
//! overestimate, by at most `ε·N` with probability `1 − δ` for
//! `width = ⌈e/ε⌉`, `depth = ⌈ln(1/δ)⌉`. Conservative update bumps a
//! cell only as far as the new estimate requires, tightening the bound
//! in practice, at the cost of making *record* non-commutative — merge
//! stays an exact elementwise sum and keeps the overestimate guarantee.

use crate::hash::hash_bytes;
use crate::wire::{self, Reader, SketchError};

/// Seed base for the per-row hash functions (Kirsch–Mitzenmacher style:
/// row `i` uses seed `CMS_SEED + i`).
const CMS_SEED: u64 = 0x6373_6d73_6b65_7463; // "csmsketc"

/// Count-Min Sketch: bounded-memory point counts, overestimate-only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cms {
    width: u32,
    depth: u32,
    /// Row-major `depth × width` counter grid.
    counters: Vec<u64>,
    /// Total weight recorded (the `N` in the `ε·N` bound).
    total: u64,
}

impl Cms {
    /// Sketch whose point estimates overestimate by at most `eps * N`
    /// with probability `1 - delta`.
    pub fn new(eps: f64, delta: f64) -> Self {
        let eps = eps.clamp(1e-6, 1.0);
        let delta = delta.clamp(1e-9, 0.5);
        let width = (std::f64::consts::E / eps).ceil() as u32;
        let depth = ((1.0 / delta).ln().ceil() as u32).max(1);
        Self::with_dims(width.max(1), depth)
    }

    /// Sketch with explicit grid dimensions.
    pub fn with_dims(width: u32, depth: u32) -> Self {
        let width = width.max(1);
        let depth = depth.max(1);
        Cms {
            width,
            depth,
            counters: vec![0; (width as usize) * (depth as usize)],
            total: 0,
        }
    }

    pub fn width(&self) -> u32 {
        self.width
    }

    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Total weight recorded across all keys.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Guaranteed cap on overestimation: `⌈e/width · N⌉` (the `ε·N` bound).
    pub fn error_bound(&self) -> u64 {
        (std::f64::consts::E / self.width as f64 * self.total as f64).ceil() as u64
    }

    /// Bytes of counter state held in memory.
    pub fn memory_bytes(&self) -> usize {
        self.counters.len() * 8
    }

    #[inline]
    fn cell(&self, row: u32, key: &[u8]) -> usize {
        let h = hash_bytes(key, CMS_SEED.wrapping_add(u64::from(row)));
        (row as usize) * (self.width as usize) + (h % u64::from(self.width)) as usize
    }

    /// Add `n` occurrences of `key` (conservative update).
    pub fn record(&mut self, key: &[u8], n: u64) {
        if n == 0 {
            return;
        }
        let target = self.estimate(key).saturating_add(n);
        for row in 0..self.depth {
            let c = self.cell(row, key);
            if self.counters[c] < target {
                self.counters[c] = target;
            }
        }
        self.total = self.total.saturating_add(n);
    }

    /// Point estimate for `key`: at least the true count, at most
    /// `true + error_bound()` with probability `1 - δ`.
    pub fn estimate(&self, key: &[u8]) -> u64 {
        (0..self.depth)
            .map(|row| self.counters[self.cell(row, key)])
            .min()
            .unwrap_or(0)
    }

    /// Elementwise counter sum. Exact (associative + commutative); the
    /// merged sketch bounds error by `ε · (N₁ + N₂)`.
    pub fn merge(&mut self, other: &Cms) -> Result<(), SketchError> {
        if self.width != other.width || self.depth != other.depth {
            return Err(SketchError::Incompatible("cms dimensions differ"));
        }
        for (a, b) in self.counters.iter_mut().zip(other.counters.iter()) {
            *a = a.saturating_add(*b);
        }
        self.total = self.total.saturating_add(other.total);
        Ok(())
    }

    pub(crate) fn encode_into(&self, out: &mut Vec<u8>) {
        wire::put_u32(out, self.width);
        wire::put_u32(out, self.depth);
        wire::put_u64(out, self.total);
        let nonzero = self.counters.iter().filter(|&&c| c > 0).count();
        // Sparse cell = u32 index + u64 value; dense cell = u64.
        if nonzero * 12 < self.counters.len() * 8 {
            wire::put_u8(out, 1); // sparse
            wire::put_u32(out, nonzero as u32);
            for (i, &c) in self.counters.iter().enumerate() {
                if c > 0 {
                    wire::put_u32(out, i as u32);
                    wire::put_u64(out, c);
                }
            }
        } else {
            wire::put_u8(out, 0); // dense
            for &c in &self.counters {
                wire::put_u64(out, c);
            }
        }
    }

    pub(crate) fn decode_from(r: &mut Reader<'_>) -> Result<Self, SketchError> {
        let width = r.u32("cms width")?;
        let depth = r.u32("cms depth")?;
        let cells = (width as usize)
            .checked_mul(depth as usize)
            .filter(|&n| (1..=1 << 28).contains(&n))
            .ok_or(SketchError::Corrupt("cms dimensions out of range"))?;
        let total = r.u64("cms total")?;
        let mut counters = vec![0u64; cells];
        match r.u8("cms mode")? {
            0 => {
                for c in counters.iter_mut() {
                    *c = r.u64("cms cell")?;
                }
            }
            1 => {
                let n = r.u32("cms nonzero")? as usize;
                for _ in 0..n {
                    let idx = r.u32("cms index")? as usize;
                    let val = r.u64("cms value")?;
                    *counters
                        .get_mut(idx)
                        .ok_or(SketchError::Corrupt("cms index out of range"))? = val;
                }
            }
            _ => return Err(SketchError::Corrupt("cms mode")),
        }
        Ok(Cms {
            width,
            depth,
            counters,
            total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_underestimates() {
        let mut cms = Cms::new(0.01, 0.01);
        for i in 0..1000u32 {
            cms.record(format!("k{}", i % 50).as_bytes(), 1);
        }
        assert_eq!(cms.total(), 1000);
        for i in 0..50u32 {
            let est = cms.estimate(format!("k{i}").as_bytes());
            assert!(est >= 20, "k{i} underestimated: {est}");
            assert!(est <= 20 + cms.error_bound());
        }
        assert_eq!(cms.estimate(b"never-seen"), 0);
    }

    #[test]
    fn merge_is_exact_counter_sum() {
        let mut a = Cms::new(0.01, 0.01);
        let mut b = Cms::new(0.01, 0.01);
        let mut all = Cms::new(0.01, 0.01);
        for i in 0..100u32 {
            let k = format!("k{i}");
            a.record(k.as_bytes(), 2);
            all.record(k.as_bytes(), 2);
        }
        for i in 50..150u32 {
            let k = format!("k{i}");
            b.record(k.as_bytes(), 3);
        }
        a.merge(&b).unwrap();
        assert_eq!(a.total(), 100 * 2 + 100 * 3);
        // Merged estimate at least the sum of the parts' true counts.
        assert!(a.estimate(b"k60") >= 5);
        // Still no underestimate relative to `all` + b's contribution.
        assert!(a.estimate(b"k10") >= all.estimate(b"k10"));
    }

    #[test]
    fn merge_rejects_dimension_mismatch() {
        let mut a = Cms::with_dims(16, 4);
        let b = Cms::with_dims(32, 4);
        assert_eq!(
            a.merge(&b),
            Err(SketchError::Incompatible("cms dimensions differ"))
        );
    }
}
