//! SpaceSaving heavy hitters (Metwally et al.).
//!
//! Keeps at most `capacity = ⌈1/ε⌉` monitored keys. When a new key
//! arrives at a full table it *replaces* the minimum-count entry,
//! inheriting its count as an error floor. Every reported count `c`
//! with error `e` brackets the truth: `c − e ≤ true ≤ c`, and
//! `e ≤ N / capacity = ε·N`. Any key whose true count exceeds `ε·N`
//! is guaranteed to be in the table.
//!
//! Entries live in a `BTreeMap` so iteration — and therefore eviction
//! tie-breaks, merge truncation, and `top(k)` — is deterministic: the
//! same input stream always yields byte-identical state, regardless of
//! executor mode or hasher randomization.

use std::collections::BTreeMap;

use crate::wire::{self, Reader, SketchError};

/// Monitored-counter entry: estimated count and its error floor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SsEntry {
    /// Estimated count — never below the true count.
    pub count: u64,
    /// Maximum overestimation: `count - err <= true <= count`.
    pub err: u64,
}

/// SpaceSaving summary: top keys of a stream in `O(1/ε)` memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpaceSaving {
    capacity: usize,
    entries: BTreeMap<String, SsEntry>,
    /// Total weight recorded or merged in (the `N` in `ε·N`).
    total: u64,
}

impl SpaceSaving {
    /// Summary guaranteeing per-key error at most `eps * N`.
    pub fn new(eps: f64) -> Self {
        let eps = eps.clamp(1e-6, 1.0);
        Self::with_capacity((1.0 / eps).ceil() as usize)
    }

    /// Summary holding at most `capacity` monitored keys.
    pub fn with_capacity(capacity: usize) -> Self {
        SpaceSaving {
            capacity: capacity.max(1),
            entries: BTreeMap::new(),
            total: 0,
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of keys currently monitored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total weight observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Worst-case overestimation of any reported count: `⌈N / capacity⌉`.
    pub fn error_bound(&self) -> u64 {
        self.total.div_ceil(self.capacity as u64)
    }

    /// Approximate bytes of state held in memory.
    pub fn memory_bytes(&self) -> usize {
        self.entries
            .keys()
            .map(|k| k.len() + std::mem::size_of::<SsEntry>() + 48)
            .sum()
    }

    /// The count every absent key is known not to exceed: the minimum
    /// monitored count once the table is full, zero before that.
    pub fn floor(&self) -> u64 {
        if self.entries.len() < self.capacity {
            0
        } else {
            self.entries.values().map(|e| e.count).min().unwrap_or(0)
        }
    }

    /// Add `n` occurrences of `key`.
    pub fn record(&mut self, key: &str, n: u64) {
        if n == 0 {
            return;
        }
        self.total = self.total.saturating_add(n);
        if let Some(e) = self.entries.get_mut(key) {
            e.count = e.count.saturating_add(n);
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries
                .insert(key.to_owned(), SsEntry { count: n, err: 0 });
            return;
        }
        // Evict the minimum-count entry; ties break on the smallest key
        // (BTreeMap iteration order) so eviction is deterministic.
        let victim = self
            .entries
            .iter()
            .min_by(|a, b| a.1.count.cmp(&b.1.count).then_with(|| a.0.cmp(b.0)))
            .map(|(k, e)| (k.clone(), e.count))
            .expect("non-empty at capacity");
        self.entries.remove(&victim.0);
        self.entries.insert(
            key.to_owned(),
            SsEntry {
                count: victim.1.saturating_add(n),
                err: victim.1,
            },
        );
    }

    /// Estimated count and error for a monitored key. Absent keys have
    /// true count at most [`SpaceSaving::floor`].
    pub fn estimate(&self, key: &str) -> Option<SsEntry> {
        self.entries.get(key).copied()
    }

    /// The top `k` keys as `(key, count, err)`, sorted by count
    /// descending with ties broken by key ascending.
    pub fn top(&self, k: usize) -> Vec<(String, u64, u64)> {
        let mut all: Vec<_> = self
            .entries
            .iter()
            .map(|(key, e)| (key.clone(), e.count, e.err))
            .collect();
        all.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }

    /// Merge two summaries (Agarwal et al.'s mergeable-summaries
    /// construction). A key absent from one side contributes that side's
    /// floor as both count and error. The union is then truncated back
    /// to `capacity` keeping the largest counts (ties by key), so the
    /// merged summary still brackets every key:
    /// `count − err ≤ true ≤ count` with `err ≤ (N₁+N₂)/capacity`.
    ///
    /// Commutative by construction; associative exactly whenever no
    /// truncation occurs (e.g. fewer than `capacity` distinct keys), and
    /// within the error bound otherwise.
    pub fn merge(&mut self, other: &SpaceSaving) -> Result<(), SketchError> {
        if self.capacity != other.capacity {
            return Err(SketchError::Incompatible("spacesaving capacities differ"));
        }
        let floor_a = self.floor();
        let floor_b = other.floor();
        let mut merged: BTreeMap<String, SsEntry> = BTreeMap::new();
        for (key, a) in &self.entries {
            let (bc, be) = match other.entries.get(key) {
                Some(b) => (b.count, b.err),
                None => (floor_b, floor_b),
            };
            merged.insert(
                key.clone(),
                SsEntry {
                    count: a.count.saturating_add(bc),
                    err: a.err.saturating_add(be),
                },
            );
        }
        for (key, b) in &other.entries {
            if self.entries.contains_key(key) {
                continue;
            }
            merged.insert(
                key.clone(),
                SsEntry {
                    count: b.count.saturating_add(floor_a),
                    err: b.err.saturating_add(floor_a),
                },
            );
        }
        if merged.len() > self.capacity {
            let mut ranked: Vec<_> = merged.into_iter().collect();
            ranked.sort_by(|a, b| b.1.count.cmp(&a.1.count).then_with(|| a.0.cmp(&b.0)));
            ranked.truncate(self.capacity);
            merged = ranked.into_iter().collect();
        }
        self.entries = merged;
        self.total = self.total.saturating_add(other.total);
        Ok(())
    }

    pub(crate) fn encode_into(&self, out: &mut Vec<u8>) {
        wire::put_u32(out, self.capacity as u32);
        wire::put_u64(out, self.total);
        wire::put_u32(out, self.entries.len() as u32);
        for (key, e) in &self.entries {
            wire::put_str16(out, key);
            wire::put_u64(out, e.count);
            wire::put_u64(out, e.err);
        }
    }

    pub(crate) fn decode_from(r: &mut Reader<'_>) -> Result<Self, SketchError> {
        let capacity = r.u32("ss capacity")? as usize;
        if capacity == 0 || capacity > 1 << 24 {
            return Err(SketchError::Corrupt("ss capacity out of range"));
        }
        let total = r.u64("ss total")?;
        let n = r.u32("ss entries")? as usize;
        if n > capacity {
            return Err(SketchError::Corrupt("ss entry count exceeds capacity"));
        }
        let mut entries = BTreeMap::new();
        for _ in 0..n {
            let key = r.str16("ss key")?.to_owned();
            let count = r.u64("ss count")?;
            let err = r.u64("ss err")?;
            entries.insert(key, SsEntry { count, err });
        }
        Ok(SpaceSaving {
            capacity,
            entries,
            total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brackets_true_counts() {
        let mut ss = SpaceSaving::with_capacity(10);
        // 5 heavy keys (100 each) over a churn of 200 singletons.
        for round in 0..100u32 {
            for h in 0..5u32 {
                ss.record(&format!("heavy{h}"), 1);
            }
            ss.record(&format!("noise{}", round % 200), 1);
            ss.record(&format!("noise{}", 200 + round), 1);
        }
        let n = ss.total();
        assert_eq!(n, 700);
        for h in 0..5u32 {
            let e = ss.estimate(&format!("heavy{h}")).expect("heavy key kept");
            assert!(e.count >= 100, "count {} below truth", e.count);
            assert!(e.count - e.err <= 100, "lower bound above truth");
            assert!(e.err <= ss.error_bound());
        }
        let top = ss.top(5);
        assert_eq!(top.len(), 5);
        assert!(top.iter().all(|(k, _, _)| k.starts_with("heavy")));
    }

    #[test]
    fn top_ties_break_by_key() {
        let mut ss = SpaceSaving::with_capacity(8);
        for k in ["zeta", "alpha", "mid"] {
            ss.record(k, 7);
        }
        let top = ss.top(3);
        assert_eq!(
            top.iter().map(|(k, _, _)| k.as_str()).collect::<Vec<_>>(),
            vec!["alpha", "mid", "zeta"]
        );
    }

    #[test]
    fn merge_without_truncation_is_exact_sum() {
        let mut a = SpaceSaving::with_capacity(100);
        let mut b = SpaceSaving::with_capacity(100);
        a.record("x", 5);
        a.record("y", 2);
        b.record("x", 3);
        b.record("z", 9);
        a.merge(&b).unwrap();
        assert_eq!(a.total(), 19);
        assert_eq!(a.estimate("x"), Some(SsEntry { count: 8, err: 0 }));
        assert_eq!(a.estimate("z"), Some(SsEntry { count: 9, err: 0 }));
    }

    #[test]
    fn merge_rejects_capacity_mismatch() {
        let mut a = SpaceSaving::with_capacity(4);
        let b = SpaceSaving::with_capacity(8);
        assert!(matches!(a.merge(&b), Err(SketchError::Incompatible(_))));
    }
}
