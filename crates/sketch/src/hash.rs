//! Hashing shared by every sketch.
//!
//! All structures key on byte strings and need 64-bit hashes that are
//! (a) cheap, (b) well-mixed enough for HyperLogLog's leading-zero
//! statistics, and (c) stable across runs and machines — the wire format
//! ships raw counter tables, so a decoder must index them with the very
//! same function the encoder used. FNV-1a provides the cheap byte walk;
//! a `splitmix64` finalizer repairs FNV's weak avalanche in the high
//! bits that HLL reads.

/// `splitmix64` finalizer: full-avalanche bijective mixing.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Seeded 64-bit hash of a byte string (FNV-1a walk + splitmix64 mix).
///
/// Different `seed`s give effectively independent hash functions — the
/// Count-Min rows and the HyperLogLog each use their own.
#[inline]
pub fn hash_bytes(data: &[u8], seed: u64) -> u64 {
    let mut h = FNV_OFFSET ^ mix64(seed);
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    mix64(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_give_distinct_functions() {
        let a = hash_bytes(b"/index.html", 0);
        let b = hash_bytes(b"/index.html", 1);
        assert_ne!(a, b);
        // Stable across calls (wire-format requirement).
        assert_eq!(a, hash_bytes(b"/index.html", 0));
    }

    #[test]
    fn high_bits_are_mixed() {
        // HLL reads the top bits; sequential keys must not collide there.
        let mut tops = std::collections::HashSet::new();
        for i in 0..1000u32 {
            tops.insert(hash_bytes(format!("key-{i}").as_bytes(), 7) >> 52);
        }
        // Birthday bound: ~887 distinct bins expected for 1000 keys
        // into 4096; far fewer means the top bits are poorly mixed.
        assert!(tops.len() > 820, "top-12-bit spread: {}", tops.len());
    }
}
