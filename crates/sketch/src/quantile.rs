//! Log-bucketed quantile sketch.
//!
//! A thin mergeable wrapper over the telemetry plane's
//! [`HistogramSnapshot`] — the same HdrHistogram-style bucket layout
//! (`netalytics_telemetry::bucket_index`) that the self-telemetry
//! histograms use, so a quantile computed by a sketch bolt and one
//! computed from `MetricsRegistry` output agree bucket-for-bucket.
//! Relative quantile error is bounded by the bucket width: `1/8`
//! (12.5 %). Merge is an elementwise bucket sum — exact, associative,
//! and commutative.

use netalytics_telemetry::HistogramSnapshot;

use crate::wire::{self, Reader, SketchError};

/// Mergeable quantile summary over non-negative values.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QuantileSketch {
    snap: HistogramSnapshot,
}

impl QuantileSketch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one value. Negative inputs clamp to zero, fractional
    /// inputs round — the same convention the store's rollups use.
    pub fn record_f64(&mut self, v: f64) {
        self.snap.record(v.max(0.0).round() as u64);
    }

    /// Record one integer value.
    pub fn record(&mut self, v: u64) {
        self.snap.record(v);
    }

    pub fn count(&self) -> u64 {
        self.snap.count()
    }

    pub fn sum(&self) -> u64 {
        self.snap.sum()
    }

    pub fn max(&self) -> u64 {
        self.snap.max()
    }

    pub fn mean(&self) -> f64 {
        self.snap.mean()
    }

    /// Quantile estimate (`0.0 ..= 1.0`), within one log-bucket of exact.
    pub fn quantile(&self, q: f64) -> u64 {
        self.snap.quantile(q)
    }

    /// The underlying bucket snapshot, for callers that want the full
    /// distribution (e.g. the store folding it into a rollup).
    pub fn snapshot(&self) -> &HistogramSnapshot {
        &self.snap
    }

    /// Approximate bytes of state held in memory (the dense bucket table).
    pub fn memory_bytes(&self) -> usize {
        netalytics_telemetry::BUCKETS * 8 + 24
    }

    /// Elementwise bucket sum — exact, associative, commutative.
    pub fn merge(&mut self, other: &QuantileSketch) -> Result<(), SketchError> {
        self.snap.merge(&other.snap);
        Ok(())
    }

    pub(crate) fn encode_into(&self, out: &mut Vec<u8>) {
        wire::put_u64(out, self.snap.sum());
        wire::put_u64(out, self.snap.max());
        let nonzero: Vec<(usize, u64)> = self.snap.nonzero_buckets().collect();
        wire::put_u32(out, nonzero.len() as u32);
        for (idx, c) in nonzero {
            wire::put_u16(out, idx as u16);
            wire::put_u64(out, c);
        }
    }

    pub(crate) fn decode_from(r: &mut Reader<'_>) -> Result<Self, SketchError> {
        let sum = r.u64("quantile sum")?;
        let max = r.u64("quantile max")?;
        let n = r.u32("quantile buckets")? as usize;
        let mut buckets = Vec::with_capacity(n.min(netalytics_telemetry::BUCKETS));
        for _ in 0..n {
            let idx = r.u16("quantile bucket index")? as usize;
            if idx >= netalytics_telemetry::BUCKETS {
                return Err(SketchError::Corrupt("quantile bucket index out of range"));
            }
            buckets.push((idx, r.u64("quantile bucket count")?));
        }
        Ok(QuantileSketch {
            snap: HistogramSnapshot::from_parts(buckets, sum, max),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_track_distribution() {
        let mut q = QuantileSketch::new();
        for v in 1..=1000u64 {
            q.record(v);
        }
        assert_eq!(q.count(), 1000);
        let p50 = q.quantile(0.5) as f64;
        assert!((440.0..=510.0).contains(&p50), "p50 = {p50}");
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        let mut all = QuantileSketch::new();
        for v in [1u64, 5, 80, 4096] {
            a.record(v);
            all.record(v);
        }
        for v in [2u64, 9, 700] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b).unwrap();
        assert_eq!(a, all);
    }

    #[test]
    fn negative_values_clamp() {
        let mut q = QuantileSketch::new();
        q.record_f64(-3.5);
        q.record_f64(2.6);
        assert_eq!(q.count(), 2);
        assert_eq!(q.max(), 3);
    }
}
