//! Monitor-side pre-aggregation.
//!
//! When a query's processor is sketch-backed, the monitor does not need
//! to ship every parsed tuple — it can fold tuples into a per-window
//! sketch *at the tap point* and ship one small delta per flush. The
//! aggregation bolts merge deltas exactly as they merge each other's
//! partials, so the answer is unchanged while queue traffic drops from
//! `O(tuples)` to `O(flushes)` — the bandwidth the placement layer
//! optimizes (paper §5's 10:1 reduction, taken much further).
//!
//! A [`PreAgg`] owns one sketch and the field mapping derived from the
//! query ([`PreAggSpec`]). `offer` consumes matching tuples;
//! `take_delta` emits the accumulated sketch as a tuple and resets, so
//! each observation is shipped exactly once and downstream sum-style
//! merges stay correct.

use netalytics_data::DataTuple;

use crate::{value_key_bytes, Hll, QuantileSketch, Sketch, SpaceSaving};

/// Which sketch a monitor should fold tuples into, derived from the
/// query's `PROCESS` operator by the orchestrator.
#[derive(Debug, Clone, PartialEq)]
pub enum PreAggSpec {
    /// Fold `key_field` occurrences into a SpaceSaving summary.
    HeavyHitters {
        /// Tuple field holding the key (e.g. `url`).
        key_field: String,
        /// Per-key error bound as a fraction of total weight.
        eps: f64,
    },
    /// Fold `field` values into a HyperLogLog distinct count.
    Distinct {
        /// Tuple field whose distinct values are counted.
        field: String,
        /// HLL precision (`2^p` registers).
        precision: u8,
    },
    /// Fold numeric `value_field` observations into a quantile sketch.
    Quantile {
        /// Tuple field holding the observed value (e.g. `t_ns`).
        value_field: String,
    },
}

impl PreAggSpec {
    /// A fresh, empty sketch of the right shape for this spec.
    pub fn fresh(&self) -> Sketch {
        match self {
            PreAggSpec::HeavyHitters { eps, .. } => Sketch::HeavyHitters(SpaceSaving::new(*eps)),
            PreAggSpec::Distinct { precision, .. } => Sketch::Distinct(Hll::new(*precision)),
            PreAggSpec::Quantile { .. } => Sketch::Quantile(QuantileSketch::new()),
        }
    }
}

/// Per-monitor sketch accumulator.
#[derive(Debug, Clone)]
pub struct PreAgg {
    spec: PreAggSpec,
    sketch: Sketch,
    folded: u64,
}

impl PreAgg {
    pub fn new(spec: PreAggSpec) -> Self {
        let sketch = spec.fresh();
        PreAgg {
            spec,
            sketch,
            folded: 0,
        }
    }

    pub fn spec(&self) -> &PreAggSpec {
        &self.spec
    }

    /// Tuples folded since the last [`PreAgg::take_delta`].
    pub fn folded(&self) -> u64 {
        self.folded
    }

    pub fn is_empty(&self) -> bool {
        self.folded == 0
    }

    /// Try to fold one parsed tuple into the sketch.
    ///
    /// Returns `true` when the tuple was absorbed (the caller must NOT
    /// also ship it raw); `false` when the tuple lacks the field the
    /// spec needs — the caller passes it through unchanged so no data
    /// is silently dropped.
    pub fn offer(&mut self, t: &DataTuple) -> bool {
        match (&self.spec, &mut self.sketch) {
            (PreAggSpec::HeavyHitters { key_field, .. }, Sketch::HeavyHitters(ss)) => {
                let Some(v) = t.get(key_field) else {
                    return false;
                };
                match v.as_str() {
                    Some(key) => ss.record(key, 1),
                    None => ss.record(&String::from_utf8_lossy(&value_key_bytes(v)), 1),
                }
            }
            (PreAggSpec::Distinct { field, .. }, Sketch::Distinct(hll)) => {
                let Some(v) = t.get(field) else {
                    return false;
                };
                hll.record(&value_key_bytes(v));
            }
            (PreAggSpec::Quantile { value_field }, Sketch::Quantile(q)) => {
                let Some(v) = t.get(value_field).and_then(|v| v.as_f64()) else {
                    return false;
                };
                q.record_f64(v);
            }
            _ => return false,
        }
        self.folded += 1;
        true
    }

    /// Take the accumulated sketch as a shippable delta tuple and reset.
    ///
    /// `None` when nothing was folded since the last delta. Emitting
    /// *and resetting* is what keeps downstream sum-style merges exact:
    /// each folded observation appears in exactly one delta.
    pub fn take_delta(&mut self, ts_ns: u64, window_end_ns: u64) -> Option<DataTuple> {
        if self.folded == 0 {
            return None;
        }
        let delta = std::mem::replace(&mut self.sketch, self.spec.fresh());
        self.folded = 0;
        Some(delta.into_tuple(ts_ns, window_end_ns))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netalytics_data::Value;

    fn http(url: &str, t_ns: u64) -> DataTuple {
        DataTuple::new(1, 100)
            .from_source("http")
            .with("url", url)
            .with("t_ns", t_ns)
    }

    #[test]
    fn folds_and_resets_exactly_once() {
        let mut pa = PreAgg::new(PreAggSpec::HeavyHitters {
            key_field: "url".into(),
            eps: 0.01,
        });
        for _ in 0..5 {
            assert!(pa.offer(&http("/a", 1)));
        }
        assert!(pa.offer(&http("/b", 1)));
        // Missing field: passes through, not folded.
        assert!(!pa.offer(&DataTuple::new(2, 100).from_source("dns")));
        assert_eq!(pa.folded(), 6);

        let delta = pa.take_delta(200, 10_000).expect("delta");
        assert!(pa.is_empty());
        assert!(pa.take_delta(300, 10_000).is_none());

        let Sketch::HeavyHitters(ss) = Sketch::from_tuple(&delta).unwrap().unwrap() else {
            panic!("wrong kind");
        };
        assert_eq!(ss.estimate("/a").map(|e| e.count), Some(5));
        assert_eq!(ss.total(), 6);
        assert_eq!(
            delta.get(crate::FIELD_WINDOW_END).and_then(Value::as_u64),
            Some(10_000)
        );
    }

    #[test]
    fn quantile_and_distinct_specs_fold() {
        let mut q = PreAgg::new(PreAggSpec::Quantile {
            value_field: "t_ns".into(),
        });
        assert!(q.offer(&http("/a", 500)));
        assert!(!q.offer(&DataTuple::new(3, 1).from_source("http").with("url", "/x")));
        let t = q.take_delta(1, 2).unwrap();
        let Sketch::Quantile(qs) = Sketch::from_tuple(&t).unwrap().unwrap() else {
            panic!("wrong kind");
        };
        assert_eq!(qs.count(), 1);

        let mut d = PreAgg::new(PreAggSpec::Distinct {
            field: "url".into(),
            precision: 12,
        });
        for i in 0..100 {
            assert!(d.offer(&http(&format!("/page/{i}"), 1)));
            assert!(d.offer(&http(&format!("/page/{i}"), 2)));
        }
        let t = d.take_delta(1, 2).unwrap();
        let Sketch::Distinct(hll) = Sketch::from_tuple(&t).unwrap().unwrap() else {
            panic!("wrong kind");
        };
        let est = hll.estimate();
        assert!((90.0..=110.0).contains(&est), "estimate {est}");
    }
}
