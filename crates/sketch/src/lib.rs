//! # netalytics-sketch
//!
//! Mergeable probabilistic summaries for bounded-memory analytics:
//!
//! - [`Cms`] — Count-Min Sketch point counts (conservative update,
//!   overestimate-only within `ε·N`),
//! - [`SpaceSaving`] — heavy hitters with per-key error bounds in
//!   `O(1/ε)` entries,
//! - [`Hll`] — HyperLogLog distinct counts (~1.6 % error in 4 KiB),
//! - [`QuantileSketch`] — log-bucketed quantiles sharing bucket math
//!   with the telemetry plane's `Histogram`.
//!
//! Every structure merges associatively and commutatively (property-
//! tested), which is what lets the stream layer run the paper's
//! intermediate → total parallel-reduction tree over *summaries*
//! instead of exact per-key state, and lets monitors pre-aggregate
//! tuples into per-window sketch deltas before anything crosses the
//! queue. The [`Sketch`] enum gives all four a single versioned wire
//! encoding ([`wire::MAGIC`], [`wire::VERSION`]) that rides inside a
//! normal `DataTuple` as a bytes field — no codec changes, sketches are
//! just another tuple payload.

mod cms;
mod hash;
mod hll;
mod preagg;
mod quantile;
mod spacesaving;
pub mod wire;

pub use cms::Cms;
pub use hash::{hash_bytes, mix64};
pub use hll::{Hll, DEFAULT_PRECISION};
pub use preagg::{PreAgg, PreAggSpec};
pub use quantile::QuantileSketch;
pub use spacesaving::{SpaceSaving, SsEntry};
pub use wire::SketchError;

use netalytics_data::{DataTuple, Value};

/// `DataTuple::source` of every sketch-carrying tuple.
pub const SKETCH_SOURCE: &str = "sketch";
/// Field holding the encoded sketch bytes.
pub const FIELD_SKETCH: &str = "sketch";
/// Field holding the weight (observations folded into the sketch).
pub const FIELD_N: &str = "n";
/// Field holding the end of the event-time window the sketch covers.
pub const FIELD_WINDOW_END: &str = "window_end";

/// A tagged mergeable summary — the unit that crosses the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum Sketch {
    /// Count-Min point counts.
    Cms(Cms),
    /// SpaceSaving heavy hitters.
    HeavyHitters(SpaceSaving),
    /// HyperLogLog distinct count.
    Distinct(Hll),
    /// Log-bucketed quantile summary.
    Quantile(QuantileSketch),
}

impl Sketch {
    /// Human-readable kind name (matches the query-language operator).
    pub fn kind(&self) -> &'static str {
        match self {
            Sketch::Cms(_) => "cms",
            Sketch::HeavyHitters(_) => "heavy-hitters",
            Sketch::Distinct(_) => "distinct",
            Sketch::Quantile(_) => "quantile",
        }
    }

    /// Total weight folded in: recorded observations (estimate for HLL,
    /// which by construction does not track a total).
    pub fn weight(&self) -> u64 {
        match self {
            Sketch::Cms(s) => s.total(),
            Sketch::HeavyHitters(s) => s.total(),
            Sketch::Distinct(s) => s.estimate().round() as u64,
            Sketch::Quantile(s) => s.count(),
        }
    }

    /// Approximate bytes of in-memory state — the bounded footprint the
    /// acceptance criteria compare against exact `HashMap` bolts.
    pub fn memory_bytes(&self) -> usize {
        match self {
            Sketch::Cms(s) => s.memory_bytes(),
            Sketch::HeavyHitters(s) => s.memory_bytes(),
            Sketch::Distinct(s) => s.memory_bytes(),
            Sketch::Quantile(s) => s.memory_bytes(),
        }
    }

    /// Merge another sketch of the same kind and dimensions.
    ///
    /// # Errors
    ///
    /// [`SketchError::Incompatible`] on kind or dimension mismatch.
    pub fn merge(&mut self, other: &Sketch) -> Result<(), SketchError> {
        match (self, other) {
            (Sketch::Cms(a), Sketch::Cms(b)) => a.merge(b),
            (Sketch::HeavyHitters(a), Sketch::HeavyHitters(b)) => a.merge(b),
            (Sketch::Distinct(a), Sketch::Distinct(b)) => a.merge(b),
            (Sketch::Quantile(a), Sketch::Quantile(b)) => a.merge(b),
            _ => Err(SketchError::Incompatible("sketch kinds differ")),
        }
    }

    /// Serialize to the compact versioned wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match self {
            Sketch::Cms(s) => {
                wire::put_header(&mut out, wire::KIND_CMS);
                s.encode_into(&mut out);
            }
            Sketch::HeavyHitters(s) => {
                wire::put_header(&mut out, wire::KIND_SPACESAVING);
                s.encode_into(&mut out);
            }
            Sketch::Distinct(s) => {
                wire::put_header(&mut out, wire::KIND_HLL);
                s.encode_into(&mut out);
            }
            Sketch::Quantile(s) => {
                wire::put_header(&mut out, wire::KIND_QUANTILE);
                s.encode_into(&mut out);
            }
        }
        out
    }

    /// Decode a sketch from its wire bytes.
    ///
    /// # Errors
    ///
    /// [`SketchError`] on truncated, corrupt, or unsupported input.
    pub fn decode(buf: &[u8]) -> Result<Self, SketchError> {
        let (kind, mut r) = wire::read_header(buf)?;
        match kind {
            wire::KIND_CMS => Ok(Sketch::Cms(Cms::decode_from(&mut r)?)),
            wire::KIND_SPACESAVING => Ok(Sketch::HeavyHitters(SpaceSaving::decode_from(&mut r)?)),
            wire::KIND_HLL => Ok(Sketch::Distinct(Hll::decode_from(&mut r)?)),
            wire::KIND_QUANTILE => Ok(Sketch::Quantile(QuantileSketch::decode_from(&mut r)?)),
            _ => Err(SketchError::Corrupt("unknown sketch kind")),
        }
    }

    /// Wrap this sketch in a [`DataTuple`] so it can ride a normal
    /// `TupleBatch` through the existing codec and queue.
    pub fn into_tuple(self, ts_ns: u64, window_end_ns: u64) -> DataTuple {
        let bytes = self.encode();
        let id = hash_bytes(&bytes, 0);
        DataTuple::new(id, ts_ns)
            .from_source(SKETCH_SOURCE)
            .with(FIELD_SKETCH, bytes)
            .with(FIELD_N, self.weight())
            .with(FIELD_WINDOW_END, window_end_ns)
    }

    /// Recognize and decode a sketch-carrying tuple.
    ///
    /// `None` for ordinary tuples; `Some(Err(..))` when the tuple claims
    /// to carry a sketch but the bytes do not decode.
    pub fn from_tuple(t: &DataTuple) -> Option<Result<Sketch, SketchError>> {
        if t.source != SKETCH_SOURCE {
            return None;
        }
        let bytes = t.get(FIELD_SKETCH)?.as_bytes()?;
        Some(Sketch::decode(bytes))
    }
}

/// Canonical byte representation of a field value for hashing into
/// distinct/count sketches — shared by the monitor pre-aggregation path
/// and the sketch bolts' raw-tuple path, so both fold identically.
pub fn value_key_bytes(v: &Value) -> Vec<u8> {
    match v {
        Value::Str(s) => s.as_bytes().to_vec(),
        Value::Bytes(b) => b.to_vec(),
        Value::U64(n) => n.to_string().into_bytes(),
        Value::I64(n) => n.to_string().into_bytes(),
        Value::F64(f) => format!("{f}").into_bytes(),
        Value::Bool(b) => vec![u8::from(*b)],
        Value::Null => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_roundtrip_all_kinds() {
        let mut cms = Cms::new(0.01, 0.01);
        cms.record(b"a", 3);
        let mut ss = SpaceSaving::new(0.1);
        ss.record("url", 5);
        let mut hll = Hll::new(12);
        hll.record(b"x");
        let mut q = QuantileSketch::new();
        q.record(42);
        for s in [
            Sketch::Cms(cms),
            Sketch::HeavyHitters(ss),
            Sketch::Distinct(hll),
            Sketch::Quantile(q),
        ] {
            let bytes = s.encode();
            let back = Sketch::decode(&bytes).unwrap();
            assert_eq!(back, s, "{} roundtrip", s.kind());
        }
    }

    #[test]
    fn tuple_embedding_roundtrip_through_codec() {
        let mut ss = SpaceSaving::new(0.01);
        ss.record("/index.html", 9);
        let sketch = Sketch::HeavyHitters(ss);
        let t = sketch.clone().into_tuple(1_000, 10_000_000_000);
        // Through the real tuple codec, as it would cross the queue.
        let mut wire_bytes = t.encode();
        let decoded_tuple = DataTuple::decode(&mut wire_bytes).unwrap();
        let back = Sketch::from_tuple(&decoded_tuple).unwrap().unwrap();
        assert_eq!(back, sketch);
        assert_eq!(decoded_tuple.get(FIELD_N).and_then(Value::as_u64), Some(9));
        // Ordinary tuples are not mistaken for sketches.
        let plain = DataTuple::new(1, 2).from_source("http");
        assert!(Sketch::from_tuple(&plain).is_none());
    }

    #[test]
    fn cross_kind_merge_is_rejected() {
        let mut a = Sketch::Distinct(Hll::new(12));
        let b = Sketch::Quantile(QuantileSketch::new());
        assert_eq!(
            a.merge(&b),
            Err(SketchError::Incompatible("sketch kinds differ"))
        );
    }
}
