//! The versioned sketch wire format.
//!
//! Every serialized sketch starts with the same three bytes:
//!
//! ```text
//! magic:0x53 ('S')  version:u8  kind:u8  payload...
//! ```
//!
//! so a decoder can reject foreign bytes, refuse versions it does not
//! speak, and dispatch on the structure kind without guessing. Payloads
//! are fixed-width little-endian integers; counter tables travel dense
//! or sparse, whichever is smaller, flagged by a mode byte. The blob is
//! self-contained — it carries the dimensions (width/depth, capacity,
//! precision) it was built with, and [`merge`](crate::Sketch::merge)
//! rejects dimension mismatches instead of silently corrupting bounds.

/// Leading magic byte of every serialized sketch.
pub const MAGIC: u8 = 0x53;
/// Current (only) wire version.
pub const VERSION: u8 = 1;

/// Kind tags following the version byte.
pub(crate) const KIND_CMS: u8 = 1;
pub(crate) const KIND_SPACESAVING: u8 = 2;
pub(crate) const KIND_HLL: u8 = 3;
pub(crate) const KIND_QUANTILE: u8 = 4;

/// Errors decoding or merging sketches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SketchError {
    /// The buffer ended before `context` could be read.
    Truncated(&'static str),
    /// Structurally invalid bytes (bad magic, unknown kind, bad mode).
    Corrupt(&'static str),
    /// A valid sketch of a wire version this build does not speak.
    UnsupportedVersion(u8),
    /// Two sketches could not merge: different kinds or dimensions.
    Incompatible(&'static str),
}

impl std::fmt::Display for SketchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SketchError::Truncated(what) => write!(f, "sketch bytes truncated at {what}"),
            SketchError::Corrupt(what) => write!(f, "corrupt sketch bytes: {what}"),
            SketchError::UnsupportedVersion(v) => write!(f, "unsupported sketch version {v}"),
            SketchError::Incompatible(what) => write!(f, "sketches cannot merge: {what}"),
        }
    }
}

impl std::error::Error for SketchError {}

pub(crate) fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

pub(crate) fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str16(out: &mut Vec<u8>, s: &str) {
    let len = s.len().min(u16::MAX as usize);
    put_u16(out, len as u16);
    out.extend_from_slice(&s.as_bytes()[..len]);
}

/// Bounds-checked little-endian reader over a sketch payload.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, at: 0 }
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], SketchError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(SketchError::Truncated(context))?;
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }

    pub(crate) fn u8(&mut self, context: &'static str) -> Result<u8, SketchError> {
        Ok(self.take(1, context)?[0])
    }

    pub(crate) fn u16(&mut self, context: &'static str) -> Result<u16, SketchError> {
        Ok(u16::from_le_bytes(
            self.take(2, context)?.try_into().unwrap(),
        ))
    }

    pub(crate) fn u32(&mut self, context: &'static str) -> Result<u32, SketchError> {
        Ok(u32::from_le_bytes(
            self.take(4, context)?.try_into().unwrap(),
        ))
    }

    pub(crate) fn u64(&mut self, context: &'static str) -> Result<u64, SketchError> {
        Ok(u64::from_le_bytes(
            self.take(8, context)?.try_into().unwrap(),
        ))
    }

    pub(crate) fn str16(&mut self, context: &'static str) -> Result<&'a str, SketchError> {
        let len = self.u16(context)? as usize;
        std::str::from_utf8(self.take(len, context)?)
            .map_err(|_| SketchError::Corrupt("non-utf8 key"))
    }
}

/// Writes the shared header; each structure appends its payload after.
pub(crate) fn put_header(out: &mut Vec<u8>, kind: u8) {
    put_u8(out, MAGIC);
    put_u8(out, VERSION);
    put_u8(out, kind);
}

/// Checks magic/version and returns `(kind, payload reader)`.
pub(crate) fn read_header(buf: &[u8]) -> Result<(u8, Reader<'_>), SketchError> {
    let mut r = Reader::new(buf);
    if r.u8("magic")? != MAGIC {
        return Err(SketchError::Corrupt("bad magic"));
    }
    let version = r.u8("version")?;
    if version != VERSION {
        return Err(SketchError::UnsupportedVersion(version));
    }
    let kind = r.u8("kind")?;
    Ok((kind, r))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip_and_rejections() {
        let mut buf = Vec::new();
        put_header(&mut buf, KIND_HLL);
        let (kind, _) = read_header(&buf).unwrap();
        assert_eq!(kind, KIND_HLL);

        assert_eq!(
            read_header(&[0xff, VERSION, KIND_HLL]).err(),
            Some(SketchError::Corrupt("bad magic"))
        );
        assert_eq!(
            read_header(&[MAGIC, 99, KIND_HLL]).err(),
            Some(SketchError::UnsupportedVersion(99))
        );
        assert_eq!(
            read_header(&[MAGIC]).err(),
            Some(SketchError::Truncated("version"))
        );
    }

    #[test]
    fn reader_is_bounds_checked() {
        let mut r = Reader::new(&[1, 2, 3]);
        assert_eq!(r.u16("x").unwrap(), 0x0201);
        assert!(r.u64("y").is_err());
    }
}
