//! HyperLogLog distinct counting (Flajolet et al.).
//!
//! The hash of each item selects one of `m = 2^p` registers with its top
//! `p` bits; the register keeps the maximum `ρ` = (position of the first
//! 1-bit in the remaining bits). The harmonic-mean estimator has
//! relative standard error `≈ 1.04 / √m` — 1.6 % at the default
//! `p = 12` (4 KiB of registers). Merging is a registerwise `max`,
//! which makes the structure exactly associative, commutative, and
//! idempotent: re-merging the same sketch changes nothing, so at-least-
//! once delivery of sketch deltas cannot inflate a distinct count.

use crate::hash::hash_bytes;
use crate::wire::{self, Reader, SketchError};

/// Hash seed for register selection; fixed so every monitor and bolt
/// addresses the same register for the same item.
const HLL_SEED: u64 = 0x686c_6c73_6b65_7463; // "hllsketc"

/// Default precision: 4096 registers, ~1.6 % relative error.
pub const DEFAULT_PRECISION: u8 = 12;

/// HyperLogLog cardinality estimator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hll {
    p: u8,
    registers: Vec<u8>,
}

impl Default for Hll {
    fn default() -> Self {
        Self::new(DEFAULT_PRECISION)
    }
}

impl Hll {
    /// Estimator with `2^p` registers; `p` is clamped to `4..=16`.
    pub fn new(p: u8) -> Self {
        let p = p.clamp(4, 16);
        Hll {
            p,
            registers: vec![0; 1 << p],
        }
    }

    pub fn precision(&self) -> u8 {
        self.p
    }

    /// Relative standard error of the estimate: `1.04 / sqrt(2^p)`.
    pub fn relative_error(&self) -> f64 {
        1.04 / ((1u64 << self.p) as f64).sqrt()
    }

    /// Bytes of register state held in memory.
    pub fn memory_bytes(&self) -> usize {
        self.registers.len()
    }

    /// Observe one item.
    pub fn record(&mut self, item: &[u8]) {
        let h = hash_bytes(item, HLL_SEED);
        let idx = (h >> (64 - self.p)) as usize;
        let rest = h << self.p;
        let max_rho = 64 - u32::from(self.p) + 1;
        let rho = if rest == 0 {
            max_rho
        } else {
            rest.leading_zeros() + 1
        } as u8;
        if rho > self.registers[idx] {
            self.registers[idx] = rho;
        }
    }

    /// Estimated number of distinct items observed.
    pub fn estimate(&self) -> f64 {
        let m = self.registers.len() as f64;
        let alpha = match self.registers.len() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            _ => 0.7213 / (1.0 + 1.079 / m),
        };
        let mut inv_sum = 0.0f64;
        let mut zeros = 0u64;
        for &r in &self.registers {
            inv_sum += 1.0 / (1u64 << r.min(63)) as f64;
            if r == 0 {
                zeros += 1;
            }
        }
        let raw = alpha * m * m / inv_sum;
        // Small-range (linear counting) correction.
        if raw <= 2.5 * m && zeros > 0 {
            m * (m / zeros as f64).ln()
        } else {
            raw
        }
    }

    /// Registerwise max — exact, associative, commutative, idempotent.
    pub fn merge(&mut self, other: &Hll) -> Result<(), SketchError> {
        if self.p != other.p {
            return Err(SketchError::Incompatible("hll precisions differ"));
        }
        for (a, &b) in self.registers.iter_mut().zip(other.registers.iter()) {
            if b > *a {
                *a = b;
            }
        }
        Ok(())
    }

    pub(crate) fn encode_into(&self, out: &mut Vec<u8>) {
        wire::put_u8(out, self.p);
        let nonzero = self.registers.iter().filter(|&&r| r > 0).count();
        // Sparse register = u16 index + u8 value; dense = u8 each.
        if nonzero * 3 < self.registers.len() {
            wire::put_u8(out, 1); // sparse
            wire::put_u32(out, nonzero as u32);
            for (i, &r) in self.registers.iter().enumerate() {
                if r > 0 {
                    wire::put_u16(out, i as u16);
                    wire::put_u8(out, r);
                }
            }
        } else {
            wire::put_u8(out, 0); // dense
            out.extend_from_slice(&self.registers);
        }
    }

    pub(crate) fn decode_from(r: &mut Reader<'_>) -> Result<Self, SketchError> {
        let p = r.u8("hll precision")?;
        if !(4..=16).contains(&p) {
            return Err(SketchError::Corrupt("hll precision out of range"));
        }
        let m = 1usize << p;
        let mut registers = vec![0u8; m];
        match r.u8("hll mode")? {
            0 => {
                for reg in registers.iter_mut() {
                    *reg = r.u8("hll register")?;
                }
            }
            1 => {
                let n = r.u32("hll nonzero")? as usize;
                for _ in 0..n {
                    let idx = r.u16("hll index")? as usize;
                    let val = r.u8("hll value")?;
                    *registers
                        .get_mut(idx)
                        .ok_or(SketchError::Corrupt("hll index out of range"))? = val;
                }
            }
            _ => return Err(SketchError::Corrupt("hll mode")),
        }
        Ok(Hll { p, registers })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_within_relative_error() {
        let mut hll = Hll::new(12);
        let n = 100_000u64;
        for i in 0..n {
            hll.record(format!("item-{i}").as_bytes());
        }
        let est = hll.estimate();
        let rel = (est - n as f64).abs() / n as f64;
        // 4 standard errors: essentially always passes for a fixed hash.
        assert!(rel < 4.0 * hll.relative_error(), "relative error {rel}");
    }

    #[test]
    fn small_counts_are_near_exact() {
        let mut hll = Hll::new(12);
        for i in 0..50u32 {
            hll.record(format!("x{i}").as_bytes());
            hll.record(format!("x{i}").as_bytes()); // duplicates don't count
        }
        let est = hll.estimate();
        assert!((45.0..=55.0).contains(&est), "estimate {est}");
    }

    #[test]
    fn merge_is_idempotent_union() {
        let mut a = Hll::new(10);
        let mut b = Hll::new(10);
        for i in 0..500u32 {
            a.record(format!("a{i}").as_bytes());
            b.record(format!("b{i}").as_bytes());
        }
        let mut union = a.clone();
        union.merge(&b).unwrap();
        let before = union.estimate();
        union.merge(&b).unwrap(); // re-delivery of the same delta
        assert_eq!(union.estimate(), before);
        assert!(union.estimate() > a.estimate());

        let mut other = Hll::new(12);
        other.record(b"z");
        assert!(matches!(a.merge(&other), Err(SketchError::Incompatible(_))));
    }
}
