//! Seeded Zipfian key generator.
//!
//! One deterministic source of skewed key streams shared by the trace
//! generator, the sketch accuracy tests and the benches: rank `r`
//! (1-based) is drawn with probability proportional to `1 / r^s`, and
//! the same seed always yields the same sequence, so accuracy numbers
//! and golden tests are reproducible run to run.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The Zipf CDF over `n` ranks with exponent `s`: `cdf[r]` is the
/// probability of drawing a rank `<= r` (0-based).
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    assert!(n > 0, "need at least one rank");
    let weights: Vec<f64> = (1..=n).map(|r| 1.0 / (r as f64).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }
    cdf
}

/// A deterministic stream of Zipf-distributed keys.
///
/// # Examples
///
/// ```
/// use netalytics_apps::ZipfKeys;
///
/// let keys: Vec<String> = ZipfKeys::new(1_000, 1.1, 42).take(5).collect();
/// assert_eq!(keys, ZipfKeys::new(1_000, 1.1, 42).take(5).collect::<Vec<_>>());
/// assert!(keys.iter().all(|k| k.starts_with("/key/")));
/// ```
#[derive(Debug, Clone)]
pub struct ZipfKeys {
    cdf: Vec<f64>,
    rng: StdRng,
    prefix: String,
}

impl ZipfKeys {
    /// A generator over `num_keys` distinct keys with exponent `s`,
    /// deterministic per `seed`. Keys are `"/key/<rank>"`.
    ///
    /// # Panics
    ///
    /// Panics if `num_keys` is zero.
    pub fn new(num_keys: usize, s: f64, seed: u64) -> Self {
        Self::with_prefix(num_keys, s, seed, "/key/")
    }

    /// Like [`ZipfKeys::new`] with a custom key prefix.
    pub fn with_prefix(num_keys: usize, s: f64, seed: u64, prefix: impl Into<String>) -> Self {
        ZipfKeys {
            cdf: zipf_cdf(num_keys, s),
            rng: StdRng::seed_from_u64(seed),
            prefix: prefix.into(),
        }
    }

    /// Number of distinct keys the generator can emit.
    pub fn num_keys(&self) -> usize {
        self.cdf.len()
    }

    /// Draws the next 0-based rank (0 is the hottest key).
    pub fn next_rank(&mut self) -> usize {
        let u: f64 = self.rng.random_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// The key string of a given rank, without advancing the stream.
    pub fn key_of(&self, rank: usize) -> String {
        format!("{}{rank}", self.prefix)
    }
}

impl Iterator for ZipfKeys {
    type Item = String;

    fn next(&mut self) -> Option<String> {
        let rank = self.next_rank();
        Some(self.key_of(rank))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let cdf = zipf_cdf(100, 1.0);
        assert!(cdf.windows(2).all(|w| w[0] <= w[1]));
        assert!((cdf[99] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn same_seed_same_stream() {
        let a: Vec<String> = ZipfKeys::new(500, 1.0, 3).take(1_000).collect();
        let b: Vec<String> = ZipfKeys::new(500, 1.0, 3).take(1_000).collect();
        let c: Vec<String> = ZipfKeys::new(500, 1.0, 4).take(1_000).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn low_ranks_dominate() {
        let mut gen = ZipfKeys::new(1_000, 1.0, 11);
        let mut counts: HashMap<usize, usize> = HashMap::new();
        for _ in 0..20_000 {
            *counts.entry(gen.next_rank()).or_default() += 1;
        }
        let head = counts.get(&0).copied().unwrap_or(0);
        let tail = counts.get(&500).copied().unwrap_or(0);
        assert!(head > 20 * tail.max(1), "head {head} vs tail {tail}");
        assert!(counts.keys().all(|&r| r < 1_000));
    }

    #[test]
    fn prefix_is_applied() {
        let mut gen = ZipfKeys::with_prefix(10, 1.0, 1, "/videos/");
        let k = gen.next().unwrap();
        assert!(k.starts_with("/videos/"), "{k}");
    }
}
