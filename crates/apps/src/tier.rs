//! A generic emulated service tier.
//!
//! [`TierApp`] is the building block for every server in the §7 case
//! studies: it speaks a miniature TCP-like request/response convention
//! over the discrete-event network, and delegates *what to answer* to a
//! [`TierBehavior`] (static web server, proxy, MySQL backend, ...).
//!
//! ## Wire convention
//!
//! * client → `SYN`; server → `SYN|ACK`.
//! * client → `PSH|ACK` carrying one request payload.
//! * server → `PSH|ACK` carrying one response payload; the `FIN` flag is
//!   set when the server closes (HTTP-style one-shot connections).
//! * On persistent connections (MySQL-style) the client sends further
//!   requests and finally its own `FIN`.
//!
//! Exactly one `SYN` and one `FIN` appear per connection, so the
//! `tcp_conn_time` parser sees clean start/end pairs.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use netalytics_netsim::{App, Ctx, SimDuration};
use netalytics_packet::{Packet, TcpFlags};

/// A remote endpoint.
pub type Endpoint = (Ipv4Addr, u16);

/// What a tier decides to do with one inbound request.
#[derive(Debug)]
pub enum Plan {
    /// Answer locally after `delay`.
    Respond {
        /// Simulated service time.
        delay: SimDuration,
        /// Response payload bytes.
        payload: Vec<u8>,
        /// Close the connection with this response (sets `FIN`).
        close: bool,
    },
    /// Call a backend first (one connection, requests sent sequentially),
    /// then answer the client.
    Backend {
        /// Backend endpoint to contact.
        dst: Endpoint,
        /// Request payloads to issue on the backend connection, in order.
        requests: Vec<Vec<u8>>,
        /// Local processing time added after the backend completes.
        post_delay: SimDuration,
        /// Response payload returned to the client.
        payload: Vec<u8>,
        /// Close the client connection with the response.
        close: bool,
    },
    /// Ignore the request (malformed input).
    Drop,
}

/// Application logic of one tier.
pub trait TierBehavior {
    /// Plans the handling of a request payload from `src`; `now_ns` is
    /// the current virtual time (for behaviors that log or rate-track).
    fn plan(&mut self, request: &[u8], src: Endpoint, now_ns: u64) -> Plan;
}

#[derive(Debug)]
enum TimerAction {
    Respond {
        dst: Endpoint,
        payload: Vec<u8>,
        close: bool,
    },
}

#[derive(Debug)]
struct Outbound {
    client: Endpoint,
    backend: Endpoint,
    pending: std::collections::VecDeque<Vec<u8>>,
    post_delay: SimDuration,
    response: Vec<u8>,
    close: bool,
}

/// A server tier on one emulated host.
pub struct TierApp {
    port: u16,
    behavior: Box<dyn TierBehavior>,
    timers: HashMap<u64, TimerAction>,
    outbound: HashMap<u16, Outbound>,
    next_token: u64,
    next_port: u16,
    served: u64,
}

impl std::fmt::Debug for TierApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TierApp")
            .field("port", &self.port)
            .field("served", &self.served)
            .finish_non_exhaustive()
    }
}

impl TierApp {
    /// Creates a tier listening on `port` with the given behavior.
    pub fn new(port: u16, behavior: Box<dyn TierBehavior>) -> Self {
        TierApp {
            port,
            behavior,
            timers: HashMap::new(),
            outbound: HashMap::new(),
            next_token: 0,
            next_port: 40_000,
            served: 0,
        }
    }

    /// Requests answered so far.
    pub fn served(&self) -> u64 {
        self.served
    }

    fn schedule_response(
        &mut self,
        delay: SimDuration,
        dst: Endpoint,
        payload: Vec<u8>,
        close: bool,
        ctx: &mut Ctx<'_>,
    ) {
        let token = self.next_token;
        self.next_token += 1;
        self.timers.insert(
            token,
            TimerAction::Respond {
                dst,
                payload,
                close,
            },
        );
        ctx.timer_in(delay, token);
    }

    fn handle_request(&mut self, payload: &[u8], src: Endpoint, ctx: &mut Ctx<'_>) {
        self.served += 1;
        match self.behavior.plan(payload, src, ctx.now().as_nanos()) {
            Plan::Respond {
                delay,
                payload,
                close,
            } => self.schedule_response(delay, src, payload, close, ctx),
            Plan::Backend {
                dst,
                requests,
                post_delay,
                payload,
                close,
            } => {
                let local = self.next_port;
                self.next_port = self.next_port.checked_add(1).unwrap_or(40_000);
                self.outbound.insert(
                    local,
                    Outbound {
                        client: src,
                        backend: dst,
                        pending: requests.into(),
                        post_delay,
                        response: payload,
                        close,
                    },
                );
                ctx.send(Packet::tcp(
                    ctx.ip(),
                    local,
                    dst.0,
                    dst.1,
                    TcpFlags::SYN,
                    0,
                    0,
                    b"",
                ));
            }
            Plan::Drop => {}
        }
    }
}

impl App for TierApp {
    fn on_packet(&mut self, packet: &Packet, ctx: &mut Ctx<'_>) {
        let Ok(view) = packet.view() else { return };
        let (Some(ip), Some(tcp)) = (view.ipv4, view.tcp) else {
            return;
        };
        // Promiscuous guard: mirrored packets are not for us.
        if ip.dst != ctx.ip() {
            return;
        }
        if tcp.dst_port == self.port {
            // Inbound (server) side.
            let src = (ip.src, tcp.src_port);
            if tcp.flags.contains(TcpFlags::SYN) && !tcp.flags.contains(TcpFlags::ACK) {
                ctx.send(Packet::tcp(
                    ctx.ip(),
                    self.port,
                    src.0,
                    src.1,
                    TcpFlags::SYN | TcpFlags::ACK,
                    0,
                    1,
                    b"",
                ));
            } else if !view.payload.is_empty() {
                let payload = view.payload.to_vec();
                self.handle_request(&payload, src, ctx);
            }
            // Bare FIN/ACK from the client: connection closed, no state
            // to clean (the convention keeps servers stateless per-conn).
        } else if let Some(state) = self.outbound.get_mut(&tcp.dst_port) {
            // Outbound (backend-client) side.
            if (ip.src, tcp.src_port) != state.backend {
                return;
            }
            if tcp.flags.contains(TcpFlags::SYN) && tcp.flags.contains(TcpFlags::ACK) {
                // Connection up: send the first backend request.
                if let Some(req) = state.pending.pop_front() {
                    let local = tcp.dst_port;
                    let dst = state.backend;
                    ctx.send(Packet::tcp(
                        ctx.ip(),
                        local,
                        dst.0,
                        dst.1,
                        TcpFlags::PSH | TcpFlags::ACK,
                        1,
                        1,
                        &req,
                    ));
                }
            } else if !view.payload.is_empty() {
                // Backend response: next request, or finish the call.
                let local = tcp.dst_port;
                if let Some(req) = state.pending.pop_front() {
                    let dst = state.backend;
                    ctx.send(Packet::tcp(
                        ctx.ip(),
                        local,
                        dst.0,
                        dst.1,
                        TcpFlags::PSH | TcpFlags::ACK,
                        1,
                        1,
                        &req,
                    ));
                } else {
                    let state = self.outbound.remove(&local).expect("present");
                    // Close our side of the backend connection unless the
                    // backend already closed it with FIN.
                    if !tcp.flags.contains(TcpFlags::FIN) {
                        ctx.send(Packet::tcp(
                            ctx.ip(),
                            local,
                            state.backend.0,
                            state.backend.1,
                            TcpFlags::FIN | TcpFlags::ACK,
                            2,
                            2,
                            b"",
                        ));
                    }
                    self.schedule_response(
                        state.post_delay,
                        state.client,
                        state.response,
                        state.close,
                        ctx,
                    );
                }
            }
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>) {
        let Some(TimerAction::Respond {
            dst,
            payload,
            close,
        }) = self.timers.remove(&token)
        else {
            return;
        };
        let mut flags = TcpFlags::PSH | TcpFlags::ACK;
        if close {
            flags |= TcpFlags::FIN;
        }
        ctx.send(Packet::tcp(
            ctx.ip(),
            self.port,
            dst.0,
            dst.1,
            flags,
            1,
            2,
            &payload,
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netalytics_netsim::{Engine, LinkSpec, Network, SimTime};
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Echo behavior with a fixed delay.
    struct Echo(u64);
    impl TierBehavior for Echo {
        fn plan(&mut self, request: &[u8], _src: Endpoint, _now_ns: u64) -> Plan {
            Plan::Respond {
                delay: SimDuration::from_millis(self.0),
                payload: request.to_vec(),
                close: true,
            }
        }
    }

    /// (arrival ns, payload) records captured by the test client.
    type SentLog = Rc<RefCell<Vec<(u64, Vec<u8>)>>>;

    /// Minimal test client: one conversation, records completion time.
    struct OneShot {
        dst: Endpoint,
        sent: SentLog,
    }
    impl App for OneShot {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.send(Packet::tcp(
                ctx.ip(),
                5000,
                self.dst.0,
                self.dst.1,
                TcpFlags::SYN,
                0,
                0,
                b"",
            ));
        }
        fn on_packet(&mut self, packet: &Packet, ctx: &mut Ctx<'_>) {
            let v = packet.view().unwrap();
            let tcp = v.tcp.unwrap();
            if tcp.flags.contains(TcpFlags::SYN) && tcp.flags.contains(TcpFlags::ACK) {
                ctx.send(Packet::tcp(
                    ctx.ip(),
                    5000,
                    self.dst.0,
                    self.dst.1,
                    TcpFlags::PSH | TcpFlags::ACK,
                    1,
                    1,
                    b"hello",
                ));
            } else if !v.payload.is_empty() {
                self.sent
                    .borrow_mut()
                    .push((ctx.now().as_nanos(), v.payload.to_vec()));
            }
        }
    }

    #[test]
    fn respond_plan_round_trips_with_delay() {
        let mut engine = Engine::new(Network::fat_tree(4, LinkSpec::default()));
        let server_ip = engine.network().host_ip(1);
        let got = Rc::new(RefCell::new(Vec::new()));
        engine.set_app(1, Box::new(TierApp::new(80, Box::new(Echo(5)))));
        engine.set_app(
            0,
            Box::new(OneShot {
                dst: (server_ip, 80),
                sent: got.clone(),
            }),
        );
        engine.run_until(SimTime::from_nanos(1_000_000_000));
        let got = got.borrow();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1, b"hello");
        assert!(
            got[0].0 >= 5_000_000,
            "response must include the 5ms service time ({})",
            got[0].0
        );
    }

    #[test]
    fn backend_plan_chains_two_tiers() {
        /// Frontend forwards to a backend, then answers "done".
        struct Frontend(Endpoint);
        impl TierBehavior for Frontend {
            fn plan(&mut self, _req: &[u8], _src: Endpoint, _now_ns: u64) -> Plan {
                Plan::Backend {
                    dst: self.0,
                    requests: vec![b"q1".to_vec(), b"q2".to_vec()],
                    post_delay: SimDuration::from_millis(1),
                    payload: b"done".to_vec(),
                    close: true,
                }
            }
        }
        /// Backend answers without closing (persistent).
        struct Persistent;
        impl TierBehavior for Persistent {
            fn plan(&mut self, req: &[u8], _src: Endpoint, _now_ns: u64) -> Plan {
                Plan::Respond {
                    delay: SimDuration::from_millis(2),
                    payload: [b"re:", req].concat(),
                    close: false,
                }
            }
        }
        let mut engine = Engine::new(Network::fat_tree(4, LinkSpec::default()));
        let fe_ip = engine.network().host_ip(1);
        let be_ip = engine.network().host_ip(2);
        let got = Rc::new(RefCell::new(Vec::new()));
        engine.set_app(
            1,
            Box::new(TierApp::new(80, Box::new(Frontend((be_ip, 3306))))),
        );
        engine.set_app(2, Box::new(TierApp::new(3306, Box::new(Persistent))));
        engine.set_app(
            0,
            Box::new(OneShot {
                dst: (fe_ip, 80),
                sent: got.clone(),
            }),
        );
        engine.run_until(SimTime::from_nanos(2_000_000_000));
        let got = got.borrow();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1, b"done");
        // Two sequential 2ms backend queries plus 1ms post-delay.
        assert!(got[0].0 >= 5_000_000, "{}", got[0].0);
    }

    #[test]
    fn drop_plan_answers_nothing() {
        struct Mute;
        impl TierBehavior for Mute {
            fn plan(&mut self, _req: &[u8], _src: Endpoint, _now_ns: u64) -> Plan {
                Plan::Drop
            }
        }
        let mut engine = Engine::new(Network::fat_tree(4, LinkSpec::default()));
        let ip = engine.network().host_ip(1);
        let got = Rc::new(RefCell::new(Vec::new()));
        engine.set_app(1, Box::new(TierApp::new(80, Box::new(Mute))));
        engine.set_app(
            0,
            Box::new(OneShot {
                dst: (ip, 80),
                sent: got.clone(),
            }),
        );
        engine.run_until(SimTime::from_nanos(100_000_000));
        assert!(got.borrow().is_empty());
    }
}
