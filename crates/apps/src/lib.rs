//! Emulated applications for the NetAlytics case studies (paper §7).
//!
//! Every workload the paper diagnoses runs here as [`netalytics_netsim`]
//! applications exchanging real packets over the emulated fabric:
//!
//! * [`TierApp`]/[`TierBehavior`] — a generic service tier speaking a
//!   small TCP-like request/response convention.
//! * [`behaviors`] — concrete tiers: static web servers, a proxy/load
//!   balancer over a live-updatable pool, app servers that consult
//!   Memcached or MySQL, and MySQL/Memcached backends (with the §7.2
//!   general-query-log overhead model).
//! * [`ClientApp`] — scripted clients recording per-conversation
//!   response times (the "client side" of Figs. 10, 12-14).
//! * [`UpdaterBolt`]/[`KvStore`] — the §7.3 auto-scaler: the top-k
//!   topology's updater bolt grows/shrinks the proxy pool through a
//!   Redis-like store.
//! * [`generate_trace`] — the Zipf-churn stand-in for the YouTube trace
//!   of Fig. 16.

pub mod autoscaler;
pub mod behaviors;
pub mod client;
pub mod kvstore;
pub mod tier;
pub mod trace;
pub mod zipf;

pub use autoscaler::{ScaleEvent, ScalerConfig, UpdaterBolt};
pub use behaviors::{
    AppServerBehavior, MemcachedBehavior, MysqlBehavior, ProxyBehavior, SharedPool,
    StaticHttpBehavior,
};
pub use client::{sample_sink, ClientApp, Conversation, Sample, SampleSink};
pub use kvstore::KvStore;
pub use tier::{Endpoint, Plan, TierApp, TierBehavior};
pub use trace::{generate_trace, TraceRequest, TraceSpec};
pub use zipf::{zipf_cdf, ZipfKeys};
