//! Synthetic content-request trace with shifting popularity.
//!
//! Substitution for the YouTube campus trace of Zink et al. used in
//! Fig. 16 (the real trace is not redistributable): request keys follow a
//! Zipf distribution whose rank order drifts between time intervals, so
//! the rolling top-k exhibits the same churn the paper plots.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::zipf::zipf_cdf;

/// Configuration of the synthetic trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSpec {
    /// Distinct content items.
    pub num_items: usize,
    /// Zipf exponent (1.0 ≈ classic video popularity).
    pub zipf_s: f64,
    /// Requests per interval.
    pub requests_per_interval: usize,
    /// Number of intervals.
    pub intervals: usize,
    /// Interval length in nanoseconds (spacing of request timestamps).
    pub interval_ns: u64,
    /// Rank-churn intensity: average adjacent-rank swaps per interval,
    /// as a fraction of `num_items`.
    pub churn: f64,
}

impl Default for TraceSpec {
    fn default() -> Self {
        TraceSpec {
            num_items: 200,
            zipf_s: 1.0,
            requests_per_interval: 2_000,
            intervals: 20,
            interval_ns: 1_000_000_000,
            churn: 0.2,
        }
    }
}

/// One synthetic request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRequest {
    /// Virtual timestamp, nanoseconds.
    pub ts_ns: u64,
    /// Requested content key (e.g. `/videos/17`).
    pub url: String,
}

/// Generates the trace, deterministic per `seed`.
///
/// # Panics
///
/// Panics if `num_items` is zero.
pub fn generate_trace(spec: &TraceSpec, seed: u64) -> Vec<TraceRequest> {
    assert!(spec.num_items > 0, "need at least one item");
    let mut rng = StdRng::seed_from_u64(seed);
    let cdf = zipf_cdf(spec.num_items, spec.zipf_s);
    // rank -> item mapping, drifting over time.
    let mut rank_to_item: Vec<usize> = (0..spec.num_items).collect();
    let mut out = Vec::with_capacity(spec.requests_per_interval * spec.intervals);
    for interval in 0..spec.intervals {
        // Churn: swap adjacent ranks so popularity shifts gradually.
        let swaps = ((spec.num_items as f64) * spec.churn) as usize;
        for _ in 0..swaps {
            let i = rng.random_range(0..spec.num_items.saturating_sub(1).max(1));
            rank_to_item.swap(i, (i + 1).min(spec.num_items - 1));
        }
        let base = interval as u64 * spec.interval_ns;
        for r in 0..spec.requests_per_interval {
            let u: f64 = rng.random_range(0.0..1.0);
            let rank = cdf.partition_point(|&c| c < u).min(spec.num_items - 1);
            let item = rank_to_item[rank];
            let ts = base + (r as u64 * spec.interval_ns) / spec.requests_per_interval as u64;
            out.push(TraceRequest {
                ts_ns: ts,
                url: format!("/videos/{item}"),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn popularity_is_zipf_skewed() {
        let trace = generate_trace(
            &TraceSpec {
                intervals: 1,
                churn: 0.0,
                ..Default::default()
            },
            7,
        );
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for r in &trace {
            *counts.entry(r.url.as_str()).or_default() += 1;
        }
        let mut sorted: Vec<usize> = counts.values().copied().collect();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        // Head of the distribution dominates the tail.
        assert!(
            sorted[0] > 5 * sorted[sorted.len() / 2],
            "top {} vs median {}",
            sorted[0],
            sorted[sorted.len() / 2]
        );
    }

    #[test]
    fn churn_reorders_popularity_over_time() {
        let spec = TraceSpec {
            intervals: 20,
            churn: 0.5,
            ..Default::default()
        };
        let trace = generate_trace(&spec, 8);
        let top_of = |interval: usize| -> String {
            let lo = interval as u64 * spec.interval_ns;
            let hi = lo + spec.interval_ns;
            let mut counts: HashMap<String, usize> = HashMap::new();
            for r in trace.iter().filter(|r| r.ts_ns >= lo && r.ts_ns < hi) {
                *counts.entry(r.url.clone()).or_default() += 1;
            }
            counts.into_iter().max_by_key(|(_, c)| *c).unwrap().0
        };
        let tops: std::collections::HashSet<String> = (0..spec.intervals).map(top_of).collect();
        assert!(tops.len() > 1, "the #1 item must change over time");
    }

    #[test]
    fn timestamps_are_monotone_and_bounded() {
        let spec = TraceSpec::default();
        let trace = generate_trace(&spec, 9);
        assert!(trace.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        let max = spec.intervals as u64 * spec.interval_ns;
        assert!(trace.iter().all(|r| r.ts_ns < max));
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = TraceSpec {
            requests_per_interval: 100,
            intervals: 2,
            ..Default::default()
        };
        assert_eq!(generate_trace(&spec, 1), generate_trace(&spec, 1));
        assert_ne!(generate_trace(&spec, 1), generate_trace(&spec, 2));
    }
}
