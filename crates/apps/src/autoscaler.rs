//! The Updater bolt and replica manager of use case §7.3.
//!
//! "We also use an Updater Bolt within the topology that checks if the
//! frequency of a URL is above a configurable upper threshold. If so, it
//! will add a server to the web server pool and replicate the popular
//! content to it. Likewise, the Update Bolt will remove a server when the
//! top-k frequency is below a configurable lower bound. In order to
//! prevent rapidly increasing and lowering the number servers ... we
//! force the Update Bolt to back off for a predetermined amount of time."

use std::sync::Arc;

use netalytics_data::{DataTuple, Value};
use netalytics_stream::Bolt;
use parking_lot::Mutex;

use crate::behaviors::SharedPool;
use crate::kvstore::KvStore;
use crate::tier::Endpoint;

/// Auto-scaler configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalerConfig {
    /// Add a replica when the top key's window count exceeds this.
    pub upper_threshold: u64,
    /// Remove a replica when it falls below this.
    pub lower_threshold: u64,
    /// Minimum nanoseconds between scaling actions (back-off).
    pub backoff_ns: u64,
}

impl Default for ScalerConfig {
    fn default() -> Self {
        ScalerConfig {
            upper_threshold: 100,
            lower_threshold: 20,
            backoff_ns: 2_000_000_000,
        }
    }
}

/// One scaling action, for the experiment log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleEvent {
    /// A replica was added at this virtual time (ns).
    Added(u64),
    /// A replica was removed at this virtual time (ns).
    Removed(u64),
}

/// The Updater bolt: consumes `rank` tuples from the top-k topology,
/// stores the ranking in the KV store, and grows/shrinks the proxy's
/// backend pool between `min_replicas` and the spare-server list.
pub struct UpdaterBolt {
    config: ScalerConfig,
    pool: SharedPool,
    /// Servers not currently in the pool, available to add.
    spares: Vec<Endpoint>,
    min_replicas: usize,
    kv: Arc<KvStore>,
    last_action_ns: Option<u64>,
    events: Arc<Mutex<Vec<ScaleEvent>>>,
}

impl std::fmt::Debug for UpdaterBolt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UpdaterBolt")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl UpdaterBolt {
    /// Creates an updater managing `pool` with `spares` available.
    pub fn new(
        config: ScalerConfig,
        pool: SharedPool,
        spares: Vec<Endpoint>,
        kv: Arc<KvStore>,
    ) -> Self {
        // The paper always keeps at least one web server in rotation.
        let min_replicas = 1;
        UpdaterBolt {
            config,
            pool,
            spares,
            min_replicas,
            kv,
            last_action_ns: None,
            events: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Handle to the scaling-event log.
    pub fn events(&self) -> Arc<Mutex<Vec<ScaleEvent>>> {
        self.events.clone()
    }

    fn in_backoff(&self, now: u64) -> bool {
        self.last_action_ns
            .is_some_and(|t| now.saturating_sub(t) < self.config.backoff_ns)
    }
}

impl Bolt for UpdaterBolt {
    fn execute(&mut self, tuple: &DataTuple, _out: &mut Vec<DataTuple>) {
        let (Some(rank), Some(key), Some(count)) = (
            tuple.get("rank").and_then(Value::as_u64),
            tuple.get("key").map(ToString::to_string),
            tuple.get("count").and_then(Value::as_u64),
        ) else {
            return;
        };
        // Database bolt role: persist the ranking for the dynamic proxy.
        self.kv
            .set(format!("topk:{rank}"), format!("{key}={count}"));
        if rank != 0 {
            return; // scaling decisions track the hottest key only
        }
        let now = tuple.ts_ns;
        if self.in_backoff(now) {
            return;
        }
        if count >= self.config.upper_threshold {
            if let Some(spare) = self.spares.pop() {
                self.pool.lock().push(spare);
                self.last_action_ns = Some(now);
                self.events.lock().push(ScaleEvent::Added(now));
            }
        } else if count <= self.config.lower_threshold {
            let mut pool = self.pool.lock();
            if pool.len() > self.min_replicas {
                if let Some(removed) = pool.pop() {
                    self.spares.push(removed);
                    self.last_action_ns = Some(now);
                    self.events.lock().push(ScaleEvent::Removed(now));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behaviors::ProxyBehavior;
    use std::net::Ipv4Addr;

    fn ep(n: u8) -> Endpoint {
        (Ipv4Addr::new(10, 0, 0, n), 80)
    }

    fn rank_tuple(rank: u64, key: &str, count: u64, ts: u64) -> DataTuple {
        DataTuple::new(rank, ts)
            .with("rank", rank)
            .with("key", key)
            .with("count", count)
    }

    fn updater(cfg: ScalerConfig) -> (UpdaterBolt, SharedPool, Arc<KvStore>) {
        let pool = ProxyBehavior::pool_of(&[ep(1)]);
        let kv = KvStore::shared();
        let u = UpdaterBolt::new(cfg, pool.clone(), vec![ep(2), ep(3)], kv.clone());
        (u, pool, kv)
    }

    #[test]
    fn hot_content_adds_replicas_with_backoff() {
        let (mut u, pool, _) = updater(ScalerConfig {
            upper_threshold: 100,
            lower_threshold: 10,
            backoff_ns: 1_000,
        });
        let mut out = Vec::new();
        u.execute(&rank_tuple(0, "/hot", 500, 0), &mut out);
        assert_eq!(pool.lock().len(), 2, "first replica added");
        u.execute(&rank_tuple(0, "/hot", 500, 500), &mut out);
        assert_eq!(pool.lock().len(), 2, "back-off suppresses the second");
        u.execute(&rank_tuple(0, "/hot", 500, 2_000), &mut out);
        assert_eq!(pool.lock().len(), 3, "after back-off the pool grows");
        u.execute(&rank_tuple(0, "/hot", 500, 10_000), &mut out);
        assert_eq!(pool.lock().len(), 3, "no spares left");
        assert_eq!(u.events().lock().len(), 2);
    }

    #[test]
    fn cool_content_shrinks_but_keeps_minimum() {
        let (mut u, pool, _) = updater(ScalerConfig {
            upper_threshold: 1_000,
            lower_threshold: 50,
            backoff_ns: 0,
        });
        let mut out = Vec::new();
        u.execute(&rank_tuple(0, "/hot", 2_000, 0), &mut out);
        u.execute(&rank_tuple(0, "/hot", 2_000, 1), &mut out);
        assert_eq!(pool.lock().len(), 3);
        for t in 2..10 {
            u.execute(&rank_tuple(0, "/hot", 5, t), &mut out);
        }
        assert_eq!(pool.lock().len(), 1, "shrinks to the minimum, not zero");
    }

    #[test]
    fn rankings_are_persisted_to_kv() {
        let (mut u, _, kv) = updater(ScalerConfig::default());
        let mut out = Vec::new();
        u.execute(&rank_tuple(0, "/a", 50, 0), &mut out);
        u.execute(&rank_tuple(1, "/b", 30, 0), &mut out);
        assert_eq!(kv.get("topk:0"), Some("/a=50".into()));
        assert_eq!(kv.get("topk:1"), Some("/b=30".into()));
    }

    #[test]
    fn non_top_ranks_do_not_scale() {
        let (mut u, pool, _) = updater(ScalerConfig {
            upper_threshold: 10,
            lower_threshold: 1,
            backoff_ns: 0,
        });
        let mut out = Vec::new();
        u.execute(&rank_tuple(1, "/second", 9_999, 0), &mut out);
        assert_eq!(pool.lock().len(), 1);
    }

    #[test]
    fn malformed_tuples_ignored() {
        let (mut u, pool, _) = updater(ScalerConfig::default());
        let mut out = Vec::new();
        u.execute(&DataTuple::new(0, 0).with("key", "/x"), &mut out);
        assert_eq!(pool.lock().len(), 1);
    }
}
