//! A tiny shared key-value store.
//!
//! Stand-in for the Redis instance of use case §7.3: the top-k topology's
//! database bolt writes the popular-content list here, and the dynamic
//! proxy reads its backend configuration from it. Only get/set/list are
//! needed, so it is an in-process shared map rather than a networked
//! service (see DESIGN.md substitutions).

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;

/// A threadsafe, shareable string key-value store.
///
/// # Examples
///
/// ```
/// use netalytics_apps::KvStore;
///
/// let kv = KvStore::shared();
/// kv.set("topk:0", "/videos/7");
/// assert_eq!(kv.get("topk:0"), Some("/videos/7".to_string()));
/// assert_eq!(kv.keys_with_prefix("topk:").len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct KvStore {
    map: RwLock<BTreeMap<String, String>>,
}

impl KvStore {
    /// Creates an empty store behind an [`Arc`].
    pub fn shared() -> Arc<KvStore> {
        Arc::new(KvStore::default())
    }

    /// Sets `key` to `value`, returning the previous value.
    pub fn set(&self, key: impl Into<String>, value: impl Into<String>) -> Option<String> {
        self.map.write().insert(key.into(), value.into())
    }

    /// Reads `key`.
    pub fn get(&self, key: &str) -> Option<String> {
        self.map.read().get(key).cloned()
    }

    /// Deletes `key`, returning its value.
    pub fn del(&self, key: &str) -> Option<String> {
        self.map.write().remove(key)
    }

    /// All keys starting with `prefix`, sorted.
    pub fn keys_with_prefix(&self, prefix: &str) -> Vec<String> {
        self.map
            .read()
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// True if the store is empty.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_del_cycle() {
        let kv = KvStore::shared();
        assert!(kv.is_empty());
        assert_eq!(kv.set("a", "1"), None);
        assert_eq!(kv.set("a", "2"), Some("1".into()));
        assert_eq!(kv.get("a"), Some("2".into()));
        assert_eq!(kv.del("a"), Some("2".into()));
        assert_eq!(kv.get("a"), None);
    }

    #[test]
    fn prefix_listing_is_sorted_and_scoped() {
        let kv = KvStore::shared();
        kv.set("topk:1", "x");
        kv.set("topk:0", "y");
        kv.set("other", "z");
        assert_eq!(kv.keys_with_prefix("topk:"), vec!["topk:0", "topk:1"]);
        assert_eq!(kv.len(), 3);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let kv = KvStore::shared();
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let kv = kv.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        kv.set(format!("k{t}:{i}"), "v");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(kv.len(), 400);
    }
}
