//! Workload clients: scripted conversations with response-time recording.

use std::collections::HashMap;
use std::rc::Rc;

use netalytics_netsim::{App, Ctx, SimTime};
use netalytics_packet::{Packet, TcpFlags};

use crate::tier::Endpoint;

/// One scripted connection: a destination and the request payloads to
/// send sequentially on it (HTTP: one; MySQL: several per connection).
#[derive(Debug, Clone)]
pub struct Conversation {
    /// Server endpoint.
    pub dst: Endpoint,
    /// Request payloads, sent one at a time awaiting each response.
    pub requests: Vec<Vec<u8>>,
    /// Label carried into the recorded sample (e.g. the URL).
    pub tag: String,
}

/// A completed conversation measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// The conversation's tag.
    pub tag: String,
    /// Connection start (SYN transmission).
    pub start: SimTime,
    /// Completion (final response received).
    pub end: SimTime,
}

impl Sample {
    /// Response time in milliseconds.
    pub fn rt_ms(&self) -> f64 {
        (self.end - self.start).as_millis_f64()
    }
}

/// Shared recording sink for client measurements.
pub type SampleSink = Rc<std::cell::RefCell<Vec<Sample>>>;

/// Creates an empty sample sink.
pub fn sample_sink() -> SampleSink {
    Rc::new(std::cell::RefCell::new(Vec::new()))
}

#[derive(Debug)]
struct ActiveConn {
    conv: Conversation,
    next_request: usize,
    started: SimTime,
}

/// A scripted client application.
///
/// Each scheduled [`Conversation`] opens its own connection with a unique
/// local port; response times are recorded into the shared sink.
#[derive(Debug)]
pub struct ClientApp {
    schedule: Vec<(SimTime, Conversation)>,
    sink: SampleSink,
    active: HashMap<u16, ActiveConn>,
    next_port: u16,
    first_port: u16,
}

impl ClientApp {
    /// Creates a client from a (time, conversation) schedule.
    pub fn new(mut schedule: Vec<(SimTime, Conversation)>, sink: SampleSink) -> Self {
        schedule.sort_by_key(|(t, _)| *t);
        ClientApp {
            schedule,
            sink,
            active: HashMap::new(),
            next_port: 10_000,
            first_port: 10_000,
        }
    }

    /// Builder: distinct clients on one emulated host must use disjoint
    /// port ranges.
    pub fn with_port_base(mut self, base: u16) -> Self {
        self.next_port = base;
        self.first_port = base;
        self
    }

    fn open(&mut self, conv: Conversation, ctx: &mut Ctx<'_>) {
        let port = self.next_port;
        self.next_port = self.next_port.checked_add(1).unwrap_or(self.first_port);
        let dst = conv.dst;
        self.active.insert(
            port,
            ActiveConn {
                conv,
                next_request: 0,
                started: ctx.now(),
            },
        );
        ctx.send(Packet::tcp(
            ctx.ip(),
            port,
            dst.0,
            dst.1,
            TcpFlags::SYN,
            0,
            0,
            b"",
        ));
    }
}

impl App for ClientApp {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for (i, (t, _)) in self.schedule.iter().enumerate() {
            let delay = *t - SimTime::ZERO;
            let _ = delay;
            ctx.timer_in(*t - ctx.now(), i as u64);
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>) {
        let conv = self.schedule[token as usize].1.clone();
        self.open(conv, ctx);
    }

    fn on_packet(&mut self, packet: &Packet, ctx: &mut Ctx<'_>) {
        let Ok(view) = packet.view() else { return };
        let (Some(ip), Some(tcp)) = (view.ipv4, view.tcp) else {
            return;
        };
        if ip.dst != ctx.ip() {
            return; // promiscuous guard
        }
        let port = tcp.dst_port;
        let Some(conn) = self.active.get_mut(&port) else {
            return;
        };
        if (ip.src, tcp.src_port) != conn.conv.dst {
            return;
        }
        if tcp.flags.contains(TcpFlags::SYN) && tcp.flags.contains(TcpFlags::ACK) {
            // Connected: send the first request.
            let req = conn.conv.requests.first().cloned().unwrap_or_default();
            conn.next_request = 1;
            let dst = conn.conv.dst;
            ctx.send(Packet::tcp(
                ctx.ip(),
                port,
                dst.0,
                dst.1,
                TcpFlags::PSH | TcpFlags::ACK,
                1,
                1,
                &req,
            ));
        } else if !view.payload.is_empty() {
            if conn.next_request < conn.conv.requests.len() {
                let req = conn.conv.requests[conn.next_request].clone();
                conn.next_request += 1;
                let dst = conn.conv.dst;
                ctx.send(Packet::tcp(
                    ctx.ip(),
                    port,
                    dst.0,
                    dst.1,
                    TcpFlags::PSH | TcpFlags::ACK,
                    1,
                    1,
                    &req,
                ));
            } else {
                // Conversation complete.
                let conn = self.active.remove(&port).expect("present");
                if !tcp.flags.contains(TcpFlags::FIN) {
                    // Server kept the connection open: we close it.
                    ctx.send(Packet::tcp(
                        ctx.ip(),
                        port,
                        conn.conv.dst.0,
                        conn.conv.dst.1,
                        TcpFlags::FIN | TcpFlags::ACK,
                        2,
                        2,
                        b"",
                    ));
                }
                self.sink.borrow_mut().push(Sample {
                    tag: conn.conv.tag,
                    start: conn.started,
                    end: ctx.now(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behaviors::StaticHttpBehavior;
    use crate::tier::TierApp;
    use netalytics_netsim::{Engine, LinkSpec, Network, SimDuration};
    use netalytics_packet::http;

    #[test]
    fn client_measures_response_times_per_tag() {
        let mut engine = Engine::new(Network::fat_tree(4, LinkSpec::default()));
        let server_ip = engine.network().host_ip(2);
        engine.set_app(
            2,
            Box::new(TierApp::new(
                80,
                Box::new(
                    StaticHttpBehavior::new(5.0, 1)
                        .with_url("/slow", 50.0)
                        .with_body_bytes(128),
                ),
            )),
        );
        let sink = sample_sink();
        let schedule: Vec<(SimTime, Conversation)> = (0..10)
            .map(|i| {
                let url = if i % 2 == 0 { "/fast" } else { "/slow" };
                (
                    SimTime::from_nanos(i * 10_000_000),
                    Conversation {
                        dst: (server_ip, 80),
                        requests: vec![http::build_get(url, "s")],
                        tag: url.to_string(),
                    },
                )
            })
            .collect();
        engine.set_app(0, Box::new(ClientApp::new(schedule, sink.clone())));
        engine.run_until(SimTime::ZERO + SimDuration::from_secs(5));
        let samples = sink.borrow();
        assert_eq!(samples.len(), 10);
        let avg = |tag: &str| {
            let v: Vec<f64> = samples
                .iter()
                .filter(|s| s.tag == tag)
                .map(Sample::rt_ms)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(
            avg("/slow") > 3.0 * avg("/fast"),
            "slow {} fast {}",
            avg("/slow"),
            avg("/fast")
        );
    }

    #[test]
    fn multi_request_conversation_closes_from_client() {
        use crate::behaviors::MysqlBehavior;
        use netalytics_packet::mysql;
        let mut engine = Engine::new(Network::fat_tree(4, LinkSpec::default()));
        let db_ip = engine.network().host_ip(1);
        engine.set_app(
            1,
            Box::new(TierApp::new(3306, Box::new(MysqlBehavior::new(2.0, 1)))),
        );
        let sink = sample_sink();
        let conv = Conversation {
            dst: (db_ip, 3306),
            requests: (0..5)
                .map(|i| mysql::build_query(&format!("SELECT {i}")))
                .collect(),
            tag: "batch".into(),
        };
        engine.set_app(
            0,
            Box::new(ClientApp::new(vec![(SimTime::ZERO, conv)], sink.clone())),
        );
        engine.run_until(SimTime::ZERO + SimDuration::from_secs(2));
        let samples = sink.borrow();
        assert_eq!(samples.len(), 1);
        // Five sequential ~2ms queries.
        assert!(samples[0].rt_ms() >= 7.0, "{}", samples[0].rt_ms());
    }
}
