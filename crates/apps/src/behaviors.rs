//! Concrete tier behaviors for the §7 case studies.

#[cfg(test)]
use std::net::Ipv4Addr;
use std::sync::Arc;

use netalytics_netsim::SimDuration;
use netalytics_packet::{http, memcached, mysql};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::tier::{Endpoint, Plan, TierBehavior};

fn jittered(rng: &mut StdRng, mean_ms: f64) -> SimDuration {
    // Multiplicative jitter in [0.7, 1.3): keeps distributions unimodal
    // per URL while avoiding lockstep artifacts.
    let f = rng.random_range(0.7..1.3);
    SimDuration::from_secs_f64((mean_ms * f / 1e3).max(0.0))
}

/// A static web server: per-URL mean service times, no backend
/// (use case §7.3's video/content servers).
#[derive(Debug)]
pub struct StaticHttpBehavior {
    default_ms: f64,
    urls: Vec<(String, f64)>,
    body_bytes: usize,
    rng: StdRng,
}

impl StaticHttpBehavior {
    /// Creates a server answering every URL in `mean_ms` on average.
    pub fn new(mean_ms: f64, seed: u64) -> Self {
        StaticHttpBehavior {
            default_ms: mean_ms,
            urls: Vec::new(),
            body_bytes: 1024,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Builder: overrides the mean for one URL.
    pub fn with_url(mut self, url: impl Into<String>, mean_ms: f64) -> Self {
        self.urls.push((url.into(), mean_ms));
        self
    }

    /// Builder: response body size.
    pub fn with_body_bytes(mut self, n: usize) -> Self {
        self.body_bytes = n;
        self
    }
}

impl TierBehavior for StaticHttpBehavior {
    fn plan(&mut self, request: &[u8], _src: Endpoint, _now_ns: u64) -> Plan {
        let Some(req) = http::parse_request(request) else {
            return Plan::Drop;
        };
        let mean = self
            .urls
            .iter()
            .find(|(u, _)| *u == req.url)
            .map_or(self.default_ms, |(_, ms)| *ms);
        Plan::Respond {
            delay: jittered(&mut self.rng, mean),
            payload: http::build_response(200, &vec![b'x'; self.body_bytes]),
            close: true,
        }
    }
}

/// A MySQL-like backend: per-statement service times keyed by SQL
/// prefix, persistent connections, and an optional general-query-log
/// overhead (the §7.2 "40.8K → 33K qps" comparison).
#[derive(Debug)]
pub struct MysqlBehavior {
    default_ms: f64,
    prefixes: Vec<(String, f64)>,
    /// Extra per-query latency when the general query log is enabled.
    pub log_overhead_ms: f64,
    result_rows: usize,
    rng: StdRng,
}

impl MysqlBehavior {
    /// Creates a backend with `default_ms` mean per query.
    pub fn new(default_ms: f64, seed: u64) -> Self {
        MysqlBehavior {
            default_ms,
            prefixes: Vec::new(),
            log_overhead_ms: 0.0,
            result_rows: 2,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Builder: overrides the mean for statements starting with `prefix`.
    pub fn with_statement(mut self, prefix: impl Into<String>, mean_ms: f64) -> Self {
        self.prefixes.push((prefix.into(), mean_ms));
        self
    }

    /// Builder: enables the general-query-log cost model.
    pub fn with_query_log(mut self, overhead_ms: f64) -> Self {
        self.log_overhead_ms = overhead_ms;
        self
    }

    /// Pure service-time model (used by the throughput bench).
    pub fn service_ms(&mut self, sql: &str) -> f64 {
        let mean = self
            .prefixes
            .iter()
            .find(|(p, _)| sql.starts_with(p.as_str()))
            .map_or(self.default_ms, |(_, ms)| *ms);
        let f = self.rng.random_range(0.7..1.3);
        mean * f + self.log_overhead_ms
    }
}

impl TierBehavior for MysqlBehavior {
    fn plan(&mut self, request: &[u8], _src: Endpoint, _now_ns: u64) -> Plan {
        match mysql::parse_client(request) {
            Some(mysql::ClientMessage::Query { sql }) => {
                let ms = self.service_ms(&sql);
                Plan::Respond {
                    delay: SimDuration::from_secs_f64(ms / 1e3),
                    payload: mysql::build_result_set(1, self.result_rows),
                    close: false,
                }
            }
            Some(mysql::ClientMessage::Quit) | Some(mysql::ClientMessage::Other(_)) | None => {
                Plan::Drop
            }
        }
    }
}

/// A Memcached-like cache: fast constant-time gets.
#[derive(Debug)]
pub struct MemcachedBehavior {
    mean_ms: f64,
    value_bytes: usize,
    rng: StdRng,
}

impl MemcachedBehavior {
    /// Creates a cache with `mean_ms` mean per get (typically ≪ 1 ms).
    pub fn new(mean_ms: f64, seed: u64) -> Self {
        MemcachedBehavior {
            mean_ms,
            value_bytes: 64,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl TierBehavior for MemcachedBehavior {
    fn plan(&mut self, request: &[u8], _src: Endpoint, _now_ns: u64) -> Plan {
        match memcached::parse_command(request) {
            Some(memcached::Command::Get { key }) => Plan::Respond {
                delay: jittered(&mut self.rng, self.mean_ms),
                payload: memcached::build_value_response(&key, Some(&vec![b'v'; self.value_bytes])),
                close: true,
            },
            _ => Plan::Drop,
        }
    }
}

/// An application-tier server (use case §7.1): serves HTTP requests by
/// consulting the cache with probability `cache_ratio`, else the
/// database. The paper's bug is a *misconfigured* server whose
/// `cache_ratio` is (near) zero, sending everything to slow MySQL.
#[derive(Debug)]
pub struct AppServerBehavior {
    mysql: Endpoint,
    memcached: Endpoint,
    /// Probability of serving from the cache.
    pub cache_ratio: f64,
    local_ms: f64,
    rng: StdRng,
}

impl AppServerBehavior {
    /// Creates an app server with backends and a cache-hit ratio.
    pub fn new(mysql: Endpoint, memcached: Endpoint, cache_ratio: f64, seed: u64) -> Self {
        AppServerBehavior {
            mysql,
            memcached,
            cache_ratio: cache_ratio.clamp(0.0, 1.0),
            local_ms: 1.0,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl TierBehavior for AppServerBehavior {
    fn plan(&mut self, request: &[u8], _src: Endpoint, _now_ns: u64) -> Plan {
        let Some(req) = http::parse_request(request) else {
            return Plan::Drop;
        };
        let use_cache = self.rng.random_range(0.0..1.0) < self.cache_ratio;
        let (dst, backend_req) = if use_cache {
            (
                self.memcached,
                memcached::build_get(&format!("page:{}", req.url)),
            )
        } else {
            (
                self.mysql,
                mysql::build_query(&format!("SELECT body FROM pages WHERE url = '{}'", req.url)),
            )
        };
        Plan::Backend {
            dst,
            requests: vec![backend_req],
            post_delay: jittered(&mut self.rng, self.local_ms),
            payload: http::build_response(200, b"rendered"),
            close: true,
        }
    }
}

/// A front-end proxy / load balancer: forwards each request to a backend
/// pool entry (round robin) and relays the response. The pool is shared
/// ([`Arc<Mutex<_>>`]) so the §7.3 auto-scaler can grow or shrink it live.
#[derive(Debug)]
pub struct ProxyBehavior {
    pool: Arc<Mutex<Vec<Endpoint>>>,
    rr: usize,
}

impl ProxyBehavior {
    /// Creates a proxy over a shared backend pool.
    pub fn new(pool: Arc<Mutex<Vec<Endpoint>>>) -> Self {
        ProxyBehavior { pool, rr: 0 }
    }

    /// Convenience: builds a pool handle from a list of backends.
    pub fn pool_of(backends: &[Endpoint]) -> Arc<Mutex<Vec<Endpoint>>> {
        Arc::new(Mutex::new(backends.to_vec()))
    }
}

impl TierBehavior for ProxyBehavior {
    fn plan(&mut self, request: &[u8], _src: Endpoint, _now_ns: u64) -> Plan {
        let pool = self.pool.lock();
        if pool.is_empty() {
            return Plan::Respond {
                delay: SimDuration::from_micros(100),
                payload: http::build_response(500, b"no backends"),
                close: true,
            };
        }
        self.rr = (self.rr + 1) % pool.len();
        let dst = pool[self.rr];
        Plan::Backend {
            dst,
            requests: vec![request.to_vec()],
            post_delay: SimDuration::from_micros(200),
            payload: http::build_response(200, b"proxied"),
            close: true,
        }
    }
}

/// Shared proxy pool handle type.
pub type SharedPool = Arc<Mutex<Vec<Endpoint>>>;

#[cfg(test)]
mod tests {
    use super::*;

    const DB: Endpoint = (Ipv4Addr::new(10, 0, 0, 6), 3306);
    const MC: Endpoint = (Ipv4Addr::new(10, 0, 0, 7), 11211);

    #[test]
    fn static_http_uses_per_url_means() {
        let mut b = StaticHttpBehavior::new(10.0, 1).with_url("/slow", 1000.0);
        let fast = b.plan(&http::build_get("/fast", "h"), DB, 0);
        let slow = b.plan(&http::build_get("/slow", "h"), DB, 0);
        let (Plan::Respond { delay: df, .. }, Plan::Respond { delay: ds, .. }) = (fast, slow)
        else {
            panic!("expected Respond plans");
        };
        assert!(ds.as_millis_f64() > 10.0 * df.as_millis_f64());
    }

    #[test]
    fn mysql_prefix_and_log_overhead() {
        let mut plain = MysqlBehavior::new(1.0, 2).with_statement("SELECT", 5.0);
        let mut logged = MysqlBehavior::new(1.0, 2)
            .with_statement("SELECT", 5.0)
            .with_query_log(3.0);
        let a = plain.service_ms("SELECT 1");
        let b = logged.service_ms("SELECT 1");
        assert!((b - a - 3.0).abs() < 1e-9, "same seed, fixed offset");
        let c = plain.service_ms("UPDATE x");
        assert!(c < 5.0, "default mean applies to non-SELECT");
    }

    #[test]
    fn mysql_rejects_garbage_and_stays_open() {
        let mut b = MysqlBehavior::new(1.0, 3);
        assert!(matches!(b.plan(b"junk", DB, 0), Plan::Drop));
        match b.plan(&mysql::build_query("SELECT 1"), DB, 0) {
            Plan::Respond { close, .. } => assert!(!close, "persistent connection"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn app_server_ratio_controls_backend_choice() {
        let mut cached = AppServerBehavior::new(DB, MC, 1.0, 4);
        match cached.plan(&http::build_get("/x", "h"), DB, 0) {
            Plan::Backend { dst, .. } => assert_eq!(dst, MC),
            other => panic!("unexpected {other:?}"),
        }
        let mut uncached = AppServerBehavior::new(DB, MC, 0.0, 4);
        match uncached.plan(&http::build_get("/x", "h"), DB, 0) {
            Plan::Backend { dst, requests, .. } => {
                assert_eq!(dst, DB);
                assert!(mysql::parse_client(&requests[0]).is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn proxy_round_robins_and_tracks_pool_growth() {
        let pool = ProxyBehavior::pool_of(&[DB, MC]);
        let mut p = ProxyBehavior::new(pool.clone());
        let pick = |p: &mut ProxyBehavior| match p.plan(b"GET / HTTP/1.1\r\n", DB, 0) {
            Plan::Backend { dst, .. } => dst,
            _ => panic!("expected backend"),
        };
        let a = pick(&mut p);
        let b = pick(&mut p);
        assert_ne!(a, b, "round robin alternates");
        // Auto-scaler adds a replica; proxy sees it immediately.
        pool.lock().push((Ipv4Addr::new(10, 0, 0, 8), 80));
        let picks: Vec<_> = (0..3).map(|_| pick(&mut p)).collect();
        assert!(picks.contains(&(Ipv4Addr::new(10, 0, 0, 8), 80)));
    }

    #[test]
    fn empty_pool_returns_500() {
        let mut p = ProxyBehavior::new(Arc::new(Mutex::new(Vec::new())));
        match p.plan(b"GET / HTTP/1.1\r\n", DB, 0) {
            Plan::Respond { payload, .. } => {
                assert!(String::from_utf8_lossy(&payload).contains("500"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
