//! `StoreSink`: the terminal bolt that commits query output to a
//! [`TimeSeriesStore`].
//!
//! The sink is pass-through: every tuple it receives is re-emitted, so
//! appending it after a topology's previous terminals changes nothing
//! about the in-memory `ResultSet` — it only adds durability. Tuples
//! buffer per group key and flush as batches on a size threshold, on
//! every tick, and at shutdown, so the store sees the same batch-first
//! traffic shape as the rest of the data plane.

use std::collections::BTreeMap;
use std::sync::Arc;

use netalytics_data::{DataTuple, TraceCtx, TupleBatch};
use netalytics_stream::Bolt;
use netalytics_telemetry::{wall_now_ns, Tracer};

use crate::backend::ResultBackend;
use crate::store::SeriesKey;

/// Tuples buffered across all groups before an early flush.
const FLUSH_THRESHOLD: usize = 64;

/// Trace contexts held open at once; beyond this, extra traced batches
/// simply close without a `store` span rather than grow the buffer.
const TRACED_CAP: usize = 64;

/// Terminal bolt persisting tuples into a shared store (any
/// [`ResultBackend`] — single-node or sharded).
pub struct StoreSink {
    store: Arc<dyn ResultBackend>,
    query_id: u64,
    group_field: Option<String>,
    /// Ordered by group key so a flush appends series in the same order
    /// on every run and under both executors — the log layout (and any
    /// observable that depends on append order) is deterministic.
    pending: BTreeMap<String, TupleBatch>,
    pending_tuples: usize,
    /// When set, traced batches observed via [`Bolt::observe_trace`]
    /// record a `store` stage span (observe → commit) at the next flush.
    tracer: Option<Arc<Tracer>>,
    /// Open (context, observed-at) pairs awaiting the flush that commits
    /// their tuples; deduped by (cookie, batch id).
    traced: Vec<(TraceCtx, u64)>,
}

impl StoreSink {
    /// Builds a sink for one query. `group_field` names the tuple field
    /// whose value becomes the series group key (tuples without it, or
    /// ungrouped queries, land in the `""` series).
    pub fn new<S: ResultBackend + 'static>(
        store: Arc<S>,
        query_id: u64,
        group_field: Option<String>,
    ) -> Self {
        Self::over(store, query_id, group_field)
    }

    /// Like [`StoreSink::new`], but for an already type-erased backend.
    pub fn over(store: Arc<dyn ResultBackend>, query_id: u64, group_field: Option<String>) -> Self {
        StoreSink {
            store,
            query_id,
            group_field,
            pending: BTreeMap::new(),
            pending_tuples: 0,
            tracer: None,
            traced: Vec::new(),
        }
    }

    /// Enables `store` stage spans: each traced batch whose context
    /// reaches this sink gets a span from observation to the flush that
    /// durably commits its tuples, closing the end-to-end waterfall.
    pub fn with_tracer(mut self, tracer: Arc<Tracer>) -> Self {
        self.tracer = Some(tracer);
        self
    }

    fn group_of(&self, tuple: &DataTuple) -> String {
        self.group_field
            .as_deref()
            .and_then(|f| tuple.get(f))
            .map(|v| v.to_string())
            .unwrap_or_default()
    }

    /// A malformed tuple must not kill the sink (it runs on the
    /// executor's data plane) and must not be silently mangled into the
    /// wrong series: a group key longer than the wire format's `str16`
    /// limit would be truncated on encode and land under a different
    /// key. Such tuples are skipped and counted in `store.sink_skipped`.
    fn malformed(&self, group: &str) -> bool {
        group.len() > u16::MAX as usize
    }

    fn flush(&mut self) {
        if self.pending_tuples == 0 {
            return;
        }
        for (group, batch) in std::mem::take(&mut self.pending) {
            let series = SeriesKey::new(self.query_id, group);
            if self.store.append(&series, &batch).is_err() {
                self.store.note_append_error();
            }
        }
        self.pending_tuples = 0;
        self.store.note_sink_flush();
        if let Some(tracer) = &self.tracer {
            let now = wall_now_ns();
            for (ctx, observed_ns) in self.traced.drain(..) {
                tracer.record_span(
                    0,
                    ctx.cookie,
                    ctx.batch_id,
                    ctx.born_ns,
                    "store",
                    observed_ns,
                    now,
                );
            }
        }
    }
}

impl Bolt for StoreSink {
    fn observe_trace(&mut self, ctx: &TraceCtx) {
        if self.tracer.is_none() || self.traced.len() >= TRACED_CAP {
            return;
        }
        // Executors may deliver the same batch's context once per slab.
        if self
            .traced
            .iter()
            .any(|(c, _)| c.cookie == ctx.cookie && c.batch_id == ctx.batch_id)
        {
            return;
        }
        self.traced.push((*ctx, wall_now_ns()));
    }

    fn execute(&mut self, tuple: &DataTuple, out: &mut Vec<DataTuple>) {
        // Pass-through first: downstream consumers still see the tuple
        // even when it cannot be persisted faithfully.
        out.push(tuple.clone());
        let group = self.group_of(tuple);
        if self.malformed(&group) {
            self.store.note_sink_skipped(1);
            return;
        }
        self.pending.entry(group).or_default().push(tuple.clone());
        self.pending_tuples += 1;
        if self.pending_tuples >= FLUSH_THRESHOLD {
            self.flush();
        }
    }

    fn tick(&mut self, _now_ns: u64, _out: &mut Vec<DataTuple>) {
        self.flush();
    }
}

impl Drop for StoreSink {
    /// Belt and braces: executors call `finish` (default: a last tick)
    /// on shutdown, but a dropped executor must not strand buffered
    /// tuples either.
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::TimeSeriesStore;

    fn tuple(ts: u64, url: &str, n: u64) -> DataTuple {
        DataTuple::new(1, ts).with("url", url).with("count", n)
    }

    #[test]
    fn sink_is_passthrough_and_commits_on_tick() {
        let store = Arc::new(TimeSeriesStore::in_memory());
        let mut sink = StoreSink::new(store.clone(), 7, Some("url".into()));
        let mut out = Vec::new();
        sink.execute(&tuple(10, "/a", 1), &mut out);
        sink.execute(&tuple(20, "/b", 2), &mut out);
        assert_eq!(out.len(), 2, "every tuple re-emitted");
        assert_eq!(store.stats().tuples, 0, "buffered, not yet committed");

        sink.tick(99, &mut out);
        assert_eq!(store.stats().tuples, 2);
        let a = store
            .latest(&SeriesKey::new(7, "/a"))
            .expect("series /a exists");
        assert_eq!(a.ts_ns, 10);
        assert!(store.latest(&SeriesKey::new(7, "/b")).is_some());
        assert!(store.latest(&SeriesKey::new(8, "/a")).is_none());
    }

    #[test]
    fn threshold_flushes_without_tick_and_groups_default_series() {
        let store = Arc::new(TimeSeriesStore::in_memory());
        let mut sink = StoreSink::new(store.clone(), 1, None);
        let mut out = Vec::new();
        for i in 0..FLUSH_THRESHOLD as u64 {
            sink.execute(&tuple(i, "/x", i), &mut out);
        }
        assert_eq!(store.stats().tuples, FLUSH_THRESHOLD as u64);
        assert_eq!(store.series(), vec![SeriesKey::new(1, "")]);
    }

    #[test]
    fn flush_order_is_deterministic_across_runs() {
        // All tuples share one timestamp, so `query_history`'s stable
        // sort preserves append order — making the flush order of the
        // grouped buffers observable. It must be the sorted group order
        // on every run (a HashMap here once made this arbitrary).
        let run = || {
            let store = Arc::new(TimeSeriesStore::in_memory());
            let mut sink = StoreSink::new(store.clone(), 3, Some("url".into()));
            let mut out = Vec::new();
            for url in ["/m", "/z", "/a", "/q", "/b"] {
                sink.execute(&tuple(7, url, 1), &mut out);
            }
            sink.tick(99, &mut out);
            store
                .query_history(3)
                .unwrap()
                .into_iter()
                .map(|t| t.get("url").unwrap().to_string())
                .collect::<Vec<_>>()
        };
        let first = run();
        assert_eq!(first, vec!["/a", "/b", "/m", "/q", "/z"]);
        for _ in 0..4 {
            assert_eq!(run(), first);
        }
    }

    #[test]
    fn traced_batches_close_with_a_store_span() {
        use netalytics_telemetry::{TraceConfig, Tracer};

        let tracer = Arc::new(Tracer::new(TraceConfig {
            sample_every: 1,
            ..TraceConfig::default()
        }));
        let store = Arc::new(TimeSeriesStore::in_memory());
        let mut sink = StoreSink::new(store, 7, None).with_tracer(Arc::clone(&tracer));
        let ctx = TraceCtx {
            cookie: 9,
            batch_id: 2,
            born_ns: 0,
        };
        sink.observe_trace(&ctx);
        sink.observe_trace(&ctx); // per-slab redelivery is expected
        let mut out = Vec::new();
        sink.execute(&tuple(10, "/a", 1), &mut out);
        sink.tick(99, &mut out);
        let falls = tracer.waterfalls(9);
        assert_eq!(falls.len(), 1);
        assert_eq!(falls[0].spans.len(), 1, "duplicate observe deduped");
        assert_eq!(falls[0].spans[0].stage, "store");
    }

    #[test]
    fn malformed_group_keys_are_skipped_not_mangled() {
        let registry = netalytics_telemetry::MetricsRegistry::new();
        let store = Arc::new(TimeSeriesStore::in_memory());
        store.register_metrics(&registry);
        let mut sink = StoreSink::new(store.clone(), 5, Some("url".into()));
        let mut out = Vec::new();
        // A group key past the str16 wire limit would be truncated on
        // encode and stored under a different series; it must be
        // skipped instead of persisted (and must not panic the sink).
        let oversized = "x".repeat(u16::MAX as usize + 1);
        sink.execute(&tuple(10, &oversized, 1), &mut out);
        sink.execute(&tuple(20, "/ok", 2), &mut out);
        sink.tick(99, &mut out);

        assert_eq!(out.len(), 2, "skipped tuples still pass through");
        assert_eq!(store.stats().tuples, 1, "only the well-formed tuple lands");
        assert_eq!(store.stats().sink_skipped, 1);
        assert_eq!(
            registry.snapshot().counter_total("store.sink_skipped"),
            1,
            "skips surface as a metric"
        );
        assert_eq!(store.series(), vec![SeriesKey::new(5, "/ok")]);
    }

    #[test]
    fn drop_flushes_the_tail() {
        let store = Arc::new(TimeSeriesStore::in_memory());
        {
            let mut sink = StoreSink::new(store.clone(), 2, None);
            let mut out = Vec::new();
            sink.execute(&tuple(5, "/y", 1), &mut out);
        }
        assert_eq!(store.stats().tuples, 1);
    }
}
