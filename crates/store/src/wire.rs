//! Minimal little-endian field helpers for frame payloads.
//!
//! Tuple data itself travels as [`netalytics_data`]'s binary codec
//! (`TupleBatch::encode`/`decode`); these helpers only lay out the
//! record headers around it.

use crate::store::StoreError;

/// Appends a `u16`.
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` (IEEE 754 bits).
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Appends a string as `len:u16` + UTF-8 bytes. Longer strings are
/// truncated at a character boundary.
pub fn put_str16(out: &mut Vec<u8>, s: &str) {
    let mut end = s.len().min(u16::MAX as usize);
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    put_u16(out, end as u16);
    out.extend_from_slice(&s.as_bytes()[..end]);
}

/// Cursor over a frame payload. Reads fail with
/// [`StoreError::Corrupt`] rather than panicking, so a record from a
/// future or foreign layout degrades to an error.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], StoreError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(StoreError::Corrupt(what))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub fn u16(&mut self, what: &'static str) -> Result<u16, StoreError> {
        Ok(u16::from_le_bytes(
            self.take(2, what)?.try_into().expect("2 bytes"),
        ))
    }

    pub fn u64(&mut self, what: &'static str) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    pub fn f64(&mut self, what: &'static str) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    pub fn str16(&mut self, what: &'static str) -> Result<&'a str, StoreError> {
        let len = self.u16(what)? as usize;
        std::str::from_utf8(self.take(len, what)?).map_err(|_| StoreError::Corrupt(what))
    }

    /// Everything not yet consumed.
    pub fn rest(self) -> &'a [u8] {
        &self.buf[self.pos..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_field_kinds() {
        let mut buf = Vec::new();
        put_u16(&mut buf, 7);
        put_u64(&mut buf, u64::MAX - 1);
        put_f64(&mut buf, -2.5);
        put_str16(&mut buf, "grüße");
        buf.extend_from_slice(b"tail");

        let mut r = Reader::new(&buf);
        assert_eq!(r.u16("a").unwrap(), 7);
        assert_eq!(r.u64("b").unwrap(), u64::MAX - 1);
        assert_eq!(r.f64("c").unwrap(), -2.5);
        assert_eq!(r.str16("d").unwrap(), "grüße");
        assert_eq!(r.rest(), b"tail");
    }

    #[test]
    fn short_reads_error_instead_of_panicking() {
        let mut r = Reader::new(&[1, 2, 3]);
        assert!(matches!(r.u64("x"), Err(StoreError::Corrupt("x"))));
        let mut buf = Vec::new();
        put_u16(&mut buf, 100); // promises 100 string bytes, provides none
        let mut r = Reader::new(&buf);
        assert!(r.str16("s").is_err());
    }
}
