//! Segment scanning and folding: the shared read-path primitives under
//! the history query plane.
//!
//! Two consumers need to walk a segment's frames tuple by tuple: raw
//! reads ([`crate::store::TimeSeriesStore::range`] when the memtable
//! cannot serve) and the history engine's replay/edge paths. Both go
//! through [`SeriesScan`], which decodes lazily — a frame whose record
//! header says it belongs to another series or lies outside the time
//! bounds is skipped without decoding its tuple batch.
//!
//! [`fold_segment`] is the other half: it folds *every* field of every
//! tuple in a segment into native-bucket [`RollupPoint`] cells, exactly
//! the way retention compaction summarises expired segments. Sealed
//! segments cache this fold (see `Segment::rollup` in `store.rs`), so
//! an aggregation pushdown can merge a handful of cells instead of
//! re-decoding a million tuples, and `compact()` reuses the same cells
//! when the segment later expires.

use std::collections::{BTreeMap, VecDeque};

use netalytics_data::{DataTuple, Value};

use crate::frame::FrameIter;
use crate::rollup::RollupPoint;
use crate::store::{decode_batch, decode_record, SeriesKey, StoreError};

/// Per-segment rollup cells: `(series, field) -> bucket_start -> cell`.
pub(crate) type SegmentCells = BTreeMap<(SeriesKey, String), BTreeMap<u64, RollupPoint>>;

/// Lazy tuple iterator over one segment's frames for a single series
/// and inclusive time range. Yields tuples in frame order (callers
/// sort when they need global timestamp order).
pub(crate) struct SeriesScan<'a> {
    frames: FrameIter<'a>,
    series: &'a SeriesKey,
    t0: u64,
    t1: u64,
    pending: VecDeque<DataTuple>,
}

impl<'a> SeriesScan<'a> {
    /// Scans `bytes` (typically `&segment.bytes[segment.seek(t0)..]`)
    /// for tuples of `series` with `t0 <= ts <= t1`.
    pub(crate) fn new(bytes: &'a [u8], series: &'a SeriesKey, t0: u64, t1: u64) -> Self {
        SeriesScan {
            frames: FrameIter::new(bytes),
            series,
            t0,
            t1,
            pending: VecDeque::new(),
        }
    }
}

impl Iterator for SeriesScan<'_> {
    type Item = Result<DataTuple, StoreError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(t) = self.pending.pop_front() {
                return Some(Ok(t));
            }
            let (_, payload) = self.frames.next()?;
            let rec = match decode_record(payload) {
                Ok(rec) => rec,
                Err(e) => return Some(Err(e)),
            };
            if rec.query_id != self.series.query_id
                || rec.group != self.series.group
                || rec.min_ts > self.t1
                || rec.max_ts < self.t0
            {
                continue;
            }
            let batch = match decode_batch(rec.batch) {
                Ok(b) => b,
                Err(e) => return Some(Err(e)),
            };
            self.pending.extend(
                batch
                    .into_tuples()
                    .into_iter()
                    .filter(|t| t.ts_ns >= self.t0 && t.ts_ns <= self.t1),
            );
        }
    }
}

/// Folds one tuple field into a rollup cell the way compaction does:
/// numeric values are observed, sketch snapshots merge through the
/// sketch algebra, everything else (strings, nulls) is skipped.
pub(crate) fn fold_value(cell: &mut RollupPoint, v: &Value) {
    match v {
        Value::Bytes(b) => {
            cell.fold_sketch(b);
        }
        other => {
            if let Some(x) = other.as_f64() {
                cell.observe(x);
            }
        }
    }
}

/// Folds every field of every tuple in a segment into native-bucket
/// cells. Returns the cells plus the number of tuples folded.
///
/// # Errors
///
/// Decode errors on frames that passed their CRC (version skew) — the
/// caller treats the segment as un-summarisable and scans it raw.
pub(crate) fn fold_segment(bytes: &[u8], native: u64) -> Result<(SegmentCells, u64), StoreError> {
    let mut cells = SegmentCells::new();
    let mut tuples = 0u64;
    for (_, payload) in FrameIter::new(bytes) {
        let rec = decode_record(payload)?;
        let series = SeriesKey::new(rec.query_id, rec.group);
        for tuple in decode_batch(rec.batch)?.into_tuples() {
            tuples += 1;
            let bucket = tuple.ts_ns - tuple.ts_ns % native;
            for (k, v) in &tuple.fields {
                let cell = cells
                    .entry((series.clone(), k.clone()))
                    .or_default()
                    .entry(bucket)
                    .or_insert_with(|| RollupPoint::empty(bucket, native));
                fold_value(cell, v);
            }
        }
    }
    Ok((cells, tuples))
}

#[cfg(test)]
mod tests {
    use netalytics_data::TupleBatch;

    use super::*;
    use crate::frame::write_frame;
    use crate::store::encode_record;

    fn segment_bytes(series: &SeriesKey, batches: &[TupleBatch]) -> Vec<u8> {
        let mut out = Vec::new();
        for b in batches {
            let (payload, _, _) = encode_record(series, b);
            write_frame(&mut out, &payload);
        }
        out
    }

    #[test]
    fn scan_filters_by_series_and_time_without_decoding_foreign_frames() {
        let a = SeriesKey::new(1, "a");
        let b = SeriesKey::new(1, "b");
        let mk = |ts: u64, v: u64| DataTuple::new(v, ts).with("v", v);
        let mut bytes = segment_bytes(
            &a,
            &[TupleBatch::from_tuples(vec![
                mk(100, 1),
                mk(200, 2),
                mk(300, 3),
            ])],
        );
        bytes.extend(segment_bytes(
            &b,
            &[TupleBatch::from_tuples(vec![mk(150, 9)])],
        ));

        let got: Vec<u64> = SeriesScan::new(&bytes, &a, 150, 300)
            .map(|r| r.expect("clean scan").ts_ns)
            .collect();
        assert_eq!(got, [200, 300]);
        let other: Vec<u64> = SeriesScan::new(&bytes, &b, 0, u64::MAX)
            .map(|r| r.expect("clean scan").ts_ns)
            .collect();
        assert_eq!(other, [150]);
    }

    #[test]
    fn fold_segment_matches_per_tuple_observation() {
        let s = SeriesKey::new(3, "");
        let batch = TupleBatch::from_tuples(vec![
            DataTuple::new(0, 500).with("t_ns", 10u64),
            DataTuple::new(1, 900).with("t_ns", 30u64),
            DataTuple::new(2, 1_500).with("t_ns", 20u64),
        ]);
        let bytes = segment_bytes(&s, &[batch]);
        let (cells, tuples) = fold_segment(&bytes, 1_000).expect("fold");
        assert_eq!(tuples, 3);
        let by_field = &cells[&(s, "t_ns".to_string())];
        assert_eq!(by_field.len(), 2, "two native buckets");
        assert_eq!(by_field[&0].count, 2);
        assert_eq!(by_field[&0].sum, 40.0);
        assert_eq!(by_field[&1_000].count, 1);
        assert_eq!(by_field[&1_000].min, 20.0);
    }
}
