//! A sharded, replicated result store: N shard directories, each a
//! primary/follower pair of [`TimeSeriesStore`]s.
//!
//! The scale-out control plane (DESIGN.md §13) cannot lose result
//! history or standing-query watermarks to a single store-node
//! failure. [`ShardedStore`] routes each `(cookie, group)` series to a
//! shard by FNV hash — the same stateless assignment the queue uses
//! for partitions — and commits every append to **all live replicas**
//! of that shard. Reads come from the shard's *leader*: the first
//! replica that is up and has missed no writes. Election is stateless
//! and deterministic, exactly like the queue's partition leadership,
//! so every reader agrees without coordination.
//!
//! Failure semantics, in one breath:
//!
//! * An append succeeds iff at least one replica commits it, so a
//!   committed batch survives the loss of any single store node.
//! * A replica that is down while appends flow is marked **stale** and
//!   excluded from leadership when it returns — it has a gap, and
//!   serving it would un-commit history ([`ShardedStore::clear_stale`]
//!   re-admits it after an out-of-band resync).
//! * A replica whose directory is missing or unreadable at open is
//!   **quarantined**: the open still succeeds and every other replica
//!   and shard keeps serving. A shard with every replica quarantined
//!   answers [`StoreError::ShardUnavailable`] for direct reads and is
//!   skipped (not failed) by cross-shard fan-outs.
//!
//! Cross-shard reads ([`ShardedStore::query_history`],
//! [`ShardedStore::series`], merged stats) fan out over shard leaders
//! and merge — the per-shard answers are the same mergeable shapes
//! (`Vec<DataTuple>` by timestamp, [`StoreStats`] sums) the single
//! store already exposes.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use netalytics_data::{DataTuple, TupleBatch};
use netalytics_telemetry::{Counter, Gauge, Journal, MetricsRegistry};
use parking_lot::Mutex;

use crate::backend::ResultBackend;
use crate::history::{HistoryAnswer, HistoryQuery};
use crate::rollup::RollupPoint;
use crate::store::{
    CompactionReport, SeriesKey, StoreConfig, StoreError, StoreStats, TimeSeriesStore,
};

/// Configuration of a [`ShardedStore`].
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Number of shards series hash across.
    pub shards: usize,
    /// Replicas per shard; every append is written to all live ones.
    pub replication: usize,
    /// Per-replica store tuning.
    pub store: StoreConfig,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            shards: 4,
            replication: 2,
            store: StoreConfig::default(),
        }
    }
}

/// One replica of one shard.
struct Replica {
    /// `None` when the replica was quarantined at open.
    store: Option<TimeSeriesStore>,
    /// Chaos liveness, toggled by fail/restore.
    up: AtomicBool,
    /// The replica missed at least one append while down; it must not
    /// lead until [`ShardedStore::clear_stale`] re-admits it.
    stale: AtomicBool,
    /// Why the replica was quarantined, when it was.
    quarantine: Option<String>,
}

impl Replica {
    fn live(&self) -> Option<&TimeSeriesStore> {
        if self.up.load(Ordering::Relaxed) {
            self.store.as_ref()
        } else {
            None
        }
    }

    fn is_stale(&self) -> bool {
        self.stale.load(Ordering::Relaxed)
    }
}

struct Shard {
    replicas: Vec<Replica>,
}

impl Shard {
    /// Leader: first live non-stale replica; falls back to a live
    /// stale one (better a gapped answer than none) — the caller
    /// counts fallbacks.
    fn leader(&self) -> Option<(usize, &TimeSeriesStore, bool)> {
        for (i, r) in self.replicas.iter().enumerate() {
            if let Some(s) = r.live() {
                if !r.is_stale() {
                    return Some((i, s, false));
                }
            }
        }
        for (i, r) in self.replicas.iter().enumerate() {
            if let Some(s) = r.live() {
                return Some((i, s, true));
            }
        }
        None
    }
}

/// Registered metric handles (shared get-or-create with the replica
/// stores' `store.*` series, plus sharded-specific ones).
struct ShardedMetrics {
    appends: Arc<Counter>,
    write_errors: Arc<Counter>,
    fallback_reads: Arc<Counter>,
    sink_flushes: Arc<Counter>,
    sink_skipped: Arc<Counter>,
    append_errors: Arc<Counter>,
    quarantined: Arc<Gauge>,
    down: Arc<Gauge>,
    stale: Arc<Gauge>,
}

/// Point-in-time replication counters, alongside the merged
/// [`StoreStats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardedStats {
    /// Configured shard count.
    pub shards: usize,
    /// Configured replicas per shard.
    pub replication: usize,
    /// Replicas quarantined at open (unreadable/missing directories).
    pub quarantined: usize,
    /// Replicas currently marked down.
    pub down: usize,
    /// Replicas excluded from leadership because they missed writes.
    pub stale: usize,
    /// Batches accepted (committed to >= 1 replica).
    pub appends: u64,
    /// Per-replica write failures absorbed by replication.
    pub write_errors: u64,
    /// Reads served by a stale replica because no clean one was live.
    pub fallback_reads: u64,
    /// Merged per-replica-leader store counters.
    pub store: StoreStats,
}

/// The replicated, sharded result store. Thread-safe and cheap to
/// share via `Arc`; implements [`ResultBackend`], so it drops into
/// every place a [`TimeSeriesStore`] fits.
pub struct ShardedStore {
    cfg: ShardedConfig,
    dir: Option<PathBuf>,
    shards: Vec<Shard>,
    appends: AtomicU64,
    write_errors: AtomicU64,
    fallback_reads: AtomicU64,
    sink_flushes: AtomicU64,
    sink_skipped: AtomicU64,
    append_errors: AtomicU64,
    metrics: Mutex<Option<ShardedMetrics>>,
}

impl std::fmt::Debug for ShardedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.sharded_stats();
        f.debug_struct("ShardedStore")
            .field("shards", &s.shards)
            .field("replication", &s.replication)
            .field("quarantined", &s.quarantined)
            .field("appends", &s.appends)
            .finish_non_exhaustive()
    }
}

fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("MANIFEST")
}

fn read_manifest(dir: &Path) -> Option<(usize, usize)> {
    let text = fs::read_to_string(manifest_path(dir)).ok()?;
    let mut shards = None;
    let mut replication = None;
    for line in text.lines() {
        if let Some(v) = line.strip_prefix("shards=") {
            shards = v.trim().parse().ok();
        } else if let Some(v) = line.strip_prefix("replication=") {
            replication = v.trim().parse().ok();
        }
    }
    Some((shards?, replication?))
}

impl ShardedStore {
    /// Opens (or creates) a sharded store rooted at `dir`, with one
    /// `shard-NN/replica-N` store directory per replica.
    ///
    /// A root that was opened before carries a `MANIFEST` recording its
    /// shard count and replication factor; those recorded values
    /// override `cfg`'s, so the series→shard hash stays consistent
    /// across restarts even if the caller's config drifted.
    ///
    /// Replicas whose directory is missing (while the manifest says it
    /// existed) or fails to open are **quarantined**, not fatal: the
    /// store opens and serves everything else. Open fails only when
    /// the root itself cannot be created or the config is degenerate.
    ///
    /// # Errors
    ///
    /// Filesystem errors on the root directory.
    pub fn open(dir: impl AsRef<Path>, mut cfg: ShardedConfig) -> Result<Self, StoreError> {
        assert!(cfg.shards > 0, "need at least one shard");
        assert!(cfg.replication > 0, "need a replication factor of >= 1");
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let manifest = read_manifest(&dir);
        if let Some((shards, replication)) = manifest {
            cfg.shards = shards.max(1);
            cfg.replication = replication.max(1);
        }
        let seen_before = manifest.is_some();

        let mut shards = Vec::with_capacity(cfg.shards);
        for s in 0..cfg.shards {
            let mut replicas = Vec::with_capacity(cfg.replication);
            for r in 0..cfg.replication {
                let path = dir
                    .join(format!("shard-{s:02}"))
                    .join(format!("replica-{r}"));
                let replica = if seen_before && !path.is_dir() {
                    Replica {
                        store: None,
                        up: AtomicBool::new(false),
                        stale: AtomicBool::new(true),
                        quarantine: Some(format!(
                            "replica directory {} missing at open",
                            path.display()
                        )),
                    }
                } else {
                    match TimeSeriesStore::open_with(&path, cfg.store.clone()) {
                        Ok(store) => Replica {
                            store: Some(store),
                            up: AtomicBool::new(true),
                            stale: AtomicBool::new(false),
                            quarantine: None,
                        },
                        Err(e) => Replica {
                            store: None,
                            up: AtomicBool::new(false),
                            stale: AtomicBool::new(true),
                            quarantine: Some(format!("open of {} failed: {e}", path.display())),
                        },
                    }
                };
                replicas.push(replica);
            }
            shards.push(Shard { replicas });
        }
        fs::write(
            manifest_path(&dir),
            format!("shards={}\nreplication={}\n", cfg.shards, cfg.replication),
        )?;
        Ok(Self::assemble(cfg, Some(dir), shards))
    }

    /// A purely in-memory sharded store — same routing, replication
    /// and failure semantics, minus durability. For tests and chaos
    /// benches.
    pub fn in_memory(cfg: ShardedConfig) -> Self {
        assert!(cfg.shards > 0, "need at least one shard");
        assert!(cfg.replication > 0, "need a replication factor of >= 1");
        let shards = (0..cfg.shards)
            .map(|_| Shard {
                replicas: (0..cfg.replication)
                    .map(|_| Replica {
                        store: Some(TimeSeriesStore::in_memory_with(cfg.store.clone())),
                        up: AtomicBool::new(true),
                        stale: AtomicBool::new(false),
                        quarantine: None,
                    })
                    .collect(),
            })
            .collect();
        Self::assemble(cfg, None, shards)
    }

    fn assemble(cfg: ShardedConfig, dir: Option<PathBuf>, shards: Vec<Shard>) -> Self {
        let store = ShardedStore {
            cfg,
            dir,
            shards,
            appends: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
            fallback_reads: AtomicU64::new(0),
            sink_flushes: AtomicU64::new(0),
            sink_skipped: AtomicU64::new(0),
            append_errors: AtomicU64::new(0),
            metrics: Mutex::new(None),
        };
        store.refresh_gauges();
        store
    }

    /// The configured shard/replication counts (post-manifest).
    pub fn config(&self) -> &ShardedConfig {
        &self.cfg
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard `series` routes to: FNV over `(query_id, group)`,
    /// stable across restarts (the manifest pins the shard count).
    pub fn shard_of(&self, series: &SeriesKey) -> usize {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in series.query_id.to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
        h = (h ^ 0xff).wrapping_mul(0x100_0000_01b3);
        for b in series.group.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
        (h as usize) % self.shards.len()
    }

    /// Marks one replica dead (chaos hook). Appends keep committing to
    /// the shard's surviving replicas; the dead one accrues staleness
    /// as soon as it misses a write. Idempotent; out-of-range ignored.
    pub fn fail_replica(&self, shard: usize, replica: usize) {
        if let Some(r) = self.shards.get(shard).and_then(|s| s.replicas.get(replica)) {
            if r.store.is_some() {
                r.up.store(false, Ordering::Relaxed);
            }
        }
        self.refresh_gauges();
    }

    /// Brings a failed replica back. It stays excluded from leadership
    /// while stale (it missed writes); see
    /// [`ShardedStore::clear_stale`].
    pub fn restore_replica(&self, shard: usize, replica: usize) {
        if let Some(r) = self.shards.get(shard).and_then(|s| s.replicas.get(replica)) {
            if r.store.is_some() {
                r.up.store(true, Ordering::Relaxed);
            }
        }
        self.refresh_gauges();
    }

    /// Re-admits a replica to leadership after an out-of-band resync
    /// (this in-process reproduction does not re-replicate history).
    pub fn clear_stale(&self, shard: usize, replica: usize) {
        if let Some(r) = self.shards.get(shard).and_then(|s| s.replicas.get(replica)) {
            if r.store.is_some() {
                r.stale.store(false, Ordering::Relaxed);
            }
        }
        self.refresh_gauges();
    }

    /// Whether the replica is up (quarantined/out-of-range are down).
    pub fn replica_is_up(&self, shard: usize, replica: usize) -> bool {
        self.shards
            .get(shard)
            .and_then(|s| s.replicas.get(replica))
            .is_some_and(|r| r.live().is_some())
    }

    /// The shard's acting leader replica index, if any replica is live.
    pub fn leader_of(&self, shard: usize) -> Option<usize> {
        self.shards.get(shard)?.leader().map(|(i, _, _)| i)
    }

    /// Direct access to one replica's store (tests/inspection).
    pub fn replica(&self, shard: usize, replica: usize) -> Option<&TimeSeriesStore> {
        self.shards
            .get(shard)?
            .replicas
            .get(replica)?
            .store
            .as_ref()
    }

    /// Quarantine reasons recorded at open, as
    /// `(shard, replica, reason)`.
    pub fn quarantined(&self) -> Vec<(usize, usize, String)> {
        let mut out = Vec::new();
        for (s, shard) in self.shards.iter().enumerate() {
            for (r, replica) in shard.replicas.iter().enumerate() {
                if let Some(reason) = &replica.quarantine {
                    out.push((s, r, reason.clone()));
                }
            }
        }
        out
    }

    /// True when every replica of `shard` was quarantined at open.
    pub fn shard_is_quarantined(&self, shard: usize) -> bool {
        self.shards
            .get(shard)
            .is_some_and(|s| s.replicas.iter().all(|r| r.store.is_none()))
    }

    /// Replication counters plus the merged per-shard-leader
    /// [`StoreStats`].
    pub fn sharded_stats(&self) -> ShardedStats {
        let mut stats = ShardedStats {
            shards: self.shards.len(),
            replication: self.cfg.replication,
            appends: self.appends.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
            fallback_reads: self.fallback_reads.load(Ordering::Relaxed),
            ..ShardedStats::default()
        };
        for shard in &self.shards {
            for r in &shard.replicas {
                if r.store.is_none() {
                    stats.quarantined += 1;
                } else if r.live().is_none() {
                    stats.down += 1;
                } else if r.is_stale() {
                    stats.stale += 1;
                }
            }
            if let Some((_, leader, _)) = shard.leader() {
                merge_stats(&mut stats.store, &leader.stats());
            }
        }
        stats.store.append_errors += self.append_errors.load(Ordering::Relaxed);
        stats.store.sink_skipped += self.sink_skipped.load(Ordering::Relaxed);
        stats
    }

    fn leader_for(&self, series: &SeriesKey) -> Result<&TimeSeriesStore, StoreError> {
        let idx = self.shard_of(series);
        match self.shards[idx].leader() {
            Some((_, store, fallback)) => {
                if fallback {
                    self.fallback_reads.fetch_add(1, Ordering::Relaxed);
                    if let Some(m) = &*self.metrics.lock() {
                        m.fallback_reads.inc();
                    }
                }
                Ok(store)
            }
            None => Err(StoreError::ShardUnavailable { shard: idx }),
        }
    }

    fn refresh_gauges(&self) {
        let metrics = self.metrics.lock(); // cold path
        let Some(m) = &*metrics else {
            return;
        };
        let mut quarantined = 0i64;
        let mut down = 0i64;
        let mut stale = 0i64;
        for shard in &self.shards {
            for r in &shard.replicas {
                if r.store.is_none() {
                    quarantined += 1;
                } else if r.live().is_none() {
                    down += 1;
                } else if r.is_stale() {
                    stale += 1;
                }
            }
        }
        m.quarantined.set(quarantined);
        m.down.set(down);
        m.stale.set(stale);
    }
}

fn merge_stats(into: &mut StoreStats, from: &StoreStats) {
    into.segments += from.segments;
    into.frames += from.frames;
    into.log_bytes += from.log_bytes;
    into.series += from.series;
    into.tuples += from.tuples;
    into.rollup_points += from.rollup_points;
    into.coarse_points += from.coarse_points;
    into.truncated_on_open += from.truncated_on_open;
    into.compactions += from.compactions;
    into.segments_dropped += from.segments_dropped;
    into.append_errors += from.append_errors;
    into.sink_skipped += from.sink_skipped;
}

impl ResultBackend for ShardedStore {
    /// Commits the batch to every live replica of the series' shard.
    /// Succeeds iff at least one replica committed; replicas that were
    /// down or errored are marked stale (they now have a gap).
    fn append(&self, series: &SeriesKey, batch: &TupleBatch) -> Result<(), StoreError> {
        if batch.is_empty() {
            return Ok(());
        }
        let idx = self.shard_of(series);
        let shard = &self.shards[idx];
        let mut committed = 0usize;
        let mut last_err = None;
        for r in &shard.replicas {
            match r.live() {
                Some(store) => match store.append(series, batch) {
                    Ok(()) => committed += 1,
                    Err(e) => {
                        // A replica that cannot persist is as good as
                        // down: fail it so reads avoid its gap.
                        r.up.store(false, Ordering::Relaxed);
                        r.stale.store(true, Ordering::Relaxed);
                        self.write_errors.fetch_add(1, Ordering::Relaxed);
                        if let Some(m) = &*self.metrics.lock() {
                            m.write_errors.inc(); // per-batch lock
                        }
                        last_err = Some(e);
                    }
                },
                None => {
                    if r.store.is_some() {
                        r.stale.store(true, Ordering::Relaxed);
                    }
                }
            }
        }
        if committed == 0 {
            return Err(last_err.unwrap_or(StoreError::ShardUnavailable { shard: idx }));
        }
        self.appends.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = &*self.metrics.lock() {
            m.appends.inc(); // per-batch lock
        }
        Ok(())
    }

    fn latest(&self, series: &SeriesKey) -> Option<DataTuple> {
        self.leader_for(series).ok()?.latest(series)
    }

    fn range(&self, series: &SeriesKey, t0: u64, t1: u64) -> Result<Vec<DataTuple>, StoreError> {
        self.leader_for(series)?.range(series, t0, t1)
    }

    fn rollup(
        &self,
        series: &SeriesKey,
        field: &str,
        t0: u64,
        t1: u64,
        bucket_ns: u64,
    ) -> Result<Vec<RollupPoint>, StoreError> {
        self.leader_for(series)?
            .rollup(series, field, t0, t1, bucket_ns)
    }

    fn history(&self, q: &HistoryQuery) -> Result<HistoryAnswer, StoreError> {
        self.leader_for(&q.series)?.history(q)
    }

    /// Fans out over every shard leader and merges by timestamp. A
    /// query's group series hash independently, so any shard may hold
    /// part of its history. Shards with no live replica are skipped —
    /// quarantine means "serve the rest", not "fail the store".
    fn query_history(&self, query_id: u64) -> Result<Vec<DataTuple>, StoreError> {
        let mut out = Vec::new();
        for shard in &self.shards {
            if let Some((_, leader, fallback)) = shard.leader() {
                if fallback {
                    self.fallback_reads.fetch_add(1, Ordering::Relaxed);
                }
                out.extend(leader.query_history(query_id)?);
            }
        }
        out.sort_by_key(|t| t.ts_ns);
        Ok(out)
    }

    fn series(&self) -> Vec<SeriesKey> {
        let mut out = Vec::new();
        for shard in &self.shards {
            if let Some((_, leader, _)) = shard.leader() {
                out.extend(leader.series());
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// Best-effort: compacts every live replica (stale ones included,
    /// so their logs do not grow unbounded) and sums the reports.
    /// Per-replica failures are absorbed — each replica's own stats
    /// record them — because retention is housekeeping, not
    /// correctness.
    fn compact(&self, now_ns: u64) -> Result<CompactionReport, StoreError> {
        let mut report = CompactionReport::default();
        for shard in &self.shards {
            for r in &shard.replicas {
                if let Some(store) = r.live() {
                    if let Ok(rep) = store.compact(now_ns) {
                        report.segments_dropped += rep.segments_dropped;
                        report.tuples_folded += rep.tuples_folded;
                        report.rollup_points_written += rep.rollup_points_written;
                        report.rollup_cells_demoted += rep.rollup_cells_demoted;
                    }
                }
            }
        }
        Ok(report)
    }

    fn native_bucket_ns(&self) -> u64 {
        self.cfg.store.rollup_bucket_ns
    }

    fn stats(&self) -> StoreStats {
        self.sharded_stats().store
    }

    fn is_durable(&self) -> bool {
        self.dir.is_some()
    }

    fn attach_journal(&self, journal: Arc<Journal>) {
        for shard in &self.shards {
            for r in &shard.replicas {
                if let Some(store) = &r.store {
                    store.attach_journal(Arc::clone(&journal));
                }
            }
        }
    }

    /// Registers every replica's `store.*` series (get-or-create, so
    /// replica counters share handles and sum naturally) plus the
    /// `store.sharded.*` replication series.
    ///
    /// First registry wins: a sharded store is typically shared by
    /// several orchestrator shards, each of which registers its result
    /// backend into its own registry on build. The cluster coordinator
    /// registers the store into its registry first, and later calls
    /// are no-ops so shard-local registries cannot steal the handles.
    fn register_metrics(&self, registry: &MetricsRegistry) {
        if self.metrics.lock().is_some() {
            return;
        }
        for shard in &self.shards {
            for r in &shard.replicas {
                if let Some(store) = &r.store {
                    store.register_metrics(registry);
                }
            }
        }
        *self.metrics.lock() = Some(ShardedMetrics {
            appends: registry.counter("store.sharded.appends", &[]),
            write_errors: registry.counter("store.sharded.write_errors", &[]),
            fallback_reads: registry.counter("store.sharded.fallback_reads", &[]),
            sink_flushes: registry.counter("store.sink_flushes", &[]),
            sink_skipped: registry.counter("store.sink_skipped", &[]),
            append_errors: registry.counter("store.append_errors", &[]),
            quarantined: registry.gauge("store.sharded.quarantined", &[]),
            down: registry.gauge("store.sharded.down", &[]),
            stale: registry.gauge("store.sharded.stale", &[]),
        });
        self.refresh_gauges();
    }

    fn note_sink_flush(&self) {
        self.sink_flushes.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = &*self.metrics.lock() {
            m.sink_flushes.inc();
        }
    }

    fn note_append_error(&self) {
        self.append_errors.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = &*self.metrics.lock() {
            m.append_errors.inc();
        }
    }

    fn note_sink_skipped(&self, n: u64) {
        if n == 0 {
            return;
        }
        self.sink_skipped.fetch_add(n, Ordering::Relaxed);
        if let Some(m) = &*self.metrics.lock() {
            m.sink_skipped.add(n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(ts0: u64, n: u64) -> TupleBatch {
        TupleBatch::from_tuples(
            (0..n)
                .map(|i| DataTuple::new(i, ts0 + i * 100).with("v", ts0 + i))
                .collect(),
        )
    }

    #[test]
    fn routes_are_stable_and_cover_all_shards() {
        let store = ShardedStore::in_memory(ShardedConfig::default());
        let mut hit = vec![false; store.num_shards()];
        for q in 0..64u64 {
            let s = SeriesKey::new(q, format!("g{q}"));
            let shard = store.shard_of(&s);
            assert_eq!(shard, store.shard_of(&s), "routing is deterministic");
            hit[shard] = true;
        }
        assert!(hit.iter().all(|&h| h), "64 series should touch all shards");
    }

    #[test]
    fn append_replicates_and_survives_replica_loss() {
        let store = ShardedStore::in_memory(ShardedConfig::default());
        let series = SeriesKey::new(7, "web");
        let shard = store.shard_of(&series);
        store.append(&series, &batch(0, 10)).unwrap();
        // Both replicas carry the commit.
        for r in 0..2 {
            assert_eq!(
                store
                    .replica(shard, r)
                    .unwrap()
                    .query_history(7)
                    .unwrap()
                    .len(),
                10
            );
        }
        // Lose the primary; reads fail over to the follower with the
        // full pre-fault prefix, and new appends keep committing.
        store.fail_replica(shard, 0);
        assert_eq!(store.range(&series, 0, u64::MAX).unwrap().len(), 10);
        store.append(&series, &batch(10_000, 5)).unwrap();
        assert_eq!(store.query_history(7).unwrap().len(), 15);
        assert_eq!(store.leader_of(shard), Some(1));
    }

    #[test]
    fn returned_replica_is_stale_until_cleared() {
        let store = ShardedStore::in_memory(ShardedConfig::default());
        let series = SeriesKey::new(3, "");
        let shard = store.shard_of(&series);
        store.fail_replica(shard, 0);
        store.append(&series, &batch(0, 4)).unwrap();
        store.restore_replica(shard, 0);
        // Replica 0 missed the write: it must not lead.
        assert_eq!(store.leader_of(shard), Some(1));
        assert_eq!(store.range(&series, 0, u64::MAX).unwrap().len(), 4);
        assert_eq!(store.sharded_stats().stale, 1);
        store.clear_stale(shard, 0);
        assert_eq!(store.leader_of(shard), Some(0));
    }

    #[test]
    fn whole_shard_down_errors_that_shard_only() {
        let store = ShardedStore::in_memory(ShardedConfig::default());
        let a = SeriesKey::new(1, "a");
        let mut b = SeriesKey::new(1, "b");
        // Find a series on a different shard than `a`.
        let mut i = 0u64;
        while store.shard_of(&b) == store.shard_of(&a) {
            i += 1;
            b = SeriesKey::new(1, format!("b{i}"));
        }
        store.append(&a, &batch(0, 3)).unwrap();
        store.append(&b, &batch(0, 4)).unwrap();
        let dead = store.shard_of(&a);
        store.fail_replica(dead, 0);
        store.fail_replica(dead, 1);
        assert!(matches!(
            store.append(&a, &batch(1_000, 1)),
            Err(StoreError::ShardUnavailable { shard }) if shard == dead
        ));
        assert!(store.range(&a, 0, u64::MAX).is_err());
        // The other shard still serves reads and writes, and the
        // cross-shard fan-out skips (not fails on) the dead shard.
        store.append(&b, &batch(1_000, 1)).unwrap();
        assert_eq!(store.query_history(1).unwrap().len(), 5);
    }

    #[test]
    fn durable_roundtrip_and_manifest_pin_shard_count() {
        let dir = std::env::temp_dir().join(format!(
            "netalytics-sharded-roundtrip-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let series = SeriesKey::new(9, "api");
        {
            let store = ShardedStore::open(
                &dir,
                ShardedConfig {
                    shards: 3,
                    ..ShardedConfig::default()
                },
            )
            .unwrap();
            store.append(&series, &batch(0, 8)).unwrap();
        }
        // Reopen with a *different* configured shard count: the
        // manifest wins, so routing still finds the data.
        let store = ShardedStore::open(
            &dir,
            ShardedConfig {
                shards: 7,
                ..ShardedConfig::default()
            },
        )
        .unwrap();
        assert_eq!(store.num_shards(), 3);
        assert_eq!(store.range(&series, 0, u64::MAX).unwrap().len(), 8);
        fs::remove_dir_all(&dir).ok();
    }
}
