//! Downsampled rollups: per-bucket aggregates kept after raw segments
//! expire.
//!
//! A [`RollupPoint`] summarises every observation of one numeric field
//! of one series inside one time bucket — count/sum/min/max exactly,
//! p50/p95 via [`HistogramSnapshot`], the same mergeable log-bucketed
//! sketch the telemetry plane uses. Points with the same bucket merge
//! associatively, so coarser query buckets are folds of the stored
//! ones and re-compacting a bucket just appends a superseding record.

use netalytics_sketch::Sketch;
use netalytics_telemetry::HistogramSnapshot;

use crate::store::{SeriesKey, StoreError};
use crate::wire::{put_f64, put_str16, put_u16, put_u64, Reader};

/// Aggregates for one `(series, field, bucket)` cell.
#[derive(Debug, Clone, PartialEq)]
pub struct RollupPoint {
    /// Inclusive start of the bucket, nanoseconds.
    pub bucket_start: u64,
    /// Bucket width in nanoseconds.
    pub bucket_ns: u64,
    /// Observations folded into this bucket.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
    /// Distribution sketch; values are rounded to `u64` (negatives
    /// clamp to 0) before recording, so quantiles of negative-valued
    /// fields saturate at zero while count/sum/min/max stay exact.
    pub hist: HistogramSnapshot,
    /// Encoded [`netalytics_sketch::Sketch`], present when the series
    /// carries approximate-analytics snapshots (heavy hitters, distinct
    /// counts, quantiles). Snapshots for the same cell merge through
    /// the sketch algebra, so history survives raw-segment expiry with
    /// the same bounds as the live bolts.
    pub sketch: Option<Vec<u8>>,
}

impl RollupPoint {
    /// An empty cell ready to merge observations into.
    pub fn empty(bucket_start: u64, bucket_ns: u64) -> Self {
        RollupPoint {
            bucket_start,
            bucket_ns,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            hist: HistogramSnapshot::empty(),
            sketch: None,
        }
    }

    /// Folds one observation in.
    pub fn observe(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.hist.record(v.max(0.0).round() as u64);
    }

    /// Merges another point covering the same (or a finer, contained)
    /// bucket into this one.
    pub fn merge(&mut self, other: &RollupPoint) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.hist.merge(&other.hist);
        if let Some(bytes) = &other.sketch {
            self.fold_sketch(bytes);
        }
    }

    /// Merges an encoded approximate sketch into this cell's snapshot.
    /// Returns `false` — leaving the cell unchanged — when the bytes do
    /// not decode or the sketch kinds are incompatible, so one bad
    /// record cannot poison a whole bucket.
    pub fn fold_sketch(&mut self, bytes: &[u8]) -> bool {
        let Ok(incoming) = Sketch::decode(bytes) else {
            return false;
        };
        match &self.sketch {
            None => {
                self.sketch = Some(bytes.to_vec());
                true
            }
            Some(existing) => {
                let Ok(mut merged) = Sketch::decode(existing) else {
                    // An unreadable resident snapshot: replace it.
                    self.sketch = Some(bytes.to_vec());
                    return true;
                };
                if merged.merge(&incoming).is_err() {
                    return false;
                }
                self.sketch = Some(merged.encode());
                true
            }
        }
    }

    /// The decoded approximate sketch for this cell, if one is held.
    pub fn sketch(&self) -> Option<Sketch> {
        Sketch::decode(self.sketch.as_deref()?).ok()
    }

    /// Mean of observed values (0 for an empty cell).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Median estimate from the sketch.
    pub fn p50(&self) -> u64 {
        self.hist.p50()
    }

    /// 95th-percentile estimate from the sketch.
    pub fn p95(&self) -> u64 {
        self.hist.p95()
    }
}

/// A rollup record as persisted in `rollups.log`:
///
/// ```text
/// query_id:u64 group:str16 field:str16 bucket_start:u64 bucket_ns:u64
/// count:u64 sum:f64 min:f64 max:f64 hist_sum:u64 hist_max:u64
/// n:u16 (bucket_idx:u16 count:u64)*n [sketch_len:u64 sketch_bytes]
/// ```
///
/// The histogram travels sparse (non-zero buckets only). The trailing
/// sketch blob is written only when the cell holds one, and the decoder
/// reads it only when bytes remain — records written before the field
/// existed still load. Records for the same cell supersede earlier
/// ones, so reloading applies them last-wins in log order.
pub fn encode_rollup(out: &mut Vec<u8>, series: &SeriesKey, field: &str, p: &RollupPoint) {
    put_u64(out, series.query_id);
    put_str16(out, &series.group);
    put_str16(out, field);
    put_u64(out, p.bucket_start);
    put_u64(out, p.bucket_ns);
    put_u64(out, p.count);
    put_f64(out, p.sum);
    put_f64(out, p.min);
    put_f64(out, p.max);
    put_u64(out, p.hist.sum());
    put_u64(out, p.hist.max());
    let sparse: Vec<(usize, u64)> = p.hist.nonzero_buckets().collect();
    put_u16(out, sparse.len().min(u16::MAX as usize) as u16);
    for (idx, c) in sparse.into_iter().take(u16::MAX as usize) {
        put_u16(out, idx as u16);
        put_u64(out, c);
    }
    if let Some(sketch) = &p.sketch {
        put_u64(out, sketch.len() as u64);
        out.extend_from_slice(sketch);
    }
}

/// Decodes one rollup record; inverse of [`encode_rollup`].
pub fn decode_rollup(payload: &[u8]) -> Result<(SeriesKey, String, RollupPoint), StoreError> {
    let mut r = Reader::new(payload);
    let query_id = r.u64("rollup.query_id")?;
    let group = r.str16("rollup.group")?.to_string();
    let field = r.str16("rollup.field")?.to_string();
    let bucket_start = r.u64("rollup.bucket_start")?;
    let bucket_ns = r.u64("rollup.bucket_ns")?;
    let count = r.u64("rollup.count")?;
    let sum = r.f64("rollup.sum")?;
    let min = r.f64("rollup.min")?;
    let max = r.f64("rollup.max")?;
    let hist_sum = r.u64("rollup.hist_sum")?;
    let hist_max = r.u64("rollup.hist_max")?;
    let n = r.u16("rollup.hist_len")?;
    let mut sparse = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let idx = r.u16("rollup.hist_idx")?;
        let c = r.u64("rollup.hist_count")?;
        sparse.push((idx as usize, c));
    }
    // Trailing optional sketch: absent in records written before the
    // field existed, so only read it when bytes remain.
    let tail = r.rest();
    let sketch = if tail.is_empty() {
        None
    } else {
        let mut tr = Reader::new(tail);
        let len = tr.u64("rollup.sketch_len")? as usize;
        let bytes = tr.rest();
        if bytes.len() != len {
            return Err(StoreError::Corrupt("rollup.sketch_bytes"));
        }
        Some(bytes.to_vec())
    };
    let point = RollupPoint {
        bucket_start,
        bucket_ns,
        count,
        sum,
        min,
        max,
        hist: HistogramSnapshot::from_parts(sparse, hist_sum, hist_max),
        sketch,
    };
    Ok((SeriesKey::new(query_id, group), field, point))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_then_roundtrip() {
        let series = SeriesKey::new(9, "api/v1");
        let mut p = RollupPoint::empty(1_000_000_000, 1_000_000_000);
        for v in [10.0, 20.0, 30.0, -5.0] {
            p.observe(v);
        }
        assert_eq!(p.count, 4);
        assert_eq!(p.sum, 55.0);
        assert_eq!(p.min, -5.0);
        assert_eq!(p.max, 30.0);
        assert_eq!(p.mean(), 13.75);

        let mut buf = Vec::new();
        encode_rollup(&mut buf, &series, "t_ns", &p);
        let (s2, f2, p2) = decode_rollup(&buf).expect("decode");
        assert_eq!(s2, series);
        assert_eq!(f2, "t_ns");
        assert_eq!(p2, p);
    }

    #[test]
    fn merge_matches_combined_observation() {
        let mut a = RollupPoint::empty(0, 1);
        let mut b = RollupPoint::empty(0, 1);
        let mut all = RollupPoint::empty(0, 1);
        for v in [1.0, 2.0, 100.0] {
            a.observe(v);
            all.observe(v);
        }
        for v in [50.0, 0.5] {
            b.observe(v);
            all.observe(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn sketch_blob_roundtrips_and_merges() {
        use netalytics_sketch::SpaceSaving;

        let mut ss_a = SpaceSaving::new(0.1);
        ss_a.record("/hot", 5);
        let mut ss_b = SpaceSaving::new(0.1);
        ss_b.record("/hot", 2);
        ss_b.record("/warm", 3);

        let mut a = RollupPoint::empty(0, 1_000);
        assert!(a.fold_sketch(&Sketch::HeavyHitters(ss_a).encode()));
        let mut b = RollupPoint::empty(0, 1_000);
        assert!(b.fold_sketch(&Sketch::HeavyHitters(ss_b).encode()));
        a.merge(&b);

        let Some(Sketch::HeavyHitters(merged)) = a.sketch() else {
            panic!("merged cell should hold a heavy-hitters sketch");
        };
        assert_eq!(merged.estimate("/hot").map(|e| e.count), Some(7));
        assert_eq!(merged.estimate("/warm").map(|e| e.count), Some(3));

        // Wire roundtrip keeps the blob.
        let mut buf = Vec::new();
        encode_rollup(&mut buf, &SeriesKey::new(4, "g"), "sketch", &a);
        let (_, _, back) = decode_rollup(&buf).expect("decode");
        assert_eq!(back, a);

        // Incompatible kinds are rejected without corrupting the cell.
        let hll = Sketch::Distinct(netalytics_sketch::Hll::new(8)).encode();
        assert!(!a.fold_sketch(&hll));
        assert!(!a.fold_sketch(b"garbage"));
        assert!(a.sketch().is_some());
    }

    #[test]
    fn record_without_sketch_field_still_decodes() {
        // Simulates a record written before the trailing sketch field
        // existed: encode a sketch-free point (which writes no tail) and
        // confirm the decoder treats the absence as `None`.
        let mut p = RollupPoint::empty(0, 1);
        p.observe(3.0);
        let mut buf = Vec::new();
        encode_rollup(&mut buf, &SeriesKey::new(1, ""), "v", &p);
        let (_, _, back) = decode_rollup(&buf).expect("decode");
        assert_eq!(back.sketch, None);
        assert_eq!(back.count, 1);
    }

    #[test]
    fn truncated_record_is_an_error() {
        let series = SeriesKey::new(1, "g");
        let mut p = RollupPoint::empty(0, 1);
        p.observe(7.0);
        let mut buf = Vec::new();
        encode_rollup(&mut buf, &series, "f", &p);
        buf.truncate(buf.len() - 1);
        assert!(decode_rollup(&buf).is_err());
    }
}
