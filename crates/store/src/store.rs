//! The embedded time-series store: segmented CRC-framed append log,
//! per-series memtables, retention, and rollup compaction.
//!
//! # Data layout
//!
//! A store directory holds `seg-NNNNNNNN.log` segment files plus one
//! `rollups.log`. Every file is a sequence of [`crate::frame`] frames.
//! A data frame's payload is
//!
//! ```text
//! query_id:u64 group:str16 min_ts:u64 max_ts:u64 batch(TupleBatch codec)
//! ```
//!
//! so readers can route and time-filter a frame without decoding its
//! tuples. Writes are fsync-free: the commit point is the buffered
//! `write(2)` into the active segment, and a torn tail left by a crash
//! is detected by CRC and truncated away on the next open.
//!
//! Reads come from three structures kept coherent under one lock: the
//! segments (source of truth), a bounded per-series tail memtable
//! (`latest` and recent `range`s without touching the log), and the
//! rollup map (downsampled history that outlives expired segments).

use std::collections::{BTreeMap, VecDeque};
use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use bytes::Bytes;
use netalytics_data::{CodecError, DataTuple, TupleBatch, Value};
use netalytics_telemetry::{Counter, EventKind, Gauge, Journal, MetricsRegistry};
use parking_lot::Mutex;

use crate::frame::{write_frame, FrameIter, FRAME_HEADER};
use crate::rollup::{decode_rollup, encode_rollup, RollupPoint};
use crate::scan::{fold_segment, SegmentCells, SeriesScan};
use crate::wire::{put_str16, put_u64, Reader};

/// Identity of one stored series: the query that produced the tuples
/// and the group key they aggregate under (empty for ungrouped output).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SeriesKey {
    /// Orchestrator cookie of the producing query.
    pub query_id: u64,
    /// Group-by key value, `""` when the query has no grouping.
    pub group: String,
}

impl SeriesKey {
    /// Builds a series key.
    pub fn new(query_id: u64, group: impl Into<String>) -> Self {
        SeriesKey {
            query_id,
            group: group.into(),
        }
    }
}

impl std::fmt::Display for SeriesKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{}/{}", self.query_id, self.group)
    }
}

/// Store tuning knobs; the defaults suit the simulation-scale loads in
/// this repo (a few MiB of results per query).
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Roll the active segment once it would exceed this many bytes.
    pub segment_max_bytes: usize,
    /// Drop (after folding into rollups) sealed segments whose newest
    /// tuple is older than `now - retention_ns`. `None` keeps raw data
    /// forever. This is the raw tier's TTL; see `rollup_retention_ns`
    /// for the next tier down.
    pub retention_ns: Option<u64>,
    /// Native rollup bucket width; queries may ask for any multiple.
    pub rollup_bucket_ns: u64,
    /// Second-tier TTL: native rollup cells whose bucket closed before
    /// `now - rollup_retention_ns` are demoted into coarse sketch-tier
    /// cells of `sketch_bucket_ns` width (count/sum/min/max, histogram
    /// and sketch survive; native-bucket resolution does not). `None`
    /// keeps native cells forever.
    pub rollup_retention_ns: Option<u64>,
    /// Sketch-tier bucket width; rounded up to a multiple of
    /// `rollup_bucket_ns` when it is not one already.
    pub sketch_bucket_ns: u64,
    /// Sparse-index stride: one seek entry per this many frames.
    pub index_every: u64,
    /// Tuples kept per series in the in-memory tail memtable.
    pub memtable_per_series: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            segment_max_bytes: 4 << 20,
            retention_ns: None,
            rollup_bucket_ns: 1_000_000_000,
            rollup_retention_ns: None,
            sketch_bucket_ns: 60_000_000_000,
            index_every: 16,
            memtable_per_series: 256,
        }
    }
}

impl StoreConfig {
    /// The sketch-tier bucket width actually used: `sketch_bucket_ns`
    /// rounded up to a non-zero multiple of the native width.
    pub(crate) fn coarse_bucket_ns(&self) -> u64 {
        let native = self.rollup_bucket_ns.max(1);
        let want = self.sketch_bucket_ns.max(native);
        want.next_multiple_of(native)
    }
}

/// Errors surfaced by the store.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem trouble (open, append, truncate, remove).
    Io(std::io::Error),
    /// A frame passed its CRC but its tuple payload would not decode —
    /// a layout bug or version skew, never a torn write.
    Codec(CodecError),
    /// A frame passed its CRC but its record header would not parse.
    Corrupt(&'static str),
    /// `rollup()` asked for a bucket the store cannot serve exactly.
    BadBucket {
        /// The requested bucket width.
        requested_ns: u64,
        /// The configured native width it must be a multiple of.
        native_ns: u64,
    },
    /// Every replica of a sharded store's shard is quarantined or
    /// down, so the operation addressed to it cannot be served. The
    /// other shards keep working; see `ShardedStore`.
    ShardUnavailable {
        /// Index of the unavailable shard.
        shard: usize,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store io: {e}"),
            StoreError::Codec(e) => write!(f, "store codec: {e}"),
            StoreError::Corrupt(what) => write!(f, "store corrupt record: {what}"),
            StoreError::BadBucket {
                requested_ns,
                native_ns,
            } => write!(
                f,
                "rollup bucket {requested_ns}ns must be a non-zero multiple of the \
                 configured {native_ns}ns"
            ),
            StoreError::ShardUnavailable { shard } => write!(
                f,
                "store shard {shard} unavailable: every replica is quarantined or down"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Codec(e)
    }
}

/// Point-in-time counters, for tests and operator display.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Live segments (including the active one).
    pub segments: usize,
    /// Intact frames across live segments.
    pub frames: u64,
    /// Bytes across live segments.
    pub log_bytes: u64,
    /// Distinct series seen.
    pub series: usize,
    /// Tuples appended over the store's lifetime (not reset by open).
    pub tuples: u64,
    /// Native-tier rollup cells currently held.
    pub rollup_points: usize,
    /// Sketch-tier (coarse) cells currently held.
    pub coarse_points: usize,
    /// Log files whose torn tail was truncated during `open`.
    pub truncated_on_open: u64,
    /// Compaction passes that dropped at least one segment.
    pub compactions: u64,
    /// Segments dropped by retention so far.
    pub segments_dropped: u64,
    /// Append failures noted by sinks writing into this store.
    pub append_errors: u64,
    /// Malformed tuples skipped (not persisted) by sinks.
    pub sink_skipped: u64,
}

/// What one [`TimeSeriesStore::compact`] pass did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompactionReport {
    /// Whole segments dropped.
    pub segments_dropped: u64,
    /// Tuples folded into rollups before dropping.
    pub tuples_folded: u64,
    /// Rollup cells written or updated.
    pub rollup_points_written: u64,
    /// Native rollup cells demoted into the coarse sketch tier.
    pub rollup_cells_demoted: u64,
}

/// Registered metric handles; created lazily by
/// [`TimeSeriesStore::register_metrics`].
struct StoreMetrics {
    ingest_tuples: Arc<Counter>,
    ingest_batches: Arc<Counter>,
    ingest_bytes: Arc<Counter>,
    sink_flushes: Arc<Counter>,
    sink_skipped: Arc<Counter>,
    append_errors: Arc<Counter>,
    compactions: Arc<Counter>,
    segments_dropped: Arc<Counter>,
    segments: Arc<Gauge>,
    series: Arc<Gauge>,
    rollup_points: Arc<Gauge>,
}

/// One log segment, held both on disk (durability) and in memory
/// (serving reads). `file` is `None` for in-memory stores.
pub(crate) struct Segment {
    seq: u64,
    pub(crate) bytes: Vec<u8>,
    file: Option<File>,
    frames: u64,
    pub(crate) min_ts: u64,
    pub(crate) max_ts: u64,
    /// `(watermark, offset)`: every tuple in frames before `offset` has
    /// `ts <= watermark`, so a range scan for `t0 > watermark` may
    /// start at `offset`.
    index: Vec<(u64, usize)>,
    /// Cached native-bucket fold of this segment's tuples, built
    /// lazily once the segment is sealed (see
    /// [`Inner::ensure_sealed_cells`]). `None` while active, after
    /// invalidation, or when the segment would not fold cleanly.
    pub(crate) cells: Option<(SegmentCells, u64)>,
}

impl Segment {
    fn empty(seq: u64, file: Option<File>) -> Self {
        Segment {
            seq,
            bytes: Vec::new(),
            file,
            frames: 0,
            min_ts: u64::MAX,
            max_ts: 0,
            index: Vec::new(),
            cells: None,
        }
    }

    fn note_frame(&mut self, offset: usize, min_ts: u64, max_ts: u64, index_every: u64) {
        if self.frames.is_multiple_of(index_every) {
            self.index.push((self.max_ts, offset));
        }
        self.frames += 1;
        self.min_ts = self.min_ts.min(min_ts);
        self.max_ts = self.max_ts.max(max_ts);
    }

    /// Byte offset a scan for tuples with `ts >= t0` may start at.
    pub(crate) fn seek(&self, t0: u64) -> usize {
        let mut at = 0;
        for &(watermark, offset) in &self.index {
            if watermark < t0 {
                at = offset;
            } else {
                break;
            }
        }
        at
    }

    pub(crate) fn overlaps(&self, t0: u64, t1: u64) -> bool {
        self.frames > 0 && self.min_ts <= t1 && self.max_ts >= t0
    }

    fn path(dir: &Path, seq: u64) -> PathBuf {
        dir.join(format!("seg-{seq:08}.log"))
    }
}

/// Data-frame payload header plus the raw batch bytes.
pub(crate) struct RecordRef<'a> {
    pub(crate) query_id: u64,
    pub(crate) group: &'a str,
    pub(crate) min_ts: u64,
    pub(crate) max_ts: u64,
    pub(crate) batch: &'a [u8],
}

pub(crate) fn encode_record(series: &SeriesKey, batch: &TupleBatch) -> (Vec<u8>, u64, u64) {
    let mut min_ts = u64::MAX;
    let mut max_ts = 0;
    for t in batch.iter() {
        min_ts = min_ts.min(t.ts_ns);
        max_ts = max_ts.max(t.ts_ns);
    }
    let mut payload = Vec::with_capacity(32 + series.group.len() + batch.wire_size());
    put_u64(&mut payload, series.query_id);
    put_str16(&mut payload, &series.group);
    put_u64(&mut payload, min_ts);
    put_u64(&mut payload, max_ts);
    payload.extend_from_slice(&batch.encode());
    (payload, min_ts, max_ts)
}

pub(crate) fn decode_record(payload: &[u8]) -> Result<RecordRef<'_>, StoreError> {
    let mut r = Reader::new(payload);
    let query_id = r.u64("record.query_id")?;
    let group = r.str16("record.group")?;
    let min_ts = r.u64("record.min_ts")?;
    let max_ts = r.u64("record.max_ts")?;
    Ok(RecordRef {
        query_id,
        group,
        min_ts,
        max_ts,
        batch: r.rest(),
    })
}

pub(crate) fn decode_batch(bytes: &[u8]) -> Result<TupleBatch, StoreError> {
    let mut buf = Bytes::copy_from_slice(bytes);
    Ok(TupleBatch::decode(&mut buf)?)
}

/// Bounded tail of one series, serving `latest` and recent ranges.
struct MemSeries {
    tail: VecDeque<DataTuple>,
    /// Tuples ever appended; when this equals `tail.len()` the tail is
    /// the complete series.
    appended: u64,
}

impl MemSeries {
    fn new() -> Self {
        MemSeries {
            tail: VecDeque::new(),
            appended: 0,
        }
    }

    /// True when every retained tuple with `ts >= t0` is in the tail.
    fn covers_from(&self, t0: u64) -> bool {
        self.appended == self.tail.len() as u64 || self.tail.front().is_some_and(|f| f.ts_ns < t0)
    }
}

pub(crate) type RollupSeries = (SeriesKey, String);
pub(crate) type RollupMap = BTreeMap<RollupSeries, BTreeMap<u64, RollupPoint>>;

pub(crate) struct Inner {
    pub(crate) cfg: StoreConfig,
    dir: Option<PathBuf>,
    pub(crate) segments: Vec<Segment>,
    mem: BTreeMap<SeriesKey, MemSeries>,
    /// Native-tier rollup cells (bucket width `cfg.rollup_bucket_ns`).
    pub(crate) rollups: RollupMap,
    /// Sketch-tier cells: native cells demoted by `rollup_retention_ns`
    /// land here at `coarse_bucket_ns()` width.
    pub(crate) coarse: RollupMap,
    rollup_file: Option<File>,
    stats: StoreStats,
    metrics: Option<StoreMetrics>,
    /// Flight recorder for segment churn; see
    /// [`TimeSeriesStore::attach_journal`].
    journal: Option<Arc<Journal>>,
}

impl Inner {
    fn active(&mut self) -> &mut Segment {
        self.segments.last_mut().expect("at least one segment")
    }

    /// Builds (once) the native-bucket fold cache of sealed segment
    /// `i`. The active segment is never cached: it is still growing.
    pub(crate) fn ensure_sealed_cells(&mut self, i: usize) -> Result<(), StoreError> {
        if i + 1 >= self.segments.len() || self.segments[i].cells.is_some() {
            return Ok(());
        }
        let folded = fold_segment(&self.segments[i].bytes, self.cfg.rollup_bucket_ns)?;
        self.segments[i].cells = Some(folded);
        Ok(())
    }

    /// Rewrites `rollups.log` from current state via tmp-file + rename.
    /// Needed when cells are *removed* (tier demotion): an append-only
    /// last-wins log could resurrect deleted native cells on reload.
    fn rewrite_rollup_log(&mut self) -> Result<(), StoreError> {
        let Some(dir) = &self.dir else {
            return Ok(());
        };
        let path = dir.join("rollups.log");
        let tmp = dir.join("rollups.log.tmp");
        let mut log = Vec::new();
        for ((series, field), cells) in self.rollups.iter().chain(self.coarse.iter()) {
            for cell in cells.values() {
                let mut payload = Vec::new();
                encode_rollup(&mut payload, series, field, cell);
                write_frame(&mut log, &payload);
            }
        }
        fs::write(&tmp, &log)?;
        fs::rename(&tmp, &path)?;
        self.rollup_file = Some(OpenOptions::new().append(true).open(&path)?);
        Ok(())
    }

    fn roll_segment(&mut self) -> Result<(), StoreError> {
        let seq = self.active().seq + 1;
        let file = match &self.dir {
            Some(dir) => Some(
                OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(Segment::path(dir, seq))?,
            ),
            None => None,
        };
        if let Some(journal) = &self.journal {
            let sealed = self.segments.last().expect("at least one segment");
            journal.record(
                sealed.max_ts,
                None,
                EventKind::SegmentSealed,
                format!(
                    "segment {} sealed: {} frames, {} bytes",
                    sealed.seq,
                    sealed.frames,
                    sealed.bytes.len()
                ),
            );
        }
        self.segments.push(Segment::empty(seq, file));
        Ok(())
    }

    fn refresh_gauges(&self) {
        if let Some(m) = &self.metrics {
            m.segments.set(self.segments.len() as i64);
            m.series.set(self.mem.len() as i64);
            m.rollup_points
                .set(self.rollups.values().map(BTreeMap::len).sum::<usize>() as i64);
        }
    }

    fn rollup_points(&self) -> usize {
        self.rollups.values().map(BTreeMap::len).sum()
    }

    fn coarse_points(&self) -> usize {
        self.coarse.values().map(BTreeMap::len).sum()
    }

    /// All tuples of `series` in `[t0, t1]`, oldest first.
    pub(crate) fn range(
        &self,
        series: &SeriesKey,
        t0: u64,
        t1: u64,
    ) -> Result<Vec<DataTuple>, StoreError> {
        if t0 > t1 {
            return Ok(Vec::new());
        }
        let mut out = Vec::new();
        if let Some(ms) = self.mem.get(series) {
            if ms.covers_from(t0) {
                out.extend(
                    ms.tail
                        .iter()
                        .filter(|t| t.ts_ns >= t0 && t.ts_ns <= t1)
                        .cloned(),
                );
                out.sort_by_key(|t| t.ts_ns);
                return Ok(out);
            }
        }
        for seg in &self.segments {
            if !seg.overlaps(t0, t1) {
                continue;
            }
            let start = seg.seek(t0);
            for t in SeriesScan::new(&seg.bytes[start..], series, t0, t1) {
                out.push(t?);
            }
        }
        out.sort_by_key(|t| t.ts_ns);
        Ok(out)
    }
}

/// The embedded, thread-safe results store. Cheap to share via `Arc`;
/// all operations take one internal lock, so a single writer and many
/// readers interleave safely from both executor planes.
pub struct TimeSeriesStore {
    pub(crate) inner: Mutex<Inner>,
}

impl std::fmt::Debug for TimeSeriesStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("TimeSeriesStore")
            .field("segments", &stats.segments)
            .field("series", &stats.series)
            .field("tuples", &stats.tuples)
            .finish_non_exhaustive()
    }
}

impl TimeSeriesStore {
    /// Opens (or creates) a store directory with default config,
    /// truncating any torn tail left by a crash.
    ///
    /// # Errors
    ///
    /// Fails only on filesystem errors; corrupt log tails are repaired,
    /// not reported.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::open_with(dir, StoreConfig::default())
    }

    /// [`TimeSeriesStore::open`] with explicit tuning.
    ///
    /// # Errors
    ///
    /// Fails only on filesystem errors.
    pub fn open_with(dir: impl AsRef<Path>, cfg: StoreConfig) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let mut inner = Inner {
            cfg,
            dir: Some(dir.clone()),
            segments: Vec::new(),
            mem: BTreeMap::new(),
            rollups: BTreeMap::new(),
            coarse: BTreeMap::new(),
            rollup_file: None,
            stats: StoreStats::default(),
            metrics: None,
            journal: None,
        };

        let mut seqs: Vec<u64> = Vec::new();
        for entry in fs::read_dir(&dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(seq) = name
                .strip_prefix("seg-")
                .and_then(|s| s.strip_suffix(".log"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                seqs.push(seq);
            }
        }
        seqs.sort_unstable();

        for &seq in &seqs {
            let path = Segment::path(&dir, seq);
            let bytes = fs::read(&path)?;
            let mut seg = Segment::empty(seq, None);
            let mut it = FrameIter::new(&bytes);
            for (offset, payload) in it.by_ref() {
                let rec = decode_record(payload)?;
                seg.note_frame(offset, rec.min_ts, rec.max_ts, inner.cfg.index_every);
                let series = SeriesKey::new(rec.query_id, rec.group);
                let batch = decode_batch(rec.batch)?;
                inner.stats.tuples += batch.len() as u64;
                let ms = inner.mem.entry(series).or_insert_with(MemSeries::new);
                for t in batch.into_tuples() {
                    ms.tail.push_back(t);
                    ms.appended += 1;
                    if ms.tail.len() > inner.cfg.memtable_per_series {
                        ms.tail.pop_front();
                    }
                }
            }
            let valid = it.valid_len();
            if valid < bytes.len() {
                OpenOptions::new()
                    .write(true)
                    .open(&path)?
                    .set_len(valid as u64)?;
                inner.stats.truncated_on_open += 1;
            }
            seg.bytes = bytes[..valid].to_vec();
            inner.stats.frames += seg.frames;
            inner.segments.push(seg);
        }

        // Reopen the newest segment for append, or start segment 0.
        let next_seq = seqs.last().map_or(0, |s| s + 1);
        match inner.segments.last_mut() {
            Some(last) if last.bytes.len() < inner.cfg.segment_max_bytes => {
                last.file = Some(
                    OpenOptions::new()
                        .append(true)
                        .open(Segment::path(&dir, last.seq))?,
                );
            }
            _ => {
                let file = OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(Segment::path(&dir, next_seq))?;
                inner.segments.push(Segment::empty(next_seq, Some(file)));
            }
        }

        // Rollups: replay last-wins, repair torn tail.
        let rollup_path = dir.join("rollups.log");
        if rollup_path.exists() {
            let bytes = fs::read(&rollup_path)?;
            let mut it = FrameIter::new(&bytes);
            for (_, payload) in it.by_ref() {
                let (series, field, point) = decode_rollup(payload)?;
                // Route by persisted width: cells wider than the native
                // bucket belong to the demoted sketch tier.
                let map = if point.bucket_ns > inner.cfg.rollup_bucket_ns {
                    &mut inner.coarse
                } else {
                    &mut inner.rollups
                };
                map.entry((series, field))
                    .or_default()
                    .insert(point.bucket_start, point);
            }
            let valid = it.valid_len();
            if valid < bytes.len() {
                OpenOptions::new()
                    .write(true)
                    .open(&rollup_path)?
                    .set_len(valid as u64)?;
                inner.stats.truncated_on_open += 1;
            }
        }
        inner.rollup_file = Some(
            OpenOptions::new()
                .create(true)
                .append(true)
                .open(&rollup_path)?,
        );

        Ok(TimeSeriesStore {
            inner: Mutex::new(inner),
        })
    }

    /// A purely in-memory store with the same semantics minus
    /// durability — for tests and ephemeral queries.
    pub fn in_memory() -> Self {
        Self::in_memory_with(StoreConfig::default())
    }

    /// [`TimeSeriesStore::in_memory`] with explicit tuning.
    pub fn in_memory_with(cfg: StoreConfig) -> Self {
        TimeSeriesStore {
            inner: Mutex::new(Inner {
                cfg,
                dir: None,
                segments: vec![Segment::empty(0, None)],
                mem: BTreeMap::new(),
                rollups: BTreeMap::new(),
                coarse: BTreeMap::new(),
                rollup_file: None,
                stats: StoreStats::default(),
                metrics: None,
                journal: None,
            }),
        }
    }

    /// True when backed by a directory (false for in-memory stores).
    pub fn is_durable(&self) -> bool {
        self.inner.lock().dir.is_some()
    }

    /// Appends a batch to a series. The write is committed once this
    /// returns: it survives process death (modulo OS page cache) and
    /// any later orchestrator re-placement.
    ///
    /// # Errors
    ///
    /// Filesystem append failures; the in-memory copy is not updated on
    /// error, so the store never claims more than the log holds.
    pub fn append(&self, series: &SeriesKey, batch: &TupleBatch) -> Result<(), StoreError> {
        if batch.is_empty() {
            return Ok(());
        }
        let (payload, min_ts, max_ts) = encode_record(series, batch);
        let mut inner = self.inner.lock();
        let frame_len = FRAME_HEADER + payload.len();
        if inner.active().frames > 0
            && inner.active().bytes.len() + frame_len > inner.cfg.segment_max_bytes
        {
            inner.roll_segment()?;
        }
        let index_every = inner.cfg.index_every;
        let seg = inner.active();
        let offset = seg.bytes.len();
        write_frame(&mut seg.bytes, &payload);
        if let Some(file) = &mut seg.file {
            if let Err(e) = file.write_all(&seg.bytes[offset..]) {
                // Keep memory and disk consistent: undo the in-memory append.
                seg.bytes.truncate(offset);
                return Err(e.into());
            }
        }
        seg.note_frame(offset, min_ts, max_ts, index_every);

        let cap = inner.cfg.memtable_per_series;
        let ms = inner
            .mem
            .entry(series.clone())
            .or_insert_with(MemSeries::new);
        for t in batch.iter() {
            ms.tail.push_back(t.clone());
            ms.appended += 1;
            if ms.tail.len() > cap {
                ms.tail.pop_front();
            }
        }

        inner.stats.frames += 1;
        inner.stats.tuples += batch.len() as u64;
        if let Some(m) = &inner.metrics {
            m.ingest_tuples.add(batch.len() as u64);
            m.ingest_batches.inc();
            m.ingest_bytes.add(frame_len as u64);
        }
        inner.refresh_gauges();
        Ok(())
    }

    /// The newest retained tuple of a series, if any.
    pub fn latest(&self, series: &SeriesKey) -> Option<DataTuple> {
        self.inner.lock().mem.get(series)?.tail.back().cloned()
    }

    /// All retained tuples of `series` with `t0 <= ts <= t1`, oldest
    /// first. Served from the memtable when it covers the range, else
    /// from the log via each overlapping segment's sparse index.
    ///
    /// # Errors
    ///
    /// Decode errors on a frame that passed its CRC (version skew).
    pub fn range(
        &self,
        series: &SeriesKey,
        t0: u64,
        t1: u64,
    ) -> Result<Vec<DataTuple>, StoreError> {
        self.inner.lock().range(series, t0, t1)
    }

    /// Downsampled view of one numeric field over `[t0, t1]` in buckets
    /// of `bucket_ns`, merging persisted rollups (for expired raw data)
    /// with on-the-fly folds of still-retained tuples.
    ///
    /// # Errors
    ///
    /// [`StoreError::BadBucket`] unless `bucket_ns` is a non-zero
    /// multiple of [`StoreConfig::rollup_bucket_ns`] (persisted cells
    /// must nest exactly into query buckets), plus any decode error.
    pub fn rollup(
        &self,
        series: &SeriesKey,
        field: &str,
        t0: u64,
        t1: u64,
        bucket_ns: u64,
    ) -> Result<Vec<RollupPoint>, StoreError> {
        let inner = self.inner.lock();
        let native = inner.cfg.rollup_bucket_ns;
        if bucket_ns == 0 || bucket_ns < native || !bucket_ns.is_multiple_of(native) {
            return Err(StoreError::BadBucket {
                requested_ns: bucket_ns,
                native_ns: native,
            });
        }
        let mut out: BTreeMap<u64, RollupPoint> = BTreeMap::new();
        let mut fold = |bucket_start: u64, apply: &dyn Fn(&mut RollupPoint)| {
            let p = out
                .entry(bucket_start)
                .or_insert_with(|| RollupPoint::empty(bucket_start, bucket_ns));
            apply(p);
        };
        let rollup_series = (series.clone(), field.to_string());
        for tier in [&inner.rollups, &inner.coarse] {
            if let Some(cells) = tier.get(&rollup_series) {
                for (&start, cell) in cells {
                    // Include a cell if it overlaps [t0, t1]. Coarse
                    // cells wider than `bucket_ns` fold into the query
                    // bucket containing their start (resolution below
                    // the sketch tier's width is gone by design).
                    if start <= t1 && start.saturating_add(cell.bucket_ns) > t0 {
                        fold(start - start % bucket_ns, &|p| p.merge(cell));
                    }
                }
            }
        }
        for tuple in inner.range(series, t0, t1)? {
            let bucket = tuple.ts_ns - tuple.ts_ns % bucket_ns;
            match tuple.get(field) {
                Some(Value::Bytes(b)) => fold(bucket, &|p| {
                    p.fold_sketch(b);
                }),
                Some(v) => {
                    if let Some(v) = v.as_f64() {
                        fold(bucket, &|p| p.observe(v));
                    }
                }
                None => {}
            }
        }
        Ok(out.into_values().collect())
    }

    /// Every tuple the store has retained for a query, across all of
    /// its group series, sorted by timestamp — the durable counterpart
    /// of a finalized `ResultSet`.
    ///
    /// # Errors
    ///
    /// Decode errors on a frame that passed its CRC (version skew).
    pub fn query_history(&self, query_id: u64) -> Result<Vec<DataTuple>, StoreError> {
        let inner = self.inner.lock();
        let mut out = Vec::new();
        for seg in &inner.segments {
            for (_, payload) in FrameIter::new(&seg.bytes) {
                let rec = decode_record(payload)?;
                if rec.query_id == query_id {
                    out.extend(decode_batch(rec.batch)?.into_tuples());
                }
            }
        }
        out.sort_by_key(|t| t.ts_ns);
        Ok(out)
    }

    /// All series the store currently knows about.
    pub fn series(&self) -> Vec<SeriesKey> {
        self.inner.lock().mem.keys().cloned().collect()
    }

    /// Tiered retention + compaction pass.
    ///
    /// Tier 1 (raw → rollup, gated on [`StoreConfig::retention_ns`]):
    /// sealed segments whose newest tuple is older than
    /// `now_ns - retention_ns` have every field of every tuple folded
    /// into native-bucket rollups (reusing the segment's cached fold
    /// when the history engine already built one), are deleted from
    /// disk, and dropped from memory.
    ///
    /// Tier 2 (rollup → sketch-only, gated on
    /// [`StoreConfig::rollup_retention_ns`]): native cells whose bucket
    /// closed before `now_ns - rollup_retention_ns` are merged into
    /// coarse cells of [`StoreConfig::coarse_bucket_ns`] width and the
    /// rollup log is rewritten so the demoted cells cannot resurrect on
    /// reload.
    ///
    /// A no-op when neither TTL is configured.
    ///
    /// # Errors
    ///
    /// Filesystem errors while persisting rollups or removing segment
    /// files; the fold happens before the drop, so an error never loses
    /// data that was not already summarised.
    pub fn compact(&self, now_ns: u64) -> Result<CompactionReport, StoreError> {
        let mut inner = self.inner.lock();
        let mut report = CompactionReport::default();
        let native = inner.cfg.rollup_bucket_ns;

        // Tier 1: raw segments fold into native rollup cells.
        let expired: Vec<usize> = match inner.cfg.retention_ns {
            Some(retention) => {
                let cutoff = now_ns.saturating_sub(retention);
                inner.segments[..inner.segments.len() - 1]
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.frames > 0 && s.max_ts < cutoff)
                    .map(|(i, _)| i)
                    .collect()
            }
            None => Vec::new(),
        };
        if !expired.is_empty() {
            let mut touched: BTreeMap<RollupSeries, Vec<u64>> = BTreeMap::new();
            for &i in &expired {
                inner.ensure_sealed_cells(i)?;
                let (cells, tuples) = inner.segments[i].cells.take().expect("sealed fold built");
                report.tuples_folded += tuples;
                for (key, buckets) in cells {
                    for (bucket, cell) in buckets {
                        // An all-empty cell (e.g. only undecodable
                        // sketch blobs) adds nothing; skip it so we do
                        // not persist noise.
                        if cell.count == 0 && cell.sketch.is_none() {
                            continue;
                        }
                        inner
                            .rollups
                            .entry(key.clone())
                            .or_default()
                            .entry(bucket)
                            .or_insert_with(|| RollupPoint::empty(bucket, native))
                            .merge(&cell);
                        let list = touched.entry(key.clone()).or_default();
                        if !list.contains(&bucket) {
                            list.push(bucket);
                        }
                    }
                }
            }

            // Persist the merged cells (last-wins supersedes older
            // records).
            let mut log = Vec::new();
            for ((series, field), buckets) in &touched {
                for bucket in buckets {
                    let cell = &inner.rollups[&(series.clone(), field.clone())][bucket];
                    let mut payload = Vec::new();
                    encode_rollup(&mut payload, series, field, cell);
                    write_frame(&mut log, &payload);
                    report.rollup_points_written += 1;
                }
            }
            if let Some(file) = &mut inner.rollup_file {
                file.write_all(&log)?;
            }

            // Drop the segments, newest index first so indices stay
            // valid.
            for &i in expired.iter().rev() {
                let seg = inner.segments.remove(i);
                inner.stats.frames = inner.stats.frames.saturating_sub(seg.frames);
                if let Some(dir) = &inner.dir {
                    fs::remove_file(Segment::path(dir, seg.seq))?;
                }
                report.segments_dropped += 1;
            }
            inner.stats.segments_dropped += report.segments_dropped;
            inner.stats.compactions += 1;

            // Expired tuples may linger in memtables; evict them so
            // reads are consistent with the log.
            let cutoff = now_ns.saturating_sub(inner.cfg.retention_ns.unwrap_or(u64::MAX));
            for ms in inner.mem.values_mut() {
                while ms.tail.front().is_some_and(|t| t.ts_ns < cutoff) {
                    ms.tail.pop_front();
                }
            }

            if let Some(m) = &inner.metrics {
                m.compactions.inc();
                m.segments_dropped.add(report.segments_dropped);
            }
            if let Some(journal) = &inner.journal {
                journal.record(
                    now_ns,
                    None,
                    EventKind::RollupFolded,
                    format!(
                        "{} tuple(s) folded into {} rollup point(s); {} segment(s) dropped",
                        report.tuples_folded, report.rollup_points_written, report.segments_dropped
                    ),
                );
            }
        }

        // Tier 2: expired native cells demote into the coarse sketch
        // tier.
        if let Some(rollup_retention) = inner.cfg.rollup_retention_ns {
            let cutoff = now_ns.saturating_sub(rollup_retention);
            let coarse_ns = inner.cfg.coarse_bucket_ns();
            let Inner {
                rollups, coarse, ..
            } = &mut *inner;
            for (key, cells) in rollups.iter_mut() {
                let old: Vec<u64> = cells
                    .iter()
                    .filter(|(&start, cell)| start.saturating_add(cell.bucket_ns) <= cutoff)
                    .map(|(&start, _)| start)
                    .collect();
                for start in old {
                    let cell = cells.remove(&start).expect("listed above");
                    let cb = start - start % coarse_ns;
                    coarse
                        .entry(key.clone())
                        .or_default()
                        .entry(cb)
                        .or_insert_with(|| RollupPoint::empty(cb, coarse_ns))
                        .merge(&cell);
                    report.rollup_cells_demoted += 1;
                }
            }
            inner.rollups.retain(|_, cells| !cells.is_empty());
            if report.rollup_cells_demoted > 0 {
                inner.rewrite_rollup_log()?;
                if let Some(journal) = &inner.journal {
                    journal.record(
                        now_ns,
                        None,
                        EventKind::RollupFolded,
                        format!(
                            "{} native rollup cell(s) demoted into {} coarse cell(s)",
                            report.rollup_cells_demoted,
                            inner.coarse_points()
                        ),
                    );
                }
            }
        }

        inner.refresh_gauges();
        Ok(report)
    }

    /// Attaches a flight-recorder journal. From here on, every segment
    /// seal (log roll) records a `segment_sealed` event — stamped with
    /// the sealed segment's newest tuple timestamp — and every
    /// retention pass that folded or dropped anything records a
    /// `rollup_folded` event. Both happen on the append/compact control
    /// path, never per tuple.
    pub fn attach_journal(&self, journal: Arc<Journal>) {
        self.inner.lock().journal = Some(journal);
    }

    /// Registers this store's counters and gauges under `store.*` in a
    /// [`MetricsRegistry`]. Gauges reflect current state immediately;
    /// counters count from registration onward.
    pub fn register_metrics(&self, registry: &MetricsRegistry) {
        let mut inner = self.inner.lock();
        inner.metrics = Some(StoreMetrics {
            ingest_tuples: registry.counter("store.ingest_tuples", &[]),
            ingest_batches: registry.counter("store.ingest_batches", &[]),
            ingest_bytes: registry.counter("store.ingest_bytes", &[]),
            sink_flushes: registry.counter("store.sink_flushes", &[]),
            sink_skipped: registry.counter("store.sink_skipped", &[]),
            append_errors: registry.counter("store.append_errors", &[]),
            compactions: registry.counter("store.compactions", &[]),
            segments_dropped: registry.counter("store.segments_dropped", &[]),
            segments: registry.gauge("store.segments", &[]),
            series: registry.gauge("store.series", &[]),
            rollup_points: registry.gauge("store.rollup_points", &[]),
        });
        inner.refresh_gauges();
    }

    /// Called by sinks after flushing their buffers into the store.
    pub fn note_sink_flush(&self) {
        if let Some(m) = &self.inner.lock().metrics {
            m.sink_flushes.inc();
        }
    }

    /// Called by sinks when an append failed and the batch was dropped.
    pub fn note_append_error(&self) {
        let mut inner = self.inner.lock();
        inner.stats.append_errors += 1;
        if let Some(m) = &inner.metrics {
            m.append_errors.inc();
        }
    }

    /// Called by sinks when `n` malformed tuples were skipped rather
    /// than persisted.
    pub fn note_sink_skipped(&self, n: u64) {
        if n == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        inner.stats.sink_skipped += n;
        if let Some(m) = &inner.metrics {
            m.sink_skipped.add(n);
        }
    }

    /// The configured native rollup bucket width in nanoseconds.
    pub fn native_bucket_ns(&self) -> u64 {
        self.inner.lock().cfg.rollup_bucket_ns
    }

    /// Current counters.
    pub fn stats(&self) -> StoreStats {
        let inner = self.inner.lock();
        StoreStats {
            segments: inner.segments.len(),
            log_bytes: inner.segments.iter().map(|s| s.bytes.len() as u64).sum(),
            series: inner.mem.len(),
            rollup_points: inner.rollup_points(),
            coarse_points: inner.coarse_points(),
            ..inner.stats.clone()
        }
    }
}
