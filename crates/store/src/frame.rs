//! Length-prefixed, CRC-guarded frames — the on-disk unit of the
//! results log.
//!
//! ```text
//! frame := len:u32le crc:u32le payload[len]
//! ```
//!
//! `crc` is CRC-32 (IEEE) over the payload. The log is fsync-free: a
//! crash can leave a torn final frame, so readers stop at the first
//! frame whose length or checksum does not hold and report the length of
//! the clean prefix, which [`crate::TimeSeriesStore`] truncates back to
//! on open.

/// Bytes of frame header (length + checksum).
pub const FRAME_HEADER: usize = 8;

/// Upper bound on a single frame's payload; anything larger is treated
/// as corruption rather than an allocation request.
pub const MAX_FRAME: usize = 1 << 28;

/// CRC-32 (IEEE 802.3) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Appends one frame wrapping `payload` to `out`.
pub fn write_frame(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Iterator over the clean prefix of a frame log.
///
/// Yields `(frame_offset, payload)` for every intact frame and stops at
/// the first torn or corrupt one; [`FrameIter::valid_len`] then reports
/// how many bytes of the buffer form the recoverable prefix.
pub struct FrameIter<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> FrameIter<'a> {
    /// Starts scanning `bytes` from the beginning.
    pub fn new(bytes: &'a [u8]) -> Self {
        FrameIter { bytes, pos: 0 }
    }

    /// Bytes consumed by intact frames so far — after the iterator is
    /// exhausted, the length of the clean prefix.
    pub fn valid_len(&self) -> usize {
        self.pos
    }
}

impl<'a> Iterator for FrameIter<'a> {
    type Item = (usize, &'a [u8]);

    fn next(&mut self) -> Option<Self::Item> {
        let rest = &self.bytes[self.pos..];
        if rest.len() < FRAME_HEADER {
            return None;
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
        if len > MAX_FRAME || rest.len() < FRAME_HEADER + len {
            return None;
        }
        let payload = &rest[FRAME_HEADER..FRAME_HEADER + len];
        if crc32(payload) != crc {
            return None;
        }
        let at = self.pos;
        self.pos += FRAME_HEADER + len;
        Some((at, payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc_matches_known_vector() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_roundtrip_and_stop_at_torn_tail() {
        let mut log = Vec::new();
        write_frame(&mut log, b"alpha");
        write_frame(&mut log, b"");
        write_frame(&mut log, b"beta");
        let clean = log.len();
        // A torn final frame: header promising more bytes than exist.
        log.extend_from_slice(&100u32.to_le_bytes());
        log.extend_from_slice(&0u32.to_le_bytes());
        log.extend_from_slice(b"short");

        let mut it = FrameIter::new(&log);
        let payloads: Vec<&[u8]> = it.by_ref().map(|(_, p)| p).collect();
        assert_eq!(payloads, vec![b"alpha" as &[u8], b"", b"beta"]);
        assert_eq!(it.valid_len(), clean);
    }

    #[test]
    fn corrupt_crc_ends_the_scan() {
        let mut log = Vec::new();
        write_frame(&mut log, b"good");
        let keep = log.len();
        write_frame(&mut log, b"bad!");
        let last = log.len() - 1;
        log[last] ^= 0xFF; // flip a payload byte under the old checksum
        let mut it = FrameIter::new(&log);
        assert_eq!(it.by_ref().count(), 1);
        assert_eq!(it.valid_len(), keep);
    }

    #[test]
    fn absurd_length_is_corruption_not_allocation() {
        let mut log = Vec::new();
        log.extend_from_slice(&u32::MAX.to_le_bytes());
        log.extend_from_slice(&0u32.to_le_bytes());
        let mut it = FrameIter::new(&log);
        assert!(it.next().is_none());
        assert_eq!(it.valid_len(), 0);
    }
}
