//! The history query plane: filtered aggregations over persisted
//! segments with tier-aware pushdown.
//!
//! A [`HistoryQuery`] names one series, one field, a closed time range
//! and an aggregate. [`TimeSeriesStore::history`] answers it from the
//! cheapest tier that can serve it exactly:
//!
//! | aggregate            | persisted rollups | coarse (sketch) tier | sealed-segment cells | raw scan |
//! |----------------------|-------------------|----------------------|----------------------|----------|
//! | count/sum/min/max    | merge             | merge                | merge                | edges    |
//! | mean                 | merge             | merge                | merge                | edges    |
//! | p50/p95              | merge (histogram) | merge (histogram)    | merge                | edges    |
//! | distinct / top-k     | merge (sketch)    | merge (sketch)       | merge (sketch)       | replay   |
//! | any, with filters    | —                 | —                    | —                    | replay   |
//!
//! "Merge" means folding pre-aggregated [`RollupPoint`] cells through
//! the rollup algebra instead of re-decoding tuples; only the unaligned
//! edges of the range (plus the still-growing active segment) are
//! scanned raw. Filters always force [`TimeSeriesStore::history_replay`]
//! because cells cannot re-apply a tuple predicate, and the
//! distinct/top-k aggregates fall back to replay when the series holds
//! plain values rather than mergeable sketch snapshots.

use netalytics_data::{DataTuple, Value};
use netalytics_sketch::{value_key_bytes, Hll, Sketch, SpaceSaving, DEFAULT_PRECISION};

use crate::rollup::RollupPoint;
use crate::scan::{fold_value, SeriesScan};
use crate::store::{SeriesKey, StoreError, TimeSeriesStore};

/// Aggregate functions the history plane evaluates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HistoryAgg {
    /// Number of numeric observations of the field.
    Count,
    /// Sum of observed values.
    Sum,
    /// Smallest observed value.
    Min,
    /// Largest observed value.
    Max,
    /// Arithmetic mean of observed values.
    Mean,
    /// Median estimate (log-bucketed histogram).
    P50,
    /// 95th-percentile estimate.
    P95,
    /// Approximate distinct-value count (HyperLogLog).
    Distinct,
    /// Approximate top-k heaviest values (space-saving).
    HeavyHitters {
        /// How many entries to return.
        k: usize,
    },
}

impl HistoryAgg {
    /// Parses an aggregate name as used on the wire (`count`, `sum`,
    /// `min`, `max`, `mean`/`avg`, `p50`/`median`, `p95`, `distinct`,
    /// `topk` or `topk:<k>`).
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "count" => HistoryAgg::Count,
            "sum" => HistoryAgg::Sum,
            "min" => HistoryAgg::Min,
            "max" => HistoryAgg::Max,
            "mean" | "avg" => HistoryAgg::Mean,
            "p50" | "median" => HistoryAgg::P50,
            "p95" => HistoryAgg::P95,
            "distinct" => HistoryAgg::Distinct,
            "topk" => HistoryAgg::HeavyHitters { k: 10 },
            _ => {
                let k = s.strip_prefix("topk:")?.parse().ok().filter(|&k| k > 0)?;
                HistoryAgg::HeavyHitters { k }
            }
        })
    }

    /// Stable name, used in derived series keys and journal lines.
    pub fn name(&self) -> String {
        match self {
            HistoryAgg::Count => "count".into(),
            HistoryAgg::Sum => "sum".into(),
            HistoryAgg::Min => "min".into(),
            HistoryAgg::Max => "max".into(),
            HistoryAgg::Mean => "mean".into(),
            HistoryAgg::P50 => "p50".into(),
            HistoryAgg::P95 => "p95".into(),
            HistoryAgg::Distinct => "distinct".into(),
            HistoryAgg::HeavyHitters { k } => format!("topk:{k}"),
        }
    }

    /// True for aggregates that need a mergeable sketch (not just the
    /// numeric cell summary).
    pub fn needs_sketch(&self) -> bool {
        matches!(self, HistoryAgg::Distinct | HistoryAgg::HeavyHitters { .. })
    }
}

/// Comparison operator of a [`FieldFilter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl FilterOp {
    /// Parses `eq|ne|lt|le|gt|ge` (or the symbolic forms).
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "eq" | "=" | "==" => FilterOp::Eq,
            "ne" | "!=" => FilterOp::Ne,
            "lt" | "<" => FilterOp::Lt,
            "le" | "<=" => FilterOp::Le,
            "gt" | ">" => FilterOp::Gt,
            "ge" | ">=" => FilterOp::Ge,
            _ => return None,
        })
    }
}

/// One tuple predicate: `field <op> value`. Numeric when both sides
/// parse as numbers, string comparison otherwise.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldFilter {
    /// Tuple field the predicate reads.
    pub field: String,
    /// Comparison operator.
    pub op: FilterOp,
    /// Right-hand side, as written (parsed numerically when possible).
    pub value: String,
}

impl FieldFilter {
    /// Builds a filter.
    pub fn new(field: impl Into<String>, op: FilterOp, value: impl Into<String>) -> Self {
        FieldFilter {
            field: field.into(),
            op,
            value: value.into(),
        }
    }

    /// Whether `tuple` satisfies this predicate. Tuples missing the
    /// field never match.
    pub fn matches(&self, tuple: &DataTuple) -> bool {
        let Some(v) = tuple.get(&self.field) else {
            return false;
        };
        if let (Some(lhs), Ok(rhs)) = (v.as_f64(), self.value.parse::<f64>()) {
            return match self.op {
                FilterOp::Eq => lhs == rhs,
                FilterOp::Ne => lhs != rhs,
                FilterOp::Lt => lhs < rhs,
                FilterOp::Le => lhs <= rhs,
                FilterOp::Gt => lhs > rhs,
                FilterOp::Ge => lhs >= rhs,
            };
        }
        let lhs = match v {
            Value::Str(s) => s.clone(),
            other => other.to_string(),
        };
        match self.op {
            FilterOp::Eq => lhs == self.value,
            FilterOp::Ne => lhs != self.value,
            FilterOp::Lt => lhs < self.value,
            FilterOp::Le => lhs <= self.value,
            FilterOp::Gt => lhs > self.value,
            FilterOp::Ge => lhs >= self.value,
        }
    }
}

/// A history-plane question: aggregate one field of one series over a
/// closed time range, optionally filtered.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryQuery {
    /// Series to read.
    pub series: SeriesKey,
    /// Field to aggregate.
    pub field: String,
    /// Inclusive range start, nanoseconds.
    pub t0: u64,
    /// Inclusive range end, nanoseconds.
    pub t1: u64,
    /// Aggregate to compute.
    pub agg: HistoryAgg,
    /// Tuple predicates; non-empty filters force the replay path.
    pub filters: Vec<FieldFilter>,
}

impl HistoryQuery {
    /// Builds an unfiltered history query.
    pub fn new(
        series: SeriesKey,
        field: impl Into<String>,
        t0: u64,
        t1: u64,
        agg: HistoryAgg,
    ) -> Self {
        HistoryQuery {
            series,
            field: field.into(),
            t0,
            t1,
            agg,
            filters: Vec::new(),
        }
    }

    /// Adds a tuple predicate (forces replay evaluation).
    #[must_use]
    pub fn with_filter(mut self, f: FieldFilter) -> Self {
        self.filters.push(f);
        self
    }
}

/// The result of an aggregate, typed per aggregate family.
#[derive(Debug, Clone, PartialEq)]
pub enum AggValue {
    /// No observations matched.
    Empty,
    /// `count`.
    Count(u64),
    /// `sum`, `min`, `max`, `mean`.
    Value(f64),
    /// `p50` / `p95` (histogram estimates are integral).
    Quantile(u64),
    /// `distinct` estimate.
    Distinct(u64),
    /// `topk`: `(value, estimated count)`, heaviest first.
    TopK(Vec<(String, u64)>),
}

impl AggValue {
    /// The result as a scalar, when the aggregate family has one.
    pub fn scalar(&self) -> Option<f64> {
        match self {
            AggValue::Empty | AggValue::TopK(_) => None,
            AggValue::Count(n) | AggValue::Quantile(n) | AggValue::Distinct(n) => Some(*n as f64),
            AggValue::Value(v) => Some(*v),
        }
    }
}

/// How an answer was produced — the pushdown planner's receipt.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistoryPlan {
    /// Persisted native rollup cells merged.
    pub persisted_cells: u64,
    /// Coarse sketch-tier cells merged.
    pub coarse_cells: u64,
    /// Cached sealed-segment cells merged.
    pub segment_cells: u64,
    /// Tuples decoded on the raw path (edges, active segment, replay).
    pub raw_tuples: u64,
    /// Segments that contributed any raw-decoded tuples.
    pub segments_scanned: u64,
    /// False when a merged cell extends past the requested range, so
    /// the answer may include observations outside `[t0, t1]` whose raw
    /// tuples have already been retired.
    pub exact: bool,
    /// True when cells served the aligned core (false = full replay).
    pub pushdown: bool,
}

/// An evaluated [`HistoryQuery`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryAnswer {
    /// The aggregate result.
    pub value: AggValue,
    /// Numeric observations folded into the answer.
    pub count: u64,
    /// How the answer was produced.
    pub plan: HistoryPlan,
}

fn overlaps_range(start: u64, width: u64, t0: u64, t1: u64) -> bool {
    start <= t1 && start.saturating_add(width) > t0
}

fn contained(start: u64, width: u64, t0: u64, t1: u64) -> bool {
    start >= t0
        && start
            .checked_add(width.saturating_sub(1))
            .is_some_and(|end| end <= t1)
}

/// Extracts the typed answer from the merged accumulator.
fn extract(
    acc: &RollupPoint,
    agg: &HistoryAgg,
    raw_distinct: Option<&Hll>,
    raw_hh: Option<&SpaceSaving>,
) -> AggValue {
    match agg {
        HistoryAgg::Count => AggValue::Count(acc.count),
        HistoryAgg::Sum => AggValue::Value(acc.sum),
        HistoryAgg::Min if acc.count == 0 => AggValue::Empty,
        HistoryAgg::Min => AggValue::Value(acc.min),
        HistoryAgg::Max if acc.count == 0 => AggValue::Empty,
        HistoryAgg::Max => AggValue::Value(acc.max),
        HistoryAgg::Mean if acc.count == 0 => AggValue::Empty,
        HistoryAgg::Mean => AggValue::Value(acc.mean()),
        HistoryAgg::P50 if acc.count == 0 => AggValue::Empty,
        HistoryAgg::P50 => AggValue::Quantile(acc.p50()),
        HistoryAgg::P95 if acc.count == 0 => AggValue::Empty,
        HistoryAgg::P95 => AggValue::Quantile(acc.p95()),
        HistoryAgg::Distinct => match (acc.sketch(), raw_distinct) {
            (Some(Sketch::Distinct(h)), _) => AggValue::Distinct(h.estimate().round() as u64),
            (_, Some(h)) if h.estimate() > 0.0 => AggValue::Distinct(h.estimate().round() as u64),
            _ => AggValue::Empty,
        },
        HistoryAgg::HeavyHitters { k } => {
            let top = match (acc.sketch(), raw_hh) {
                (Some(Sketch::HeavyHitters(ss)), _) => ss.top(*k),
                (_, Some(ss)) => ss.top(*k),
                _ => Vec::new(),
            };
            if top.is_empty() {
                AggValue::Empty
            } else {
                AggValue::TopK(top.into_iter().map(|(key, n, _)| (key, n)).collect())
            }
        }
    }
}

impl TimeSeriesStore {
    /// Evaluates a history query, pushing the aggregation down to
    /// rollup/sketch tiers whenever the aggregate and time bounds
    /// allow, and falling back to [`TimeSeriesStore::history_replay`]
    /// when they do not (filters; distinct/top-k over a series with no
    /// sketch snapshots).
    ///
    /// # Errors
    ///
    /// Decode errors on frames that passed their CRC (version skew).
    pub fn history(&self, q: &HistoryQuery) -> Result<HistoryAnswer, StoreError> {
        if q.t0 > q.t1 {
            return Ok(HistoryAnswer {
                value: AggValue::Empty,
                count: 0,
                plan: HistoryPlan {
                    exact: true,
                    pushdown: true,
                    ..HistoryPlan::default()
                },
            });
        }
        if !q.filters.is_empty() {
            return self.history_replay(q);
        }
        let (acc, plan) = self.history_pushdown(q)?;
        if q.agg.needs_sketch() {
            let served = matches!(
                (&q.agg, acc.sketch()),
                (HistoryAgg::Distinct, Some(Sketch::Distinct(_)))
                    | (
                        HistoryAgg::HeavyHitters { .. },
                        Some(Sketch::HeavyHitters(_))
                    )
            );
            let saw_data = acc.count > 0 || plan.raw_tuples > 0 || acc.sketch.is_some();
            if !served && saw_data {
                return self.history_replay(q);
            }
        }
        let value = extract(&acc, &q.agg, None, None);
        Ok(HistoryAnswer {
            value,
            count: acc.count,
            plan,
        })
    }

    /// Evaluates a history query by decoding and folding raw tuples —
    /// the reference path the pushdown planner must agree with, and the
    /// only path that can apply filters or aggregate plain (non-sketch)
    /// values into distinct/top-k estimates.
    ///
    /// # Errors
    ///
    /// Decode errors on frames that passed their CRC (version skew).
    pub fn history_replay(&self, q: &HistoryQuery) -> Result<HistoryAnswer, StoreError> {
        let tuples = self.inner.lock().range(&q.series, q.t0, q.t1)?;
        let mut acc = RollupPoint::empty(q.t0, q.t1.saturating_sub(q.t0).saturating_add(1));
        let mut plan = HistoryPlan {
            exact: true,
            pushdown: false,
            ..HistoryPlan::default()
        };
        let mut distinct = Hll::new(DEFAULT_PRECISION);
        let mut hh = SpaceSaving::new(0.01);
        for t in &tuples {
            plan.raw_tuples += 1;
            if !q.filters.iter().all(|f| f.matches(t)) {
                continue;
            }
            let Some(v) = t.get(&q.field) else {
                continue;
            };
            fold_value(&mut acc, v);
            if q.agg.needs_sketch() && !matches!(v, Value::Bytes(_) | Value::Null) {
                distinct.record(&value_key_bytes(v));
                let key = match v {
                    Value::Str(s) => s.clone(),
                    other => other.to_string(),
                };
                hh.record(&key, 1);
            }
        }
        plan.segments_scanned = 1;
        let value = extract(&acc, &q.agg, Some(&distinct), Some(&hh));
        Ok(HistoryAnswer {
            value,
            count: acc.count,
            plan,
        })
    }

    /// The cell-merging fast path: persisted rollups + coarse cells +
    /// cached sealed-segment folds for the aligned core of the range,
    /// raw scan only for unaligned edges and the active segment.
    fn history_pushdown(&self, q: &HistoryQuery) -> Result<(RollupPoint, HistoryPlan), StoreError> {
        let mut inner = self.inner.lock();
        let native = inner.cfg.rollup_bucket_ns.max(1);
        let key = (q.series.clone(), q.field.clone());
        let mut acc = RollupPoint::empty(q.t0, q.t1.saturating_sub(q.t0).saturating_add(1));
        let mut plan = HistoryPlan {
            exact: true,
            pushdown: true,
            ..HistoryPlan::default()
        };

        // Aligned core: native buckets wholly inside [t0, t1].
        let core = if q.t1 >= native - 1 {
            let hi = (q.t1 - (native - 1)) / native * native;
            match q.t0.div_ceil(native).checked_mul(native) {
                Some(lo) if lo <= hi => Some((lo, hi)),
                _ => None,
            }
        } else {
            None
        };
        let in_core = |b: u64| core.is_some_and(|(lo, hi)| b >= lo && b <= hi);
        // Inclusive windows the raw edge scan must cover.
        let mut windows: Vec<(u64, u64)> = Vec::new();
        match core {
            Some((lo, hi)) => {
                if q.t0 < lo {
                    windows.push((q.t0, lo - 1));
                }
                let core_end = hi + native - 1;
                if core_end < q.t1 {
                    windows.push((core_end + 1, q.t1));
                }
            }
            None => windows.push((q.t0, q.t1)),
        }

        // Segments: cached cells for the core, raw scan for the edges
        // and for the (always uncached) active segment.
        let nsegs = inner.segments.len();
        for i in 0..nsegs {
            if !inner.segments[i].overlaps(q.t0, q.t1) {
                continue;
            }
            let sealed = i + 1 < nsegs;
            if sealed {
                inner.ensure_sealed_cells(i)?;
            }
            let seg = &inner.segments[i];
            let mut scanned = 0u64;
            if let (true, Some((cells, _))) = (sealed, seg.cells.as_ref()) {
                if let Some(by_bucket) = cells.get(&key) {
                    for (&b, cell) in by_bucket {
                        if in_core(b) {
                            acc.merge(cell);
                            plan.segment_cells += 1;
                        }
                    }
                }
                for &(w0, w1) in &windows {
                    if !seg.overlaps(w0, w1) {
                        continue;
                    }
                    for t in SeriesScan::new(&seg.bytes[seg.seek(w0)..], &q.series, w0, w1) {
                        let t = t?;
                        scanned += 1;
                        if let Some(v) = t.get(&q.field) {
                            fold_value(&mut acc, v);
                        }
                    }
                }
            } else {
                for t in SeriesScan::new(&seg.bytes[seg.seek(q.t0)..], &q.series, q.t0, q.t1) {
                    let t = t?;
                    scanned += 1;
                    if let Some(v) = t.get(&q.field) {
                        fold_value(&mut acc, v);
                    }
                }
            }
            if scanned > 0 {
                plan.raw_tuples += scanned;
                plan.segments_scanned += 1;
            }
        }

        // Persisted tiers: raw data behind these cells is gone, so a
        // cell straddling the range boundary is merged inexactly rather
        // than dropped.
        if let Some(by_bucket) = inner.rollups.get(&key) {
            for (&b, cell) in by_bucket {
                if !overlaps_range(b, cell.bucket_ns, q.t0, q.t1) {
                    continue;
                }
                acc.merge(cell);
                plan.persisted_cells += 1;
                if !contained(b, cell.bucket_ns, q.t0, q.t1) {
                    plan.exact = false;
                }
            }
        }
        if let Some(by_bucket) = inner.coarse.get(&key) {
            for (&b, cell) in by_bucket {
                if !overlaps_range(b, cell.bucket_ns, q.t0, q.t1) {
                    continue;
                }
                acc.merge(cell);
                plan.coarse_cells += 1;
                if !contained(b, cell.bucket_ns, q.t0, q.t1) {
                    plan.exact = false;
                }
            }
        }

        Ok((acc, plan))
    }
}

#[cfg(test)]
mod tests {
    use netalytics_data::TupleBatch;

    use super::*;
    use crate::store::StoreConfig;

    const SECOND: u64 = 1_000_000_000;

    fn filled_store(cfg: StoreConfig, series: &SeriesKey, seconds: u64) -> TimeSeriesStore {
        let store = TimeSeriesStore::in_memory_with(cfg);
        for s in 0..seconds {
            // Integer-valued latencies: f64 folds are exact, so the
            // pushdown and replay paths must agree bitwise.
            let tuples: Vec<DataTuple> = (0..10)
                .map(|i| {
                    DataTuple::new(i, s * SECOND + i * 100_000_000).with("lat", (s % 7) * 10 + i)
                })
                .collect();
            store
                .append(series, &TupleBatch::from_tuples(tuples))
                .unwrap();
        }
        store
    }

    #[test]
    fn pushdown_matches_replay_on_golden_ranges() {
        let series = SeriesKey::new(9, "web");
        let store = filled_store(
            StoreConfig {
                segment_max_bytes: 2_000,
                rollup_bucket_ns: SECOND,
                ..StoreConfig::default()
            },
            &series,
            30,
        );
        assert!(store.stats().segments > 3, "load must span segments");

        let ranges = [
            (0, 30 * SECOND - 1),            // fully aligned
            (0, u64::MAX),                   // open-ended
            (3 * SECOND, 17 * SECOND - 1),   // aligned interior
            (2_500_000_000, 21_700_000_000), // unaligned edges
            (123, 456),                      // sub-bucket, raw only
        ];
        for agg in [
            HistoryAgg::Count,
            HistoryAgg::Sum,
            HistoryAgg::Min,
            HistoryAgg::Max,
            HistoryAgg::Mean,
            HistoryAgg::P50,
            HistoryAgg::P95,
        ] {
            for &(t0, t1) in &ranges {
                let q = HistoryQuery::new(series.clone(), "lat", t0, t1, agg.clone());
                let fast = store.history(&q).unwrap();
                let slow = store.history_replay(&q).unwrap();
                assert!(fast.plan.pushdown && fast.plan.exact, "{agg:?} {t0}..{t1}");
                assert_eq!(
                    fast.value, slow.value,
                    "{agg:?} over [{t0}, {t1}] diverged: {:?}",
                    fast.plan
                );
                assert_eq!(fast.count, slow.count);
            }
        }

        // The aligned full-range query must actually use cells.
        let q = HistoryQuery::new(series.clone(), "lat", 0, 30 * SECOND - 1, HistoryAgg::Sum);
        let a = store.history(&q).unwrap();
        assert!(a.plan.segment_cells > 0, "plan: {:?}", a.plan);
        assert!(
            a.plan.raw_tuples < 300,
            "most tuples must come from cells: {:?}",
            a.plan
        );
    }

    #[test]
    fn filters_force_replay_and_apply() {
        let series = SeriesKey::new(9, "web");
        let store = filled_store(StoreConfig::default(), &series, 10);
        let q = HistoryQuery::new(series.clone(), "lat", 0, u64::MAX, HistoryAgg::Count)
            .with_filter(FieldFilter::new("lat", FilterOp::Ge, "30"));
        let a = store.history(&q).unwrap();
        assert!(!a.plan.pushdown);
        let all = store
            .history(&HistoryQuery::new(
                series,
                "lat",
                0,
                u64::MAX,
                HistoryAgg::Count,
            ))
            .unwrap();
        assert!(matches!(a.value, AggValue::Count(n) if n > 0));
        assert!(a.count < all.count, "filter must drop some tuples");
    }

    #[test]
    fn tiered_history_survives_compaction_exactly() {
        let series = SeriesKey::new(4, "");
        let cfg = StoreConfig {
            segment_max_bytes: 1_500,
            retention_ns: Some(8 * SECOND),
            rollup_bucket_ns: SECOND,
            rollup_retention_ns: Some(16 * SECOND),
            sketch_bucket_ns: 4 * SECOND,
            ..StoreConfig::default()
        };
        let store = filled_store(cfg, &series, 30);
        let q = HistoryQuery::new(series.clone(), "lat", 0, 30 * SECOND - 1, HistoryAgg::Count);
        let before = store.history(&q).unwrap();
        assert_eq!(before.value, AggValue::Count(300));

        let report = store.compact(30 * SECOND).unwrap();
        assert!(report.segments_dropped > 0);
        assert!(report.rollup_cells_demoted > 0, "{report:?}");
        assert!(store.stats().coarse_points > 0);

        // All three tiers now hold part of the answer; the total is
        // unchanged and the aligned query stays exact.
        let after = store.history(&q).unwrap();
        assert_eq!(after.value, AggValue::Count(300), "plan: {:?}", after.plan);
        assert!(after.plan.exact);
        assert!(after.plan.persisted_cells > 0, "{:?}", after.plan);
        assert!(after.plan.coarse_cells > 0, "{:?}", after.plan);
    }

    #[test]
    fn sketch_aggregates_serve_from_cells_or_replay() {
        let series = SeriesKey::new(6, "");
        let store = TimeSeriesStore::in_memory_with(StoreConfig {
            segment_max_bytes: 800,
            rollup_bucket_ns: SECOND,
            ..StoreConfig::default()
        });
        // Heavy-hitter snapshots in one field, raw URLs in another.
        for s in 0..20u64 {
            let mut ss = SpaceSaving::new(0.01);
            ss.record("/hot", 3);
            ss.record(&format!("/only-{s}"), 1);
            let t = DataTuple::new(s, s * SECOND)
                .with("sketch", Sketch::HeavyHitters(ss).encode())
                .with("url", format!("/u{}", s % 5));
            store
                .append(&series, &TupleBatch::from_tuples(vec![t]))
                .unwrap();
        }

        let q = HistoryQuery::new(
            series.clone(),
            "sketch",
            0,
            20 * SECOND - 1,
            HistoryAgg::HeavyHitters { k: 3 },
        );
        let a = store.history(&q).unwrap();
        assert!(a.plan.pushdown, "snapshot field merges through cells");
        let AggValue::TopK(top) = &a.value else {
            panic!("expected top-k, got {:?}", a.value);
        };
        assert_eq!(top[0].0, "/hot");
        assert_eq!(top[0].1, 60);

        // Plain values cannot merge as sketches: distinct falls back.
        let q = HistoryQuery::new(series, "url", 0, u64::MAX, HistoryAgg::Distinct);
        let a = store.history(&q).unwrap();
        assert!(!a.plan.pushdown);
        assert_eq!(a.value, AggValue::Distinct(5));
    }

    #[test]
    fn agg_and_filter_parsing() {
        assert_eq!(HistoryAgg::parse("mean"), Some(HistoryAgg::Mean));
        assert_eq!(
            HistoryAgg::parse("topk:5"),
            Some(HistoryAgg::HeavyHitters { k: 5 })
        );
        assert_eq!(HistoryAgg::parse("topk:0"), None);
        assert_eq!(HistoryAgg::parse("bogus"), None);
        assert_eq!(HistoryAgg::HeavyHitters { k: 5 }.name(), "topk:5");
        assert_eq!(FilterOp::parse(">="), Some(FilterOp::Ge));
        assert_eq!(FilterOp::parse("between"), None);

        let t = DataTuple::new(0, 0).with("u", "GET").with("n", 7u64);
        assert!(FieldFilter::new("u", FilterOp::Eq, "GET").matches(&t));
        assert!(FieldFilter::new("n", FilterOp::Gt, "6.5").matches(&t));
        assert!(!FieldFilter::new("missing", FilterOp::Ne, "x").matches(&t));
    }
}
