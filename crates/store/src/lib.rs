//! netalytics-store: a durable embedded time-series store for query
//! results.
//!
//! The paper's pipeline ends with "results" flowing back to the
//! administrator, and its case studies all replay history — load
//! spikes, cache-hit drift, per-tier latency over time. This crate is
//! that storage layer: an append-only segmented log of CRC-framed
//! [`netalytics_data::TupleBatch`]es, fronted by per-series memtables,
//! with retention that compacts expired raw segments into downsampled
//! rollups built on [`netalytics_telemetry`]'s mergeable histogram
//! snapshots.
//!
//! Guarantees, in one breath: a batch accepted by
//! [`TimeSeriesStore::append`] is committed — it survives process
//! restart (crash recovery truncates only a torn final frame, never a
//! committed one) and orchestrator re-placements; reads
//! ([`TimeSeriesStore::range`], [`TimeSeriesStore::latest`],
//! [`TimeSeriesStore::rollup`], [`TimeSeriesStore::query_history`])
//! always see every committed tuple still inside retention.
//!
//! # Example
//!
//! ```
//! use netalytics_data::{DataTuple, TupleBatch};
//! use netalytics_store::{SeriesKey, TimeSeriesStore};
//!
//! let store = TimeSeriesStore::in_memory();
//! let series = SeriesKey::new(1, "checkout");
//! let batch = TupleBatch::from_tuples(vec![
//!     DataTuple::new(0, 1_000).with("t_ns", 250u64),
//!     DataTuple::new(0, 2_000).with("t_ns", 900u64),
//! ]);
//! store.append(&series, &batch).unwrap();
//! assert_eq!(store.latest(&series).unwrap().ts_ns, 2_000);
//! assert_eq!(store.range(&series, 0, 1_500).unwrap().len(), 1);
//! ```

pub mod backend;
pub mod frame;
pub mod history;
pub mod rollup;
mod scan;
pub mod sharded;
pub mod sink;
pub mod store;
mod wire;

pub use backend::ResultBackend;
pub use history::{
    AggValue, FieldFilter, FilterOp, HistoryAgg, HistoryAnswer, HistoryPlan, HistoryQuery,
};
pub use rollup::RollupPoint;
pub use sharded::{ShardedConfig, ShardedStats, ShardedStore};
pub use sink::StoreSink;
pub use store::{
    CompactionReport, SeriesKey, StoreConfig, StoreError, StoreStats, TimeSeriesStore,
};

#[cfg(test)]
mod tests {
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    use netalytics_data::{DataTuple, TupleBatch};

    use super::*;

    /// Fresh scratch directory (no tempfile dep in this workspace).
    pub(crate) fn scratch_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "netalytics-store-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn batch(ts0: u64, n: u64, field: &str) -> TupleBatch {
        TupleBatch::from_tuples(
            (0..n)
                .map(|i| DataTuple::new(i, ts0 + i * 100).with(field, ts0 + i))
                .collect(),
        )
    }

    #[test]
    fn append_reopen_preserves_everything() {
        let dir = scratch_dir("reopen");
        let series = SeriesKey::new(3, "api");
        {
            let store = TimeSeriesStore::open(&dir).expect("open");
            for k in 0..5 {
                store.append(&series, &batch(k * 10_000, 10, "v")).unwrap();
            }
            assert_eq!(store.stats().tuples, 50);
        }
        let store = TimeSeriesStore::open(&dir).expect("reopen");
        let all = store.range(&series, 0, u64::MAX).expect("range");
        assert_eq!(all.len(), 50);
        assert!(all.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        assert_eq!(store.latest(&series).unwrap().ts_ns, 40_000 + 9 * 100);
        assert_eq!(store.query_history(3).unwrap().len(), 50);
        assert!(store.query_history(99).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn range_agrees_between_memtable_and_log_paths() {
        // Tiny memtable forces the log path for old data while the
        // memtable serves the tail; both must agree where they overlap.
        let cfg = StoreConfig {
            memtable_per_series: 8,
            segment_max_bytes: 2_000,
            ..StoreConfig::default()
        };
        let store = TimeSeriesStore::in_memory_with(cfg);
        let series = SeriesKey::new(1, "");
        for k in 0..20 {
            store.append(&series, &batch(k * 1_000, 5, "v")).unwrap();
        }
        assert!(store.stats().segments > 1, "load spans segments");
        // Old window: only on the log path.
        let old = store.range(&series, 0, 3_000).unwrap();
        // Batches at 0, 1000, 2000 fit wholly; the batch at 3000
        // contributes its first tuple (closed interval).
        assert_eq!(old.len(), 5 + 5 + 5 + 1);
        // Tail window: memtable path.
        let tail = store.range(&series, 19_000, u64::MAX).unwrap();
        assert_eq!(tail.len(), 5);
        // Full scan equals total.
        assert_eq!(store.range(&series, 0, u64::MAX).unwrap().len(), 100);
    }

    #[test]
    fn series_are_isolated() {
        let store = TimeSeriesStore::in_memory();
        let a = SeriesKey::new(1, "a");
        let b = SeriesKey::new(1, "b");
        let other_query = SeriesKey::new(2, "a");
        store.append(&a, &batch(0, 3, "v")).unwrap();
        store.append(&b, &batch(0, 4, "v")).unwrap();
        store.append(&other_query, &batch(0, 5, "v")).unwrap();
        assert_eq!(store.range(&a, 0, u64::MAX).unwrap().len(), 3);
        assert_eq!(store.range(&b, 0, u64::MAX).unwrap().len(), 4);
        assert_eq!(store.query_history(1).unwrap().len(), 7);
        assert_eq!(store.query_history(2).unwrap().len(), 5);
        assert_eq!(store.series().len(), 3);
    }

    #[test]
    fn retention_compacts_into_rollups_and_drops_segments() {
        let dir = scratch_dir("retention");
        let second = 1_000_000_000u64;
        let cfg = StoreConfig {
            segment_max_bytes: 4_000,
            retention_ns: Some(10 * second),
            rollup_bucket_ns: second,
            ..StoreConfig::default()
        };
        let series = SeriesKey::new(5, "web");
        let store = TimeSeriesStore::open_with(&dir, cfg.clone()).expect("open");
        // 30 seconds of data, one tuple per 100ms.
        for s in 0..30u64 {
            let tuples: Vec<DataTuple> = (0..10)
                .map(|i| DataTuple::new(i, s * second + i * 100_000_000).with("lat", 10 * (s + 1)))
                .collect();
            store
                .append(&series, &TupleBatch::from_tuples(tuples))
                .unwrap();
        }
        let before = store.stats();
        assert_eq!(before.tuples, 300);
        assert!(before.segments > 2);

        let now = 30 * second;
        let report = store.compact(now).expect("compact");
        assert!(report.segments_dropped > 0, "old segments dropped");
        assert!(report.tuples_folded > 0);
        assert!(report.rollup_points_written > 0);
        let after = store.stats();
        assert_eq!(
            after.segments as u64,
            before.segments as u64 - report.segments_dropped
        );
        assert!(after.rollup_points > 0);

        // Raw reads still serve everything inside retention.
        let recent = store.range(&series, now - 5 * second, now).unwrap();
        assert!(!recent.is_empty());

        // Rollups cover the dropped history: every bucket from t=0 on.
        let roll = store
            .rollup(&series, "lat", 0, now, second)
            .expect("rollup");
        assert_eq!(roll.first().unwrap().bucket_start, 0);
        assert_eq!(roll.len(), 30, "one point per second, none lost");
        let p0 = &roll[0];
        assert_eq!(p0.count, 10);
        assert_eq!(p0.min, 10.0);
        assert_eq!(p0.max, 10.0);
        assert_eq!(p0.p50(), 10);

        // The rollups survive a reopen, raw expired data stays gone.
        drop(store);
        let store = TimeSeriesStore::open_with(&dir, cfg).expect("reopen");
        let roll2 = store.rollup(&series, "lat", 0, now, second).unwrap();
        assert_eq!(roll2, roll, "persisted rollups reload identically");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sketch_snapshots_survive_compaction_and_reopen() {
        use netalytics_sketch::{Sketch, SpaceSaving};

        let dir = scratch_dir("sketch");
        let second = 1_000_000_000u64;
        let cfg = StoreConfig {
            segment_max_bytes: 1_000,
            retention_ns: Some(5 * second),
            rollup_bucket_ns: second,
            ..StoreConfig::default()
        };
        let series = SeriesKey::new(8, "");
        let store = TimeSeriesStore::open_with(&dir, cfg.clone()).expect("open");
        // One heavy-hitters snapshot per second; /hot gains one count
        // each time, so only the merged total sees all 20.
        for s in 0..20u64 {
            let mut ss = SpaceSaving::new(0.01);
            ss.record("/hot", 1);
            ss.record(&format!("/only-{s}"), 1);
            let t = DataTuple::new(s, s * second)
                .with("sketch", Sketch::HeavyHitters(ss).encode())
                .with("n", 2u64);
            store
                .append(&series, &TupleBatch::from_tuples(vec![t]))
                .unwrap();
        }
        let report = store.compact(20 * second).expect("compact");
        assert!(report.segments_dropped > 0);

        // The rollup view merges expired snapshots with retained ones:
        // one coarse bucket spanning the whole run must see every delta.
        let check = |store: &TimeSeriesStore| {
            let pts = store
                .rollup(&series, "sketch", 0, 20 * second, 20 * second)
                .expect("rollup");
            assert_eq!(pts.len(), 1);
            let Some(Sketch::HeavyHitters(merged)) = pts[0].sketch() else {
                panic!("bucket should hold a merged heavy-hitters sketch");
            };
            assert_eq!(merged.estimate("/hot").map(|e| e.count), Some(20));
            assert_eq!(merged.top(1)[0].0, "/hot");
        };
        check(&store);

        // Persisted rollup cells carry the blob across a reopen.
        drop(store);
        let store = TimeSeriesStore::open_with(&dir, cfg).expect("reopen");
        check(&store);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rollup_rejects_non_multiple_buckets() {
        let store = TimeSeriesStore::in_memory();
        let s = SeriesKey::new(1, "");
        for bad in [0u64, 500, 1_500_000_000] {
            assert!(matches!(
                store.rollup(&s, "v", 0, u64::MAX, bad),
                Err(StoreError::BadBucket { .. })
            ));
        }
        // Coarser multiples are fine.
        store.append(&s, &batch(0, 10, "v")).unwrap();
        let pts = store.rollup(&s, "v", 0, u64::MAX, 5_000_000_000).unwrap();
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].count, 10);
    }

    #[test]
    fn torn_tail_is_truncated_and_the_prefix_survives() {
        let dir = scratch_dir("torn");
        let series = SeriesKey::new(1, "g");
        {
            let store = TimeSeriesStore::open(&dir).expect("open");
            for k in 0..4 {
                store.append(&series, &batch(k * 1_000, 8, "v")).unwrap();
            }
        }
        // Tear the newest segment mid-frame.
        let seg = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.file_name().unwrap().to_string_lossy().starts_with("seg-"))
            .max()
            .unwrap();
        let len = std::fs::metadata(&seg).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(len - 7).unwrap();
        drop(f);

        let store = TimeSeriesStore::open(&dir).expect("recovering open");
        assert_eq!(store.stats().truncated_on_open, 1);
        let got = store.query_history(1).unwrap();
        // The clean prefix: 3 whole batches; the torn 4th is gone.
        assert_eq!(got.len(), 24);
        // And the store keeps working after recovery.
        store.append(&series, &batch(50_000, 8, "v")).unwrap();
        assert_eq!(store.query_history(1).unwrap().len(), 32);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_records_segment_seals_and_rollup_folds() {
        use std::sync::Arc;

        use netalytics_telemetry::{EventKind, Journal};

        let second = 1_000_000_000u64;
        let store = TimeSeriesStore::in_memory_with(StoreConfig {
            segment_max_bytes: 2_000,
            retention_ns: Some(5 * second),
            rollup_bucket_ns: second,
            ..StoreConfig::default()
        });
        let journal = Arc::new(Journal::new(64));
        store.attach_journal(Arc::clone(&journal));

        let series = SeriesKey::new(4, "");
        for s in 0..20u64 {
            store.append(&series, &batch(s * second, 10, "v")).unwrap();
        }
        let seals = journal
            .events()
            .iter()
            .filter(|e| e.kind == EventKind::SegmentSealed)
            .count();
        assert!(seals > 0, "log rolls must journal segment seals");
        assert_eq!(
            seals as u64,
            store.stats().segments as u64 - 1,
            "one seal per non-active segment"
        );

        let report = store.compact(20 * second).expect("compact");
        assert!(report.segments_dropped > 0);
        let fold = journal
            .events()
            .into_iter()
            .find(|e| e.kind == EventKind::RollupFolded)
            .expect("compaction journaled");
        assert_eq!(fold.ts_ns, 20 * second, "stamped with the compact clock");
        assert!(fold.detail.contains("dropped"), "detail: {}", fold.detail);
    }

    #[test]
    fn stats_and_metrics_register() {
        let registry = netalytics_telemetry::MetricsRegistry::new();
        let store = TimeSeriesStore::in_memory();
        store.register_metrics(&registry);
        let s = SeriesKey::new(1, "");
        store.append(&s, &batch(0, 5, "v")).unwrap();
        store.note_sink_flush();
        let snap = registry.snapshot();
        assert_eq!(snap.counter_total("store.ingest_tuples"), 5);
        assert_eq!(snap.counter_total("store.ingest_batches"), 1);
        assert_eq!(snap.counter_total("store.sink_flushes"), 1);
        assert!(snap.counter_total("store.ingest_bytes") > 0);
        assert!(snap.names().contains(&"store.segments"));
    }
}
