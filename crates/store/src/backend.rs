//! The result-store abstraction the control plane writes through.
//!
//! PR 10 ("scale-out control plane") splits the store into replicated
//! shards, so the orchestrator, the [`crate::StoreSink`] and the HTTP
//! frontend can no longer assume one concrete [`TimeSeriesStore`].
//! [`ResultBackend`] is the object-safe surface they share: everything
//! the single-node store already exposed — appends, the four read
//! paths, retention compaction, and the sink/telemetry hooks — with
//! the same semantics. [`TimeSeriesStore`] implements it by direct
//! delegation; [`crate::ShardedStore`] implements it by routing each
//! series to a replicated shard and fanning reads out.

use std::sync::Arc;

use netalytics_data::{DataTuple, TupleBatch};
use netalytics_telemetry::{Journal, MetricsRegistry};

use crate::history::{HistoryAnswer, HistoryQuery};
use crate::rollup::RollupPoint;
use crate::store::{CompactionReport, SeriesKey, StoreError, StoreStats, TimeSeriesStore};

/// Object-safe store interface: anything the orchestrator can commit
/// query results into and read history back from.
///
/// Every method mirrors the [`TimeSeriesStore`] inherent method of the
/// same name; see those for the full contracts. Implementations must
/// be thread-safe — sinks append from executor threads while the
/// control plane reads.
pub trait ResultBackend: Send + Sync + std::fmt::Debug {
    /// Commits a batch to a series; see [`TimeSeriesStore::append`].
    fn append(&self, series: &SeriesKey, batch: &TupleBatch) -> Result<(), StoreError>;

    /// Newest retained tuple of a series; see
    /// [`TimeSeriesStore::latest`].
    fn latest(&self, series: &SeriesKey) -> Option<DataTuple>;

    /// All retained tuples of `series` in `[t0, t1]`; see
    /// [`TimeSeriesStore::range`].
    fn range(&self, series: &SeriesKey, t0: u64, t1: u64) -> Result<Vec<DataTuple>, StoreError>;

    /// Downsampled view of one field; see [`TimeSeriesStore::rollup`].
    fn rollup(
        &self,
        series: &SeriesKey,
        field: &str,
        t0: u64,
        t1: u64,
        bucket_ns: u64,
    ) -> Result<Vec<RollupPoint>, StoreError>;

    /// Aggregation-pushdown history evaluation; see
    /// [`TimeSeriesStore::history`].
    fn history(&self, q: &HistoryQuery) -> Result<HistoryAnswer, StoreError>;

    /// Every retained tuple of a query across all its group series;
    /// see [`TimeSeriesStore::query_history`].
    fn query_history(&self, query_id: u64) -> Result<Vec<DataTuple>, StoreError>;

    /// All series currently known; see [`TimeSeriesStore::series`].
    fn series(&self) -> Vec<SeriesKey>;

    /// Tiered retention pass; see [`TimeSeriesStore::compact`].
    fn compact(&self, now_ns: u64) -> Result<CompactionReport, StoreError>;

    /// The native rollup bucket width in nanoseconds.
    fn native_bucket_ns(&self) -> u64;

    /// Point-in-time counters (merged across shards when sharded).
    fn stats(&self) -> StoreStats;

    /// Whether writes survive process restart.
    fn is_durable(&self) -> bool;

    /// Attaches a flight recorder; see
    /// [`TimeSeriesStore::attach_journal`].
    fn attach_journal(&self, journal: Arc<Journal>);

    /// Registers `store.*` metrics; see
    /// [`TimeSeriesStore::register_metrics`].
    fn register_metrics(&self, registry: &MetricsRegistry);

    /// Sink hook: a buffered flush landed.
    fn note_sink_flush(&self);

    /// Sink hook: an append failed and the batch was dropped.
    fn note_append_error(&self);

    /// Sink hook: `n` malformed tuples were skipped.
    fn note_sink_skipped(&self, n: u64);
}

impl ResultBackend for TimeSeriesStore {
    fn append(&self, series: &SeriesKey, batch: &TupleBatch) -> Result<(), StoreError> {
        TimeSeriesStore::append(self, series, batch)
    }

    fn latest(&self, series: &SeriesKey) -> Option<DataTuple> {
        TimeSeriesStore::latest(self, series)
    }

    fn range(&self, series: &SeriesKey, t0: u64, t1: u64) -> Result<Vec<DataTuple>, StoreError> {
        TimeSeriesStore::range(self, series, t0, t1)
    }

    fn rollup(
        &self,
        series: &SeriesKey,
        field: &str,
        t0: u64,
        t1: u64,
        bucket_ns: u64,
    ) -> Result<Vec<RollupPoint>, StoreError> {
        TimeSeriesStore::rollup(self, series, field, t0, t1, bucket_ns)
    }

    fn history(&self, q: &HistoryQuery) -> Result<HistoryAnswer, StoreError> {
        TimeSeriesStore::history(self, q)
    }

    fn query_history(&self, query_id: u64) -> Result<Vec<DataTuple>, StoreError> {
        TimeSeriesStore::query_history(self, query_id)
    }

    fn series(&self) -> Vec<SeriesKey> {
        TimeSeriesStore::series(self)
    }

    fn compact(&self, now_ns: u64) -> Result<CompactionReport, StoreError> {
        TimeSeriesStore::compact(self, now_ns)
    }

    fn native_bucket_ns(&self) -> u64 {
        TimeSeriesStore::native_bucket_ns(self)
    }

    fn stats(&self) -> StoreStats {
        TimeSeriesStore::stats(self)
    }

    fn is_durable(&self) -> bool {
        TimeSeriesStore::is_durable(self)
    }

    fn attach_journal(&self, journal: Arc<Journal>) {
        TimeSeriesStore::attach_journal(self, journal);
    }

    fn register_metrics(&self, registry: &MetricsRegistry) {
        TimeSeriesStore::register_metrics(self, registry);
    }

    fn note_sink_flush(&self) {
        TimeSeriesStore::note_sink_flush(self);
    }

    fn note_append_error(&self) {
        TimeSeriesStore::note_append_error(self);
    }

    fn note_sink_skipped(&self, n: u64) {
        TimeSeriesStore::note_sink_skipped(self, n);
    }
}
