//! Retention vs. readers: tiered compaction must never make a history
//! answer flicker. Whatever the compaction schedule — and whoever is
//! reading mid-pass — counts and sums over fully-retained ranges are
//! invariant as observations migrate raw → native rollups → coarse
//! sketch cells, and a restart reloads exactly the last persisted state.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use netalytics_data::{DataTuple, TupleBatch};
use netalytics_store::{
    AggValue, HistoryAgg, HistoryQuery, SeriesKey, StoreConfig, TimeSeriesStore,
};
use proptest::prelude::*;

/// Fresh scratch directory per case (no tempfile crate in-tree).
fn scratch_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("netalytics-races-{tag}-{}-{n}", std::process::id()))
}

const SEC: u64 = 1_000_000_000;

fn count_of(store: &TimeSeriesStore, series: &SeriesKey) -> u64 {
    store
        .history(&HistoryQuery::new(
            series.clone(),
            "v",
            0,
            u64::MAX,
            HistoryAgg::Count,
        ))
        .expect("history count")
        .count
}

/// A reader hammering `history()` while retention marches through every
/// tier must never observe a partial fold: the total count is invariant
/// whether each observation lives in a raw segment, a native rollup
/// cell, or a coarse sketch cell at the instant of the read.
#[test]
fn history_reads_stay_consistent_during_concurrent_compaction() {
    let dir = scratch_dir("inflight");
    let cfg = StoreConfig {
        segment_max_bytes: 2048,
        retention_ns: Some(5 * SEC),
        rollup_retention_ns: Some(20 * SEC),
        sketch_bucket_ns: 4 * SEC,
        ..StoreConfig::default()
    };
    let store = Arc::new(TimeSeriesStore::open_with(&dir, cfg).expect("open"));
    let series = SeriesKey::new(1, "");
    const TOTAL: u64 = 2_000;
    // One tuple per 50 ms: 100 s of data across many small segments.
    for c in 0..TOTAL / 50 {
        let b: TupleBatch = (0..50)
            .map(|i| {
                let k = c * 50 + i;
                DataTuple::new(k, k * 50_000_000).with("v", k % 7 + 1)
            })
            .collect();
        store.append(&series, &b).expect("append");
    }
    assert_eq!(count_of(&store, &series), TOTAL, "baseline before any fold");

    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let store = Arc::clone(&store);
        let series = series.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut reads = 0u64;
            while !stop.load(Ordering::Relaxed) {
                assert_eq!(
                    count_of(&store, &series),
                    TOTAL,
                    "a read mid-compaction saw a partial fold"
                );
                reads += 1;
            }
            reads
        })
    };

    // March `now` far enough that the whole dataset crosses raw →
    // rollup → sketch-only while the reader races each pass.
    let max_ts = (TOTAL - 1) * 50_000_000;
    let mut now = 0;
    while now <= max_ts + 30 * SEC {
        store.compact(now).expect("compact");
        now += SEC;
    }
    stop.store(true, Ordering::Relaxed);
    let reads = reader.join().expect("reader survived the march");
    assert!(reads > 0, "the reader actually raced the compactor");

    // Every tier engaged, and the invariant holds at rest too.
    let stats = store.stats();
    assert!(stats.segments_dropped > 0, "raw tier expired: {stats:?}");
    assert!(stats.coarse_points > 0, "sketch tier engaged: {stats:?}");
    assert_eq!(count_of(&store, &series), TOTAL);
}

/// The rollup log is append-only with last-record-wins per cell: a cell
/// persisted by two different compaction passes must reload at its
/// *latest* merged state, not the sum of every record ever written.
#[test]
fn rollup_reload_after_restart_takes_the_last_write() {
    let dir = scratch_dir("lastwins");
    let cfg = StoreConfig {
        segment_max_bytes: 512,
        retention_ns: Some(SEC),
        ..StoreConfig::default()
    };
    let series = SeriesKey::new(9, "g");
    {
        let store = TimeSeriesStore::open_with(&dir, cfg.clone()).expect("open");
        // Ten observations of v=2 in bucket [0, 1s).
        let b: TupleBatch = (0..10)
            .map(|i| DataTuple::new(i, i * 10_000_000).with("v", 2u64))
            .collect();
        store.append(&series, &b).expect("append");
        // Roll the active segment so the bucket's frames seal, then
        // expire them: first record for cell 0 (count=10).
        let filler: TupleBatch = (0..40)
            .map(|i| DataTuple::new(100 + i, 5 * SEC + i).with("v", 1u64))
            .collect();
        store.append(&series, &filler).expect("filler");
        let report = store.compact(3 * SEC).expect("first fold");
        assert!(report.segments_dropped >= 1, "{report:?}");
        assert!(report.rollup_points_written >= 1, "{report:?}");

        // Late data lands in the *same* bucket, seals, expires: the
        // second compaction re-persists cell 0 merged (count=20).
        let late: TupleBatch = (10..20)
            .map(|i| DataTuple::new(i, i * 10_000_000).with("v", 2u64))
            .collect();
        store.append(&series, &late).expect("late append");
        let filler: TupleBatch = (0..40)
            .map(|i| DataTuple::new(200 + i, 6 * SEC + i).with("v", 1u64))
            .collect();
        store.append(&series, &filler).expect("filler 2");
        let report = store.compact(7 * SEC).expect("second fold");
        assert!(report.segments_dropped >= 1, "{report:?}");
        let points = store
            .rollup(&series, "v", 0, SEC - 1, SEC)
            .expect("rollup before restart");
        assert_eq!(points.len(), 1);
        assert_eq!((points[0].count, points[0].sum), (20, 40.0));
    }

    // Restart: the reloaded cell is the last record, not the sum of
    // both records (30 would mean replayed-and-merged duplicates).
    let store = TimeSeriesStore::open_with(&dir, cfg).expect("reopen");
    let points = store
        .rollup(&series, "v", 0, SEC - 1, SEC)
        .expect("rollup after restart");
    assert_eq!(points.len(), 1);
    assert_eq!(
        (points[0].count, points[0].sum),
        (20, 40.0),
        "reload must take the last persisted record for the cell"
    );
}

/// Segments whose tuples carry nothing foldable (string-only fields)
/// must expire without manufacturing empty rollup cells — and a history
/// read over the vacated range answers zero, exactly.
#[test]
fn unfoldable_segments_expire_without_writing_empty_cells() {
    let dir = scratch_dir("empty");
    let cfg = StoreConfig {
        segment_max_bytes: 512,
        retention_ns: Some(SEC),
        ..StoreConfig::default()
    };
    let store = TimeSeriesStore::open_with(&dir, cfg).expect("open");
    let series = SeriesKey::new(4, "");
    let b: TupleBatch = (0..20)
        .map(|i| DataTuple::new(i, i * 10_000_000).with("tag", "string-only"))
        .collect();
    store.append(&series, &b).expect("append");
    let filler: TupleBatch = (0..40)
        .map(|i| DataTuple::new(100 + i, 5 * SEC + i).with("tag", "x"))
        .collect();
    store.append(&series, &filler).expect("filler");

    let report = store.compact(3 * SEC).expect("compact");
    assert!(report.segments_dropped >= 1, "{report:?}");
    assert_eq!(
        report.rollup_points_written, 0,
        "nothing numeric, nothing persisted: {report:?}"
    );
    assert_eq!(store.stats().rollup_points, 0);

    let ans = store
        .history(&HistoryQuery::new(
            series,
            "v",
            0,
            SEC - 1,
            HistoryAgg::Count,
        ))
        .expect("history over vacated range");
    assert_eq!(ans.count, 0);
    assert!(matches!(ans.value, AggValue::Count(0) | AggValue::Empty));
    assert!(ans.plan.exact, "an all-zero answer must not hedge");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Chaos schedule: arbitrary batches into arbitrary buckets with
    /// compaction passes interleaved at arbitrary (even non-monotone)
    /// clocks. Whatever tier each observation ends up in, full-range
    /// count and sum never change — integer-valued fields make the sum
    /// comparison exact.
    #[test]
    fn any_compaction_schedule_preserves_counts_and_sums(
        batches in proptest::collection::vec((0u64..20, 1u64..16), 1..10),
        clocks in proptest::collection::vec(0u64..40, 0..6),
    ) {
        let dir = scratch_dir("chaos");
        let cfg = StoreConfig {
            segment_max_bytes: 512,
            retention_ns: Some(2 * SEC),
            rollup_retention_ns: Some(8 * SEC),
            sketch_bucket_ns: 4 * SEC,
            ..StoreConfig::default()
        };
        let store = TimeSeriesStore::open_with(&dir, cfg).expect("open");
        let series = SeriesKey::new(3, "");
        let mut total = 0u64;
        let mut sum = 0u64;
        let mut clocks = clocks.into_iter();
        for (i, &(bucket, n)) in batches.iter().enumerate() {
            let b: TupleBatch = (0..n)
                .map(|j| {
                    let v = j % 5 + 1;
                    DataTuple::new(i as u64 * 100 + j, bucket * SEC + j * 1_000_000)
                        .with("v", v)
                })
                .collect();
            total += n;
            sum += (0..n).map(|j| j % 5 + 1).sum::<u64>();
            store.append(&series, &b).expect("append");
            if let Some(t) = clocks.next() {
                store.compact(t * SEC).expect("compact");
            }
        }
        let count = store
            .history(&HistoryQuery::new(series.clone(), "v", 0, u64::MAX, HistoryAgg::Count))
            .expect("count");
        prop_assert_eq!(count.count, total);
        let summed = store
            .history(&HistoryQuery::new(series, "v", 0, u64::MAX, HistoryAgg::Sum))
            .expect("sum");
        match summed.value {
            AggValue::Value(v) => prop_assert_eq!(v, sum as f64),
            AggValue::Empty => prop_assert_eq!(total, 0),
            other => prop_assert!(false, "sum answered {:?}", other),
        }
    }
}

/// SplitMix64: a tiny deterministic generator for chaos schedules.
/// The whole schedule derives from one printed seed, so any failure
/// reproduces with `NETALYTICS_CHAOS_SEED=<seed> cargo test ...`.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// The schedule seed: `NETALYTICS_CHAOS_SEED` when set (replay), a
/// time-derived value otherwise (exploration). Always printed, so a
/// red CI run carries its own reproduction instructions.
fn chaos_seed() -> u64 {
    let seed = std::env::var("NETALYTICS_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0x5EED)
        });
    eprintln!("NETALYTICS_CHAOS_SEED={seed} (set this env var to replay the schedule)");
    seed
}

/// Seeded companion to the proptest above: a wider schedule than the
/// 24 shrunk cases — random batch sizes into random buckets, and
/// compaction at random (sometimes regressing) clocks — drawn from one
/// printed seed. Count and sum over the full range stay exact through
/// every tier migration, whatever the draw.
#[test]
fn seeded_compaction_schedule_preserves_counts_and_sums() {
    let seed = chaos_seed();
    let mut rng = SplitMix64(seed);
    let dir = scratch_dir("seeded");
    let cfg = StoreConfig {
        segment_max_bytes: 512,
        retention_ns: Some(2 * SEC),
        rollup_retention_ns: Some(8 * SEC),
        sketch_bucket_ns: 4 * SEC,
        ..StoreConfig::default()
    };
    let store = TimeSeriesStore::open_with(&dir, cfg).expect("open");
    let series = SeriesKey::new(5, "");
    let mut total = 0u64;
    let mut sum = 0u64;
    let ops = 8 + rng.below(24);
    for i in 0..ops {
        let bucket = rng.below(30);
        let n = 1 + rng.below(32);
        let b: TupleBatch = (0..n)
            .map(|j| {
                let v = j % 7 + 1;
                DataTuple::new(i * 1_000 + j, bucket * SEC + j * 1_000_000).with("v", v)
            })
            .collect();
        total += n;
        sum += (0..n).map(|j| j % 7 + 1).sum::<u64>();
        store.append(&series, &b).expect("append");
        if rng.below(2) == 1 {
            store.compact(rng.below(50) * SEC).expect("compact");
        }
    }
    assert_eq!(
        count_of(&store, &series),
        total,
        "seed {seed}: count invariant across tiers"
    );
    let summed = store
        .history(&HistoryQuery::new(
            series,
            "v",
            0,
            u64::MAX,
            HistoryAgg::Sum,
        ))
        .expect("sum");
    match summed.value {
        AggValue::Value(v) => assert_eq!(v, sum as f64, "seed {seed}: sum invariant"),
        AggValue::Empty => assert_eq!(total, 0, "seed {seed}: empty only when nothing landed"),
        other => panic!("seed {seed}: sum answered {other:?}"),
    }
}
