//! Reload-time fault coverage for the replicated [`ShardedStore`]:
//! missing replica directories, torn segment tails and unreadable
//! segments must quarantine only what is actually damaged, while the
//! surviving replicas and the other shards keep serving.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use netalytics_data::{DataTuple, TupleBatch};
use netalytics_store::{
    ResultBackend, SeriesKey, ShardedConfig, ShardedStore, StoreConfig, StoreError,
};

fn scratch_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "netalytics-sharded-{}-{}-{}",
        tag,
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn batch(ts0: u64, n: u64) -> TupleBatch {
    TupleBatch::from_tuples(
        (0..n)
            .map(|i| DataTuple::new(i, ts0 + i * 100).with("v", ts0 + i))
            .collect(),
    )
}

fn config() -> ShardedConfig {
    ShardedConfig {
        shards: 3,
        replication: 2,
        store: StoreConfig::default(),
    }
}

/// A series routed to `shard` by trying group names until one hashes
/// there — routing is content-addressed, so tests steer it this way.
fn series_on(store: &ShardedStore, query: u64, shard: usize) -> SeriesKey {
    (0..)
        .map(|i| SeriesKey::new(query, format!("g{i}")))
        .find(|s| store.shard_of(s) == shard)
        .expect("some group hashes onto every shard")
}

fn replica_dir(root: &Path, shard: usize, replica: usize) -> PathBuf {
    root.join(format!("shard-{shard:02}"))
        .join(format!("replica-{replica}"))
}

fn first_segment(dir: &Path) -> PathBuf {
    let mut segs: Vec<PathBuf> = fs::read_dir(dir)
        .expect("replica dir listable")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("seg-") && n.ends_with(".log"))
        })
        .collect();
    segs.sort();
    segs.into_iter().next().expect("at least one segment")
}

#[test]
fn missing_replica_dir_is_quarantined_and_follower_serves() {
    let dir = scratch_dir("missing-replica");
    let series;
    let shard;
    {
        let store = ShardedStore::open(&dir, config()).expect("open fresh");
        shard = 1;
        series = series_on(&store, 42, shard);
        store.append(&series, &batch(0, 12)).expect("append");
    }
    // Lose the primary's directory wholesale — a dead store node that
    // never came back. The manifest remembers it should exist.
    fs::remove_dir_all(replica_dir(&dir, shard, 0)).expect("remove replica dir");

    let store = ShardedStore::open(&dir, config()).expect("reopen");
    let quarantined = store.quarantined();
    assert_eq!(quarantined.len(), 1, "exactly the missing replica");
    assert_eq!((quarantined[0].0, quarantined[0].1), (shard, 0));
    assert!(
        quarantined[0].2.contains("missing"),
        "reason names the damage: {}",
        quarantined[0].2
    );
    // The shard is degraded, not gone: the follower leads with the
    // full committed prefix, and new writes still commit.
    assert!(!store.shard_is_quarantined(shard));
    assert_eq!(store.leader_of(shard), Some(1));
    assert_eq!(store.range(&series, 0, u64::MAX).expect("read").len(), 12);
    store.append(&series, &batch(10_000, 3)).expect("append");
    assert_eq!(store.query_history(42).expect("history").len(), 15);
    assert_eq!(store.sharded_stats().quarantined, 1);
}

#[test]
fn fully_quarantined_shard_errors_while_other_shards_serve() {
    let dir = scratch_dir("dead-shard");
    let dead = 0;
    let (victim, survivor);
    {
        let store = ShardedStore::open(&dir, config()).expect("open fresh");
        victim = series_on(&store, 7, dead);
        survivor = series_on(&store, 7, 2);
        store.append(&victim, &batch(0, 5)).expect("append");
        store.append(&survivor, &batch(0, 8)).expect("append");
    }
    // Both replicas of shard 0 vanish: nothing left to fail over to.
    for r in 0..2 {
        fs::remove_dir_all(replica_dir(&dir, dead, r)).expect("remove replica dir");
    }

    let store = ShardedStore::open(&dir, config()).expect("reopen");
    assert!(store.shard_is_quarantined(dead));
    assert_eq!(store.leader_of(dead), None);
    assert!(matches!(
        store.range(&victim, 0, u64::MAX),
        Err(StoreError::ShardUnavailable { shard }) if shard == dead
    ));
    assert!(matches!(
        store.append(&victim, &batch(1_000, 1)),
        Err(StoreError::ShardUnavailable { shard }) if shard == dead
    ));
    // "Serve the rest": the healthy shards answer reads and writes,
    // and the cross-shard history fan-out skips the dead shard rather
    // than failing the whole query.
    assert_eq!(store.range(&survivor, 0, u64::MAX).expect("read").len(), 8);
    store.append(&survivor, &batch(2_000, 2)).expect("append");
    assert_eq!(store.query_history(7).expect("history").len(), 10);
    assert_eq!(store.sharded_stats().quarantined, 2);
}

#[test]
fn torn_segment_tail_is_truncated_not_quarantined() {
    let dir = scratch_dir("torn-tail");
    let shard = 2;
    let series;
    {
        let store = ShardedStore::open(&dir, config()).expect("open fresh");
        series = series_on(&store, 9, shard);
        store.append(&series, &batch(0, 20)).expect("append");
    }
    // Tear the primary's segment mid-frame — the classic crash during
    // a write. A torn tail is expected damage: open repairs it by
    // truncating to the last whole frame instead of quarantining.
    let seg = first_segment(&replica_dir(&dir, shard, 0));
    let bytes = fs::read(&seg).expect("read segment");
    assert!(bytes.len() > 8, "segment holds at least one frame");
    fs::write(&seg, &bytes[..bytes.len() - 7]).expect("tear tail");

    let store = ShardedStore::open(&dir, config()).expect("reopen");
    assert!(store.quarantined().is_empty(), "torn tail is repairable");
    assert_eq!(store.leader_of(shard), Some(0));
    assert!(
        store.sharded_stats().store.truncated_on_open > 0,
        "the repair is visible in stats"
    );
    // The repaired replica may have lost the torn frame, but the shard
    // still serves and new appends land on both replicas.
    store.append(&series, &batch(50_000, 4)).expect("append");
    assert!(store.query_history(9).expect("history").len() >= 4);
}

#[test]
fn unreadable_segment_quarantines_that_replica_only() {
    let dir = scratch_dir("unreadable-seg");
    let shard = 1;
    let series;
    {
        let store = ShardedStore::open(&dir, config()).expect("open fresh");
        series = series_on(&store, 13, shard);
        store.append(&series, &batch(0, 6)).expect("append");
    }
    // Replace a segment file with a directory of the same name: reads
    // of it fail with a real I/O error, which is *not* a torn tail and
    // must quarantine the replica instead of guessing at repair.
    let seg = first_segment(&replica_dir(&dir, shard, 0));
    fs::remove_file(&seg).expect("remove segment");
    fs::create_dir(&seg).expect("shadow segment with a directory");

    let store = ShardedStore::open(&dir, config()).expect("reopen");
    let quarantined = store.quarantined();
    assert_eq!(quarantined.len(), 1);
    assert_eq!((quarantined[0].0, quarantined[0].1), (shard, 0));
    assert!(
        quarantined[0].2.contains("failed"),
        "reason carries the open error: {}",
        quarantined[0].2
    );
    assert_eq!(store.leader_of(shard), Some(1));
    assert_eq!(store.range(&series, 0, u64::MAX).expect("read").len(), 6);
}

#[test]
fn manifest_pins_layout_so_routing_survives_a_misconfigured_reopen() {
    let dir = scratch_dir("manifest-pin");
    let series;
    {
        let store = ShardedStore::open(&dir, config()).expect("open fresh");
        series = series_on(&store, 21, 2);
        store.append(&series, &batch(0, 9)).expect("append");
    }
    // Reopening with a different shard count must not re-route series
    // away from their data: the manifest wins over the passed config.
    let store = ShardedStore::open(
        &dir,
        ShardedConfig {
            shards: 8,
            replication: 1,
            store: StoreConfig::default(),
        },
    )
    .expect("reopen");
    assert_eq!(store.num_shards(), 3);
    assert_eq!(store.config().replication, 2);
    assert_eq!(store.shard_of(&series), 2);
    assert_eq!(store.range(&series, 0, u64::MAX).expect("read").len(), 9);
}
