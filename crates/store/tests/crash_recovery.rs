//! Crash-recovery property: a store whose log is cut at an *arbitrary*
//! byte — a torn write, a crashed host, a half-synced disk — must reopen
//! to the longest clean prefix of whole frames. No panic, no partial
//! frame surfacing as data, and the store must keep accepting appends.

use std::fs::OpenOptions;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use netalytics_data::{DataTuple, TupleBatch};
use netalytics_store::{SeriesKey, TimeSeriesStore};
use proptest::prelude::*;

/// Fresh scratch directory per case (no tempfile crate in-tree).
fn scratch_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("netalytics-crash-{tag}-{}-{n}", std::process::id()))
}

fn batch(batch_idx: u64, tuples: u64) -> TupleBatch {
    (0..tuples)
        .map(|i| {
            let id = batch_idx * 1_000 + i;
            DataTuple::new(id, id * 10)
                .from_source("agg")
                .with("t_ns", id * 7)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn reopen_after_arbitrary_truncation_recovers_a_clean_prefix(
        batch_sizes in proptest::collection::vec(1..5u64, 1..12),
        cut_frac in 0.0..1.0f64,
    ) {
        let dir = scratch_dir("prefix");
        let series = SeriesKey::new(1, "g");

        // Write N batches, recording the log length after each append so
        // we know the exact frame boundaries.
        let mut boundaries = Vec::new();
        {
            let store = TimeSeriesStore::open(&dir).expect("open fresh");
            for (i, &n) in batch_sizes.iter().enumerate() {
                store.append(&series, &batch(i as u64, n)).expect("append");
                boundaries.push(store.stats().log_bytes);
            }
        }

        // Simulate the crash: cut the (single) segment file at an
        // arbitrary byte.
        let seg = dir.join("seg-00000000.log");
        let len = std::fs::metadata(&seg).expect("segment exists").len();
        let cut = (cut_frac * len as f64) as u64;
        OpenOptions::new()
            .write(true)
            .open(&seg)
            .and_then(|f| f.set_len(cut))
            .expect("truncate");

        // Every frame wholly below the cut survives; everything after the
        // first torn frame is discarded.
        let whole_frames = boundaries.iter().filter(|&&b| b <= cut).count();
        let expected: Vec<u64> = (0..whole_frames)
            .flat_map(|i| (0..batch_sizes[i]).map(move |j| i as u64 * 1_000 + j))
            .collect();

        let store = TimeSeriesStore::open(&dir).expect("reopen after crash");
        let got: Vec<u64> = store
            .query_history(1)
            .expect("history")
            .iter()
            .map(|t| t.id)
            .collect();
        prop_assert_eq!(&got, &expected, "recovered tuples must be the clean prefix");
        prop_assert_eq!(store.stats().frames, whole_frames as u64);
        if cut < len && boundaries.binary_search(&cut).is_err() {
            prop_assert!(
                store.stats().truncated_on_open >= 1,
                "a mid-frame cut must be counted as a truncation"
            );
        }

        // The recovered store must still be writable and readable.
        store.append(&series, &batch(900, 2)).expect("append after recovery");
        let after: Vec<u64> = store
            .query_history(1)
            .expect("history after append")
            .iter()
            .map(|t| t.id)
            .collect();
        let mut want = expected.clone();
        want.extend([900_000, 900_001]);
        prop_assert_eq!(after, want);

        std::fs::remove_dir_all(&dir).ok();
    }
}
