//! Storm-style stream processing for the NetAlytics reproduction.
//!
//! The paper analyzes monitor output with Apache Storm (§2.2, §3.2): a
//! topology is a DAG of "spouts" (sources) and "bolts" (processors), with
//! stream groupings deciding which parallel instance of a bolt sees which
//! tuple. This crate implements that model:
//!
//! * [`Bolt`]/[`Grouping`]/[`Topology`] — the DAG abstraction.
//! * [`bolts`] — the Table 2 building blocks (`top-k`, `sum`, `avg`,
//!   `max`/`min`, `diff`, `group`) plus histogram/CDF collectors.
//! * [`topologies`] — the named catalog the query language's `PROCESS`
//!   clause refers to, including the paper's Fig. 4 top-k topology
//!   (Parsing → Counting → local Rank → global Rank).
//! * [`Executor`] — the unified batch-first engine interface; construct
//!   one with [`build_executor`] and an [`ExecutorMode`].
//! * [`InlineExecutor`] — deterministic, for the discrete-event plane.
//! * [`ThreadedExecutor`] — one thread per bolt instance with bounded
//!   channels and a [`BackpressurePolicy`], fed by a [`Spout`] (e.g.
//!   [`QueueSpout`] polling the Kafka-style queue) or driven by
//!   [`Executor::offer`], for the Fig. 6 scaling experiments.
//! * [`ShardedExecutor`] — one thread per shard owning
//!   partition-disjoint bolt instances, exchanging tuple slabs over
//!   lock-free SPSC rings; the columnar hot path's engine.
//!
//! # Examples
//!
//! ```
//! use netalytics_data::{DataTuple, Value};
//! use netalytics_stream::{topologies, InlineExecutor};
//! use netalytics_stream::topologies::ProcessorSpec;
//!
//! let topo = topologies::build(
//!     &ProcessorSpec::new("top-k").with_arg("k", "1").with_arg("key", "url"),
//! )?;
//! let mut exec = InlineExecutor::new(&topo);
//! for (i, url) in ["/a", "/b", "/a"].iter().enumerate() {
//!     exec.push(DataTuple::new(i as u64, 0).with("url", *url));
//! }
//! exec.finish(1);
//! let out = exec.take_output();
//! assert_eq!(out[0].get("key").and_then(Value::as_str), Some("/a"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod bolt;
pub mod bolts;
pub mod executor;
pub mod inline;
pub mod sharded;
pub mod spout;
pub mod threaded;
pub mod topologies;
pub mod topology;

pub use bolt::{Bolt, BoltFactory, Grouping};
pub use bolts::{Subscription, SubscriptionHub, SubscriptionSink};
pub use executor::{
    build_executor, build_executor_traced, build_executor_with, BackpressurePolicy, Executor,
    ExecutorMode,
};
pub use inline::InlineExecutor;
pub use sharded::{ShardedConfig, ShardedExecutor};
pub use spout::{QueueSpout, Spout, VecSpout};
pub use threaded::{ThreadedConfig, ThreadedExecutor};
pub use topologies::{CatalogError, ProcessorSpec, CATALOG};
pub use topology::{BoltId, SourceRef, Topology, TopologyBuilder, TopologyError};
