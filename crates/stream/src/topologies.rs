//! The catalog of prebuilt topologies named by the query language's
//! `PROCESS` clause (paper §3.2-3.3).

use std::collections::HashMap;

use netalytics_telemetry::MetricsRegistry;

use crate::bolt::Grouping;
use crate::bolts::{
    AggBolt, AggOp, CdfBolt, DiffBolt, DistinctBolt, HeavyHittersBolt, HistogramBolt, JoinBolt,
    KeyExtractBolt, QuantileBolt, RankBolt, RequestTimeJoinBolt, RollingCountBolt, SketchCounters,
};
use crate::topology::{SourceRef, Topology, TopologyError};

/// A processor requested by a query: name plus `key=value` arguments,
/// e.g. `(top-k: k=10, w=10s)`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProcessorSpec {
    /// Catalog name (`top-k`, `diff-group`, ...).
    pub name: String,
    /// Arguments in query order.
    pub args: Vec<(String, String)>,
}

impl ProcessorSpec {
    /// Creates a spec with no arguments.
    pub fn new(name: impl Into<String>) -> Self {
        ProcessorSpec {
            name: name.into(),
            args: Vec::new(),
        }
    }

    /// Builder: appends an argument.
    pub fn with_arg(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.args.push((key.into(), value.into()));
        self
    }

    /// Looks up an argument value.
    pub fn arg(&self, key: &str) -> Option<&str> {
        self.args
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Error building a topology from a [`ProcessorSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// No topology with this name exists.
    UnknownProcessor(String),
    /// An argument failed to parse.
    BadArgument {
        /// The argument name.
        arg: String,
        /// Why it was rejected.
        reason: String,
    },
    /// The assembled topology was invalid (internal error).
    Topology(TopologyError),
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::UnknownProcessor(n) => write!(
                f,
                "unknown processor {n:?}; valid processors: {}",
                CATALOG.join(", ")
            ),
            CatalogError::BadArgument { arg, reason } => {
                write!(f, "bad argument {arg:?}: {reason}")
            }
            CatalogError::Topology(e) => write!(f, "topology error: {e}"),
        }
    }
}

impl std::error::Error for CatalogError {}

impl From<TopologyError> for CatalogError {
    fn from(e: TopologyError) -> Self {
        CatalogError::Topology(e)
    }
}

/// Names of all catalog processors.
pub const CATALOG: [&str; 14] = [
    "top-k",
    "diff-group",
    "diff-group-avg",
    "group-sum",
    "group-avg",
    "agg",
    "histogram",
    "cdf",
    "url-cdf",
    "url-avg",
    "join",
    "heavy-hitters",
    "distinct",
    "quantile",
];

/// Parses a duration argument like `10s`, `500ms`, `90` (seconds).
fn parse_window(s: &str) -> Result<u64, CatalogError> {
    let bad = |reason: &str| CatalogError::BadArgument {
        arg: "w".into(),
        reason: reason.into(),
    };
    let (num, mult) = if let Some(x) = s.strip_suffix("ms") {
        (x, 1_000_000)
    } else if let Some(x) = s.strip_suffix('s') {
        (x, 1_000_000_000)
    } else {
        (s, 1_000_000_000)
    };
    let n: u64 = num.parse().map_err(|_| bad("not a number"))?;
    if n == 0 {
        return Err(bad("window must be positive"));
    }
    Ok(n * mult)
}

/// The paper's top-k topology (Fig. 4): key-extract ("Parsing Bolt") →
/// rolling count ("Counting Bolt", fields-grouped) → intermediate rank →
/// total rank (global).
///
/// # Errors
///
/// Returns [`CatalogError`] if `k` is zero.
pub fn top_k(k: usize, parallelism: usize) -> Result<Topology, CatalogError> {
    if k == 0 {
        return Err(CatalogError::BadArgument {
            arg: "k".into(),
            reason: "k must be positive".into(),
        });
    }
    let par = parallelism.max(1);
    let mut b = Topology::builder("top-k");
    let parse = b.add_bolt("parsing", par, move || Box::new(KeyExtractBolt::new("key")));
    let count = b.add_bolt("counting", par, move || {
        Box::new(RollingCountBolt::new(10_000_000_000))
    });
    let local = b.add_bolt("rank_local", par, move || Box::new(RankBolt::new(k)));
    let global = b.add_bolt("rank_global", 1, move || Box::new(RankBolt::new(k)));
    b.wire(SourceRef::Spout, parse, Grouping::Shuffle);
    b.wire(
        SourceRef::Bolt(parse),
        count,
        Grouping::Fields(vec!["key".into()]),
    );
    b.wire(
        SourceRef::Bolt(count),
        local,
        Grouping::Fields(vec!["key".into()]),
    );
    b.wire(SourceRef::Bolt(local), global, Grouping::Global);
    Ok(b.build()?)
}

/// Builds a topology from a query [`ProcessorSpec`].
///
/// Supported processors and their arguments:
///
/// * `top-k`: `k` (default 10), `w` (window, default 10s), `key`
///   (input field holding the ranking key, default `url`), `par`.
/// * `diff-group` / `diff-group-avg`: `group` (attribute to group by,
///   default `dst_ip`), `value` (field to diff, default `t_ns`).
/// * `group-sum` / `group-avg`: `group` (use `a+b` for multi-attribute
///   grouping), `value`.
/// * `histogram`: `value` (default `diff_ms`), `bucket` (width, default 10).
/// * `cdf`: `value`, `group`.
/// * `url-cdf` / `url-avg`: per-page response times by joining `http_get`
///   with `tcp_conn_time` (§7.2).
/// * `join`: merge two parser streams on the tuple ID (`left`, `right`) —
///   the paper's future-work operator.
/// * `agg`: one grouped aggregate picked by name — `op` (one of
///   [`AggOp::NAMES`]), `group`, `value`.
/// * `heavy-hitters`: sketch-backed top-k — `k` (default 10), `eps`
///   (per-key error bound as a fraction of traffic, default 0.001),
///   `key` (default `url`), `w`, `par`. `O(1/eps)` memory per bolt.
/// * `distinct`: HyperLogLog distinct count — `field` (default `url`),
///   `p` (precision, default 12), `w`, `par`.
/// * `quantile`: mergeable log-bucketed quantiles — `value` (default
///   `t_ns`), `q` (`+`-separated quantiles, default `0.5+0.95+0.99`),
///   `w`, `par`.
///
/// # Errors
///
/// Returns [`CatalogError`] for unknown names or invalid arguments.
pub fn build(spec: &ProcessorSpec) -> Result<Topology, CatalogError> {
    build_with(spec, None)
}

/// [`build`] with an optional metrics registry: sketch processors
/// register their `sketch.bytes` / `sketch.merges` / error instruments
/// there (the orchestrator passes its root registry).
///
/// # Errors
///
/// Returns [`CatalogError`] for unknown names or invalid arguments.
pub fn build_with(
    spec: &ProcessorSpec,
    metrics: Option<&MetricsRegistry>,
) -> Result<Topology, CatalogError> {
    let args: HashMap<&str, &str> = spec
        .args
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .collect();
    let group = args.get("group").copied().unwrap_or("dst_ip").to_owned();
    let value = args.get("value").copied().unwrap_or("t_ns").to_owned();
    let par: usize = args
        .get("par")
        .map(|s| s.parse())
        .transpose()
        .map_err(|_| CatalogError::BadArgument {
            arg: "par".into(),
            reason: "not a number".into(),
        })?
        .unwrap_or(1);

    match spec.name.as_str() {
        "top-k" => {
            let k: usize = args
                .get("k")
                .map(|s| s.parse())
                .transpose()
                .map_err(|_| CatalogError::BadArgument {
                    arg: "k".into(),
                    reason: "not a number".into(),
                })?
                .unwrap_or(10);
            let window = args.get("w").map(|s| parse_window(s)).transpose()?;
            let key_field = args.get("key").copied().unwrap_or("url").to_owned();
            if k == 0 {
                return Err(CatalogError::BadArgument {
                    arg: "k".into(),
                    reason: "k must be positive".into(),
                });
            }
            let window_ns = window.unwrap_or(10_000_000_000);
            let mut b = Topology::builder("top-k");
            let kf = key_field.clone();
            let parse = b.add_bolt("parsing", par, move || {
                Box::new(KeyExtractBolt::new(kf.clone()))
            });
            let count = b.add_bolt("counting", par, move || {
                Box::new(RollingCountBolt::new(window_ns))
            });
            let local = b.add_bolt("rank_local", par, move || Box::new(RankBolt::new(k)));
            let global = b.add_bolt("rank_global", 1, move || Box::new(RankBolt::new(k)));
            b.wire(SourceRef::Spout, parse, Grouping::Shuffle);
            b.wire(
                SourceRef::Bolt(parse),
                count,
                Grouping::Fields(vec!["key".into()]),
            );
            b.wire(
                SourceRef::Bolt(count),
                local,
                Grouping::Fields(vec!["key".into()]),
            );
            b.wire(SourceRef::Bolt(local), global, Grouping::Global);
            Ok(b.build()?)
        }
        "diff-group" | "diff-group-avg" => {
            let avg = spec.name.ends_with("avg");
            let mut b = Topology::builder(&spec.name);
            let v = value.clone();
            let diff = b.add_bolt("diff", par, move || Box::new(DiffBolt::new(v.clone())));
            b.wire(SourceRef::Spout, diff, Grouping::ById);
            if avg {
                let g = group.clone();
                let agg = b.add_bolt("group_avg", 1, move || {
                    Box::new(AggBolt::new(AggOp::Avg, "diff_ms", vec![g.clone()]))
                });
                b.wire(SourceRef::Bolt(diff), agg, Grouping::Global);
            }
            Ok(b.build()?)
        }
        "group-sum" | "group-avg" => {
            let op = if spec.name == "group-sum" {
                AggOp::Sum
            } else {
                AggOp::Avg
            };
            let mut b = Topology::builder(&spec.name);
            // `group=src_ip+dst_ip` groups by several attributes at once.
            let groups: Vec<String> = group.split('+').map(str::to_owned).collect();
            let v = value.clone();
            let agg = b.add_bolt("agg", 1, move || {
                Box::new(AggBolt::new(op, v.clone(), groups.clone()))
            });
            b.wire(SourceRef::Spout, agg, Grouping::Global);
            Ok(b.build()?)
        }
        "url-cdf" | "url-avg" => {
            // §7.2: join http_get URLs with tcp_conn_time durations, then
            // summarize per page.
            let mut b = Topology::builder(&spec.name);
            let join = b.add_bolt("url_join", 1, || Box::new(RequestTimeJoinBolt::new()));
            b.wire(SourceRef::Spout, join, Grouping::Global);
            if spec.name == "url-cdf" {
                let cdf = b.add_bolt("cdf", 1, || {
                    Box::new(CdfBolt::new("diff_ms").grouped_by("url"))
                });
                b.wire(SourceRef::Bolt(join), cdf, Grouping::Global);
            } else {
                let agg = b.add_bolt("group_avg", 1, || {
                    Box::new(AggBolt::new(AggOp::Avg, "diff_ms", vec!["url".into()]))
                });
                b.wire(SourceRef::Bolt(join), agg, Grouping::Global);
            }
            Ok(b.build()?)
        }
        "histogram" => {
            let bucket: f64 = args
                .get("bucket")
                .map(|s| s.parse())
                .transpose()
                .map_err(|_| CatalogError::BadArgument {
                    arg: "bucket".into(),
                    reason: "not a number".into(),
                })?
                .unwrap_or(10.0);
            if bucket <= 0.0 {
                return Err(CatalogError::BadArgument {
                    arg: "bucket".into(),
                    reason: "must be positive".into(),
                });
            }
            let value = args.get("value").copied().unwrap_or("diff_ms").to_owned();
            let mut b = Topology::builder("histogram");
            let h = b.add_bolt("histogram", 1, move || {
                Box::new(HistogramBolt::new(value.clone(), bucket))
            });
            b.wire(SourceRef::Spout, h, Grouping::Global);
            Ok(b.build()?)
        }
        "cdf" => {
            let value = args.get("value").copied().unwrap_or("diff_ms").to_owned();
            let group_arg = args.get("group").map(|s| s.to_string());
            let mut b = Topology::builder("cdf");
            let h = b.add_bolt("cdf", 1, move || {
                let bolt = CdfBolt::new(value.clone());
                Box::new(match &group_arg {
                    Some(g) => bolt.grouped_by(g.clone()),
                    None => bolt,
                })
            });
            b.wire(SourceRef::Spout, h, Grouping::Global);
            Ok(b.build()?)
        }
        "join" => {
            // The paper's future-work operator: merge two parser streams
            // on the tuple ID, e.g. (join: left=http_get,
            // right=tcp_conn_time). Downstream analysis can be appended
            // as a second PROCESS entry over the merged stream.
            let left = args.get("left").copied().unwrap_or("http_get").to_owned();
            let right = args
                .get("right")
                .copied()
                .unwrap_or("tcp_conn_time")
                .to_owned();
            if left == right {
                return Err(CatalogError::BadArgument {
                    arg: "right".into(),
                    reason: "join sides must differ".into(),
                });
            }
            let mut b = Topology::builder("join");
            let (l, r) = (left.clone(), right.clone());
            let j = b.add_bolt("join", par, move || {
                Box::new(JoinBolt::new(l.clone(), r.clone()))
            });
            b.wire(SourceRef::Spout, j, Grouping::ById);
            Ok(b.build()?)
        }
        "agg" => {
            let op = AggOp::parse(args.get("op").copied().unwrap_or("avg")).map_err(|e| {
                CatalogError::BadArgument {
                    arg: "op".into(),
                    reason: e.to_string(),
                }
            })?;
            let mut b = Topology::builder("agg");
            let groups: Vec<String> = group.split('+').map(str::to_owned).collect();
            let v = value.clone();
            let agg = b.add_bolt("agg", 1, move || {
                Box::new(AggBolt::new(op, v.clone(), groups.clone()))
            });
            b.wire(SourceRef::Spout, agg, Grouping::Global);
            Ok(b.build()?)
        }
        "heavy-hitters" => {
            let k = parse_num::<usize>(&args, "k", 10)?;
            if k == 0 {
                return Err(CatalogError::BadArgument {
                    arg: "k".into(),
                    reason: "k must be positive".into(),
                });
            }
            let eps = parse_num::<f64>(&args, "eps", 0.001)?;
            if !(eps > 0.0 && eps <= 1.0) {
                return Err(CatalogError::BadArgument {
                    arg: "eps".into(),
                    reason: "eps must be in (0, 1]".into(),
                });
            }
            let window_ns = args
                .get("w")
                .map(|s| parse_window(s))
                .transpose()?
                .unwrap_or(10_000_000_000);
            let key_field = args.get("key").copied().unwrap_or("url").to_owned();
            let counters = metrics.map(|m| SketchCounters::register(m, "heavy-hitters"));
            let mut b = Topology::builder("heavy-hitters");
            let (kf, c) = (key_field.clone(), counters.clone());
            let local = b.add_bolt("hh_local", par, move || {
                let bolt = HeavyHittersBolt::local(k, eps, kf.clone(), window_ns);
                Box::new(match &c {
                    Some(c) => bolt.with_counters(c.clone()),
                    None => bolt,
                })
            });
            let (kf, c) = (key_field.clone(), counters);
            let global = b.add_bolt("hh_global", 1, move || {
                let bolt = HeavyHittersBolt::global(k, eps, kf.clone(), window_ns);
                Box::new(match &c {
                    Some(c) => bolt.with_counters(c.clone()),
                    None => bolt,
                })
            });
            // Fields-grouped like the Parsing→Counting edge (§5.3): each
            // key is folded whole by one local instance, so local counts
            // are exact and the global merge never splits a key.
            b.wire(SourceRef::Spout, local, Grouping::Fields(vec![key_field]));
            b.wire(SourceRef::Bolt(local), global, Grouping::Global);
            Ok(b.build()?)
        }
        "distinct" => {
            let field = args.get("field").copied().unwrap_or("url").to_owned();
            let p = parse_num::<u8>(&args, "p", netalytics_sketch::DEFAULT_PRECISION)?;
            if !(4..=16).contains(&p) {
                return Err(CatalogError::BadArgument {
                    arg: "p".into(),
                    reason: "precision must be in 4..=16".into(),
                });
            }
            let window_ns = args
                .get("w")
                .map(|s| parse_window(s))
                .transpose()?
                .unwrap_or(10_000_000_000);
            let counters = metrics.map(|m| SketchCounters::register(m, "distinct"));
            let mut b = Topology::builder("distinct");
            let (f, c) = (field.clone(), counters.clone());
            let local = b.add_bolt("distinct_local", par, move || {
                let bolt = DistinctBolt::local(f.clone(), p, window_ns);
                Box::new(match &c {
                    Some(c) => bolt.with_counters(c.clone()),
                    None => bolt,
                })
            });
            let (f, c) = (field, counters);
            let global = b.add_bolt("distinct_global", 1, move || {
                let bolt = DistinctBolt::global(f.clone(), p, window_ns);
                Box::new(match &c {
                    Some(c) => bolt.with_counters(c.clone()),
                    None => bolt,
                })
            });
            // Registerwise-max merging makes shuffle routing safe.
            b.wire(SourceRef::Spout, local, Grouping::Shuffle);
            b.wire(SourceRef::Bolt(local), global, Grouping::Global);
            Ok(b.build()?)
        }
        "quantile" => {
            let qs: Vec<f64> = args
                .get("q")
                .copied()
                .unwrap_or("0.5+0.95+0.99")
                .split('+')
                .map(|s| {
                    s.parse::<f64>()
                        .ok()
                        .filter(|q| (0.0..=1.0).contains(q))
                        .ok_or_else(|| CatalogError::BadArgument {
                            arg: "q".into(),
                            reason: format!("{s:?} is not a quantile in 0..=1"),
                        })
                })
                .collect::<Result<_, _>>()?;
            let window_ns = args
                .get("w")
                .map(|s| parse_window(s))
                .transpose()?
                .unwrap_or(10_000_000_000);
            let counters = metrics.map(|m| SketchCounters::register(m, "quantile"));
            let mut b = Topology::builder("quantile");
            let (v, q, c) = (value.clone(), qs.clone(), counters.clone());
            let local = b.add_bolt("quantile_local", par, move || {
                let bolt = QuantileBolt::local(v.clone(), q.clone(), window_ns);
                Box::new(match &c {
                    Some(c) => bolt.with_counters(c.clone()),
                    None => bolt,
                })
            });
            let (v, q, c) = (value, qs, counters);
            let global = b.add_bolt("quantile_global", 1, move || {
                let bolt = QuantileBolt::global(v.clone(), q.clone(), window_ns);
                Box::new(match &c {
                    Some(c) => bolt.with_counters(c.clone()),
                    None => bolt,
                })
            });
            b.wire(SourceRef::Spout, local, Grouping::Shuffle);
            b.wire(SourceRef::Bolt(local), global, Grouping::Global);
            Ok(b.build()?)
        }
        other => Err(CatalogError::UnknownProcessor(other.to_owned())),
    }
}

/// Parses a numeric argument with a default, mapping parse failures to
/// a [`CatalogError::BadArgument`] naming the argument.
fn parse_num<T: std::str::FromStr>(
    args: &HashMap<&str, &str>,
    name: &str,
    default: T,
) -> Result<T, CatalogError> {
    args.get(name)
        .map(|s| s.parse())
        .transpose()
        .map_err(|_| CatalogError::BadArgument {
            arg: name.into(),
            reason: "not a number".into(),
        })
        .map(|v| v.unwrap_or(default))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inline::InlineExecutor;
    use netalytics_data::{DataTuple, Value};

    #[test]
    fn catalog_names_all_build() {
        for name in CATALOG {
            let spec = ProcessorSpec::new(name);
            assert!(build(&spec).is_ok(), "{name} failed to build");
        }
    }

    #[test]
    fn unknown_processor_rejected() {
        assert!(matches!(
            build(&ProcessorSpec::new("tumble-window")),
            Err(CatalogError::UnknownProcessor(_))
        ));
    }

    #[test]
    fn bad_args_rejected() {
        assert!(build(&ProcessorSpec::new("top-k").with_arg("k", "zero")).is_err());
        assert!(build(&ProcessorSpec::new("top-k").with_arg("k", "0")).is_err());
        assert!(build(&ProcessorSpec::new("top-k").with_arg("w", "0s")).is_err());
        assert!(build(&ProcessorSpec::new("histogram").with_arg("bucket", "-5")).is_err());
        assert!(build(&ProcessorSpec::new("top-k").with_arg("par", "x")).is_err());
        assert!(build(&ProcessorSpec::new("heavy-hitters").with_arg("k", "0")).is_err());
        assert!(build(&ProcessorSpec::new("heavy-hitters").with_arg("eps", "2")).is_err());
        assert!(build(&ProcessorSpec::new("distinct").with_arg("p", "30")).is_err());
        assert!(build(&ProcessorSpec::new("quantile").with_arg("q", "0.5+nope")).is_err());
    }

    #[test]
    fn agg_unknown_op_lists_valid_operators() {
        let err = build(&ProcessorSpec::new("agg").with_arg("op", "median")).unwrap_err();
        let CatalogError::BadArgument { arg, reason } = &err else {
            panic!("expected BadArgument, got {err:?}");
        };
        assert_eq!(arg, "op");
        for name in AggOp::NAMES {
            assert!(reason.contains(name), "{reason:?} missing {name}");
        }
    }

    #[test]
    fn unknown_processor_error_lists_catalog() {
        let msg = build(&ProcessorSpec::new("nope")).unwrap_err().to_string();
        assert!(
            msg.contains("heavy-hitters") && msg.contains("top-k"),
            "{msg}"
        );
    }

    #[test]
    fn heavy_hitters_end_to_end_matches_exact_counts() {
        let topo = build(
            &ProcessorSpec::new("heavy-hitters")
                .with_arg("k", "2")
                .with_arg("eps", "0.01")
                .with_arg("par", "3"),
        )
        .unwrap();
        let mut exec = InlineExecutor::new(&topo);
        let mut i = 0;
        for (url, n) in [("/hot", 5), ("/warm", 3), ("/cold", 1)] {
            for _ in 0..n {
                exec.push(DataTuple::new(i, 1_000 + i).with("url", url));
                i += 1;
            }
        }
        exec.finish(20_000_000_000);
        let out = exec.take_output();
        let ranked: Vec<(String, u64)> = out
            .iter()
            .filter(|t| t.source == "rank")
            .filter_map(|t| {
                Some((
                    t.get("key")?.to_string(),
                    t.get("count").and_then(Value::as_u64)?,
                ))
            })
            .collect();
        // Far under capacity: the sketch is exact here.
        assert_eq!(ranked, vec![("/hot".into(), 5), ("/warm".into(), 3)]);
        // A persistable sketch snapshot tuple accompanies the ranking.
        assert!(out.iter().any(|t| t.source == "sketch"));
    }

    #[test]
    fn quantile_end_to_end() {
        let topo = build(
            &ProcessorSpec::new("quantile")
                .with_arg("value", "t_ns")
                .with_arg("q", "0.5"),
        )
        .unwrap();
        let mut exec = InlineExecutor::new(&topo);
        for v in 1..=1000u64 {
            exec.push(DataTuple::new(v, v).with("t_ns", v));
        }
        exec.finish(20_000_000_000);
        let out = exec.take_output();
        let p50 = out
            .iter()
            .find(|t| t.source == "quantile")
            .and_then(|t| t.get("value").and_then(Value::as_u64))
            .unwrap();
        assert!((440..=510).contains(&p50), "p50 = {p50}");
    }

    #[test]
    fn distinct_end_to_end() {
        let topo = build(
            &ProcessorSpec::new("distinct")
                .with_arg("field", "url")
                .with_arg("par", "4"),
        )
        .unwrap();
        let mut exec = InlineExecutor::new(&topo);
        for i in 0..500u64 {
            // Each URL appears twice; true distinct = 500.
            exec.push(DataTuple::new(i, 1).with("url", format!("/p{}", i % 500)));
            exec.push(DataTuple::new(i, 2).with("url", format!("/p{}", i % 500)));
        }
        exec.finish(20_000_000_000);
        let out = exec.take_output();
        let d = out
            .iter()
            .find(|t| t.source == "distinct")
            .and_then(|t| t.get("distinct").and_then(Value::as_u64))
            .unwrap();
        assert!((460..=540).contains(&d), "distinct = {d} for 500 true");
    }

    #[test]
    fn window_parsing() {
        assert_eq!(parse_window("10s").unwrap(), 10_000_000_000);
        assert_eq!(parse_window("500ms").unwrap(), 500_000_000);
        assert_eq!(parse_window("3").unwrap(), 3_000_000_000);
        assert!(parse_window("abc").is_err());
    }

    #[test]
    fn top_k_end_to_end() {
        let topo = build(
            &ProcessorSpec::new("top-k")
                .with_arg("k", "2")
                .with_arg("w", "10s")
                .with_arg("par", "3"),
        )
        .unwrap();
        let mut exec = InlineExecutor::new(&topo);
        // /hot 5x, /warm 3x, /cold 1x across many flows.
        let mut i = 0;
        for (url, n) in [("/hot", 5), ("/warm", 3), ("/cold", 1)] {
            for _ in 0..n {
                exec.push(DataTuple::new(i, 1_000 + i).with("url", url));
                i += 1;
            }
        }
        exec.finish(20_000_000_000);
        let out = exec.take_output();
        let keys: Vec<_> = out
            .iter()
            .filter_map(|t| t.get("key").and_then(Value::as_str))
            .collect();
        assert_eq!(keys, vec!["/hot", "/warm"], "global top-2 in rank order");
        let counts: Vec<_> = out
            .iter()
            .filter_map(|t| t.get("count").and_then(Value::as_u64))
            .collect();
        assert_eq!(counts, vec![5, 3]);
    }

    #[test]
    fn diff_group_avg_end_to_end() {
        let topo = build(
            &ProcessorSpec::new("diff-group-avg")
                .with_arg("group", "dst_ip")
                .with_arg("value", "t_ns"),
        )
        .unwrap();
        let mut exec = InlineExecutor::new(&topo);
        // Two connections to .9 (4ms, 6ms), one to .8 (10ms).
        for (id, dst, t0, t1) in [
            (1u64, "10.0.0.9", 0u64, 4_000_000u64),
            (2, "10.0.0.9", 0, 6_000_000),
            (3, "10.0.0.8", 0, 10_000_000),
        ] {
            exec.push(DataTuple::new(id, t0).with("dst_ip", dst).with("t_ns", t0));
            exec.push(DataTuple::new(id, t1).with("dst_ip", dst).with("t_ns", t1));
        }
        exec.finish(1);
        let out = exec.take_output();
        assert_eq!(out.len(), 2);
        let nine = out
            .iter()
            .find(|t| t.get("dst_ip").and_then(Value::as_str) == Some("10.0.0.9"))
            .unwrap();
        assert_eq!(nine.get("avg").and_then(Value::as_f64), Some(5.0));
    }
}

#[cfg(test)]
mod join_tests {
    use super::*;
    use crate::inline::InlineExecutor;
    use netalytics_data::{DataTuple, Value};

    #[test]
    fn join_processor_merges_parser_streams() {
        let topo = build(
            &ProcessorSpec::new("join")
                .with_arg("left", "http_get")
                .with_arg("right", "tcp_conn_time"),
        )
        .unwrap();
        let mut exec = InlineExecutor::new(&topo);
        exec.push(
            DataTuple::new(9, 1)
                .from_source("http_get")
                .with("url", "/x"),
        );
        exec.push(
            DataTuple::new(9, 2)
                .from_source("tcp_conn_time")
                .with("event", "start"),
        );
        let out = exec.take_output();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get("url").and_then(Value::as_str), Some("/x"));
        assert_eq!(out[0].get("event").and_then(Value::as_str), Some("start"));
    }

    #[test]
    fn join_rejects_identical_sides() {
        assert!(build(
            &ProcessorSpec::new("join")
                .with_arg("left", "x")
                .with_arg("right", "x")
        )
        .is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::inline::InlineExecutor;
    use netalytics_data::{DataTuple, Value};
    use proptest::prelude::*;
    use std::collections::HashMap;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The parallel count→rank reduction is exact: for any key
        /// stream and parallelism, the final global ranking reports the
        /// true per-key totals in the correct order.
        #[test]
        fn top_k_ranking_matches_naive_count(
            keys in proptest::collection::vec(0u8..12, 1..300),
            par in 1usize..5,
            k in 1usize..8,
        ) {
            let topo = build(
                &ProcessorSpec::new("top-k")
                    .with_arg("k", k.to_string())
                    .with_arg("par", par.to_string())
                    .with_arg("w", "3600s")
                    .with_arg("key", "url"),
            )
            .unwrap();
            let mut exec = InlineExecutor::new(&topo);
            let mut truth: HashMap<String, u64> = HashMap::new();
            for (i, key) in keys.iter().enumerate() {
                let url = format!("/k{key}");
                *truth.entry(url.clone()).or_default() += 1;
                exec.push(DataTuple::new(i as u64, 1).with("url", url));
            }
            exec.finish(2);
            let out = exec.take_output();
            let mut ranked: Vec<(String, u64)> = out
                .iter()
                .filter_map(|t| {
                    Some((
                        t.get("key")?.to_string(),
                        t.get("count").and_then(Value::as_u64)?,
                    ))
                })
                .collect();
            // Expected: top-k of the truth, count desc then key asc.
            let mut expect: Vec<(String, u64)> = truth.into_iter().collect();
            expect.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            expect.truncate(k);
            ranked.truncate(k);
            prop_assert_eq!(ranked, expect);
        }

        /// diff-group pairs every id exactly once whatever the arrival
        /// interleaving.
        #[test]
        fn diff_group_is_exact_under_interleaving(
            n in 1usize..60,
            seed in any::<u64>(),
        ) {
            use rand::seq::SliceRandom;
            use rand::SeedableRng;
            let topo = build(&ProcessorSpec::new("diff-group")).unwrap();
            let mut exec = InlineExecutor::new(&topo);
            // Two events per id, shuffled.
            let mut events: Vec<(u64, u64)> = (0..n as u64)
                .flat_map(|id| [(id, 1_000_000 * id), (id, 1_000_000 * id + 2_000_000)])
                .collect();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            events.shuffle(&mut rng);
            for (id, t) in events {
                exec.push(
                    DataTuple::new(id, t)
                        .with("dst_ip", "10.0.0.9")
                        .with("t_ns", t),
                );
            }
            exec.finish(1);
            let out = exec.take_output();
            prop_assert_eq!(out.len(), n, "one diff per id");
            for t in &out {
                prop_assert_eq!(t.get("diff_ms").and_then(Value::as_f64), Some(2.0));
            }
        }
    }
}
