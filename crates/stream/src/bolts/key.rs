//! Key extraction — the paper's "Parsing Bolt" (Fig. 4).
//!
//! "The Parsing Bolts hash the raw string obtained from Kafka to get a
//! signature. Each of these bolts emit the signatures with a respective
//! count of one to a Counting Bolt selected based on the signatures."

use netalytics_data::{DataTuple, Value};

use crate::bolt::Bolt;

/// Lifts a named field into the canonical `key` field (plus a stable
/// signature in the tuple ID) with a count of one.
#[derive(Debug, Clone)]
pub struct KeyExtractBolt {
    from_field: String,
}

impl KeyExtractBolt {
    /// Creates a bolt extracting `from_field` as the ranking key.
    pub fn new(from_field: impl Into<String>) -> Self {
        KeyExtractBolt {
            from_field: from_field.into(),
        }
    }
}

fn signature(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl Bolt for KeyExtractBolt {
    fn execute(&mut self, tuple: &DataTuple, out: &mut Vec<DataTuple>) {
        let Some(v) = tuple.get(&self.from_field) else {
            return;
        };
        let key = match v {
            Value::Str(s) => s.clone(),
            other => other.to_string(),
        };
        out.push(
            DataTuple::new(signature(&key), tuple.ts_ns)
                .from_source("key_extract")
                .with("key", key)
                .with("count", 1u64),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_and_signs() {
        let mut b = KeyExtractBolt::new("url");
        let mut out = Vec::new();
        b.execute(&DataTuple::new(1, 5).with("url", "/a"), &mut out);
        b.execute(&DataTuple::new(2, 6).with("url", "/a"), &mut out);
        b.execute(&DataTuple::new(3, 7).with("url", "/b"), &mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].id, out[1].id, "same key, same signature");
        assert_ne!(out[0].id, out[2].id);
        assert_eq!(out[0].get("count").and_then(Value::as_u64), Some(1));
    }

    #[test]
    fn missing_field_emits_nothing() {
        let mut b = KeyExtractBolt::new("url");
        let mut out = Vec::new();
        b.execute(&DataTuple::new(1, 0).with("other", 1u64), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn numeric_fields_stringify() {
        let mut b = KeyExtractBolt::new("code");
        let mut out = Vec::new();
        b.execute(&DataTuple::new(1, 0).with("code", 404u64), &mut out);
        assert_eq!(out[0].get("key").and_then(Value::as_str), Some("404"));
    }
}
