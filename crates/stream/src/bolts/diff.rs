//! The `diff` block of Table 2: difference of two streams.
//!
//! "diff_group takes two streams (e.g., the start and end times of a TCP
//! flow) and calculates their difference value, and then groups the
//! results by some attribute (e.g., the destination IP)."

use std::collections::HashMap;

use netalytics_data::{DataTuple, Value};

use crate::bolt::Bolt;

/// Pairs tuples sharing an ID and emits the difference of a numeric
/// field, carrying the first tuple's attributes for downstream grouping.
///
/// Typical input: `tcp_conn_time` start/end events; output:
/// per-connection response time in milliseconds.
#[derive(Debug)]
pub struct DiffBolt {
    value_field: String,
    /// id → first observed (value, tuple).
    pending: HashMap<u64, (f64, DataTuple)>,
    /// Cap on outstanding unmatched tuples (stale halves are evicted
    /// oldest-insertion-first once exceeded).
    max_pending: usize,
}

impl DiffBolt {
    /// Creates a diff bolt over `value_field` (commonly `t_ns`).
    pub fn new(value_field: impl Into<String>) -> Self {
        DiffBolt {
            value_field: value_field.into(),
            pending: HashMap::new(),
            max_pending: 1_000_000,
        }
    }

    /// Builder: bounds the unmatched-tuple table.
    pub fn with_max_pending(mut self, max: usize) -> Self {
        self.max_pending = max.max(1);
        self
    }

    /// Outstanding unmatched tuples.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

impl Bolt for DiffBolt {
    fn execute(&mut self, tuple: &DataTuple, out: &mut Vec<DataTuple>) {
        let Some(v) = tuple.get(&self.value_field).and_then(Value::as_f64) else {
            return;
        };
        match self.pending.remove(&tuple.id) {
            Some((first_v, first_t)) => {
                let diff_ns = (v - first_v).abs();
                let mut t = DataTuple::new(tuple.id, tuple.ts_ns).from_source("diff");
                t.push("diff_ms", diff_ns / 1e6);
                // Carry the first tuple's attributes (minus the raw value
                // field) so `group` can use them.
                for (k, val) in &first_t.fields {
                    if k != &self.value_field {
                        t.push(k.clone(), val.clone());
                    }
                }
                out.push(t);
            }
            None => {
                if self.pending.len() >= self.max_pending {
                    // Shed an arbitrary stale entry to stay bounded.
                    if let Some(&k) = self.pending.keys().next() {
                        self.pending.remove(&k);
                    }
                }
                self.pending.insert(tuple.id, (v, tuple.clone()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(id: u64, event: &str, t_ns: u64) -> DataTuple {
        DataTuple::new(id, t_ns)
            .with("event", event)
            .with("t_ns", t_ns)
            .with("dst_ip", "10.0.0.9")
    }

    #[test]
    fn pairs_start_and_end() {
        let mut b = DiffBolt::new("t_ns");
        let mut out = Vec::new();
        b.execute(&ev(7, "start", 1_000_000), &mut out);
        assert!(out.is_empty());
        assert_eq!(b.pending_len(), 1);
        b.execute(&ev(7, "end", 5_000_000), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get("diff_ms").and_then(Value::as_f64), Some(4.0));
        assert_eq!(
            out[0].get("dst_ip").and_then(Value::as_str),
            Some("10.0.0.9"),
            "group attributes carried from the start tuple"
        );
        assert_eq!(b.pending_len(), 0);
    }

    #[test]
    fn out_of_order_pairs_still_match() {
        let mut b = DiffBolt::new("t_ns");
        let mut out = Vec::new();
        b.execute(&ev(9, "end", 3_000_000), &mut out);
        b.execute(&ev(9, "start", 1_000_000), &mut out);
        assert_eq!(out[0].get("diff_ms").and_then(Value::as_f64), Some(2.0));
    }

    #[test]
    fn distinct_ids_do_not_cross_match() {
        let mut b = DiffBolt::new("t_ns");
        let mut out = Vec::new();
        b.execute(&ev(1, "start", 0), &mut out);
        b.execute(&ev(2, "start", 10), &mut out);
        assert!(out.is_empty());
        assert_eq!(b.pending_len(), 2);
    }

    #[test]
    fn pending_is_bounded() {
        let mut b = DiffBolt::new("t_ns").with_max_pending(10);
        let mut out = Vec::new();
        for id in 0..100 {
            b.execute(&ev(id, "start", id), &mut out);
        }
        assert!(b.pending_len() <= 10);
    }

    #[test]
    fn missing_value_ignored() {
        let mut b = DiffBolt::new("t_ns");
        let mut out = Vec::new();
        b.execute(&DataTuple::new(1, 0).with("event", "start"), &mut out);
        assert_eq!(b.pending_len(), 0);
    }
}
