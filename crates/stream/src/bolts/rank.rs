//! Ranking — the paper's intermediate and total "Ranking Bolts" (Fig. 4).
//!
//! "The Ranking Bolts use a parallel reduction to construct rolling local
//! top-k's and then combine them into the rolling global top-k."

use std::collections::HashMap;

use netalytics_data::{DataTuple, Value};

use crate::bolt::Bolt;

/// Maintains the k highest-count keys seen since the last tick and emits
/// one `rank`ed tuple per retained key when ticked.
///
/// Used twice in the top-k topology: per-instance (fields-grouped) as the
/// intermediate ranker, and singleton (global-grouped) as the total
/// ranker — the same parallel-reduction shape as the paper's.
#[derive(Debug)]
pub struct RankBolt {
    k: usize,
    counts: HashMap<String, u64>,
}

impl RankBolt {
    /// Creates a ranker keeping the top `k` keys.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        RankBolt {
            k,
            counts: HashMap::new(),
        }
    }
}

impl Bolt for RankBolt {
    fn execute(&mut self, tuple: &DataTuple, _out: &mut Vec<DataTuple>) {
        let (Some(key), Some(count)) = (
            tuple.get("key").map(ToString::to_string),
            tuple.get("count").and_then(Value::as_u64),
        ) else {
            return;
        };
        // Merging partial counts from upstream rankers: take the max per
        // key (each upstream already aggregated its share; duplicates
        // from re-emission must not double count).
        let e = self.counts.entry(key).or_default();
        *e = (*e).max(count);
    }

    fn tick(&mut self, now_ns: u64, out: &mut Vec<DataTuple>) {
        if self.counts.is_empty() {
            return;
        }
        let mut ranked: Vec<_> = self.counts.drain().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        ranked.truncate(self.k);
        for (rank, (key, count)) in ranked.into_iter().enumerate() {
            out.push(
                DataTuple::new(rank as u64, now_ns)
                    .from_source("rank")
                    .with("rank", rank as u64)
                    .with("key", key)
                    .with("count", count)
                    .with("window_end", now_ns),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counted(key: &str, count: u64) -> DataTuple {
        DataTuple::new(0, 0).with("key", key).with("count", count)
    }

    #[test]
    fn keeps_top_k_sorted() {
        let mut b = RankBolt::new(2);
        let mut out = Vec::new();
        b.execute(&counted("a", 5), &mut out);
        b.execute(&counted("b", 9), &mut out);
        b.execute(&counted("c", 1), &mut out);
        b.tick(100, &mut out);
        let keys: Vec<_> = out
            .iter()
            .filter_map(|t| t.get("key").and_then(Value::as_str))
            .collect();
        assert_eq!(keys, vec!["b", "a"]);
        assert_eq!(out[0].get("rank").and_then(Value::as_u64), Some(0));
        assert_eq!(out[1].get("rank").and_then(Value::as_u64), Some(1));
    }

    #[test]
    fn duplicate_partial_counts_take_max_not_sum() {
        let mut b = RankBolt::new(5);
        let mut out = Vec::new();
        b.execute(&counted("a", 5), &mut out);
        b.execute(&counted("a", 7), &mut out);
        b.tick(1, &mut out);
        assert_eq!(out[0].get("count").and_then(Value::as_u64), Some(7));
    }

    #[test]
    fn window_resets_after_tick() {
        let mut b = RankBolt::new(3);
        let mut out = Vec::new();
        b.execute(&counted("a", 5), &mut out);
        b.tick(1, &mut out);
        out.clear();
        b.tick(2, &mut out);
        assert!(out.is_empty(), "state drained by first tick");
    }

    #[test]
    fn ties_break_lexicographically() {
        let mut b = RankBolt::new(2);
        let mut out = Vec::new();
        b.execute(&counted("z", 5), &mut out);
        b.execute(&counted("a", 5), &mut out);
        b.tick(1, &mut out);
        assert_eq!(out[0].get("key").and_then(Value::as_str), Some("a"));
    }

    #[test]
    fn ignores_malformed() {
        let mut b = RankBolt::new(2);
        let mut out = Vec::new();
        b.execute(&DataTuple::new(0, 0).with("key", "a"), &mut out);
        b.execute(&DataTuple::new(0, 0).with("count", 5u64), &mut out);
        b.tick(1, &mut out);
        assert!(out.is_empty());
    }
}
