//! Joining two parser streams on the tuple ID — the paper's flagship
//! cross-layer query (§7.2): "NetAlytics can start both parsers which
//! independently send the requested URL and the connection time to the
//! processors, which will group the results based on the page requested,
//! combining both network and application-level data."

use std::collections::HashMap;

use netalytics_data::{DataTuple, Value};

use crate::bolt::Bolt;

/// Joins `http_get` request tuples with `tcp_conn_time` start/end events
/// sharing the same connection ID, emitting one tuple per connection with
/// the requested `url` and the connection's `diff_ms`.
#[derive(Debug, Default)]
pub struct RequestTimeJoinBolt {
    /// conn id → requested URL.
    urls: HashMap<u64, String>,
    /// conn id → first seen conn-time event timestamp.
    pending_time: HashMap<u64, u64>,
    /// Completed (diff_ms) waiting for a URL, by conn id.
    pending_diff: HashMap<u64, f64>,
}

impl RequestTimeJoinBolt {
    /// Creates the join bolt.
    pub fn new() -> Self {
        Self::default()
    }

    fn try_emit(&mut self, id: u64, ts_ns: u64, out: &mut Vec<DataTuple>) {
        if let (Some(url), Some(diff)) = (self.urls.get(&id), self.pending_diff.get(&id)) {
            out.push(
                DataTuple::new(id, ts_ns)
                    .from_source("url_rt")
                    .with("url", url.clone())
                    .with("diff_ms", *diff),
            );
            self.urls.remove(&id);
            self.pending_diff.remove(&id);
        }
    }
}

impl Bolt for RequestTimeJoinBolt {
    fn execute(&mut self, tuple: &DataTuple, out: &mut Vec<DataTuple>) {
        match tuple.source.as_str() {
            "http_get" if tuple.get("kind").and_then(Value::as_str) == Some("request") => {
                if let Some(url) = tuple.get("url").and_then(Value::as_str) {
                    self.urls.insert(tuple.id, url.to_owned());
                    self.try_emit(tuple.id, tuple.ts_ns, out);
                }
            }
            "tcp_conn_time" => {
                let Some(t) = tuple.get("t_ns").and_then(Value::as_u64) else {
                    return;
                };
                match self.pending_time.remove(&tuple.id) {
                    Some(first) => {
                        let diff_ms = (t.abs_diff(first)) as f64 / 1e6;
                        self.pending_diff.insert(tuple.id, diff_ms);
                        self.try_emit(tuple.id, tuple.ts_ns, out);
                    }
                    None => {
                        self.pending_time.insert(tuple.id, t);
                    }
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conn_event(id: u64, event: &str, t: u64) -> DataTuple {
        DataTuple::new(id, t)
            .from_source("tcp_conn_time")
            .with("event", event)
            .with("t_ns", t)
    }

    fn url_req(id: u64, url: &str) -> DataTuple {
        DataTuple::new(id, 0)
            .from_source("http_get")
            .with("kind", "request")
            .with("url", url)
    }

    #[test]
    fn joins_url_with_connection_time() {
        let mut b = RequestTimeJoinBolt::new();
        let mut out = Vec::new();
        b.execute(&conn_event(5, "start", 1_000_000), &mut out);
        b.execute(&url_req(5, "/films"), &mut out);
        b.execute(&conn_event(5, "end", 9_000_000), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get("url").and_then(Value::as_str), Some("/films"));
        assert_eq!(out[0].get("diff_ms").and_then(Value::as_f64), Some(8.0));
    }

    #[test]
    fn any_arrival_order_works() {
        let mut b = RequestTimeJoinBolt::new();
        let mut out = Vec::new();
        b.execute(&conn_event(5, "start", 0), &mut out);
        b.execute(&conn_event(5, "end", 2_000_000), &mut out);
        b.execute(&url_req(5, "/late"), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get("diff_ms").and_then(Value::as_f64), Some(2.0));
    }

    #[test]
    fn responses_do_not_count_as_urls() {
        let mut b = RequestTimeJoinBolt::new();
        let mut out = Vec::new();
        b.execute(
            &DataTuple::new(5, 0)
                .from_source("http_get")
                .with("kind", "response")
                .with("status", 200u64),
            &mut out,
        );
        b.execute(&conn_event(5, "start", 0), &mut out);
        b.execute(&conn_event(5, "end", 1_000_000), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn distinct_connections_stay_separate() {
        let mut b = RequestTimeJoinBolt::new();
        let mut out = Vec::new();
        b.execute(&url_req(1, "/a"), &mut out);
        b.execute(&url_req(2, "/b"), &mut out);
        b.execute(&conn_event(1, "start", 0), &mut out);
        b.execute(&conn_event(2, "start", 0), &mut out);
        b.execute(&conn_event(2, "end", 4_000_000), &mut out);
        b.execute(&conn_event(1, "end", 2_000_000), &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].get("url").and_then(Value::as_str), Some("/b"));
        assert_eq!(out[1].get("diff_ms").and_then(Value::as_f64), Some(2.0));
    }
}
