//! Rolling counts — the paper's "Counting Bolt" (Fig. 4).

use std::collections::HashMap;

use netalytics_data::DataTuple;

use crate::bolt::Bolt;

/// Counts tuples per `key` over a tumbling window, emitting
/// `(key, count)` tuples when the window closes on a tick.
///
/// The paper's Rolling-Top-Words derivative uses sliding windows; a
/// tumbling window gives the same ranking dynamics for our workloads and
/// keeps replays deterministic.
#[derive(Debug)]
pub struct RollingCountBolt {
    window_ns: u64,
    window_start: Option<u64>,
    counts: HashMap<String, u64>,
}

impl RollingCountBolt {
    /// Creates a counting bolt with the given window length.
    ///
    /// # Panics
    ///
    /// Panics if `window_ns` is zero.
    pub fn new(window_ns: u64) -> Self {
        assert!(window_ns > 0, "window must be positive");
        RollingCountBolt {
            window_ns,
            window_start: None,
            counts: HashMap::new(),
        }
    }

    fn release(&mut self, now_ns: u64, out: &mut Vec<DataTuple>) {
        let mut keys: Vec<_> = self.counts.drain().collect();
        keys.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        for (key, count) in keys {
            out.push(
                DataTuple::new(0, now_ns)
                    .from_source("rolling_count")
                    .with("key", key)
                    .with("count", count)
                    .with("window_end", now_ns),
            );
        }
        self.window_start = Some(now_ns);
    }
}

impl Bolt for RollingCountBolt {
    fn execute(&mut self, tuple: &DataTuple, out: &mut Vec<DataTuple>) {
        let Some(key) = tuple.get("key").map(ToString::to_string) else {
            return;
        };
        let n = tuple
            .get("count")
            .and_then(netalytics_data::Value::as_u64)
            .unwrap_or(1);
        let start = *self.window_start.get_or_insert(tuple.ts_ns);
        // Event-time window rotation: late-arriving data still counts in
        // the current window; rotation happens on watermark (tick) or
        // when event time crosses the boundary.
        if tuple.ts_ns >= start + self.window_ns {
            self.release(tuple.ts_ns, out);
        }
        *self.counts.entry(key).or_default() += n;
    }

    fn tick(&mut self, now_ns: u64, out: &mut Vec<DataTuple>) {
        // Executors tick frequently; the window only rotates once the
        // watermark passes its end.
        if self.counts.is_empty() {
            return;
        }
        let start = *self.window_start.get_or_insert(now_ns);
        if now_ns >= start + self.window_ns {
            self.release(now_ns, out);
        }
    }

    fn finish(&mut self, now_ns: u64, out: &mut Vec<DataTuple>) {
        if !self.counts.is_empty() {
            self.release(now_ns, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netalytics_data::Value;

    fn keyed(key: &str, ts: u64) -> DataTuple {
        DataTuple::new(0, ts).with("key", key)
    }

    #[test]
    fn counts_within_window() {
        let mut b = RollingCountBolt::new(1_000);
        let mut out = Vec::new();
        b.execute(&keyed("a", 0), &mut out);
        b.execute(&keyed("a", 10), &mut out);
        b.execute(&keyed("b", 20), &mut out);
        assert!(out.is_empty());
        b.tick(999, &mut out);
        assert!(out.is_empty(), "window not over yet");
        b.tick(1_000, &mut out);
        assert_eq!(out.len(), 2);
        // Sorted by count desc.
        assert_eq!(out[0].get("key").and_then(Value::as_str), Some("a"));
        assert_eq!(out[0].get("count").and_then(Value::as_u64), Some(2));
    }

    #[test]
    fn event_time_rotation() {
        let mut b = RollingCountBolt::new(100);
        let mut out = Vec::new();
        b.execute(&keyed("a", 0), &mut out);
        b.execute(&keyed("a", 150), &mut out); // crosses the boundary
        assert_eq!(out.len(), 1, "first window released");
        assert_eq!(out[0].get("count").and_then(Value::as_u64), Some(1));
        b.tick(260, &mut out);
        assert_eq!(out.len(), 2, "second window holds the late tuple");
    }

    #[test]
    fn respects_carried_counts() {
        let mut b = RollingCountBolt::new(1_000);
        let mut out = Vec::new();
        b.execute(&keyed("a", 0).with("count", 5u64), &mut out);
        b.finish(1, &mut out);
        assert_eq!(out[0].get("count").and_then(Value::as_u64), Some(5));
    }

    #[test]
    fn empty_tick_emits_nothing() {
        let mut b = RollingCountBolt::new(1_000);
        let mut out = Vec::new();
        b.tick(1, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_panics() {
        let _ = RollingCountBolt::new(0);
    }
}
