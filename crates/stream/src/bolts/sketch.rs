//! Sketch-backed reduction bolts: the paper's intermediate → total
//! parallel-reduction tree (Fig. 4), run over mergeable summaries
//! instead of exact per-key state.
//!
//! Each processor is built from two roles of the same bolt:
//!
//! * **local** (fields/shuffle-grouped, parallel): folds raw tuples into
//!   a bounded sketch, absorbs pre-aggregated sketch deltas arriving
//!   from monitors, and on window rotation ships one serialized delta
//!   downstream — mirroring the intermediate `RankBolt`.
//! * **global** (global-grouped, singleton): merges every partial it
//!   receives and on tick emits the final answer tuples plus one sketch
//!   *snapshot* tuple, which the store sink persists so rollups keep
//!   the full summary, not just the extracted numbers.
//!
//! State is `O(1/ε)` / `O(2^p)` per bolt instance regardless of key
//! cardinality — the bound the exact `RankBolt`/`AggBolt` pipeline
//! cannot offer under "millions of users" workloads.

use std::sync::Arc;

use netalytics_data::{DataTuple, Value};
use netalytics_sketch::{value_key_bytes, Hll, QuantileSketch, Sketch, SpaceSaving};
use netalytics_telemetry::{Counter, Gauge, MetricsRegistry};

use crate::bolt::Bolt;

/// Shared telemetry handles for one sketch processor: serialized bytes
/// shipped, merges performed, and the observed-vs-bound error pair.
#[derive(Debug, Clone)]
pub struct SketchCounters {
    /// Serialized sketch bytes shipped downstream (`sketch.bytes`).
    pub bytes: Arc<Counter>,
    /// Sketch-into-sketch merges performed (`sketch.merges`).
    pub merges: Arc<Counter>,
    /// Guaranteed worst-case error of the final sketch (`ε·N`).
    pub error_bound: Arc<Gauge>,
    /// Largest error actually observed in the final sketch — compare
    /// against `error_bound` to see how loose the guarantee is.
    pub observed_error: Arc<Gauge>,
}

impl SketchCounters {
    /// Registers the sketch metrics for `processor` in `metrics`.
    pub fn register(metrics: &MetricsRegistry, processor: &str) -> Self {
        let l = [("processor", processor)];
        SketchCounters {
            bytes: metrics.counter("sketch.bytes", &l),
            merges: metrics.counter("sketch.merges", &l),
            error_bound: metrics.gauge("sketch.error_bound", &l),
            observed_error: metrics.gauge("sketch.observed_error", &l),
        }
    }
}

/// Which half of the reduction tree a bolt instance plays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    Local,
    Global,
}

/// Event-time tumbling window shared by the sketch bolts — the same
/// rotation rule as `RollingCountBolt`: rotate when event time crosses
/// the boundary, or when the watermark (tick) passes it.
#[derive(Debug)]
struct WindowTrack {
    window_ns: u64,
    start: Option<u64>,
}

impl WindowTrack {
    fn new(window_ns: u64) -> Self {
        WindowTrack {
            window_ns: window_ns.max(1),
            start: None,
        }
    }

    /// True when `now_ns` lies at or past the current window's end.
    fn crossed(&mut self, now_ns: u64) -> bool {
        let start = *self.start.get_or_insert(now_ns);
        now_ns >= start + self.window_ns
    }

    fn rotate(&mut self, now_ns: u64) {
        self.start = Some(now_ns);
    }
}

/// Heavy hitters over a key field: SpaceSaving partials merged into a
/// global top-k with per-key error bounds, in `O(1/ε)` memory.
#[derive(Debug)]
pub struct HeavyHittersBolt {
    role: Role,
    k: usize,
    key_field: String,
    sketch: SpaceSaving,
    window: WindowTrack,
    counters: Option<SketchCounters>,
}

impl HeavyHittersBolt {
    /// The intermediate (parallel) ranker: folds raw tuples and monitor
    /// deltas, ships one sketch delta per window.
    pub fn local(k: usize, eps: f64, key_field: impl Into<String>, window_ns: u64) -> Self {
        Self::new(Role::Local, k, eps, key_field, window_ns)
    }

    /// The total (singleton) ranker: merges partials, emits the final
    /// ranking plus a persistable sketch snapshot.
    pub fn global(k: usize, eps: f64, key_field: impl Into<String>, window_ns: u64) -> Self {
        Self::new(Role::Global, k, eps, key_field, window_ns)
    }

    fn new(role: Role, k: usize, eps: f64, key_field: impl Into<String>, window_ns: u64) -> Self {
        assert!(k > 0, "k must be positive");
        HeavyHittersBolt {
            role,
            k,
            key_field: key_field.into(),
            sketch: SpaceSaving::new(eps),
            window: WindowTrack::new(window_ns),
            counters: None,
        }
    }

    /// Attaches telemetry handles (builder style).
    pub fn with_counters(mut self, counters: SketchCounters) -> Self {
        self.counters = Some(counters);
        self
    }

    fn release(&mut self, now_ns: u64, out: &mut Vec<DataTuple>) {
        if self.sketch.is_empty() {
            return;
        }
        let capacity = self.sketch.capacity();
        let full = std::mem::replace(&mut self.sketch, SpaceSaving::with_capacity(capacity));
        match self.role {
            Role::Local => {
                let t = Sketch::HeavyHitters(full).into_tuple(now_ns, now_ns);
                if let (Some(c), Some(b)) = (
                    &self.counters,
                    t.get(netalytics_sketch::FIELD_SKETCH)
                        .and_then(Value::as_bytes),
                ) {
                    c.bytes.add(b.len() as u64);
                }
                out.push(t);
            }
            Role::Global => {
                if let Some(c) = &self.counters {
                    c.error_bound.set(full.error_bound() as i64);
                    let observed = full
                        .top(self.k)
                        .iter()
                        .map(|(_, _, err)| *err)
                        .max()
                        .unwrap_or(0);
                    c.observed_error.set(observed as i64);
                }
                for (rank, (key, count, err)) in full.top(self.k).into_iter().enumerate() {
                    out.push(
                        DataTuple::new(rank as u64, now_ns)
                            .from_source("rank")
                            .with("rank", rank as u64)
                            .with("key", key)
                            .with("count", count)
                            .with("err", err)
                            .with("window_end", now_ns),
                    );
                }
                out.push(Sketch::HeavyHitters(full).into_tuple(now_ns, now_ns));
            }
        }
        self.window.rotate(now_ns);
    }

    fn absorb(&mut self, tuple: &DataTuple) {
        match Sketch::from_tuple(tuple) {
            Some(Ok(Sketch::HeavyHitters(partial))) => {
                if self.sketch.merge(&partial).is_ok() {
                    if let Some(c) = &self.counters {
                        c.merges.inc();
                    }
                }
            }
            Some(_) => {} // foreign or corrupt sketch: not ours to fold
            None => {
                let Some(v) = tuple.get(&self.key_field) else {
                    return;
                };
                match v.as_str() {
                    Some(key) => self.sketch.record(key, 1),
                    None => self
                        .sketch
                        .record(&String::from_utf8_lossy(&value_key_bytes(v)), 1),
                }
            }
        }
    }
}

impl Bolt for HeavyHittersBolt {
    fn execute(&mut self, tuple: &DataTuple, out: &mut Vec<DataTuple>) {
        if self.role == Role::Local && self.window.crossed(tuple.ts_ns) {
            self.release(tuple.ts_ns, out);
        }
        self.absorb(tuple);
    }

    fn tick(&mut self, now_ns: u64, out: &mut Vec<DataTuple>) {
        match self.role {
            // Window rotation on watermark, like the counting bolt.
            Role::Local => {
                if !self.sketch.is_empty() && self.window.crossed(now_ns) {
                    self.release(now_ns, out);
                }
            }
            // The total reducer drains whatever it holds, like RankBolt.
            Role::Global => self.release(now_ns, out),
        }
    }

    fn finish(&mut self, now_ns: u64, out: &mut Vec<DataTuple>) {
        self.release(now_ns, out);
    }
}

/// Distinct-value counting over a field: HyperLogLog partials merged
/// into one cardinality estimate in `O(2^p)` bytes.
#[derive(Debug)]
pub struct DistinctBolt {
    role: Role,
    field: String,
    sketch: Hll,
    /// Observations folded since the last release (HLL itself does not
    /// track a count, and an all-zero HLL must not emit).
    folded: u64,
    window: WindowTrack,
    counters: Option<SketchCounters>,
}

impl DistinctBolt {
    /// The intermediate (parallel) estimator.
    pub fn local(field: impl Into<String>, precision: u8, window_ns: u64) -> Self {
        Self::new(Role::Local, field, precision, window_ns)
    }

    /// The total (singleton) estimator.
    pub fn global(field: impl Into<String>, precision: u8, window_ns: u64) -> Self {
        Self::new(Role::Global, field, precision, window_ns)
    }

    fn new(role: Role, field: impl Into<String>, precision: u8, window_ns: u64) -> Self {
        DistinctBolt {
            role,
            field: field.into(),
            sketch: Hll::new(precision),
            folded: 0,
            window: WindowTrack::new(window_ns),
            counters: None,
        }
    }

    /// Attaches telemetry handles (builder style).
    pub fn with_counters(mut self, counters: SketchCounters) -> Self {
        self.counters = Some(counters);
        self
    }

    fn release(&mut self, now_ns: u64, out: &mut Vec<DataTuple>) {
        if self.folded == 0 {
            return;
        }
        let p = self.sketch.precision();
        let full = std::mem::replace(&mut self.sketch, Hll::new(p));
        self.folded = 0;
        match self.role {
            Role::Local => {
                let t = Sketch::Distinct(full).into_tuple(now_ns, now_ns);
                if let (Some(c), Some(b)) = (
                    &self.counters,
                    t.get(netalytics_sketch::FIELD_SKETCH)
                        .and_then(Value::as_bytes),
                ) {
                    c.bytes.add(b.len() as u64);
                }
                out.push(t);
            }
            Role::Global => {
                let estimate = full.estimate();
                if let Some(c) = &self.counters {
                    // Bound is relative for HLL: report ±rel_err·estimate.
                    c.error_bound
                        .set((full.relative_error() * estimate).round() as i64);
                }
                out.push(
                    DataTuple::new(0, now_ns)
                        .from_source("distinct")
                        .with("field", self.field.clone())
                        .with("distinct", estimate.round() as u64)
                        .with("window_end", now_ns),
                );
                out.push(Sketch::Distinct(full).into_tuple(now_ns, now_ns));
            }
        }
        self.window.rotate(now_ns);
    }

    fn absorb(&mut self, tuple: &DataTuple) {
        match Sketch::from_tuple(tuple) {
            Some(Ok(Sketch::Distinct(partial))) => {
                if self.sketch.merge(&partial).is_ok() {
                    self.folded += tuple
                        .get(netalytics_sketch::FIELD_N)
                        .and_then(Value::as_u64)
                        .unwrap_or(1)
                        .max(1);
                    if let Some(c) = &self.counters {
                        c.merges.inc();
                    }
                }
            }
            Some(_) => {}
            None => {
                if let Some(v) = tuple.get(&self.field) {
                    self.sketch.record(&value_key_bytes(v));
                    self.folded += 1;
                }
            }
        }
    }
}

impl Bolt for DistinctBolt {
    fn execute(&mut self, tuple: &DataTuple, out: &mut Vec<DataTuple>) {
        if self.role == Role::Local && self.window.crossed(tuple.ts_ns) {
            self.release(tuple.ts_ns, out);
        }
        self.absorb(tuple);
    }

    fn tick(&mut self, now_ns: u64, out: &mut Vec<DataTuple>) {
        match self.role {
            Role::Local => {
                if self.folded > 0 && self.window.crossed(now_ns) {
                    self.release(now_ns, out);
                }
            }
            Role::Global => self.release(now_ns, out),
        }
    }

    fn finish(&mut self, now_ns: u64, out: &mut Vec<DataTuple>) {
        self.release(now_ns, out);
    }
}

/// Quantiles of a numeric field: log-bucketed partials (telemetry
/// bucket layout) merged into per-quantile estimates, ≤ 12.5 % relative
/// error in a fixed-size table.
#[derive(Debug)]
pub struct QuantileBolt {
    role: Role,
    value_field: String,
    qs: Vec<f64>,
    sketch: QuantileSketch,
    window: WindowTrack,
    counters: Option<SketchCounters>,
}

impl QuantileBolt {
    /// The intermediate (parallel) summarizer.
    pub fn local(value_field: impl Into<String>, qs: Vec<f64>, window_ns: u64) -> Self {
        Self::new(Role::Local, value_field, qs, window_ns)
    }

    /// The total (singleton) summarizer.
    pub fn global(value_field: impl Into<String>, qs: Vec<f64>, window_ns: u64) -> Self {
        Self::new(Role::Global, value_field, qs, window_ns)
    }

    fn new(role: Role, value_field: impl Into<String>, qs: Vec<f64>, window_ns: u64) -> Self {
        QuantileBolt {
            role,
            value_field: value_field.into(),
            qs: if qs.is_empty() { vec![0.5] } else { qs },
            sketch: QuantileSketch::new(),
            window: WindowTrack::new(window_ns),
            counters: None,
        }
    }

    /// Attaches telemetry handles (builder style).
    pub fn with_counters(mut self, counters: SketchCounters) -> Self {
        self.counters = Some(counters);
        self
    }

    fn release(&mut self, now_ns: u64, out: &mut Vec<DataTuple>) {
        if self.sketch.count() == 0 {
            return;
        }
        let full = std::mem::take(&mut self.sketch);
        match self.role {
            Role::Local => {
                let t = Sketch::Quantile(full).into_tuple(now_ns, now_ns);
                if let (Some(c), Some(b)) = (
                    &self.counters,
                    t.get(netalytics_sketch::FIELD_SKETCH)
                        .and_then(Value::as_bytes),
                ) {
                    c.bytes.add(b.len() as u64);
                }
                out.push(t);
            }
            Role::Global => {
                for &q in &self.qs {
                    out.push(
                        DataTuple::new(0, now_ns)
                            .from_source("quantile")
                            .with("q", q)
                            .with("value", full.quantile(q))
                            .with("n", full.count())
                            .with("window_end", now_ns),
                    );
                }
                out.push(Sketch::Quantile(full).into_tuple(now_ns, now_ns));
            }
        }
        self.window.rotate(now_ns);
    }

    fn absorb(&mut self, tuple: &DataTuple) {
        match Sketch::from_tuple(tuple) {
            Some(Ok(Sketch::Quantile(partial))) => {
                if self.sketch.merge(&partial).is_ok() {
                    if let Some(c) = &self.counters {
                        c.merges.inc();
                    }
                }
            }
            Some(_) => {}
            None => {
                if let Some(v) = tuple.get(&self.value_field).and_then(|v| v.as_f64()) {
                    self.sketch.record_f64(v);
                }
            }
        }
    }
}

impl Bolt for QuantileBolt {
    fn execute(&mut self, tuple: &DataTuple, out: &mut Vec<DataTuple>) {
        if self.role == Role::Local && self.window.crossed(tuple.ts_ns) {
            self.release(tuple.ts_ns, out);
        }
        self.absorb(tuple);
    }

    fn tick(&mut self, now_ns: u64, out: &mut Vec<DataTuple>) {
        match self.role {
            Role::Local => {
                if self.sketch.count() > 0 && self.window.crossed(now_ns) {
                    self.release(now_ns, out);
                }
            }
            Role::Global => self.release(now_ns, out),
        }
    }

    fn finish(&mut self, now_ns: u64, out: &mut Vec<DataTuple>) {
        self.release(now_ns, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn url(u: &str, ts: u64) -> DataTuple {
        DataTuple::new(1, ts).with("url", u).with("t_ns", ts)
    }

    #[test]
    fn heavy_hitters_local_to_global_reduction() {
        let mut local_a = HeavyHittersBolt::local(3, 0.01, "url", 1_000_000);
        let mut local_b = HeavyHittersBolt::local(3, 0.01, "url", 1_000_000);
        let mut global = HeavyHittersBolt::global(3, 0.01, "url", 1_000_000);
        let mut partials = Vec::new();
        for _ in 0..5 {
            local_a.execute(&url("/hot", 10), &mut partials);
        }
        for _ in 0..3 {
            local_b.execute(&url("/hot", 10), &mut partials);
            local_b.execute(&url("/warm", 10), &mut partials);
        }
        local_a.finish(100, &mut partials);
        local_b.finish(100, &mut partials);
        assert_eq!(partials.len(), 2, "one delta per local instance");

        let mut out = Vec::new();
        for p in &partials {
            global.execute(p, &mut out);
        }
        global.finish(200, &mut out);
        let ranked: Vec<(String, u64)> = out
            .iter()
            .filter(|t| t.source == "rank")
            .map(|t| {
                (
                    t.get("key").unwrap().to_string(),
                    t.get("count").and_then(Value::as_u64).unwrap(),
                )
            })
            .collect();
        assert_eq!(ranked, vec![("/hot".into(), 8), ("/warm".into(), 3)]);
        // The snapshot tuple rides along for persistence.
        assert_eq!(
            out.iter()
                .filter(|t| t.source == netalytics_sketch::SKETCH_SOURCE)
                .count(),
            1
        );
    }

    #[test]
    fn heavy_hitters_ties_break_by_key() {
        let mut global = HeavyHittersBolt::global(3, 0.01, "url", 1_000);
        let mut out = Vec::new();
        for u in ["/z", "/a", "/m"] {
            global.execute(&url(u, 1), &mut out);
        }
        global.finish(10, &mut out);
        let keys: Vec<_> = out
            .iter()
            .filter(|t| t.source == "rank")
            .map(|t| t.get("key").unwrap().to_string())
            .collect();
        assert_eq!(keys, vec!["/a", "/m", "/z"]);
    }

    #[test]
    fn distinct_counts_across_partials() {
        let mut local_a = DistinctBolt::local("url", 12, 1_000);
        let mut local_b = DistinctBolt::local("url", 12, 1_000);
        let mut global = DistinctBolt::global("url", 12, 1_000);
        let mut partials = Vec::new();
        for i in 0..60 {
            local_a.execute(&url(&format!("/p{i}"), 1), &mut partials);
        }
        for i in 30..90 {
            // 30 overlap with local_a, 30 new.
            local_b.execute(&url(&format!("/p{i}"), 1), &mut partials);
        }
        local_a.finish(10, &mut partials);
        local_b.finish(10, &mut partials);
        let mut out = Vec::new();
        for p in &partials {
            global.execute(p, &mut out);
        }
        global.finish(20, &mut out);
        let d = out
            .iter()
            .find(|t| t.source == "distinct")
            .and_then(|t| t.get("distinct").and_then(Value::as_u64))
            .unwrap();
        assert!((85..=95).contains(&d), "union estimate {d} for 90 true");
    }

    #[test]
    fn quantile_bolt_merges_and_reports() {
        let mut local = QuantileBolt::local("t_ns", vec![0.5, 0.95], 10_000);
        let mut global = QuantileBolt::global("t_ns", vec![0.5, 0.95], 10_000);
        let mut partials = Vec::new();
        for v in 1..=100u64 {
            local.execute(&DataTuple::new(1, v).with("t_ns", v), &mut partials);
        }
        local.finish(200, &mut partials);
        let mut out = Vec::new();
        for p in &partials {
            global.execute(p, &mut out);
        }
        global.finish(300, &mut out);
        let quantiles: Vec<(f64, u64)> = out
            .iter()
            .filter(|t| t.source == "quantile")
            .map(|t| {
                (
                    t.get("q").and_then(Value::as_f64).unwrap(),
                    t.get("value").and_then(Value::as_u64).unwrap(),
                )
            })
            .collect();
        assert_eq!(quantiles.len(), 2);
        let p50 = quantiles[0].1;
        assert!((40..=56).contains(&p50), "p50 = {p50}");
    }

    #[test]
    fn local_rotates_on_event_time() {
        let mut local = HeavyHittersBolt::local(3, 0.01, "url", 100);
        let mut out = Vec::new();
        local.execute(&url("/a", 0), &mut out);
        local.execute(&url("/a", 150), &mut out); // crosses the boundary
        assert_eq!(out.len(), 1, "first window shipped as a delta");
        local.finish(300, &mut out);
        assert_eq!(out.len(), 2, "second window holds the late tuple");
    }

    #[test]
    fn empty_bolts_emit_nothing() {
        let mut out = Vec::new();
        HeavyHittersBolt::global(3, 0.01, "url", 1_000).finish(1, &mut out);
        DistinctBolt::global("url", 12, 1_000).finish(1, &mut out);
        QuantileBolt::global("t_ns", vec![0.5], 1_000).finish(1, &mut out);
        assert!(out.is_empty());
    }
}
