//! The building-block bolts of paper Table 2.
//!
//! | Block | Description |
//! |---|---|
//! | `top-k` | k largest values of the stream |
//! | `max`/`min` | smallest/largest value of the stream |
//! | `sum` | total sum of the stream |
//! | `avg` | average value of the stream |
//! | `diff` | difference of two streams |
//! | `group` | group results by one or more attributes |
//!
//! Plus `histogram`/`cdf` used by the §7 case-study figures, and the
//! key-extraction bolt that plays the paper's "Parsing Bolt" role in the
//! top-k topology (Fig. 4).

mod agg;
mod count;
mod diff;
mod generic_join;
mod histogram;
mod join;
mod key;
mod rank;
mod sketch;
mod subscription;

pub use agg::{AggBolt, AggOp, UnknownAggOp};
pub use count::RollingCountBolt;
pub use diff::DiffBolt;
pub use generic_join::{JoinBolt, JoinStats};
pub use histogram::{CdfBolt, HistogramBolt};
pub use join::RequestTimeJoinBolt;
pub use key::KeyExtractBolt;
pub use rank::RankBolt;
pub use sketch::{DistinctBolt, HeavyHittersBolt, QuantileBolt, SketchCounters};
pub use subscription::{Subscription, SubscriptionHub, SubscriptionSink, DEFAULT_SUBSCRIBER_DEPTH};
