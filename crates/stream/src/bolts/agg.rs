//! Grouped aggregation: the `sum`, `avg`, `max`, `min` and `group`
//! building blocks of Table 2.

use std::collections::HashMap;

use netalytics_data::{DataTuple, Value};

use crate::bolt::Bolt;

/// The aggregate operator applied per group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggOp {
    /// Total of the value field.
    Sum,
    /// Arithmetic mean of the value field.
    Avg,
    /// Largest value.
    Max,
    /// Smallest value.
    Min,
    /// Count of tuples (value field ignored).
    Count,
}

/// An operator name [`AggOp::parse`] did not recognize. The message
/// lists every valid operator, so a query author sees what to fix
/// instead of a silent fall-through.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownAggOp(pub String);

impl std::fmt::Display for UnknownAggOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown aggregate operator {:?}; valid operators: {}",
            self.0,
            AggOp::NAMES.join(", ")
        )
    }
}

impl std::error::Error for UnknownAggOp {}

impl AggOp {
    /// Every operator name the query language accepts.
    pub const NAMES: [&'static str; 5] = ["sum", "avg", "max", "min", "count"];

    /// Parses the operator name used by the query language.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownAggOp`] — whose message lists the valid
    /// operators — for any name not in [`AggOp::NAMES`].
    pub fn parse(s: &str) -> Result<Self, UnknownAggOp> {
        Ok(match s {
            "sum" => AggOp::Sum,
            "avg" => AggOp::Avg,
            "max" => AggOp::Max,
            "min" => AggOp::Min,
            "count" => AggOp::Count,
            other => return Err(UnknownAggOp(other.to_owned())),
        })
    }

    fn result_field(self) -> &'static str {
        match self {
            AggOp::Sum => "sum",
            AggOp::Avg => "avg",
            AggOp::Max => "max",
            AggOp::Min => "min",
            AggOp::Count => "count",
        }
    }
}

#[derive(Debug, Default, Clone)]
struct GroupState {
    sum: f64,
    count: u64,
    max: f64,
    min: f64,
    /// Group attribute values carried into the emission.
    attrs: Vec<(String, Value)>,
}

/// Aggregates a numeric field per group key, emitting one tuple per group
/// on tick — the `group` block of Table 2 combined with an operator
/// (`diff_group`, `group_sum`, `diff-group-avg` in the paper's §7 use).
///
/// # Examples
///
/// ```
/// use netalytics_data::{DataTuple, Value};
/// use netalytics_stream::bolts::{AggBolt, AggOp};
/// use netalytics_stream::Bolt;
///
/// let mut b = AggBolt::new(AggOp::Avg, "rt_ms", vec!["dst_ip".into()]);
/// let mut out = Vec::new();
/// b.execute(&DataTuple::new(1, 0).with("dst_ip", "10.0.0.9").with("rt_ms", 10.0), &mut out);
/// b.execute(&DataTuple::new(2, 0).with("dst_ip", "10.0.0.9").with("rt_ms", 30.0), &mut out);
/// b.finish(99, &mut out);
/// assert_eq!(out[0].get("avg").and_then(Value::as_f64), Some(20.0));
/// ```
#[derive(Debug)]
pub struct AggBolt {
    op: AggOp,
    value_field: String,
    group_fields: Vec<String>,
    groups: HashMap<String, GroupState>,
}

impl AggBolt {
    /// Creates an aggregator over `value_field`, grouped by
    /// `group_fields` (empty = one global group).
    pub fn new(op: AggOp, value_field: impl Into<String>, group_fields: Vec<String>) -> Self {
        AggBolt {
            op,
            value_field: value_field.into(),
            group_fields,
            groups: HashMap::new(),
        }
    }

    fn group_key(&self, tuple: &DataTuple) -> (String, Vec<(String, Value)>) {
        let mut key = String::new();
        let mut attrs = Vec::new();
        for f in &self.group_fields {
            let v = tuple.get(f).cloned().unwrap_or(Value::Null);
            key.push_str(&v.to_string());
            key.push('\u{1f}');
            attrs.push((f.clone(), v));
        }
        (key, attrs)
    }
}

impl Bolt for AggBolt {
    fn execute(&mut self, tuple: &DataTuple, _out: &mut Vec<DataTuple>) {
        let value = match self.op {
            AggOp::Count => 0.0,
            _ => match tuple.get(&self.value_field).and_then(Value::as_f64) {
                Some(v) => v,
                None => return,
            },
        };
        let (key, attrs) = self.group_key(tuple);
        let st = self.groups.entry(key).or_insert_with(|| GroupState {
            max: f64::NEG_INFINITY,
            min: f64::INFINITY,
            attrs,
            ..Default::default()
        });
        st.sum += value;
        st.count += 1;
        st.max = st.max.max(value);
        st.min = st.min.min(value);
    }

    fn tick(&mut self, _now_ns: u64, _out: &mut Vec<DataTuple>) {
        // Aggregates accumulate for the query's whole LIMIT window; the
        // final figures are released on finish (like the paper's per-tier
        // averages, which summarize the full measurement run).
    }

    fn finish(&mut self, now_ns: u64, out: &mut Vec<DataTuple>) {
        let mut groups: Vec<_> = self.groups.drain().collect();
        groups.sort_by(|a, b| a.0.cmp(&b.0));
        for (_, st) in groups {
            let result = match self.op {
                AggOp::Sum => st.sum,
                AggOp::Avg => st.sum / st.count as f64,
                AggOp::Max => st.max,
                AggOp::Min => st.min,
                AggOp::Count => st.count as f64,
            };
            let mut t = DataTuple::new(0, now_ns).from_source("agg");
            for (k, v) in st.attrs {
                t.push(k, v);
            }
            t.push(self.op.result_field(), result);
            t.push("n", st.count);
            out.push(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ip: &str, v: f64) -> DataTuple {
        DataTuple::new(0, 0).with("dst_ip", ip).with("v", v)
    }

    fn run(op: AggOp, tuples: &[DataTuple]) -> Vec<DataTuple> {
        let mut b = AggBolt::new(op, "v", vec!["dst_ip".into()]);
        let mut out = Vec::new();
        for tu in tuples {
            b.execute(tu, &mut out);
        }
        b.finish(1, &mut out);
        out
    }

    #[test]
    fn sum_and_count_per_group() {
        let out = run(AggOp::Sum, &[t("a", 1.0), t("a", 2.0), t("b", 5.0)]);
        assert_eq!(out.len(), 2);
        let a = out
            .iter()
            .find(|x| x.get("dst_ip").and_then(Value::as_str) == Some("a"))
            .unwrap();
        assert_eq!(a.get("sum").and_then(Value::as_f64), Some(3.0));
        assert_eq!(a.get("n").and_then(Value::as_u64), Some(2));
    }

    #[test]
    fn avg_min_max() {
        let data = [t("a", 10.0), t("a", 20.0), t("a", 60.0)];
        assert_eq!(
            run(AggOp::Avg, &data)[0].get("avg").and_then(Value::as_f64),
            Some(30.0)
        );
        assert_eq!(
            run(AggOp::Max, &data)[0].get("max").and_then(Value::as_f64),
            Some(60.0)
        );
        assert_eq!(
            run(AggOp::Min, &data)[0].get("min").and_then(Value::as_f64),
            Some(10.0)
        );
    }

    #[test]
    fn count_ignores_missing_value() {
        let mut b = AggBolt::new(AggOp::Count, "v", vec![]);
        let mut out = Vec::new();
        b.execute(&DataTuple::new(0, 0).with("other", 1u64), &mut out);
        b.execute(&DataTuple::new(0, 0), &mut out);
        b.finish(1, &mut out);
        assert_eq!(out[0].get("count").and_then(Value::as_f64), Some(2.0));
    }

    #[test]
    fn non_numeric_values_skipped() {
        let out = run(
            AggOp::Sum,
            &[DataTuple::new(0, 0).with("dst_ip", "a").with("v", "nope")],
        );
        assert!(out.is_empty());
    }

    #[test]
    fn state_drains_on_tick() {
        let mut b = AggBolt::new(AggOp::Sum, "v", vec![]);
        let mut out = Vec::new();
        b.execute(&t("a", 1.0), &mut out);
        b.finish(1, &mut out);
        out.clear();
        b.finish(2, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn multi_field_grouping() {
        let mut b = AggBolt::new(AggOp::Sum, "v", vec!["x".into(), "y".into()]);
        let mut out = Vec::new();
        b.execute(
            &DataTuple::new(0, 0)
                .with("x", "1")
                .with("y", "a")
                .with("v", 1.0),
            &mut out,
        );
        b.execute(
            &DataTuple::new(0, 0)
                .with("x", "1")
                .with("y", "b")
                .with("v", 1.0),
            &mut out,
        );
        b.finish(1, &mut out);
        assert_eq!(out.len(), 2, "distinct (x,y) pairs stay separate");
    }

    #[test]
    fn op_parse() {
        assert_eq!(AggOp::parse("avg"), Ok(AggOp::Avg));
        let err = AggOp::parse("bogus").unwrap_err();
        assert_eq!(err, UnknownAggOp("bogus".into()));
        // The message teaches the valid vocabulary.
        let msg = err.to_string();
        for name in AggOp::NAMES {
            assert!(msg.contains(name), "{msg:?} missing {name}");
        }
    }
}
