//! Live result subscriptions: the tap that feeds `/stream` clients.
//!
//! A [`SubscriptionHub`] fans each incremental result tuple out to
//! every live subscriber over a bounded per-subscriber channel. The
//! [`SubscriptionSink`] is a pass-through terminal bolt (mirroring the
//! store sink): appended after a topology's terminals it changes
//! nothing about the query's output, it only publishes a copy of every
//! emission to the hub.
//!
//! Backpressure is **shed-on-slow-consumer**: `publish` never blocks
//! the data plane. A subscriber whose channel is full simply misses
//! that tuple (counted per hub in `shed`), and a disconnected
//! subscriber is pruned on the next publish. Dropping a
//! [`Subscription`] unsubscribes; [`SubscriptionHub::close`] (called
//! when the query is killed) disconnects every subscriber so blocked
//! readers observe end-of-stream.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::Duration;

use netalytics_data::DataTuple;
use parking_lot::Mutex;

use crate::bolt::Bolt;

/// Default bound on each subscriber's channel: deep enough to ride out
/// a scheduling hiccup, shallow enough that one stalled client caps its
/// memory at a few hundred tuples.
pub const DEFAULT_SUBSCRIBER_DEPTH: usize = 1024;

struct SubEntry {
    id: u64,
    tx: SyncSender<DataTuple>,
}

/// Fan-out point between a query's topology and its live subscribers.
/// Shared as `Arc<SubscriptionHub>`; all methods take `&self`.
pub struct SubscriptionHub {
    /// Subscriber registry. Control path for subscribe/close; on the
    /// publish path the lock is held only for the try_send loop and is
    /// uncontended unless subscribers churn. (per-batch)
    subscribers: Mutex<Vec<SubEntry>>,
    next_id: AtomicU64,
    depth: usize,
    closed: AtomicBool,
    delivered: AtomicU64,
    shed: AtomicU64,
}

impl std::fmt::Debug for SubscriptionHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubscriptionHub")
            .field("subscribers", &self.subscriber_count())
            .field("delivered", &self.delivered())
            .field("shed", &self.shed())
            .field("closed", &self.is_closed())
            .finish()
    }
}

impl Default for SubscriptionHub {
    fn default() -> Self {
        Self::new()
    }
}

impl SubscriptionHub {
    /// A hub with the default per-subscriber channel depth.
    pub fn new() -> Self {
        Self::with_depth(DEFAULT_SUBSCRIBER_DEPTH)
    }

    /// A hub whose subscribers each buffer up to `depth` tuples
    /// (min 1).
    pub fn with_depth(depth: usize) -> Self {
        SubscriptionHub {
            subscribers: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(0),
            depth: depth.max(1),
            closed: AtomicBool::new(false),
            delivered: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        }
    }

    /// Registers a new subscriber. On a closed hub the subscription is
    /// born disconnected — its receiver reports end-of-stream
    /// immediately.
    pub fn subscribe(self: &Arc<Self>) -> Subscription {
        let (tx, rx) = std::sync::mpsc::sync_channel(self.depth);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        if !self.closed.load(Ordering::Acquire) {
            self.subscribers.lock().push(SubEntry { id, tx });
        }
        // On a closed hub `tx` drops here, disconnecting `rx`.
        Subscription {
            id,
            rx,
            hub: Arc::clone(self),
        }
    }

    /// Publishes one tuple to every live subscriber. Never blocks: a
    /// full subscriber sheds the tuple, a disconnected one is pruned.
    pub fn publish(&self, tuple: &DataTuple) {
        if self.closed.load(Ordering::Acquire) {
            return;
        }
        let mut subs = self.subscribers.lock(); // per-batch
        if subs.is_empty() {
            return;
        }
        let mut delivered = 0u64;
        let mut shed = 0u64;
        subs.retain(|sub| match sub.tx.try_send(tuple.clone()) {
            Ok(()) => {
                delivered += 1;
                true
            }
            Err(TrySendError::Full(_)) => {
                shed += 1;
                true
            }
            Err(TrySendError::Disconnected(_)) => false,
        });
        drop(subs);
        if delivered > 0 {
            self.delivered.fetch_add(delivered, Ordering::Relaxed);
        }
        if shed > 0 {
            self.shed.fetch_add(shed, Ordering::Relaxed);
        }
    }

    /// Disconnects every subscriber (their receivers see end-of-stream
    /// once drained) and refuses new publishes. Idempotent.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
        self.subscribers.lock().clear();
    }

    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Live subscriber count.
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.lock().len()
    }

    /// Tuples successfully handed to subscriber channels.
    pub fn delivered(&self) -> u64 {
        self.delivered.load(Ordering::Relaxed)
    }

    /// Tuples dropped because a subscriber's channel was full.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    fn unsubscribe(&self, id: u64) {
        self.subscribers.lock().retain(|s| s.id != id);
    }
}

/// One subscriber's receiving end. Dropping it unsubscribes from the
/// hub; the hub closing (query killed) disconnects it.
pub struct Subscription {
    id: u64,
    rx: Receiver<DataTuple>,
    hub: Arc<SubscriptionHub>,
}

impl Subscription {
    /// Blocks for the next tuple. `None` once the hub has closed (or
    /// this subscription was shed from a closed hub) and the buffer is
    /// drained.
    pub fn recv(&self) -> Option<DataTuple> {
        self.rx.recv().ok()
    }

    /// Bounded wait for the next tuple, with std's timeout semantics:
    /// `Err(Timeout)` means nothing arrived in `timeout` (the stream is
    /// still open); `Err(Disconnected)` means end-of-stream (the hub
    /// closed and the buffer is drained).
    pub fn recv_timeout(&self, timeout: Duration) -> Result<DataTuple, RecvTimeoutError> {
        self.rx.recv_timeout(timeout)
    }

    /// Drains whatever is buffered right now without blocking.
    pub fn drain(&self) -> Vec<DataTuple> {
        self.rx.try_iter().collect()
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        self.hub.unsubscribe(self.id);
    }
}

impl std::fmt::Debug for Subscription {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Subscription")
            .field("id", &self.id)
            .finish()
    }
}

/// Pass-through terminal bolt publishing every emission to a hub.
/// Append with `Topology::with_sink` after the query's real terminals,
/// exactly like the store sink.
pub struct SubscriptionSink {
    hub: Arc<SubscriptionHub>,
}

impl SubscriptionSink {
    pub fn new(hub: Arc<SubscriptionHub>) -> Self {
        SubscriptionSink { hub }
    }
}

impl Bolt for SubscriptionSink {
    fn execute(&mut self, tuple: &DataTuple, out: &mut Vec<DataTuple>) {
        self.hub.publish(tuple);
        out.push(tuple.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> DataTuple {
        DataTuple::new(n, n * 10).with("n", n)
    }

    #[test]
    fn sink_is_passthrough_and_fans_out() {
        let hub = Arc::new(SubscriptionHub::new());
        let a = hub.subscribe();
        let b = hub.subscribe();
        let mut sink = SubscriptionSink::new(Arc::clone(&hub));
        let mut out = Vec::new();
        sink.execute(&t(1), &mut out);
        sink.execute(&t(2), &mut out);
        assert_eq!(out.len(), 2, "every tuple re-emitted");
        assert_eq!(a.drain().len(), 2);
        assert_eq!(b.drain().len(), 2);
        assert_eq!(hub.delivered(), 4);
        assert_eq!(hub.shed(), 0);
    }

    #[test]
    fn slow_subscriber_sheds_without_blocking_publish() {
        let hub = Arc::new(SubscriptionHub::with_depth(2));
        let slow = hub.subscribe();
        for i in 0..5 {
            hub.publish(&t(i));
        }
        assert_eq!(hub.delivered(), 2, "channel depth honored");
        assert_eq!(hub.shed(), 3, "overflow shed, not blocked");
        let got = slow.drain();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].id, 0, "oldest tuples kept, newest shed");
    }

    #[test]
    fn drop_unsubscribes_and_close_disconnects() {
        let hub = Arc::new(SubscriptionHub::new());
        let sub = hub.subscribe();
        {
            let _gone = hub.subscribe();
            assert_eq!(hub.subscriber_count(), 2);
        }
        assert_eq!(hub.subscriber_count(), 1);

        hub.publish(&t(1));
        hub.close();
        hub.publish(&t(2)); // ignored: hub closed
        assert_eq!(sub.recv(), Some(t(1)), "buffered tuple still drains");
        assert_eq!(sub.recv(), None, "then end-of-stream");
        assert!(hub.is_closed());

        // Subscribing after close yields an immediately-ended stream.
        let late = hub.subscribe();
        assert_eq!(late.recv(), None);
        assert_eq!(hub.subscriber_count(), 0);
    }

    #[test]
    fn recv_timeout_distinguishes_empty_from_ended() {
        let hub = Arc::new(SubscriptionHub::new());
        let sub = hub.subscribe();
        assert_eq!(
            sub.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout),
            "open but empty times out"
        );
        hub.publish(&t(7));
        assert_eq!(sub.recv_timeout(Duration::from_millis(10)), Ok(t(7)));
        hub.close();
        assert_eq!(
            sub.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected),
            "closed hub ends the stream"
        );
    }

    #[test]
    fn publish_from_another_thread_reaches_subscriber() {
        let hub = Arc::new(SubscriptionHub::new());
        let sub = hub.subscribe();
        let publisher = Arc::clone(&hub);
        let handle = std::thread::spawn(move || {
            for i in 0..10 {
                publisher.publish(&t(i));
            }
            publisher.close();
        });
        let mut got = Vec::new();
        while let Some(tuple) = sub.recv() {
            got.push(tuple);
        }
        handle.join().unwrap();
        assert_eq!(got.len(), 10);
        assert!(got.windows(2).all(|w| w[0].id < w[1].id), "in order");
    }
}
