//! Histogram and CDF collectors backing the §7 case-study figures
//! (Figs. 10, 12, 13, 14, 15).

use std::collections::BTreeMap;

use netalytics_data::{DataTuple, Value};

use crate::bolt::Bolt;

/// Buckets a numeric field into fixed-width bins, emitting
/// `(bucket_lo, frequency)` tuples on finish — the shape of the paper's
/// response-time histograms.
#[derive(Debug)]
pub struct HistogramBolt {
    value_field: String,
    bucket_width: f64,
    buckets: BTreeMap<i64, u64>,
    group_field: Option<String>,
}

impl HistogramBolt {
    /// Creates a histogram over `value_field` with `bucket_width`-sized
    /// bins.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` is not positive.
    pub fn new(value_field: impl Into<String>, bucket_width: f64) -> Self {
        assert!(bucket_width > 0.0, "bucket width must be positive");
        HistogramBolt {
            value_field: value_field.into(),
            bucket_width,
            buckets: BTreeMap::new(),
            group_field: None,
        }
    }
}

impl Bolt for HistogramBolt {
    fn execute(&mut self, tuple: &DataTuple, _out: &mut Vec<DataTuple>) {
        let Some(v) = tuple.get(&self.value_field).and_then(Value::as_f64) else {
            return;
        };
        let _ = &self.group_field;
        let bucket = (v / self.bucket_width).floor() as i64;
        *self.buckets.entry(bucket).or_default() += 1;
    }

    fn tick(&mut self, _now_ns: u64, _out: &mut Vec<DataTuple>) {
        // Histograms accumulate for the whole query (LIMIT bounds it).
    }

    fn finish(&mut self, now_ns: u64, out: &mut Vec<DataTuple>) {
        for (bucket, freq) in std::mem::take(&mut self.buckets) {
            out.push(
                DataTuple::new(bucket as u64, now_ns)
                    .from_source("histogram")
                    .with("bucket_lo", bucket as f64 * self.bucket_width)
                    .with("freq", freq),
            );
        }
    }
}

/// Collects all values of a field and emits the empirical CDF on finish
/// (one tuple per sample: value plus cumulative probability), the form
/// plotted in Figs. 13 and 14.
#[derive(Debug)]
pub struct CdfBolt {
    value_field: String,
    group_field: Option<String>,
    /// (group, value) samples.
    samples: Vec<(String, f64)>,
}

impl CdfBolt {
    /// Creates a CDF collector over `value_field`.
    pub fn new(value_field: impl Into<String>) -> Self {
        CdfBolt {
            value_field: value_field.into(),
            group_field: None,
            samples: Vec::new(),
        }
    }

    /// Builder: separate CDFs per value of `group_field` (the paper plots
    /// one CDF per URL).
    pub fn grouped_by(mut self, group_field: impl Into<String>) -> Self {
        self.group_field = Some(group_field.into());
        self
    }
}

impl Bolt for CdfBolt {
    fn execute(&mut self, tuple: &DataTuple, _out: &mut Vec<DataTuple>) {
        let Some(v) = tuple.get(&self.value_field).and_then(Value::as_f64) else {
            return;
        };
        let group = self
            .group_field
            .as_ref()
            .and_then(|f| tuple.get(f))
            .map(ToString::to_string)
            .unwrap_or_default();
        self.samples.push((group, v));
    }

    fn tick(&mut self, _now_ns: u64, _out: &mut Vec<DataTuple>) {}

    fn finish(&mut self, now_ns: u64, out: &mut Vec<DataTuple>) {
        let mut samples = std::mem::take(&mut self.samples);
        samples.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
        let mut i = 0;
        while i < samples.len() {
            let group = samples[i].0.clone();
            let end = samples[i..]
                .iter()
                .position(|(g, _)| *g != group)
                .map_or(samples.len(), |p| i + p);
            let n = (end - i) as f64;
            for (j, (_, v)) in samples[i..end].iter().enumerate() {
                out.push(
                    DataTuple::new(j as u64, now_ns)
                        .from_source("cdf")
                        .with("group", group.clone())
                        .with("value", *v)
                        .with("p", (j + 1) as f64 / n),
                );
            }
            i = end;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: f64) -> DataTuple {
        DataTuple::new(0, 0).with("rt", x)
    }

    #[test]
    fn histogram_buckets_and_frequencies() {
        let mut b = HistogramBolt::new("rt", 10.0);
        let mut out = Vec::new();
        for x in [1.0, 5.0, 9.9, 10.0, 25.0] {
            b.execute(&v(x), &mut out);
        }
        b.finish(0, &mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].get("bucket_lo").and_then(Value::as_f64), Some(0.0));
        assert_eq!(out[0].get("freq").and_then(Value::as_u64), Some(3));
        assert_eq!(out[2].get("bucket_lo").and_then(Value::as_f64), Some(20.0));
    }

    #[test]
    fn histogram_ignores_ticks() {
        let mut b = HistogramBolt::new("rt", 1.0);
        let mut out = Vec::new();
        b.execute(&v(0.5), &mut out);
        b.tick(1, &mut out);
        assert!(out.is_empty(), "only finish releases the histogram");
    }

    #[test]
    fn cdf_is_monotone_and_normalized() {
        let mut b = CdfBolt::new("rt");
        let mut out = Vec::new();
        for x in [30.0, 10.0, 20.0, 40.0] {
            b.execute(&v(x), &mut out);
        }
        b.finish(0, &mut out);
        let ps: Vec<f64> = out
            .iter()
            .filter_map(|t| t.get("p").and_then(Value::as_f64))
            .collect();
        assert_eq!(ps, vec![0.25, 0.5, 0.75, 1.0]);
        let vs: Vec<f64> = out
            .iter()
            .filter_map(|t| t.get("value").and_then(Value::as_f64))
            .collect();
        assert!(vs.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn cdf_grouping_separates_urls() {
        let mut b = CdfBolt::new("rt").grouped_by("url");
        let mut out = Vec::new();
        for (u, x) in [("/a", 1.0), ("/a", 2.0), ("/b", 9.0)] {
            b.execute(&DataTuple::new(0, 0).with("url", u).with("rt", x), &mut out);
        }
        b.finish(0, &mut out);
        let b_points: Vec<_> = out
            .iter()
            .filter(|t| t.get("group").and_then(Value::as_str) == Some("/b"))
            .collect();
        assert_eq!(b_points.len(), 1);
        assert_eq!(b_points[0].get("p").and_then(Value::as_f64), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_panics() {
        let _ = HistogramBolt::new("rt", 0.0);
    }
}
