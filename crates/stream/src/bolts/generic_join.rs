//! Generic two-stream join — the paper's stated future work ("Though it
//! is possible [to] add operations such as join in the query language,
//! we leave this as future work", §3.4). Implemented here as a catalog
//! processor: tuples from two named sources pair on their ID field and
//! emit one merged tuple per pair.

use std::collections::HashMap;

use netalytics_data::DataTuple;

use crate::bolt::Bolt;

/// Joins tuples of source `left` with tuples of source `right` sharing a
/// tuple ID, emitting the union of their fields (left's fields first;
/// duplicate keys keep both, left's instance first).
///
/// Accounting of one [`JoinBolt`], named so emitted and shed counts
/// cannot be transposed at call sites.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JoinStats {
    /// Matched pairs emitted.
    pub emitted: u64,
    /// Unmatched entries shed to the `max_pending` bound.
    pub shed: u64,
}

/// Memory is bounded: each side's unmatched table holds at most
/// `max_pending` entries (oldest shed).
#[derive(Debug)]
pub struct JoinBolt {
    left: String,
    right: String,
    pending_left: HashMap<u64, DataTuple>,
    pending_right: HashMap<u64, DataTuple>,
    max_pending: usize,
    /// Matches emitted.
    matched: u64,
    /// Unmatched entries shed to the bound.
    shed: u64,
}

impl JoinBolt {
    /// Creates a join between the two named sources.
    pub fn new(left: impl Into<String>, right: impl Into<String>) -> Self {
        JoinBolt {
            left: left.into(),
            right: right.into(),
            pending_left: HashMap::new(),
            pending_right: HashMap::new(),
            max_pending: 1_000_000,
            matched: 0,
            shed: 0,
        }
    }

    /// Builder: bounds each side's unmatched table.
    pub fn with_max_pending(mut self, max: usize) -> Self {
        self.max_pending = max.max(1);
        self
    }

    /// Join accounting so far. (Previously a bare `(u64, u64)` whose
    /// element order was misread even by this module's own tests.)
    pub fn stats(&self) -> JoinStats {
        JoinStats {
            emitted: self.matched,
            shed: self.shed,
        }
    }

    fn merge(a: &DataTuple, b: &DataTuple) -> DataTuple {
        let mut out = DataTuple::new(a.id, a.ts_ns.max(b.ts_ns)).from_source("join");
        for (k, v) in a.fields.iter().chain(&b.fields) {
            out.push(k.clone(), v.clone());
        }
        out
    }
}

impl Bolt for JoinBolt {
    fn execute(&mut self, tuple: &DataTuple, out: &mut Vec<DataTuple>) {
        let (mine, other, left_side) = if tuple.source == self.left {
            (&mut self.pending_left, &mut self.pending_right, true)
        } else if tuple.source == self.right {
            (&mut self.pending_right, &mut self.pending_left, false)
        } else {
            return;
        };
        if let Some(partner) = other.remove(&tuple.id) {
            self.matched += 1;
            out.push(if left_side {
                Self::merge(tuple, &partner)
            } else {
                Self::merge(&partner, tuple)
            });
            return;
        }
        if mine.len() >= self.max_pending {
            if let Some(&k) = mine.keys().next() {
                mine.remove(&k);
                self.shed += 1;
            }
        }
        mine.insert(tuple.id, tuple.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netalytics_data::Value;

    fn l(id: u64) -> DataTuple {
        DataTuple::new(id, 10)
            .from_source("http_get")
            .with("url", "/a")
    }
    fn r(id: u64) -> DataTuple {
        DataTuple::new(id, 20)
            .from_source("tcp_conn_time")
            .with("t_ns", 5u64)
    }

    #[test]
    fn pairs_across_sources_in_any_order() {
        let mut b = JoinBolt::new("http_get", "tcp_conn_time");
        let mut out = Vec::new();
        b.execute(&l(1), &mut out);
        b.execute(&r(1), &mut out);
        b.execute(&r(2), &mut out);
        b.execute(&l(2), &mut out);
        assert_eq!(out.len(), 2);
        for t in &out {
            assert_eq!(t.get("url").and_then(Value::as_str), Some("/a"));
            assert_eq!(t.get("t_ns").and_then(Value::as_u64), Some(5));
            assert_eq!(t.source, "join");
            assert_eq!(t.ts_ns, 20, "merged timestamp is the later side");
        }
        assert_eq!(
            b.stats(),
            JoinStats {
                emitted: 2,
                shed: 0
            }
        );
    }

    #[test]
    fn left_fields_come_first_regardless_of_arrival() {
        let mut b = JoinBolt::new("http_get", "tcp_conn_time");
        let mut out = Vec::new();
        b.execute(&r(1), &mut out);
        b.execute(&l(1), &mut out);
        assert_eq!(out[0].fields[0].0, "url");
    }

    #[test]
    fn foreign_sources_ignored() {
        let mut b = JoinBolt::new("a", "b");
        let mut out = Vec::new();
        b.execute(&DataTuple::new(1, 0).from_source("c"), &mut out);
        assert!(out.is_empty());
        assert_eq!(b.stats(), JoinStats::default());
    }

    #[test]
    fn unmatched_tables_are_bounded() {
        let mut b = JoinBolt::new("a", "b").with_max_pending(5);
        let mut out = Vec::new();
        for id in 0..20 {
            b.execute(&DataTuple::new(id, 0).from_source("a"), &mut out);
        }
        assert!(out.is_empty());
        assert_eq!(b.stats().shed, 15, "15 shed beyond the bound of 5");
    }

    #[test]
    fn same_id_pairs_once() {
        let mut b = JoinBolt::new("a", "b");
        let mut out = Vec::new();
        b.execute(&DataTuple::new(7, 0).from_source("a"), &mut out);
        b.execute(&DataTuple::new(7, 0).from_source("b"), &mut out);
        b.execute(&DataTuple::new(7, 0).from_source("b"), &mut out);
        assert_eq!(out.len(), 1, "third tuple waits for a new partner");
    }
}
