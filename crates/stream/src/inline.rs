//! Deterministic single-threaded executor (the discrete-event plane's
//! analytics engine).

use std::collections::VecDeque;
use std::sync::Arc;

use netalytics_data::{DataTuple, TraceCtx, TupleBatch};
use netalytics_telemetry::{wall_now_ns, Counter, Histogram, MetricsRegistry, Tracer};

use crate::bolt::{Bolt, Grouping};
use crate::executor::Executor;
use crate::topology::{SourceRef, Topology};

struct NodeRt {
    instances: Vec<Box<dyn Bolt>>,
    round_robin: usize,
    terminal: bool,
    /// Outgoing edges: (target node, grouping).
    out_edges: Vec<(usize, Grouping)>,
}

/// Executes a [`Topology`] synchronously.
///
/// Tuples pushed via [`InlineExecutor::push`] flow through the DAG to
/// completion before the call returns; windowed bolts release state on
/// [`InlineExecutor::tick`]. Emissions of terminal bolts accumulate in
/// the output buffer, drained by [`InlineExecutor::take_output`].
///
/// # Examples
///
/// ```
/// use netalytics_data::DataTuple;
/// use netalytics_stream::{topologies, InlineExecutor};
///
/// let topo = topologies::top_k(3, 1).unwrap();
/// let mut exec = InlineExecutor::new(&topo);
/// for (i, url) in ["/a", "/a", "/b"].iter().enumerate() {
///     exec.push(DataTuple::new(i as u64, 0).with("key", *url));
/// }
/// exec.tick(10_000_000_000); // close the window
/// let out = exec.take_output();
/// assert!(!out.is_empty());
/// ```
pub struct InlineExecutor {
    nodes: Vec<NodeRt>,
    spout_edges: Vec<(usize, Grouping)>,
    output: Vec<DataTuple>,
    /// Shared with the registry's `stream.processed` when instrumented,
    /// free-standing otherwise — either way one cell, no double counting.
    processed: Arc<Counter>,
    emitted: Arc<Counter>,
    /// Parallel to `nodes`: `stream.execute_latency_ns{bolt=...}`.
    node_latency: Vec<Option<Arc<Histogram>>>,
    /// Rolling sample counter for latency timing (1 in [`LAT_SAMPLE`]).
    lat_ticks: u64,
    /// When set, batches carrying a [`TraceCtx`] get a `bolt` stage span
    /// covering their synchronous run through the DAG.
    tracer: Option<Arc<Tracer>>,
}

impl std::fmt::Debug for InlineExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InlineExecutor")
            .field("nodes", &self.nodes.len())
            .field("processed", &self.processed.get())
            .finish_non_exhaustive()
    }
}

impl InlineExecutor {
    /// Instantiates every bolt of `topology`.
    pub fn new(topology: &Topology) -> Self {
        Self::with_metrics(topology, None)
    }

    /// [`InlineExecutor::new`] with optional telemetry: tuple counters
    /// register as `stream.processed` / `stream.emitted` and each bolt
    /// records (sampled) execute latency. The inline engine runs on the
    /// deterministic plane, so instruments never change scheduling — only
    /// observation.
    pub fn with_metrics(topology: &Topology, metrics: Option<&MetricsRegistry>) -> Self {
        Self::with_instruments(topology, metrics, None)
    }

    /// [`InlineExecutor::with_metrics`] plus an optional [`Tracer`]:
    /// traced batches record a `bolt` stage span (the whole synchronous
    /// DAG run) and deliver their context to every bolt instance via
    /// [`Bolt::observe_trace`] before execution.
    pub fn with_instruments(
        topology: &Topology,
        metrics: Option<&MetricsRegistry>,
        tracer: Option<Arc<Tracer>>,
    ) -> Self {
        let terminals = topology.terminals();
        let mut nodes: Vec<NodeRt> = topology
            .bolts
            .iter()
            .zip(terminals)
            .map(|(b, terminal)| NodeRt {
                instances: (0..b.parallelism).map(|_| (b.factory)()).collect(),
                round_robin: 0,
                terminal,
                out_edges: Vec::new(),
            })
            .collect();
        let mut spout_edges = Vec::new();
        for e in &topology.edges {
            match e.from {
                SourceRef::Spout => spout_edges.push((e.to.0, e.grouping.clone())),
                SourceRef::Bolt(b) => nodes[b.0].out_edges.push((e.to.0, e.grouping.clone())),
            }
        }
        let counter = |name: &str| match metrics {
            Some(m) => m.counter(name, &[]),
            None => Arc::new(Counter::new()),
        };
        let node_latency = topology
            .bolts
            .iter()
            .map(|b| {
                metrics.map(|m| m.histogram("stream.execute_latency_ns", &[("bolt", &b.name)]))
            })
            .collect();
        InlineExecutor {
            nodes,
            spout_edges,
            output: Vec::new(),
            processed: counter("stream.processed"),
            emitted: counter("stream.emitted"),
            node_latency,
            lat_ticks: 0,
            tracer,
        }
    }

    /// Feeds one tuple from the spout through the whole DAG.
    pub fn push(&mut self, tuple: DataTuple) {
        self.processed.inc();
        let mut work: VecDeque<(usize, DataTuple)> = VecDeque::new();
        for (node, grouping) in &self.spout_edges.clone() {
            self.enqueue(&mut work, *node, grouping, tuple.clone());
        }
        self.drain_work(work);
    }

    /// Feeds a whole batch through the DAG in one call — the batch-first
    /// twin of [`InlineExecutor::push`]. Tuples are routed in order; with
    /// a single spout edge no tuple is cloned.
    pub fn push_batch(&mut self, batch: TupleBatch) {
        let trace = if self.tracer.is_some() {
            batch.trace
        } else {
            None
        };
        let bolt_start = trace.map(|_| wall_now_ns());
        if let Some(ctx) = trace {
            self.observe_trace_all(&ctx);
        }
        self.processed.add(batch.len() as u64);
        let edges = self.spout_edges.clone();
        let mut work: VecDeque<(usize, DataTuple)> = VecDeque::new();
        match edges.as_slice() {
            [] => {}
            [(node, grouping)] => {
                for t in batch {
                    self.enqueue(&mut work, *node, grouping, t);
                }
            }
            many => {
                let (last, rest) = many.split_last().expect("non-empty edge list");
                for t in batch {
                    for (node, grouping) in rest {
                        self.enqueue(&mut work, *node, grouping, t.clone());
                    }
                    self.enqueue(&mut work, last.0, &last.1, t);
                }
            }
        }
        self.drain_work(work);
        if let (Some(ctx), Some(start), Some(tracer)) = (trace, bolt_start, &self.tracer) {
            tracer.record_span(
                0,
                ctx.cookie,
                ctx.batch_id,
                ctx.born_ns,
                "bolt",
                start,
                wall_now_ns(),
            );
        }
    }

    /// Delivers a traced batch's context to every bolt instance before
    /// the batch runs — sinks latch it to close the trace at commit.
    fn observe_trace_all(&mut self, ctx: &TraceCtx) {
        for node in &mut self.nodes {
            for bolt in &mut node.instances {
                bolt.observe_trace(ctx);
            }
        }
    }

    /// Advances every windowed bolt to `now_ns`, flowing any released
    /// tuples downstream.
    pub fn tick(&mut self, now_ns: u64) {
        self.phase(now_ns, false);
    }

    /// Final flush: gives every bolt a chance to release remaining state.
    pub fn finish(&mut self, now_ns: u64) {
        self.phase(now_ns, true);
    }

    fn phase(&mut self, now_ns: u64, finish: bool) {
        // Tick in node order (upstream nodes were defined first in all our
        // topologies), letting released tuples cascade within one phase.
        for idx in 0..self.nodes.len() {
            let mut emitted = Vec::new();
            for i in 0..self.nodes[idx].instances.len() {
                let mut out = Vec::new();
                if finish {
                    self.nodes[idx].instances[i].finish(now_ns, &mut out);
                } else {
                    self.nodes[idx].instances[i].tick(now_ns, &mut out);
                }
                emitted.append(&mut out);
            }
            let mut work = VecDeque::new();
            self.route_emissions(&mut work, idx, emitted);
            self.drain_work(work);
        }
    }

    fn enqueue(
        &mut self,
        work: &mut VecDeque<(usize, DataTuple)>,
        node: usize,
        grouping: &Grouping,
        tuple: DataTuple,
    ) {
        // Routing picks the instance, but we carry it as (node, tuple) and
        // re-route at execution time; instead, encode instance by routing
        // now and storing it alongside.
        let n = self.nodes[node].instances.len();
        let inst = grouping.route(&tuple, n, &mut self.nodes[node].round_robin);
        work.push_back((node * MAX_PAR + inst, tuple));
    }

    fn route_emissions(
        &mut self,
        work: &mut VecDeque<(usize, DataTuple)>,
        node: usize,
        emitted: Vec<DataTuple>,
    ) {
        if self.nodes[node].terminal {
            self.emitted.add(emitted.len() as u64);
            self.output.extend(emitted);
            return;
        }
        let edges = self.nodes[node].out_edges.clone();
        for t in emitted {
            for (target, grouping) in &edges {
                self.enqueue(work, *target, grouping, t.clone());
            }
        }
    }

    fn drain_work(&mut self, mut work: VecDeque<(usize, DataTuple)>) {
        while let Some((slot, tuple)) = work.pop_front() {
            let (node, inst) = (slot / MAX_PAR, slot % MAX_PAR);
            let mut out = Vec::new();
            let timed = self.node_latency[node].is_some() && {
                self.lat_ticks = self.lat_ticks.wrapping_add(1);
                self.lat_ticks.is_multiple_of(LAT_SAMPLE)
            };
            if timed {
                let t0 = std::time::Instant::now();
                self.nodes[node].instances[inst].execute(&tuple, &mut out);
                if let Some(h) = &self.node_latency[node] {
                    h.record(t0.elapsed().as_nanos() as u64);
                }
            } else {
                self.nodes[node].instances[inst].execute(&tuple, &mut out);
            }
            self.route_emissions(&mut work, node, out);
        }
    }

    /// Drains accumulated terminal emissions.
    pub fn take_output(&mut self) -> Vec<DataTuple> {
        std::mem::take(&mut self.output)
    }

    /// Tuples pushed so far.
    pub fn processed(&self) -> u64 {
        self.processed.get()
    }

    /// Tuples emitted by terminal bolts so far.
    pub fn emitted(&self) -> u64 {
        self.emitted.get()
    }
}

impl Executor for InlineExecutor {
    fn offer(&mut self, batch: TupleBatch) {
        self.push_batch(batch);
    }

    fn tick(&mut self, now_ns: u64) {
        InlineExecutor::tick(self, now_ns);
    }

    fn poll_output(&mut self) -> Vec<DataTuple> {
        self.take_output()
    }

    fn stop(&mut self, now_ns: u64) -> Vec<DataTuple> {
        self.finish(now_ns);
        self.take_output()
    }

    fn processed(&self) -> u64 {
        self.processed.get()
    }

    fn emitted(&self) -> u64 {
        InlineExecutor::emitted(self)
    }
}

/// Encoding base for (node, instance) work slots; bounds per-bolt
/// parallelism in the inline executor.
const MAX_PAR: usize = 1024;

/// Execute-latency sampling period: timing every call would put two
/// `Instant::now` syscalls on each tuple execution.
const LAT_SAMPLE: u64 = 32;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;
    use netalytics_data::Value;

    /// Appends its instance-unique discriminator so tests can observe
    /// routing.
    struct Tag(&'static str);
    impl Bolt for Tag {
        fn execute(&mut self, t: &DataTuple, out: &mut Vec<DataTuple>) {
            out.push(t.clone().with("via", self.0));
        }
    }

    /// Counts tuples; emits the count on tick.
    #[derive(Default)]
    struct Count(u64);
    impl Bolt for Count {
        fn execute(&mut self, _t: &DataTuple, _out: &mut Vec<DataTuple>) {
            self.0 += 1;
        }
        fn tick(&mut self, now: u64, out: &mut Vec<DataTuple>) {
            out.push(DataTuple::new(0, now).with("count", self.0));
            self.0 = 0;
        }
    }

    #[test]
    fn chain_passes_tuples_through() {
        let mut b = Topology::builder("t");
        let a = b.add_bolt("a", 1, || Box::new(Tag("a")));
        let z = b.add_bolt("z", 1, || Box::new(Tag("z")));
        b.wire(SourceRef::Spout, a, Grouping::Shuffle);
        b.wire(SourceRef::Bolt(a), z, Grouping::Shuffle);
        let topo = b.build().unwrap();
        let mut exec = InlineExecutor::new(&topo);
        exec.push(DataTuple::new(1, 0));
        let out = exec.take_output();
        assert_eq!(out.len(), 1);
        // The tuple passed both bolts: two `via` fields appended.
        assert_eq!(out[0].fields.len(), 2);
    }

    #[test]
    fn tick_cascades_downstream() {
        let mut b = Topology::builder("t");
        let c = b.add_bolt("count", 1, Box::<Count>::default);
        let tag = b.add_bolt("tag", 1, || Box::new(Tag("after")));
        b.wire(SourceRef::Spout, c, Grouping::Global);
        b.wire(SourceRef::Bolt(c), tag, Grouping::Global);
        let topo = b.build().unwrap();
        let mut exec = InlineExecutor::new(&topo);
        for i in 0..5 {
            exec.push(DataTuple::new(i, 0));
        }
        assert!(exec.take_output().is_empty(), "counts held until tick");
        exec.tick(1);
        let out = exec.take_output();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get("count").and_then(Value::as_u64), Some(5));
        assert_eq!(out[0].get("via").and_then(Value::as_str), Some("after"));
    }

    #[test]
    fn fanout_duplicates_to_both_branches() {
        let mut b = Topology::builder("t");
        let left = b.add_bolt("l", 1, || Box::new(Tag("l")));
        let right = b.add_bolt("r", 1, || Box::new(Tag("r")));
        b.wire(SourceRef::Spout, left, Grouping::Shuffle);
        b.wire(SourceRef::Spout, right, Grouping::Shuffle);
        let topo = b.build().unwrap();
        let mut exec = InlineExecutor::new(&topo);
        exec.push(DataTuple::new(7, 0));
        let out = exec.take_output();
        let vias: Vec<_> = out
            .iter()
            .filter_map(|t| t.get("via").and_then(Value::as_str))
            .collect();
        assert_eq!(out.len(), 2);
        assert!(vias.contains(&"l") && vias.contains(&"r"));
    }

    #[test]
    fn by_id_grouping_partitions_state() {
        // Two Count instances grouped by id: even/odd ids count apart.
        let mut b = Topology::builder("t");
        let c = b.add_bolt("count", 2, Box::<Count>::default);
        b.wire(SourceRef::Spout, c, Grouping::ById);
        let topo = b.build().unwrap();
        let mut exec = InlineExecutor::new(&topo);
        for i in 0..10 {
            exec.push(DataTuple::new(i % 2, 0)); // ids 0 and 1 alternate
        }
        exec.tick(1);
        let out = exec.take_output();
        let counts: Vec<_> = out
            .iter()
            .filter_map(|t| t.get("count").and_then(Value::as_u64))
            .collect();
        assert_eq!(counts, vec![5, 5]);
    }

    #[test]
    fn push_batch_matches_per_tuple_push() {
        let mk = || {
            let mut b = Topology::builder("t");
            let c = b.add_bolt("count", 2, Box::<Count>::default);
            let tag = b.add_bolt("tag", 1, || Box::new(Tag("after")));
            b.wire(SourceRef::Spout, c, Grouping::ById);
            b.wire(SourceRef::Bolt(c), tag, Grouping::Global);
            InlineExecutor::new(&b.build().unwrap())
        };
        let tuples: Vec<DataTuple> = (0..10).map(|i| DataTuple::new(i % 2, 0)).collect();
        let mut per_tuple = mk();
        for t in tuples.clone() {
            per_tuple.push(t);
        }
        per_tuple.tick(1);
        let mut batched = mk();
        batched.push_batch(TupleBatch::from_tuples(tuples));
        batched.tick(1);
        assert_eq!(per_tuple.take_output(), batched.take_output());
        assert_eq!(per_tuple.processed(), batched.processed());
    }

    #[test]
    fn traced_batches_record_bolt_spans_and_reach_observers() {
        use netalytics_telemetry::{TraceConfig, Tracer};

        /// Latches the last observed trace context into a shared cell.
        struct Latch(Arc<parking_lot::Mutex<Option<TraceCtx>>>);
        impl Bolt for Latch {
            fn execute(&mut self, _t: &DataTuple, _out: &mut Vec<DataTuple>) {}
            fn observe_trace(&mut self, ctx: &TraceCtx) {
                *self.0.lock() = Some(*ctx);
            }
        }

        let seen = Arc::new(parking_lot::Mutex::new(None));
        let mut b = Topology::builder("t");
        let cell = seen.clone();
        let a = b.add_bolt("latch", 1, move || Box::new(Latch(cell.clone())));
        b.wire(SourceRef::Spout, a, Grouping::Shuffle);
        let topo = b.build().unwrap();
        let tracer = Arc::new(Tracer::new(TraceConfig {
            sample_every: 1,
            ..TraceConfig::default()
        }));
        let mut exec = InlineExecutor::with_instruments(&topo, None, Some(Arc::clone(&tracer)));
        let mut batch = TupleBatch::from_tuples(vec![DataTuple::new(1, 0)]);
        batch.trace = Some(TraceCtx {
            cookie: 5,
            batch_id: 1,
            born_ns: 0,
        });
        exec.push_batch(batch);
        assert_eq!(seen.lock().map(|c| c.cookie), Some(5));
        let falls = tracer.waterfalls(5);
        assert_eq!(falls.len(), 1);
        assert_eq!(falls[0].spans[0].stage, "bolt");
    }

    #[test]
    fn processed_counter() {
        let mut b = Topology::builder("t");
        let a = b.add_bolt("a", 1, || Box::new(Tag("a")));
        b.wire(SourceRef::Spout, a, Grouping::Shuffle);
        let topo = b.build().unwrap();
        let mut exec = InlineExecutor::new(&topo);
        for i in 0..3 {
            exec.push(DataTuple::new(i, 0));
        }
        assert_eq!(exec.processed(), 3);
    }
}
