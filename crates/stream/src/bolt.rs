//! The bolt abstraction: one processing step in a topology.

use netalytics_data::DataTuple;

/// A stream-processing element (Storm "bolt", paper §2.2).
///
/// Bolts receive tuples, update internal state, and emit derived tuples.
/// Windowed bolts (rolling counts, rankings) release their state on
/// [`Bolt::tick`], which executors call at the topology's tick interval.
///
/// # Examples
///
/// ```
/// use netalytics_data::{DataTuple, Value};
/// use netalytics_stream::Bolt;
///
/// /// Doubles the `n` field of every tuple.
/// struct Doubler;
/// impl Bolt for Doubler {
///     fn execute(&mut self, t: &DataTuple, out: &mut Vec<DataTuple>) {
///         if let Some(n) = t.get("n").and_then(Value::as_u64) {
///             out.push(DataTuple::new(t.id, t.ts_ns).with("n", n * 2));
///         }
///     }
/// }
/// ```
pub trait Bolt: Send {
    /// Processes one input tuple, appending emissions to `out`.
    fn execute(&mut self, tuple: &DataTuple, out: &mut Vec<DataTuple>);

    /// Batch-level trace hook: executors call this once per traced
    /// input batch, before `execute` runs over its tuples. Sinks that
    /// commit whole batches (the store sink) use it to carry the
    /// context across the bolt boundary and record their own stage
    /// span. Default: not traced, ignore.
    fn observe_trace(&mut self, _ctx: &netalytics_data::TraceCtx) {}

    /// Advances windowed state; called periodically with the current
    /// time. Default: stateless bolt, nothing to release.
    fn tick(&mut self, _now_ns: u64, _out: &mut Vec<DataTuple>) {}

    /// Final flush when the topology shuts down; defaults to a last tick.
    fn finish(&mut self, now_ns: u64, out: &mut Vec<DataTuple>) {
        self.tick(now_ns, out);
    }
}

/// Creates fresh instances of a bolt for parallel execution.
///
/// Storm instantiates `parallelism` copies of each bolt; each instance
/// owns independent state, and the grouping decides which instance sees
/// which tuple.
pub type BoltFactory = Box<dyn Fn() -> Box<dyn Bolt> + Send + Sync>;

/// How tuples are routed among a bolt's parallel instances (Storm
/// "stream groupings").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Grouping {
    /// Round-robin across instances (stateless bolts).
    Shuffle,
    /// Hash of the named fields — same values, same instance (the paper's
    /// Parsing→Counting hashing, §5.3).
    Fields(Vec<String>),
    /// Hash of the tuple ID — same flow, same instance.
    ById,
    /// All tuples to instance 0 (the paper's total Ranking bolt).
    Global,
}

impl Grouping {
    /// Picks the instance index for `tuple` among `n` instances;
    /// `round_robin` supplies and updates shuffle state.
    pub fn route(&self, tuple: &DataTuple, n: usize, round_robin: &mut usize) -> usize {
        debug_assert!(n > 0);
        match self {
            Grouping::Shuffle => {
                *round_robin = (*round_robin + 1) % n;
                *round_robin
            }
            Grouping::Fields(fields) => {
                let mut h = 0xcbf2_9ce4_8422_2325u64;
                for f in fields {
                    if let Some(v) = tuple.get(f) {
                        for b in v.to_string().bytes() {
                            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
                        }
                    }
                    h = (h ^ 0x7c).wrapping_mul(0x100_0000_01b3);
                }
                (h % n as u64) as usize
            }
            Grouping::ById => (tuple.id % n as u64) as usize,
            Grouping::Global => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(id: u64, k: &str) -> DataTuple {
        DataTuple::new(id, 0).with("k", k)
    }

    #[test]
    fn shuffle_round_robins() {
        let g = Grouping::Shuffle;
        let mut rr = 0;
        let picks: Vec<_> = (0..6).map(|i| g.route(&t(i, "x"), 3, &mut rr)).collect();
        assert_eq!(picks, vec![1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn fields_grouping_is_consistent() {
        let g = Grouping::Fields(vec!["k".into()]);
        let mut rr = 0;
        let a1 = g.route(&t(1, "alpha"), 4, &mut rr);
        let a2 = g.route(&t(99, "alpha"), 4, &mut rr);
        assert_eq!(a1, a2, "same field value routes identically");
    }

    #[test]
    fn fields_grouping_spreads_values() {
        let g = Grouping::Fields(vec!["k".into()]);
        let mut rr = 0;
        let distinct: std::collections::HashSet<_> = (0..64)
            .map(|i| g.route(&t(0, &format!("key{i}")), 8, &mut rr))
            .collect();
        assert!(distinct.len() > 3, "{distinct:?}");
    }

    #[test]
    fn by_id_and_global() {
        let mut rr = 0;
        assert_eq!(Grouping::ById.route(&t(13, "x"), 4, &mut rr), 1);
        assert_eq!(Grouping::Global.route(&t(13, "x"), 4, &mut rr), 0);
    }

    #[test]
    fn missing_field_still_routes() {
        let g = Grouping::Fields(vec!["nope".into()]);
        let mut rr = 0;
        let i = g.route(&t(1, "x"), 4, &mut rr);
        assert!(i < 4);
    }
}
