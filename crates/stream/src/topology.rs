//! Topology description: a DAG of bolts fed by a spout.

use std::fmt;

use crate::bolt::{BoltFactory, Grouping};

/// Handle to a bolt node within a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BoltId(pub(crate) usize);

/// Where a bolt's input edge originates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceRef {
    /// The topology's spout (external tuple source).
    Spout,
    /// Another bolt.
    Bolt(BoltId),
}

pub(crate) struct BoltNode {
    pub name: String,
    pub parallelism: usize,
    pub factory: BoltFactory,
}

impl fmt::Debug for BoltNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BoltNode")
            .field("name", &self.name)
            .field("parallelism", &self.parallelism)
            .finish_non_exhaustive()
    }
}

/// An edge in the topology DAG.
#[derive(Debug)]
pub(crate) struct Edge {
    pub from: SourceRef,
    pub to: BoltId,
    pub grouping: Grouping,
}

/// Error raised while assembling a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A wire referenced a bolt id from another topology.
    UnknownBolt,
    /// The edge set contains a cycle — Storm topologies are DAGs (§2.2).
    Cyclic,
    /// A bolt has no input edge and would never run.
    Orphan(String),
    /// The topology has no bolts.
    Empty,
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::UnknownBolt => f.write_str("edge references an unknown bolt"),
            TopologyError::Cyclic => f.write_str("topology contains a cycle"),
            TopologyError::Orphan(name) => write!(f, "bolt {name:?} has no input edge"),
            TopologyError::Empty => f.write_str("topology has no bolts"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// A validated spout→bolts DAG ready to execute.
///
/// # Examples
///
/// ```
/// use netalytics_data::DataTuple;
/// use netalytics_stream::{Bolt, Grouping, SourceRef, Topology};
///
/// struct Pass;
/// impl Bolt for Pass {
///     fn execute(&mut self, t: &DataTuple, out: &mut Vec<DataTuple>) {
///         out.push(t.clone());
///     }
/// }
///
/// let mut b = Topology::builder("demo");
/// let stage = b.add_bolt("pass", 2, || Box::new(Pass));
/// b.wire(SourceRef::Spout, stage, Grouping::Shuffle);
/// let topo = b.build()?;
/// assert_eq!(topo.name(), "demo");
/// # Ok::<(), netalytics_stream::TopologyError>(())
/// ```
#[derive(Debug)]
pub struct Topology {
    name: String,
    pub(crate) bolts: Vec<BoltNode>,
    pub(crate) edges: Vec<Edge>,
}

impl Topology {
    /// Starts building a topology.
    pub fn builder(name: impl Into<String>) -> TopologyBuilder {
        TopologyBuilder {
            name: name.into(),
            bolts: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// The topology name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of bolt nodes.
    pub fn num_bolts(&self) -> usize {
        self.bolts.len()
    }

    /// Total parallel bolt instances (the paper's process accounting).
    pub fn num_instances(&self) -> usize {
        self.bolts.iter().map(|b| b.parallelism).sum()
    }

    /// Bolt names in definition order.
    pub fn bolt_names(&self) -> Vec<&str> {
        self.bolts.iter().map(|b| b.name.as_str()).collect()
    }

    /// Appends a pass-through sink stage: a single-instance bolt wired
    /// (globally grouped) after every current terminal, so it observes
    /// the topology's full output and becomes the sole terminal. Used
    /// by the orchestrator to attach a durable results sink without the
    /// query compiler knowing about storage.
    pub fn with_sink<F, B>(mut self, name: impl Into<String>, factory: F) -> Topology
    where
        F: Fn() -> Box<B> + Send + Sync + 'static,
        B: crate::bolt::Bolt + 'static,
    {
        let terminals = self.terminals();
        let sink = BoltId(self.bolts.len());
        self.bolts.push(BoltNode {
            name: name.into(),
            parallelism: 1,
            factory: Box::new(move || factory() as Box<dyn crate::bolt::Bolt>),
        });
        for (i, is_term) in terminals.into_iter().enumerate() {
            if is_term {
                self.edges.push(Edge {
                    from: SourceRef::Bolt(BoltId(i)),
                    to: sink,
                    grouping: Grouping::Global,
                });
            }
        }
        // Re-validation is unnecessary: adding a fresh node with only
        // incoming edges cannot create a cycle, an orphan, or a
        // dangling reference.
        self
    }

    /// Ids of terminal bolts (no outgoing edges) — their emissions are
    /// the topology's results.
    pub(crate) fn terminals(&self) -> Vec<bool> {
        let mut term = vec![true; self.bolts.len()];
        for e in &self.edges {
            if let SourceRef::Bolt(BoltId(i)) = e.from {
                term[i] = false;
            }
        }
        term
    }
}

/// Incremental [`Topology`] constructor.
pub struct TopologyBuilder {
    name: String,
    bolts: Vec<BoltNode>,
    edges: Vec<Edge>,
}

impl fmt::Debug for TopologyBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TopologyBuilder")
            .field("name", &self.name)
            .field("bolts", &self.bolts.len())
            .finish_non_exhaustive()
    }
}

impl TopologyBuilder {
    /// Adds a bolt with `parallelism` instances created by `factory`.
    pub fn add_bolt<F, B>(
        &mut self,
        name: impl Into<String>,
        parallelism: usize,
        factory: F,
    ) -> BoltId
    where
        F: Fn() -> Box<B> + Send + Sync + 'static,
        B: crate::bolt::Bolt + 'static,
    {
        let id = BoltId(self.bolts.len());
        self.bolts.push(BoltNode {
            name: name.into(),
            parallelism: parallelism.max(1),
            factory: Box::new(move || factory() as Box<dyn crate::bolt::Bolt>),
        });
        id
    }

    /// Connects `from` to `to` with the given grouping.
    pub fn wire(&mut self, from: SourceRef, to: BoltId, grouping: Grouping) -> &mut Self {
        self.edges.push(Edge { from, to, grouping });
        self
    }

    /// Validates and produces the topology.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError`] for empty, cyclic, orphaned or
    /// out-of-range wiring.
    pub fn build(self) -> Result<Topology, TopologyError> {
        if self.bolts.is_empty() {
            return Err(TopologyError::Empty);
        }
        let n = self.bolts.len();
        for e in &self.edges {
            if e.to.0 >= n {
                return Err(TopologyError::UnknownBolt);
            }
            if let SourceRef::Bolt(BoltId(i)) = e.from {
                if i >= n {
                    return Err(TopologyError::UnknownBolt);
                }
            }
        }
        // Every bolt needs an input.
        for (i, b) in self.bolts.iter().enumerate() {
            if !self.edges.iter().any(|e| e.to.0 == i) {
                return Err(TopologyError::Orphan(b.name.clone()));
            }
        }
        // Cycle check via Kahn's algorithm over bolt→bolt edges.
        let mut indeg = vec![0usize; n];
        for e in &self.edges {
            if let SourceRef::Bolt(_) = e.from {
                indeg[e.to.0] += 1;
            }
        }
        let mut stack: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0;
        while let Some(i) = stack.pop() {
            seen += 1;
            for e in &self.edges {
                if e.from == SourceRef::Bolt(BoltId(i)) {
                    indeg[e.to.0] -= 1;
                    if indeg[e.to.0] == 0 {
                        stack.push(e.to.0);
                    }
                }
            }
        }
        if seen != n {
            return Err(TopologyError::Cyclic);
        }
        Ok(Topology {
            name: self.name,
            bolts: self.bolts,
            edges: self.edges,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netalytics_data::DataTuple;

    struct Nop;
    impl crate::bolt::Bolt for Nop {
        fn execute(&mut self, _t: &DataTuple, _out: &mut Vec<DataTuple>) {}
    }

    #[test]
    fn valid_chain_builds() {
        let mut b = Topology::builder("t");
        let x = b.add_bolt("x", 2, || Box::new(Nop));
        let y = b.add_bolt("y", 1, || Box::new(Nop));
        b.wire(SourceRef::Spout, x, Grouping::Shuffle);
        b.wire(SourceRef::Bolt(x), y, Grouping::Global);
        let t = b.build().unwrap();
        assert_eq!(t.num_bolts(), 2);
        assert_eq!(t.num_instances(), 3);
        assert_eq!(t.terminals(), vec![false, true]);
        assert_eq!(t.bolt_names(), vec!["x", "y"]);
    }

    #[test]
    fn with_sink_becomes_sole_terminal() {
        let mut b = Topology::builder("t");
        let x = b.add_bolt("x", 1, || Box::new(Nop));
        let y = b.add_bolt("y", 1, || Box::new(Nop));
        b.wire(SourceRef::Spout, x, Grouping::Shuffle);
        b.wire(SourceRef::Spout, y, Grouping::Shuffle);
        let t = b.build().unwrap().with_sink("sink", || Box::new(Nop));
        assert_eq!(t.bolt_names(), vec!["x", "y", "sink"]);
        assert_eq!(
            t.terminals(),
            vec![false, false, true],
            "both old terminals feed the sink, which is now the only one"
        );
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(
            Topology::builder("t").build().unwrap_err(),
            TopologyError::Empty
        );
    }

    #[test]
    fn orphan_rejected() {
        let mut b = Topology::builder("t");
        let x = b.add_bolt("x", 1, || Box::new(Nop));
        b.add_bolt("lonely", 1, || Box::new(Nop));
        b.wire(SourceRef::Spout, x, Grouping::Shuffle);
        assert!(matches!(
            b.build().unwrap_err(),
            TopologyError::Orphan(name) if name == "lonely"
        ));
    }

    #[test]
    fn cycle_rejected() {
        let mut b = Topology::builder("t");
        let x = b.add_bolt("x", 1, || Box::new(Nop));
        let y = b.add_bolt("y", 1, || Box::new(Nop));
        b.wire(SourceRef::Spout, x, Grouping::Shuffle);
        b.wire(SourceRef::Bolt(x), y, Grouping::Shuffle);
        b.wire(SourceRef::Bolt(y), x, Grouping::Shuffle);
        assert_eq!(b.build().unwrap_err(), TopologyError::Cyclic);
    }

    #[test]
    fn bad_reference_rejected() {
        let mut a = Topology::builder("a");
        let foreign = a.add_bolt("f", 1, || Box::new(Nop));
        let _ = a.add_bolt("g", 1, || Box::new(Nop)); // make id 1 exist in a
        let mut b = Topology::builder("b");
        let x = b.add_bolt("x", 1, || Box::new(Nop));
        b.wire(SourceRef::Spout, x, Grouping::Shuffle);
        b.wire(SourceRef::Bolt(BoltId(5)), x, Grouping::Shuffle);
        let _ = foreign;
        assert_eq!(b.build().unwrap_err(), TopologyError::UnknownBolt);
    }
}
