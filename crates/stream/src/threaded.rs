//! Threaded executor: one worker thread per bolt instance, used by the
//! Fig. 6 scaling experiments.
//!
//! Data moves as tuple *slabs*: each routing step groups a batch by
//! destination instance and performs one channel send per non-empty slab,
//! so channel traffic scales with fan-out, not tuple count. Inter-bolt
//! channels are bounded; when one fills, the configured
//! [`BackpressurePolicy`] either blocks the producer (pushing backpressure
//! toward the spout and, through queue lag, the adaptive sampler of §4.2)
//! or sheds the slab and counts the dropped tuples.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TrySendError};
use netalytics_data::{DataTuple, TraceCtx, TupleBatch};
use netalytics_telemetry::{wall_now_ns, Counter, Histogram, MetricsRegistry, Tracer};
use parking_lot::Mutex;

use crate::bolt::Grouping;
use crate::executor::{BackpressurePolicy, Executor};
use crate::spout::Spout;
use crate::topology::{SourceRef, Topology};

enum Msg {
    /// A tuple slab, optionally carrying the trace context of the batch
    /// it was split from (context follows the slab through every hop).
    Batch(Vec<DataTuple>, Option<TraceCtx>),
    Tick(u64),
    Finish(u64),
}

/// Configuration for [`ThreadedExecutor::spawn`].
#[derive(Debug, Clone, Copy)]
pub struct ThreadedConfig {
    /// Max messages per spout poll.
    pub poll_batch: usize,
    /// Wall-clock interval between ticks delivered to windowed bolts.
    pub tick_interval: Duration,
    /// Spout idle sleep when a poll returns nothing.
    pub idle_sleep: Duration,
    /// Capacity of each bolt instance's input channel, counted in slabs
    /// (channel messages), not tuples.
    pub channel_capacity: usize,
    /// What producers do when an input channel is full.
    pub backpressure: BackpressurePolicy,
}

impl Default for ThreadedConfig {
    fn default() -> Self {
        ThreadedConfig {
            poll_batch: 512,
            tick_interval: Duration::from_millis(100),
            idle_sleep: Duration::from_micros(200),
            channel_capacity: 64,
            backpressure: BackpressurePolicy::Block,
        }
    }
}

pub(crate) fn wall_ns() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default()
        .as_nanos() as u64
}

/// A bolt instance's input endpoint plus the overflow policy applied to
/// data slabs sent into it.
#[derive(Clone)]
struct BoltTx {
    tx: Sender<Msg>,
    policy: BackpressurePolicy,
    shed: Arc<Counter>,
}

impl BoltTx {
    fn send_slab(&self, slab: Vec<DataTuple>, trace: Option<TraceCtx>) {
        if slab.is_empty() {
            return;
        }
        match self.policy {
            BackpressurePolicy::Block => {
                let _ = self.tx.send(Msg::Batch(slab, trace));
            }
            BackpressurePolicy::Shed => {
                if let Err(TrySendError::Full(Msg::Batch(dropped, _))) =
                    self.tx.try_send(Msg::Batch(slab, trace))
                {
                    self.shed.add(dropped.len() as u64);
                }
            }
        }
    }

    /// Ticks are best-effort: a full channel means the instance is busy
    /// with data and will receive the next tick soon enough.
    fn send_tick(&self, now_ns: u64) {
        let _ = self.tx.try_send(Msg::Tick(now_ns));
    }

    /// Finish must arrive regardless of policy — blocking send. Safe
    /// because the receiving instance is still draining its channel.
    fn send_finish(&self, now_ns: u64) {
        let _ = self.tx.send(Msg::Finish(now_ns));
    }
}

struct EdgeRt {
    targets: Vec<BoltTx>,
    grouping: Grouping,
}

impl EdgeRt {
    fn clone_refs(&self) -> Self {
        EdgeRt {
            targets: self.targets.clone(),
            grouping: self.grouping.clone(),
        }
    }
}

/// Routes one batch across one edge: groups tuples into per-instance
/// slabs (preserving the grouping's per-tuple decisions), then sends each
/// non-empty slab once.
fn route_edge(edge: &EdgeRt, rr: &mut usize, batch: Vec<DataTuple>, trace: Option<TraceCtx>) {
    let n = edge.targets.len();
    if n == 1 {
        edge.targets[0].send_slab(batch, trace);
        return;
    }
    let mut slabs: Vec<Vec<DataTuple>> = (0..n).map(|_| Vec::new()).collect();
    for t in batch {
        let i = edge.grouping.route(&t, n, rr);
        slabs[i].push(t);
    }
    for (i, slab) in slabs.into_iter().enumerate() {
        edge.targets[i].send_slab(slab, trace);
    }
}

fn route_batch(edges: &[EdgeRt], rr: &mut [usize], batch: Vec<DataTuple>, trace: Option<TraceCtx>) {
    if batch.is_empty() {
        return;
    }
    match edges {
        [] => {}
        [only] => route_edge(only, &mut rr[0], batch, trace),
        many => {
            // Clone for every edge but the last, which takes ownership.
            let last = many.len() - 1;
            let mut batch = Some(batch);
            for (k, (e, r)) in many.iter().zip(rr.iter_mut()).enumerate() {
                let b = if k == last {
                    batch.take().expect("batch consumed before last edge")
                } else {
                    batch.as_ref().expect("batch gone mid-fanout").clone()
                };
                route_edge(e, r, b, trace);
            }
        }
    }
}

/// A running threaded topology.
///
/// Tuples flow spout → bolts on dedicated threads; terminal-bolt
/// emissions appear on [`ThreadedExecutor::output`]. Call
/// [`ThreadedExecutor::shutdown`] to finish windows, join threads and
/// collect the residual output.
pub struct ThreadedExecutor {
    output_rx: Receiver<DataTuple>,
    stop: Arc<AtomicBool>,
    spout_handle: Option<JoinHandle<()>>,
    tick_handle: Option<JoinHandle<()>>,
    /// Instance endpoints + threads, grouped per bolt node in topological
    /// order (for Finish sequencing).
    node_threads: Vec<Vec<(BoltTx, JoinHandle<()>)>>,
    /// Every instance endpoint, for caller-driven ticks.
    all_tx: Vec<BoltTx>,
    /// Spout-edge routing table for caller-driven [`Executor::offer`].
    spout_edges: Vec<EdgeRt>,
    offer_rr: Vec<usize>,
    spout_tuples: Arc<Counter>,
    emitted: Arc<Counter>,
    shed: Arc<Counter>,
    /// `e2e.tuple_latency_ns` — capture timestamp to topology entry,
    /// recorded on the wall clock as tuples arrive. Present only when the
    /// executor was built with a metrics registry.
    e2e_latency: Option<Arc<Histogram>>,
}

impl std::fmt::Debug for ThreadedExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadedExecutor")
            .field("nodes", &self.node_threads.len())
            .finish_non_exhaustive()
    }
}

impl ThreadedExecutor {
    /// Spawns worker threads for every bolt instance plus a spout poller
    /// and a tick timer.
    pub fn spawn(topology: &Topology, spout: Box<dyn Spout>, config: ThreadedConfig) -> Self {
        Self::spawn_inner(topology, Some(spout), config, None, None)
    }

    /// [`ThreadedExecutor::spawn`] with telemetry: counters register as
    /// `stream.*`, bolts record per-slab execute latency, and arriving
    /// tuples with a capture timestamp feed `e2e.tuple_latency_ns`.
    pub fn spawn_with_metrics(
        topology: &Topology,
        spout: Box<dyn Spout>,
        config: ThreadedConfig,
        metrics: Option<&MetricsRegistry>,
    ) -> Self {
        Self::spawn_inner(topology, Some(spout), config, metrics, None)
    }

    /// Spawns the bolt threads and ticker only; data arrives through
    /// [`Executor::offer`] from the calling thread.
    pub fn spawn_driven(topology: &Topology, config: ThreadedConfig) -> Self {
        Self::spawn_inner(topology, None, config, None, None)
    }

    /// Caller-driven spawn with telemetry, as
    /// [`ThreadedExecutor::spawn_with_metrics`].
    pub fn spawn_driven_with_metrics(
        topology: &Topology,
        config: ThreadedConfig,
        metrics: Option<&MetricsRegistry>,
    ) -> Self {
        Self::spawn_inner(topology, None, config, metrics, None)
    }

    /// Caller-driven spawn with telemetry and an optional [`Tracer`]:
    /// traced slabs record a `bolt` stage span per executing instance
    /// (the context follows the slab through every inter-bolt hop) and
    /// each instance receives [`crate::Bolt::observe_trace`] before
    /// running the slab.
    pub fn spawn_driven_traced(
        topology: &Topology,
        config: ThreadedConfig,
        metrics: Option<&MetricsRegistry>,
        tracer: Option<Arc<Tracer>>,
    ) -> Self {
        Self::spawn_inner(topology, None, config, metrics, tracer)
    }

    fn spawn_inner(
        topology: &Topology,
        spout: Option<Box<dyn Spout>>,
        config: ThreadedConfig,
        metrics: Option<&MetricsRegistry>,
        tracer: Option<Arc<Tracer>>,
    ) -> Self {
        let n = topology.bolts.len();
        let terminals = topology.terminals();
        let (output_tx, output_rx) = unbounded::<DataTuple>();
        let stop = Arc::new(AtomicBool::new(false));
        let counter = |name: &str| match metrics {
            Some(m) => m.counter(name, &[]),
            None => Arc::new(Counter::new()),
        };
        let spout_tuples = counter("stream.processed");
        let emitted = counter("stream.emitted");
        let shed = counter("stream.shed");
        let e2e_latency = metrics.map(|m| m.histogram("e2e.tuple_latency_ns", &[]));

        // Bounded input channel per instance. The terminal output channel
        // stays unbounded: finishing bolts must never block on emission
        // while shutdown is joining their tier.
        let cap = config.channel_capacity.max(1);
        let mut inst_tx: Vec<Vec<BoltTx>> = Vec::with_capacity(n);
        let mut inst_rx: Vec<Vec<Receiver<Msg>>> = Vec::with_capacity(n);
        for node in &topology.bolts {
            let mut txs = Vec::new();
            let mut rxs = Vec::new();
            for _ in 0..node.parallelism {
                let (tx, rx) = bounded::<Msg>(cap);
                txs.push(BoltTx {
                    tx,
                    policy: config.backpressure,
                    shed: shed.clone(),
                });
                rxs.push(rx);
            }
            inst_tx.push(txs);
            inst_rx.push(rxs);
        }

        // Build routing tables.
        let spout_edges: Vec<EdgeRt> = topology
            .edges
            .iter()
            .filter(|e| e.from == SourceRef::Spout)
            .map(|e| EdgeRt {
                targets: inst_tx[e.to.0].clone(),
                grouping: e.grouping.clone(),
            })
            .collect();
        let node_edges: Vec<Vec<EdgeRt>> = (0..n)
            .map(|i| {
                topology
                    .edges
                    .iter()
                    .filter(|e| e.from == SourceRef::Bolt(crate::topology::BoltId(i)))
                    .map(|e| EdgeRt {
                        targets: inst_tx[e.to.0].clone(),
                        grouping: e.grouping.clone(),
                    })
                    .collect()
            })
            .collect();

        // Spawn instance threads.
        let mut node_threads: Vec<Vec<(BoltTx, JoinHandle<()>)>> = Vec::with_capacity(n);
        let mut widx = 0usize; // sequential worker index → tracer shard
        for (i, node) in topology.bolts.iter().enumerate() {
            let mut threads = Vec::new();
            let latency =
                metrics.map(|m| m.histogram("stream.execute_latency_ns", &[("bolt", &node.name)]));
            for (inst, rx) in inst_rx[i].drain(..).enumerate() {
                let mut bolt = (node.factory)();
                let edges: Vec<EdgeRt> = node_edges[i].iter().map(EdgeRt::clone_refs).collect();
                let terminal = terminals[i];
                let output_tx = output_tx.clone();
                let latency = latency.clone();
                let emitted = emitted.clone();
                let tracer = tracer.clone();
                let worker = widx;
                widx += 1;
                let handle = std::thread::Builder::new()
                    .name(format!("bolt-{}-{inst}", node.name))
                    .spawn(move || {
                        let mut rr = vec![0usize; edges.len().max(1)];
                        let dispatch =
                            |out: Vec<DataTuple>, rr: &mut Vec<usize>, trace: Option<TraceCtx>| {
                                if terminal {
                                    emitted.add(out.len() as u64);
                                    for t in out {
                                        let _ = output_tx.send(t);
                                    }
                                } else {
                                    route_batch(&edges, rr, out, trace);
                                }
                            };
                        while let Ok(msg) = rx.recv() {
                            let mut out = Vec::new();
                            let mut trace: Option<TraceCtx> = None;
                            match msg {
                                Msg::Batch(slab, ctx) => {
                                    trace = ctx.filter(|_| tracer.is_some());
                                    let span_start = trace.map(|_| wall_now_ns());
                                    if let Some(ctx) = &trace {
                                        bolt.observe_trace(ctx);
                                    }
                                    match &latency {
                                        // One timing per slab, amortized
                                        // over its tuples.
                                        Some(h) => {
                                            let t0 = std::time::Instant::now();
                                            for t in &slab {
                                                bolt.execute(t, &mut out);
                                            }
                                            h.record(t0.elapsed().as_nanos() as u64);
                                        }
                                        None => {
                                            for t in &slab {
                                                bolt.execute(t, &mut out);
                                            }
                                        }
                                    }
                                    if let (Some(ctx), Some(start), Some(tr)) =
                                        (&trace, span_start, &tracer)
                                    {
                                        tr.record_span(
                                            worker,
                                            ctx.cookie,
                                            ctx.batch_id,
                                            ctx.born_ns,
                                            "bolt",
                                            start,
                                            wall_now_ns(),
                                        );
                                    }
                                }
                                Msg::Tick(now) => bolt.tick(now, &mut out),
                                Msg::Finish(now) => {
                                    bolt.finish(now, &mut out);
                                    dispatch(out, &mut rr, None);
                                    break;
                                }
                            }
                            dispatch(out, &mut rr, trace);
                        }
                    })
                    .expect("spawn bolt thread");
                threads.push((inst_tx[i][inst].clone(), handle));
            }
            node_threads.push(threads);
        }

        // Spout thread (absent in caller-driven mode).
        let spout_handle = spout.map(|spout| {
            let stop = stop.clone();
            let counter = spout_tuples.clone();
            let e2e = e2e_latency.clone();
            let edges: Vec<EdgeRt> = spout_edges.iter().map(EdgeRt::clone_refs).collect();
            let spout = Mutex::new(spout);
            std::thread::Builder::new()
                .name("spout".into())
                .spawn(move || {
                    let mut spout = spout.into_inner();
                    let mut rr = vec![0usize; edges.len().max(1)];
                    while !stop.load(Ordering::Relaxed) {
                        let batch = spout.poll_batch(config.poll_batch);
                        if batch.is_empty() {
                            std::thread::sleep(config.idle_sleep);
                            continue;
                        }
                        counter.add(batch.len() as u64);
                        if let Some(h) = &e2e {
                            record_e2e(h, batch.tuples.iter());
                        }
                        let trace = batch.trace;
                        route_batch(&edges, &mut rr, batch.into_tuples(), trace);
                    }
                })
                .expect("spawn spout thread")
        });

        // Tick thread.
        let all_tx: Vec<BoltTx> = inst_tx.iter().flatten().cloned().collect();
        let tick_handle = {
            let stop = stop.clone();
            let all_tx = all_tx.clone();
            Some(
                std::thread::Builder::new()
                    .name("ticker".into())
                    .spawn(move || {
                        let step = config.tick_interval.min(Duration::from_millis(20));
                        let mut elapsed = Duration::ZERO;
                        loop {
                            // Sleep in short steps so shutdown is prompt
                            // even with very long tick intervals.
                            std::thread::sleep(step);
                            if stop.load(Ordering::Relaxed) {
                                return;
                            }
                            elapsed += step;
                            if elapsed >= config.tick_interval {
                                elapsed = Duration::ZERO;
                                let now = wall_ns();
                                for tx in &all_tx {
                                    tx.send_tick(now);
                                }
                            }
                        }
                    })
                    .expect("spawn tick thread"),
            )
        };

        let offer_rr = vec![0usize; spout_edges.len().max(1)];
        ThreadedExecutor {
            output_rx,
            stop,
            spout_handle,
            tick_handle,
            node_threads,
            all_tx,
            spout_edges,
            offer_rr,
            spout_tuples,
            emitted,
            shed,
            e2e_latency,
        }
    }

    /// The stream of terminal-bolt emissions.
    pub fn output(&self) -> &Receiver<DataTuple> {
        &self.output_rx
    }

    /// Tuples accepted so far (spout polls plus [`Executor::offer`]).
    pub fn spout_tuples(&self) -> u64 {
        self.spout_tuples.get()
    }

    /// Tuples emitted by terminal bolts so far.
    pub fn emitted(&self) -> u64 {
        self.emitted.get()
    }

    /// Tuples dropped by the [`BackpressurePolicy::Shed`] policy so far.
    pub fn shed_tuples(&self) -> u64 {
        self.shed.get()
    }

    /// Stops the spout and ticker, finishes bolts upstream-first, joins
    /// all threads and returns any output still buffered.
    pub fn shutdown(mut self) -> Vec<DataTuple> {
        self.drain_shutdown(wall_ns())
    }

    /// The shutdown protocol, reusable from [`Executor::stop`]:
    ///
    /// 1. Stop and join the spout and ticker — no new data enters.
    /// 2. Tier by tier in topological order: send `Finish`, then join.
    ///    Joining tier *k* before finishing tier *k + 1* guarantees every
    ///    in-flight slab is executed before downstream windows close, and
    ///    each tier's threads keep draining their channels until their own
    ///    `Finish` arrives, so the blocking sends cannot deadlock (the
    ///    topology is a DAG).
    /// 3. Block on the output channel until every sender is gone — the
    ///    channel disconnects exactly when the last bolt thread exits, so
    ///    no polling loop is needed.
    fn drain_shutdown(&mut self, now_ns: u64) -> Vec<DataTuple> {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.spout_handle.take() {
            let _ = h.join();
        }
        if let Some(h) = self.tick_handle.take() {
            let _ = h.join();
        }
        for tier in self.node_threads.drain(..) {
            for (tx, _) in &tier {
                tx.send_finish(now_ns);
            }
            for (_, handle) in tier {
                let _ = handle.join();
            }
        }
        // All bolt threads have exited, so all output senders are dropped:
        // recv() yields the buffered tail, then disconnects.
        let mut collected = Vec::new();
        while let Ok(t) = self.output_rx.recv() {
            collected.push(t);
        }
        collected
    }
}

/// Records capture→now latency for every tuple carrying a capture
/// timestamp. Tuples with `ts_ns == 0` (synthetic, no capture time) and
/// clock skew (capture after now) are skipped rather than recorded as
/// nonsense.
pub(crate) fn record_e2e<'a>(h: &Histogram, tuples: impl Iterator<Item = &'a DataTuple>) {
    let now = wall_ns();
    for t in tuples {
        if t.ts_ns > 0 && t.ts_ns <= now {
            h.record(now - t.ts_ns);
        }
    }
}

impl Executor for ThreadedExecutor {
    fn offer(&mut self, batch: TupleBatch) {
        if batch.is_empty() || self.node_threads.is_empty() {
            return;
        }
        self.spout_tuples.add(batch.len() as u64);
        if let Some(h) = &self.e2e_latency {
            record_e2e(h, batch.tuples.iter());
        }
        let trace = batch.trace;
        route_batch(
            &self.spout_edges,
            &mut self.offer_rr,
            batch.into_tuples(),
            trace,
        );
    }

    fn tick(&mut self, now_ns: u64) {
        for tx in &self.all_tx {
            tx.send_tick(now_ns);
        }
    }

    fn poll_output(&mut self) -> Vec<DataTuple> {
        let mut out = Vec::new();
        while let Ok(t) = self.output_rx.try_recv() {
            out.push(t);
        }
        out
    }

    fn stop(&mut self, now_ns: u64) -> Vec<DataTuple> {
        self.drain_shutdown(now_ns)
    }

    fn processed(&self) -> u64 {
        self.spout_tuples()
    }

    fn emitted(&self) -> u64 {
        ThreadedExecutor::emitted(self)
    }

    fn shed_tuples(&self) -> u64 {
        ThreadedExecutor::shed_tuples(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spout::VecSpout;
    use crate::topologies::{build, ProcessorSpec};
    use netalytics_data::Value;

    #[test]
    fn threaded_top_k_matches_expectation() {
        let topo = build(
            &ProcessorSpec::new("top-k")
                .with_arg("k", "2")
                .with_arg("par", "4")
                .with_arg("key", "url"),
        )
        .unwrap();
        let tuples: Vec<DataTuple> = (0..300)
            .map(|i| {
                let url = match i % 6 {
                    0..=2 => "/hot",
                    3 | 4 => "/warm",
                    _ => "/cold",
                };
                DataTuple::new(i, 1_000 + i).with("url", url)
            })
            .collect();
        let exec = ThreadedExecutor::spawn(
            &topo,
            Box::new(VecSpout::new(tuples)),
            ThreadedConfig::default(),
        );
        // Wait for the spout to drain.
        while exec.spout_tuples() < 300 {
            std::thread::sleep(Duration::from_millis(5));
        }
        std::thread::sleep(Duration::from_millis(20));
        let out = exec.shutdown();
        // The global ranker's final window must rank /hot first.
        let last_window: Vec<_> = out.iter().filter(|t| t.source == "rank").collect();
        assert!(!last_window.is_empty(), "no rankings emitted");
        let top = last_window
            .iter()
            .find(|t| t.get("rank").and_then(Value::as_u64) == Some(0))
            .unwrap();
        assert_eq!(top.get("key").and_then(Value::as_str), Some("/hot"));
    }

    #[test]
    fn threaded_group_sum_totals_are_exact() {
        let topo = build(
            &ProcessorSpec::new("group-sum")
                .with_arg("group", "dst_ip")
                .with_arg("value", "bytes"),
        )
        .unwrap();
        let tuples: Vec<DataTuple> = (0..1000)
            .map(|i| {
                DataTuple::new(i, 0)
                    .with("dst_ip", if i % 2 == 0 { "a" } else { "b" })
                    .with("bytes", 10.0)
            })
            .collect();
        let exec = ThreadedExecutor::spawn(
            &topo,
            Box::new(VecSpout::new(tuples)),
            ThreadedConfig {
                tick_interval: Duration::from_secs(3600), // no mid-run ticks
                ..Default::default()
            },
        );
        while exec.spout_tuples() < 1000 {
            std::thread::sleep(Duration::from_millis(5));
        }
        std::thread::sleep(Duration::from_millis(50));
        let out = exec.shutdown();
        let mut sums: Vec<(String, f64)> = out
            .iter()
            .filter_map(|t| {
                Some((
                    t.get("dst_ip")?.to_string(),
                    t.get("sum").and_then(Value::as_f64)?,
                ))
            })
            .collect();
        sums.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(sums, vec![("a".into(), 5000.0), ("b".into(), 5000.0)]);
    }

    #[test]
    fn driven_executor_accepts_offers_and_drains_on_stop() {
        let topo = build(
            &ProcessorSpec::new("group-sum")
                .with_arg("group", "k")
                .with_arg("value", "v"),
        )
        .unwrap();
        let mut exec = ThreadedExecutor::spawn_driven(
            &topo,
            ThreadedConfig {
                tick_interval: Duration::from_secs(3600),
                channel_capacity: 4,
                ..Default::default()
            },
        );
        for chunk in 0..50 {
            let batch: TupleBatch = (0..20)
                .map(|i| {
                    DataTuple::new(chunk * 20 + i, 0)
                        .with("k", "x")
                        .with("v", 1.0)
                })
                .collect();
            exec.offer(batch);
        }
        assert_eq!(exec.processed(), 1000);
        let out = exec.stop(1);
        let total: f64 = out
            .iter()
            .filter_map(|t| t.get("sum").and_then(Value::as_f64))
            .sum();
        assert_eq!(total, 1000.0, "Block policy loses nothing");
        assert_eq!(Executor::shed_tuples(&exec), 0);
    }
}
