//! Threaded executor: one worker thread per bolt instance, used by the
//! Fig. 6 scaling experiments.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use crossbeam::channel::{unbounded, Receiver, Sender};
use netalytics_data::DataTuple;
use parking_lot::Mutex;

use crate::bolt::Grouping;
use crate::spout::Spout;
use crate::topology::{SourceRef, Topology};

enum Msg {
    Tuple(DataTuple),
    Tick(u64),
    Finish(u64),
}

/// Configuration for [`ThreadedExecutor::spawn`].
#[derive(Debug, Clone, Copy)]
pub struct ThreadedConfig {
    /// Max tuples per spout poll.
    pub poll_batch: usize,
    /// Wall-clock interval between ticks delivered to windowed bolts.
    pub tick_interval: Duration,
    /// Spout idle sleep when a poll returns nothing.
    pub idle_sleep: Duration,
}

impl Default for ThreadedConfig {
    fn default() -> Self {
        ThreadedConfig {
            poll_batch: 512,
            tick_interval: Duration::from_millis(100),
            idle_sleep: Duration::from_micros(200),
        }
    }
}

fn wall_ns() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default()
        .as_nanos() as u64
}

struct EdgeRt {
    targets: Vec<Sender<Msg>>,
    grouping: Grouping,
}

fn route(edges: &[EdgeRt], rr: &mut [usize], tuple: DataTuple) {
    match edges {
        [] => {}
        [only] => {
            let i = only.grouping.route(&tuple, only.targets.len(), &mut rr[0]);
            let _ = only.targets[i].send(Msg::Tuple(tuple));
        }
        many => {
            for (e, r) in many.iter().zip(rr.iter_mut()) {
                let i = e.grouping.route(&tuple, e.targets.len(), r);
                let _ = e.targets[i].send(Msg::Tuple(tuple.clone()));
            }
        }
    }
}

/// A running threaded topology.
///
/// Tuples flow spout → bolts on dedicated threads; terminal-bolt
/// emissions appear on [`ThreadedExecutor::output`]. Call
/// [`ThreadedExecutor::shutdown`] to finish windows, join threads and
/// collect the residual output.
pub struct ThreadedExecutor {
    output_rx: Receiver<DataTuple>,
    stop: Arc<AtomicBool>,
    spout_handle: Option<JoinHandle<()>>,
    tick_handle: Option<JoinHandle<()>>,
    /// Instance threads, grouped per bolt node in topological order, with
    /// each instance's sender (for Finish sequencing).
    node_threads: Vec<Vec<(Sender<Msg>, JoinHandle<()>)>>,
    spout_tuples: Arc<AtomicU64>,
}

impl std::fmt::Debug for ThreadedExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadedExecutor")
            .field("nodes", &self.node_threads.len())
            .finish_non_exhaustive()
    }
}

impl ThreadedExecutor {
    /// Spawns worker threads for every bolt instance plus a spout poller
    /// and a tick timer.
    pub fn spawn(topology: &Topology, spout: Box<dyn Spout>, config: ThreadedConfig) -> Self {
        let n = topology.bolts.len();
        let terminals = topology.terminals();
        let (output_tx, output_rx) = unbounded::<DataTuple>();
        let stop = Arc::new(AtomicBool::new(false));
        let spout_tuples = Arc::new(AtomicU64::new(0));

        // Create channels per instance.
        let mut inst_tx: Vec<Vec<Sender<Msg>>> = Vec::with_capacity(n);
        let mut inst_rx: Vec<Vec<Receiver<Msg>>> = Vec::with_capacity(n);
        for node in &topology.bolts {
            let mut txs = Vec::new();
            let mut rxs = Vec::new();
            for _ in 0..node.parallelism {
                let (tx, rx) = unbounded::<Msg>();
                txs.push(tx);
                rxs.push(rx);
            }
            inst_tx.push(txs);
            inst_rx.push(rxs);
        }

        // Build routing tables.
        let spout_edges: Vec<EdgeRt> = topology
            .edges
            .iter()
            .filter(|e| e.from == SourceRef::Spout)
            .map(|e| EdgeRt {
                targets: inst_tx[e.to.0].clone(),
                grouping: e.grouping.clone(),
            })
            .collect();
        let node_edges: Vec<Vec<EdgeRt>> = (0..n)
            .map(|i| {
                topology
                    .edges
                    .iter()
                    .filter(|e| e.from == SourceRef::Bolt(crate::topology::BoltId(i)))
                    .map(|e| EdgeRt {
                        targets: inst_tx[e.to.0].clone(),
                        grouping: e.grouping.clone(),
                    })
                    .collect()
            })
            .collect();

        // Spawn instance threads.
        let mut node_threads: Vec<Vec<(Sender<Msg>, JoinHandle<()>)>> = Vec::with_capacity(n);
        for (i, node) in topology.bolts.iter().enumerate() {
            let mut threads = Vec::new();
            for (inst, rx) in inst_rx[i].drain(..).enumerate() {
                let mut bolt = (node.factory)();
                let edges: Vec<EdgeRt> = node_edges[i]
                    .iter()
                    .map(|e| EdgeRt {
                        targets: e.targets.clone(),
                        grouping: e.grouping.clone(),
                    })
                    .collect();
                let terminal = terminals[i];
                let output_tx = output_tx.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("bolt-{}-{inst}", node.name))
                    .spawn(move || {
                        let mut rr = vec![0usize; edges.len().max(1)];
                        let dispatch = |out: Vec<DataTuple>, rr: &mut Vec<usize>| {
                            for t in out {
                                if terminal {
                                    let _ = output_tx.send(t);
                                } else {
                                    route(&edges, rr, t);
                                }
                            }
                        };
                        while let Ok(msg) = rx.recv() {
                            let mut out = Vec::new();
                            match msg {
                                Msg::Tuple(t) => bolt.execute(&t, &mut out),
                                Msg::Tick(now) => bolt.tick(now, &mut out),
                                Msg::Finish(now) => {
                                    bolt.finish(now, &mut out);
                                    dispatch(out, &mut rr);
                                    break;
                                }
                            }
                            dispatch(out, &mut rr);
                        }
                    })
                    .expect("spawn bolt thread");
                threads.push((inst_tx[i][inst].clone(), handle));
            }
            node_threads.push(threads);
        }

        // Spout thread.
        let spout_handle = {
            let stop = stop.clone();
            let counter = spout_tuples.clone();
            let spout = Mutex::new(spout);
            Some(
                std::thread::Builder::new()
                    .name("spout".into())
                    .spawn(move || {
                        let mut spout = spout.into_inner();
                        let mut rr = vec![0usize; spout_edges.len().max(1)];
                        while !stop.load(Ordering::Relaxed) {
                            let tuples = spout.poll(config.poll_batch);
                            if tuples.is_empty() {
                                std::thread::sleep(config.idle_sleep);
                                continue;
                            }
                            counter.fetch_add(tuples.len() as u64, Ordering::Relaxed);
                            for t in tuples {
                                route(&spout_edges, &mut rr, t);
                            }
                        }
                    })
                    .expect("spawn spout thread"),
            )
        };

        // Tick thread.
        let tick_handle = {
            let stop = stop.clone();
            let all_tx: Vec<Sender<Msg>> = inst_tx.iter().flatten().cloned().collect();
            Some(
                std::thread::Builder::new()
                    .name("ticker".into())
                    .spawn(move || {
                        let step = config.tick_interval.min(Duration::from_millis(20));
                        let mut elapsed = Duration::ZERO;
                        loop {
                            // Sleep in short steps so shutdown is prompt
                            // even with very long tick intervals.
                            std::thread::sleep(step);
                            if stop.load(Ordering::Relaxed) {
                                return;
                            }
                            elapsed += step;
                            if elapsed >= config.tick_interval {
                                elapsed = Duration::ZERO;
                                let now = wall_ns();
                                for tx in &all_tx {
                                    let _ = tx.send(Msg::Tick(now));
                                }
                            }
                        }
                    })
                    .expect("spawn tick thread"),
            )
        };

        ThreadedExecutor {
            output_rx,
            stop,
            spout_handle,
            tick_handle,
            node_threads,
            spout_tuples,
        }
    }

    /// The stream of terminal-bolt emissions.
    pub fn output(&self) -> &Receiver<DataTuple> {
        &self.output_rx
    }

    /// Tuples pulled from the spout so far.
    pub fn spout_tuples(&self) -> u64 {
        self.spout_tuples.load(Ordering::Relaxed)
    }

    /// Stops the spout and ticker, finishes bolts upstream-first, joins
    /// all threads and returns any output still buffered.
    pub fn shutdown(mut self) -> Vec<DataTuple> {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.spout_handle.take() {
            let _ = h.join();
        }
        if let Some(h) = self.tick_handle.take() {
            let _ = h.join();
        }
        let now = wall_ns();
        // Finish in node order (catalog topologies wire upstream-first),
        // joining each tier before finishing the next so final emissions
        // are processed downstream.
        let mut collected = Vec::new();
        for tier in self.node_threads.drain(..) {
            for (tx, _) in &tier {
                let _ = tx.send(Msg::Finish(now));
            }
            for (_, handle) in tier {
                // Keep the output channel drained while joining.
                while !handle.is_finished() {
                    while let Ok(t) = self.output_rx.try_recv() {
                        collected.push(t);
                    }
                    std::thread::yield_now();
                }
                let _ = handle.join();
            }
        }
        while let Ok(t) = self.output_rx.try_recv() {
            collected.push(t);
        }
        collected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spout::VecSpout;
    use crate::topologies::{build, ProcessorSpec};
    use netalytics_data::Value;

    #[test]
    fn threaded_top_k_matches_expectation() {
        let topo = build(
            &ProcessorSpec::new("top-k")
                .with_arg("k", "2")
                .with_arg("par", "4")
                .with_arg("key", "url"),
        )
        .unwrap();
        let tuples: Vec<DataTuple> = (0..300)
            .map(|i| {
                let url = match i % 6 {
                    0..=2 => "/hot",
                    3 | 4 => "/warm",
                    _ => "/cold",
                };
                DataTuple::new(i, 1_000 + i).with("url", url)
            })
            .collect();
        let exec = ThreadedExecutor::spawn(
            &topo,
            Box::new(VecSpout::new(tuples)),
            ThreadedConfig::default(),
        );
        // Wait for the spout to drain.
        while exec.spout_tuples() < 300 {
            std::thread::sleep(Duration::from_millis(5));
        }
        std::thread::sleep(Duration::from_millis(20));
        let out = exec.shutdown();
        // The global ranker's final window must rank /hot first.
        let last_window: Vec<_> = out
            .iter()
            .filter(|t| t.source == "rank")
            .collect();
        assert!(!last_window.is_empty(), "no rankings emitted");
        let top = last_window
            .iter()
            .find(|t| t.get("rank").and_then(Value::as_u64) == Some(0))
            .unwrap();
        assert_eq!(top.get("key").and_then(Value::as_str), Some("/hot"));
    }

    #[test]
    fn threaded_group_sum_totals_are_exact() {
        let topo = build(
            &ProcessorSpec::new("group-sum")
                .with_arg("group", "dst_ip")
                .with_arg("value", "bytes"),
        )
        .unwrap();
        let tuples: Vec<DataTuple> = (0..1000)
            .map(|i| {
                DataTuple::new(i, 0)
                    .with("dst_ip", if i % 2 == 0 { "a" } else { "b" })
                    .with("bytes", 10.0)
            })
            .collect();
        let exec = ThreadedExecutor::spawn(
            &topo,
            Box::new(VecSpout::new(tuples)),
            ThreadedConfig {
                tick_interval: Duration::from_secs(3600), // no mid-run ticks
                ..Default::default()
            },
        );
        while exec.spout_tuples() < 1000 {
            std::thread::sleep(Duration::from_millis(5));
        }
        std::thread::sleep(Duration::from_millis(50));
        let out = exec.shutdown();
        let mut sums: Vec<(String, f64)> = out
            .iter()
            .filter_map(|t| {
                Some((
                    t.get("dst_ip")?.to_string(),
                    t.get("sum").and_then(Value::as_f64)?,
                ))
            })
            .collect();
        sums.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(sums, vec![("a".into(), 5000.0), ("b".into(), 5000.0)]);
    }
}
