//! The unified executor abstraction over the inline and threaded engines.
//!
//! Both engines consume the same batch-first transport: callers offer
//! [`TupleBatch`]es, the executor routes tuple slabs through the topology
//! (grouping each batch by destination instance once), and terminal-bolt
//! emissions come back out through [`Executor::poll_output`]. Code that
//! drives a topology — the NFV aggregator, the orchestrator, benchmarks,
//! conformance tests — programs against `dyn Executor` and picks an engine
//! with [`ExecutorMode`] at construction time.

use std::sync::Arc;

use netalytics_data::{DataTuple, TupleBatch};
use netalytics_telemetry::{MetricsRegistry, Tracer};

use crate::inline::InlineExecutor;
use crate::sharded::{ShardedConfig, ShardedExecutor};
use crate::threaded::{ThreadedConfig, ThreadedExecutor};
use crate::topology::Topology;

/// What happens when a bounded inter-bolt channel is full (paper §4.2's
/// load-shedding philosophy applied inside the stream processor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackpressurePolicy {
    /// Block the producer until the consumer catches up. Backpressure
    /// propagates upstream to the spout, whose queue lag then drives the
    /// adaptive-sampling feedback loop.
    #[default]
    Block,
    /// Drop the offered slab and count its tuples in
    /// [`Executor::shed_tuples`]. Keeps producers real-time at the cost
    /// of completeness, like the paper's sampling under overload.
    Shed,
}

/// A running analytics topology that exchanges tuple batches.
///
/// The contract both engines satisfy:
///
/// * [`offer`](Executor::offer) is the only data entry point; one call
///   routes the whole batch (per-destination slabs, not per-tuple sends).
/// * [`tick`](Executor::tick) advances windowed bolts to a timestamp.
/// * [`poll_output`](Executor::poll_output) drains terminal emissions
///   produced so far; it never blocks.
/// * [`stop`](Executor::stop) flushes windows upstream-first, drains all
///   in-flight tuples gracefully, and returns the residual output.
///   Calling any method after `stop` is safe (never blocks or panics),
///   but what it produces is engine-specific.
pub trait Executor {
    /// Routes one batch of tuples into the topology.
    fn offer(&mut self, batch: TupleBatch);

    /// Advances every windowed bolt to `now_ns`.
    fn tick(&mut self, now_ns: u64);

    /// Drains terminal-bolt emissions accumulated so far (non-blocking).
    fn poll_output(&mut self) -> Vec<DataTuple>;

    /// Flushes windows at `now_ns`, drains in-flight work, and returns
    /// the remaining output.
    fn stop(&mut self, now_ns: u64) -> Vec<DataTuple>;

    /// Tuples accepted via `offer` (plus any internal spout) so far.
    fn processed(&self) -> u64;

    /// Tuples emitted by terminal bolts so far (including ones already
    /// drained through [`Executor::poll_output`] or [`Executor::stop`]).
    fn emitted(&self) -> u64;

    /// Tuples dropped by the [`BackpressurePolicy::Shed`] policy.
    fn shed_tuples(&self) -> u64 {
        0
    }
}

/// Engine selection for [`build_executor`].
#[derive(Debug, Clone, Copy, Default)]
pub enum ExecutorMode {
    /// Deterministic, single-threaded, runs tuples to completion inside
    /// `offer` — the discrete-event plane's engine.
    #[default]
    Inline,
    /// One worker thread per bolt instance with bounded channels — the
    /// scaling plane's engine. The executor is caller-driven: no spout
    /// thread is spawned, data arrives via [`Executor::offer`].
    Threaded(ThreadedConfig),
    /// One worker thread per *shard* owning partition-disjoint bolt
    /// instances (`instance % shards`), exchanging slabs over lock-free
    /// SPSC rings — the columnar hot path's engine. Caller-driven like
    /// `Threaded`.
    Sharded(ShardedConfig),
}

/// Instantiates `topology` on the chosen engine.
///
/// # Examples
///
/// ```
/// use netalytics_data::{DataTuple, TupleBatch, Value};
/// use netalytics_stream::{build_executor, topologies, ExecutorMode};
/// use netalytics_stream::topologies::ProcessorSpec;
///
/// let topo = topologies::build(
///     &ProcessorSpec::new("top-k").with_arg("k", "1").with_arg("key", "url"),
/// )?;
/// let mut exec = build_executor(&topo, ExecutorMode::Inline);
/// exec.offer(
///     ["/a", "/b", "/a"]
///         .iter()
///         .enumerate()
///         .map(|(i, url)| DataTuple::new(i as u64, 0).with("url", *url))
///         .collect(),
/// );
/// let out = exec.stop(1);
/// assert_eq!(out[0].get("key").and_then(Value::as_str), Some("/a"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn build_executor(topology: &Topology, mode: ExecutorMode) -> Box<dyn Executor> {
    build_executor_with(topology, mode, None)
}

/// [`build_executor`] with an optional metrics registry: the executor's
/// processed/emitted/shed counters register as `stream.*` series, every
/// bolt gets a `stream.execute_latency_ns{bolt=...}` histogram, and the
/// threaded engine additionally records `e2e.tuple_latency_ns` (capture
/// timestamp → arrival at the topology, wall clock) for offered tuples.
pub fn build_executor_with(
    topology: &Topology,
    mode: ExecutorMode,
    metrics: Option<&MetricsRegistry>,
) -> Box<dyn Executor> {
    build_executor_traced(topology, mode, metrics, None)
}

/// [`build_executor_with`] plus an optional [`Tracer`]: batches whose
/// [`netalytics_data::TraceCtx`] is set get a `bolt` stage span per
/// processed slab (wall clock, worker-indexed span shards), and every
/// bolt that handles a traced slab receives
/// [`crate::Bolt::observe_trace`] so sinks can close the trace at the
/// store. Untraced batches pay nothing beyond an `Option` check.
pub fn build_executor_traced(
    topology: &Topology,
    mode: ExecutorMode,
    metrics: Option<&MetricsRegistry>,
    tracer: Option<Arc<Tracer>>,
) -> Box<dyn Executor> {
    match mode {
        ExecutorMode::Inline => {
            Box::new(InlineExecutor::with_instruments(topology, metrics, tracer))
        }
        ExecutorMode::Threaded(config) => Box::new(ThreadedExecutor::spawn_driven_traced(
            topology, config, metrics, tracer,
        )),
        ExecutorMode::Sharded(config) => Box::new(ShardedExecutor::spawn_traced(
            topology, config, metrics, tracer,
        )),
    }
}
