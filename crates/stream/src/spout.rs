//! Spouts: tuple sources feeding a topology (paper Fig. 4's "Kafka
//! Spout").

use std::sync::Arc;

use netalytics_data::{ColumnBatch, DataTuple, TupleBatch};
use netalytics_queue::{GroupId, Message, QueueCluster, TopicId};
use netalytics_telemetry::{wall_now_ns, Tracer};

/// A pull-based tuple source.
pub trait Spout: Send {
    /// Fetches up to `max` messages' worth of tuples; an empty result
    /// means "nothing right now", not end-of-stream.
    fn poll(&mut self, max: usize) -> Vec<DataTuple>;

    /// Batch-first poll: the executor's preferred entry point. The
    /// default wraps [`Spout::poll`]; sources that already hold batches
    /// (like [`QueueSpout`]) override it to skip the intermediate vector.
    fn poll_batch(&mut self, max: usize) -> TupleBatch {
        TupleBatch::from_tuples(self.poll(max))
    }
}

/// Spout that polls a [`QueueCluster`] topic, decoding [`TupleBatch`]
/// payloads — the paper's Kafka Spout (§5.3: "Storm then uses multiple
/// Kafka 'Spouts' ... to poll for new messages").
///
/// The topic and group names are interned once at construction; each poll
/// is a [`QueueCluster::consume_batch`] into a reused scratch buffer
/// followed by a straight decode into the outgoing batch. Columnar
/// frames (the [`ColumnBatch`] wire format) are auto-detected by their
/// magic word and decoded transparently, so a topic can carry a mix of
/// row and columnar producers during migration.
#[derive(Debug)]
pub struct QueueSpout {
    cluster: Arc<QueueCluster>,
    topic: TopicId,
    group: GroupId,
    scratch: Vec<Message>,
    /// Batches that failed to decode (corrupt payloads are skipped).
    decode_errors: u64,
    /// When set, decoded trace contexts get a `queue` span (produce →
    /// consume, wall clock) and propagate onto the merged poll batch.
    tracer: Option<Arc<Tracer>>,
}

impl QueueSpout {
    /// Creates a spout consuming `topic` as consumer group `group`.
    pub fn new(cluster: Arc<QueueCluster>, topic: &str, group: &str) -> Self {
        let topic = cluster.topic_id(topic);
        let group = cluster.group_id(group);
        QueueSpout {
            cluster,
            topic,
            group,
            scratch: Vec::new(),
            decode_errors: 0,
            tracer: None,
        }
    }

    /// Enables queue-span recording: every traced batch this spout
    /// decodes gets a `queue` span covering broker dwell time (produce
    /// timestamp → consume, wall clock).
    pub fn with_tracer(mut self, tracer: Arc<Tracer>) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Payloads that failed to decode so far.
    pub fn decode_errors(&self) -> u64 {
        self.decode_errors
    }

    /// Records the queue-dwell span of one decoded trace context.
    fn record_queue_span(&self, trace: Option<netalytics_data::TraceCtx>, produced_ts_ns: u64) {
        let (Some(tracer), Some(ctx)) = (&self.tracer, trace) else {
            return;
        };
        tracer.record_span(
            0,
            ctx.cookie,
            ctx.batch_id,
            ctx.born_ns,
            "queue",
            produced_ts_ns,
            wall_now_ns(),
        );
    }
}

impl Spout for QueueSpout {
    fn poll(&mut self, max: usize) -> Vec<DataTuple> {
        self.poll_batch(max).into_tuples()
    }

    fn poll_batch(&mut self, max: usize) -> TupleBatch {
        self.scratch.clear();
        self.cluster
            .consume_batch(self.group, self.topic, max, &mut self.scratch);
        let mut out = TupleBatch::new();
        let mut msgs = std::mem::take(&mut self.scratch);
        for m in msgs.drain(..) {
            let ts_ns = m.ts_ns;
            let mut payload = m.payload;
            let decoded = if ColumnBatch::is_columnar_frame(&payload) {
                ColumnBatch::decode(&mut payload).ok().map(|c| c.to_batch())
            } else {
                TupleBatch::decode(&mut payload).ok()
            };
            let Some(batch) = decoded else {
                self.decode_errors += 1;
                continue;
            };
            // The merged poll batch carries the first trace context seen;
            // every decoded context still gets its queue-dwell span.
            self.record_queue_span(batch.trace, ts_ns);
            if out.trace.is_none() {
                out.trace = batch.trace;
            }
            out.extend(batch);
        }
        self.scratch = msgs;
        out
    }
}

/// Spout over an in-memory vector, for tests and replays.
#[derive(Debug, Default)]
pub struct VecSpout {
    tuples: std::collections::VecDeque<DataTuple>,
}

impl VecSpout {
    /// Creates a spout that replays `tuples` in order.
    pub fn new(tuples: impl IntoIterator<Item = DataTuple>) -> Self {
        VecSpout {
            tuples: tuples.into_iter().collect(),
        }
    }

    /// Remaining tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if the spout is exhausted.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

impl Spout for VecSpout {
    fn poll(&mut self, max: usize) -> Vec<DataTuple> {
        let take = self.tuples.len().min(max);
        self.tuples.drain(..take).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use netalytics_queue::QueueConfig;

    #[test]
    fn vec_spout_replays_in_order() {
        let mut s = VecSpout::new((0..5).map(|i| DataTuple::new(i, i)));
        assert_eq!(s.len(), 5);
        let a = s.poll(3);
        assert_eq!(a.len(), 3);
        assert_eq!(a[0].id, 0);
        let b = s.poll(3);
        assert_eq!(b.len(), 2);
        assert!(s.is_empty());
        assert!(s.poll(3).is_empty());
    }

    #[test]
    fn queue_spout_decodes_batches() {
        let cluster = Arc::new(QueueCluster::new(QueueConfig::default()));
        let batch = TupleBatch::from_tuples(vec![
            DataTuple::new(1, 0).with("url", "/a"),
            DataTuple::new(2, 0).with("url", "/b"),
        ]);
        let t = cluster.topic_id("http_get");
        cluster.produce_to(t, 1, batch.encode(), 0);
        let mut spout = QueueSpout::new(cluster.clone(), "http_get", "storm");
        let got = spout.poll(10);
        assert_eq!(got.len(), 2);
        assert!(spout.poll(10).is_empty(), "offsets advanced");
        assert_eq!(spout.decode_errors(), 0);
    }

    #[test]
    fn queue_spout_poll_batch_drains_multiple_messages() {
        let cluster = Arc::new(QueueCluster::new(QueueConfig::default()));
        let t = cluster.topic_id("t");
        for k in 0..3u64 {
            let batch = TupleBatch::from_tuples(vec![
                DataTuple::new(k * 2, 0),
                DataTuple::new(k * 2 + 1, 0),
            ]);
            cluster.produce_to(t, k, batch.encode(), 0);
        }
        let mut spout = QueueSpout::new(cluster, "t", "g");
        let got = spout.poll_batch(10);
        assert_eq!(got.len(), 6);
        assert!(spout.poll_batch(10).is_empty());
    }

    #[test]
    fn queue_spout_decodes_columnar_frames_transparently() {
        let cluster = Arc::new(QueueCluster::new(QueueConfig::default()));
        let t = cluster.topic_id("mixed");
        let row_batch = TupleBatch::from_tuples(vec![DataTuple::new(1, 10).with("url", "/r")]);
        let col_batch = TupleBatch::from_tuples(vec![
            DataTuple::new(2, 20).with("url", "/c"),
            DataTuple::new(3, 30).with("url", "/d"),
        ]);
        cluster.produce_to(t, 1, row_batch.encode(), 0);
        cluster.produce_to(t, 2, ColumnBatch::from_batch(&col_batch).encode(), 0);
        let mut spout = QueueSpout::new(cluster, "mixed", "g");
        let got = spout.poll_batch(10);
        assert_eq!(got.len(), 3, "row and columnar frames both decoded");
        let urls: Vec<_> = got
            .tuples
            .iter()
            .filter_map(|t| t.get("url").and_then(netalytics_data::Value::as_str))
            .collect();
        assert_eq!(urls, vec!["/r", "/c", "/d"]);
        assert_eq!(spout.decode_errors(), 0);
    }

    #[test]
    fn queue_spout_records_queue_spans_and_propagates_trace() {
        use netalytics_data::TraceCtx;
        use netalytics_telemetry::{TraceConfig, Tracer};

        let cluster = Arc::new(QueueCluster::new(QueueConfig::default()));
        let t = cluster.topic_id("t");
        let mut batch = TupleBatch::from_tuples(vec![DataTuple::new(1, 5)]);
        batch.trace = Some(TraceCtx {
            cookie: 7,
            batch_id: 3,
            born_ns: 5,
        });
        cluster.produce_to(t, 1, batch.encode(), 100);
        let tracer = Arc::new(Tracer::new(TraceConfig {
            sample_every: 1,
            ..TraceConfig::default()
        }));
        let mut spout = QueueSpout::new(cluster, "t", "g").with_tracer(Arc::clone(&tracer));
        let got = spout.poll_batch(10);
        assert_eq!(got.len(), 1);
        assert_eq!(got.trace.map(|c| (c.cookie, c.batch_id)), Some((7, 3)));
        let falls = tracer.waterfalls(7);
        assert_eq!(falls.len(), 1);
        assert_eq!(falls[0].spans[0].stage, "queue");
    }

    #[test]
    fn corrupt_payloads_counted_not_fatal() {
        let cluster = Arc::new(QueueCluster::new(QueueConfig::default()));
        let t = cluster.topic_id("t");
        cluster.produce_to(t, 1, Bytes::from_static(&[0xff; 3]), 0);
        let good = TupleBatch::from_tuples(vec![DataTuple::new(1, 0)]);
        cluster.produce_to(t, 1, good.encode(), 0);
        let mut spout = QueueSpout::new(cluster, "t", "g");
        let got = spout.poll(10);
        assert_eq!(got.len(), 1);
        assert_eq!(spout.decode_errors(), 1);
    }
}
