//! Spouts: tuple sources feeding a topology (paper Fig. 4's "Kafka
//! Spout").

use std::sync::Arc;

use netalytics_data::{DataTuple, TupleBatch};
use netalytics_queue::QueueCluster;

/// A pull-based tuple source.
pub trait Spout: Send {
    /// Fetches up to `max` tuples; an empty result means "nothing right
    /// now", not end-of-stream.
    fn poll(&mut self, max: usize) -> Vec<DataTuple>;
}

/// Spout that polls a [`QueueCluster`] topic, decoding [`TupleBatch`]
/// payloads — the paper's Kafka Spout (§5.3: "Storm then uses multiple
/// Kafka 'Spouts' ... to poll for new messages").
#[derive(Debug)]
pub struct QueueSpout {
    cluster: Arc<QueueCluster>,
    topic: String,
    group: String,
    /// Batches that failed to decode (corrupt payloads are skipped).
    decode_errors: u64,
}

impl QueueSpout {
    /// Creates a spout consuming `topic` as consumer group `group`.
    pub fn new(cluster: Arc<QueueCluster>, topic: impl Into<String>, group: impl Into<String>) -> Self {
        QueueSpout {
            cluster,
            topic: topic.into(),
            group: group.into(),
            decode_errors: 0,
        }
    }

    /// Payloads that failed to decode so far.
    pub fn decode_errors(&self) -> u64 {
        self.decode_errors
    }
}

impl Spout for QueueSpout {
    fn poll(&mut self, max: usize) -> Vec<DataTuple> {
        let msgs = self.cluster.consume(&self.group, &self.topic, max);
        let mut out = Vec::new();
        for m in msgs {
            let mut payload = m.payload.clone();
            match TupleBatch::decode(&mut payload) {
                Ok(batch) => out.extend(batch),
                Err(_) => self.decode_errors += 1,
            }
        }
        out
    }
}

/// Spout over an in-memory vector, for tests and replays.
#[derive(Debug, Default)]
pub struct VecSpout {
    tuples: std::collections::VecDeque<DataTuple>,
}

impl VecSpout {
    /// Creates a spout that replays `tuples` in order.
    pub fn new(tuples: impl IntoIterator<Item = DataTuple>) -> Self {
        VecSpout {
            tuples: tuples.into_iter().collect(),
        }
    }

    /// Remaining tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if the spout is exhausted.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

impl Spout for VecSpout {
    fn poll(&mut self, max: usize) -> Vec<DataTuple> {
        let take = self.tuples.len().min(max);
        self.tuples.drain(..take).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use netalytics_queue::QueueConfig;

    #[test]
    fn vec_spout_replays_in_order() {
        let mut s = VecSpout::new((0..5).map(|i| DataTuple::new(i, i)));
        assert_eq!(s.len(), 5);
        let a = s.poll(3);
        assert_eq!(a.len(), 3);
        assert_eq!(a[0].id, 0);
        let b = s.poll(3);
        assert_eq!(b.len(), 2);
        assert!(s.is_empty());
        assert!(s.poll(3).is_empty());
    }

    #[test]
    fn queue_spout_decodes_batches() {
        let cluster = Arc::new(QueueCluster::new(QueueConfig::default()));
        let batch = TupleBatch::from_tuples(vec![
            DataTuple::new(1, 0).with("url", "/a"),
            DataTuple::new(2, 0).with("url", "/b"),
        ]);
        cluster.produce("http_get", 1, batch.encode(), 0);
        let mut spout = QueueSpout::new(cluster.clone(), "http_get", "storm");
        let got = spout.poll(10);
        assert_eq!(got.len(), 2);
        assert!(spout.poll(10).is_empty(), "offsets advanced");
        assert_eq!(spout.decode_errors(), 0);
    }

    #[test]
    fn corrupt_payloads_counted_not_fatal() {
        let cluster = Arc::new(QueueCluster::new(QueueConfig::default()));
        cluster.produce("t", 1, Bytes::from_static(&[0xff; 3]), 0);
        let good = TupleBatch::from_tuples(vec![DataTuple::new(1, 0)]);
        cluster.produce("t", 1, good.encode(), 0);
        let mut spout = QueueSpout::new(cluster, "t", "g");
        let got = spout.poll(10);
        assert_eq!(got.len(), 1);
        assert_eq!(spout.decode_errors(), 1);
    }
}
