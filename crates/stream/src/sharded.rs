//! Sharded executor: partition-disjoint bolt chains pinned to worker
//! threads, exchanging tuple slabs over lock-free SPSC rings.
//!
//! Where the threaded engine spawns one thread per bolt *instance* and
//! moves slabs over mutex-backed channels, this engine spawns one thread
//! per *shard* and gives shard `w` ownership of instance `i` of every
//! node where `i % shards == w`. A tuple chain that stays on one shard
//! (the common case for `ById`/`Fields` groupings whose hash lands on
//! the same residue at every stage) runs bolt-to-bolt as plain function
//! calls with zero synchronization; tuples that hop shards travel over
//! [`netalytics_data::spsc`] rings — one producer, one consumer, no
//! locks anywhere on the data path.
//!
//! * The caller (the only producer on the main→worker rings) routes
//!   each offered batch by the edge grouping — `id % shards` for the
//!   spout's `ById` edges — and pushes per-instance slabs.
//! * Workers never block: a full peer ring spills into a per-peer FIFO
//!   queue that is re-flushed opportunistically, so the mesh cannot
//!   deadlock no matter the topology shape.
//! * Ticks ride the main rings as messages, keeping them FIFO with data
//!   exactly like the threaded engine's channel ticks (and equally
//!   best-effort: a full ring drops the tick, not data).
//! * Shutdown is a marker protocol: `Marker(0)` quiesces, then each
//!   worker finishes node `t` only after every peer advertised
//!   `Marker(t)` — i.e. finished node `t - 1` and flushed its
//!   emissions — so windows close upstream-first across all shards,
//!   mirroring the threaded engine's tiered join.
//!
//! Counters: `processed` stays a plain [`Counter`] (single writer — the
//! offering thread); `emitted`/`shed` are [`ShardedCounter`]s with one
//! cache-line-padded cell per shard (plus one for the caller), merged
//! only on scrape.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use netalytics_data::{
    spsc, Consumer, DataTuple, PopError, Producer, PushError, TraceCtx, TupleBatch,
};
use netalytics_telemetry::{
    wall_now_ns, Counter, Histogram, MetricsRegistry, ShardedCounter, Tracer,
};

use crate::bolt::{Bolt, Grouping};
use crate::executor::{BackpressurePolicy, Executor};
use crate::threaded::record_e2e;
use crate::topology::{BoltId, SourceRef, Topology};

/// Execute-latency sampling period, matching the inline engine: timing
/// every call would put two `Instant::now` syscalls on each execution.
const LAT_SAMPLE: u64 = 32;

/// Incoming-source index of the caller's ring at every worker.
const MAIN_SRC: usize = 0;

/// Configuration for [`ShardedExecutor::spawn`].
#[derive(Debug, Clone, Copy)]
pub struct ShardedConfig {
    /// Worker threads; shard `w` owns instance `i` of every bolt node
    /// where `i % shards == w`.
    pub shards: usize,
    /// Capacity of each SPSC ring, counted in slabs (messages), rounded
    /// up to a power of two.
    pub ring_capacity: usize,
    /// Worker sleep when a full drain pass found nothing to do.
    pub idle_sleep: Duration,
    /// What producers do when a ring is full: `Block` spills (caller
    /// spins, workers queue unboundedly — never blocking each other),
    /// `Shed` drops the slab and counts its tuples.
    pub backpressure: BackpressurePolicy,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            shards: 4,
            ring_capacity: 1024,
            idle_sleep: Duration::from_micros(50),
            backpressure: BackpressurePolicy::Block,
        }
    }
}

/// What travels over the rings. Slabs address a (node, instance) pair so
/// the receiving shard can pick the bolt without re-routing; markers
/// carry the shutdown round and the finish timestamp.
enum ShardMsg {
    Slab {
        node: u32,
        inst: u32,
        tuples: Vec<DataTuple>,
        /// Trace context of the batch this slab descends from; follows
        /// the slab across every shard hop.
        trace: Option<TraceCtx>,
    },
    Tick(u64),
    Marker {
        round: u32,
        now_ns: u64,
    },
}

/// One worker's owned bolt instances for one node, indexed by local
/// slot (`slot * shards + shard` = global instance).
type NodeInstances = Vec<Box<dyn Bolt>>;

/// A worker's outgoing edge to one peer shard: the ring plus the
/// unbounded spill queue that absorbs overflow so the worker never
/// blocks (ring order is preserved — nothing overtakes the spill).
struct Peer {
    ring: Producer<ShardMsg>,
    spill: VecDeque<ShardMsg>,
}

struct Worker {
    shard: usize,
    shards: usize,
    /// Global instance count per node (for grouping routes).
    par: Vec<usize>,
    /// Owned instances per node; slot `s` holds global instance
    /// `s * shards + shard`.
    bolts: Vec<NodeInstances>,
    terminal: Vec<bool>,
    /// Outgoing edges per node: (target node, grouping).
    out_edges: Vec<Vec<(usize, Grouping)>>,
    /// Shuffle state per (node, edge), local to this worker like the
    /// threaded engine's per-thread round-robin.
    rr: Vec<Vec<usize>>,
    /// `[0]` = caller's ring, then peer rings in ascending shard order.
    incoming: Vec<Consumer<ShardMsg>>,
    /// Highest marker round seen per incoming source (−1 = none;
    /// `i64::MAX` once the source disconnected).
    marker_level: Vec<i64>,
    /// Outgoing rings indexed by shard id (`None` at our own slot).
    peers: Vec<Option<Peer>>,
    /// Scratch: cross-shard emissions batched per (node, instance)
    /// between flushes, so fan-out costs one message per slab.
    remote: HashMap<(u32, u32), Vec<DataTuple>>,
    output_tx: Sender<DataTuple>,
    emitted: Arc<ShardedCounter>,
    shed: Arc<ShardedCounter>,
    latency: Vec<Option<Arc<Histogram>>>,
    lat_ticks: u64,
    policy: BackpressurePolicy,
    idle_sleep: Duration,
    /// Set when the caller's `Marker(0)` arrives; its timestamp drives
    /// every `finish`.
    finish_now: Option<u64>,
    /// Traced-slab recording (span per slab, context forwarded on hops).
    tracer: Option<Arc<Tracer>>,
    /// Context of the slab currently draining; attached to the remote
    /// slabs it spawns and cleared once the slab completes.
    current_trace: Option<TraceCtx>,
    /// Last (node, slot) that received `observe_trace` for the current
    /// slab, so chained local executions don't re-observe per tuple.
    last_observed: Option<(usize, usize)>,
}

impl Worker {
    fn run(mut self) {
        loop {
            let mut busy = self.flush_spills();
            let (progress, main_gone) = self.drain_incoming();
            busy |= progress;
            if self.finish_now.is_some() {
                self.shutdown_phases();
                return;
            }
            if main_gone {
                // Executor dropped without stop(): abandon quietly.
                return;
            }
            if !busy {
                std::thread::sleep(self.idle_sleep);
            }
        }
    }

    /// Pops every queued message from every incoming ring, processing
    /// each inline. Returns (made progress, caller ring disconnected).
    fn drain_incoming(&mut self) -> (bool, bool) {
        let mut busy = false;
        let mut main_gone = false;
        for src in 0..self.incoming.len() {
            loop {
                match self.incoming[src].pop() {
                    Ok(msg) => {
                        busy = true;
                        self.on_msg(src, msg);
                    }
                    Err(PopError::Empty) => break,
                    Err(PopError::Disconnected) => {
                        if src == MAIN_SRC {
                            main_gone = true;
                        } else {
                            // A dead peer can't send markers; don't wait
                            // for it during shutdown.
                            self.marker_level[src] = i64::MAX;
                        }
                        break;
                    }
                }
            }
        }
        (busy, main_gone)
    }

    fn on_msg(&mut self, src: usize, msg: ShardMsg) {
        match msg {
            ShardMsg::Slab {
                node,
                inst,
                tuples,
                trace,
            } => {
                self.current_trace = trace.filter(|_| self.tracer.is_some());
                self.last_observed = None;
                let span_start = self.current_trace.map(|_| wall_now_ns());
                let mut work: VecDeque<(u32, u32, DataTuple)> =
                    tuples.into_iter().map(|t| (node, inst, t)).collect();
                self.drain_local(&mut work);
                self.flush_remote();
                if let (Some(ctx), Some(start)) = (self.current_trace, span_start) {
                    if let Some(tracer) = &self.tracer {
                        tracer.record_span(
                            self.shard,
                            ctx.cookie,
                            ctx.batch_id,
                            ctx.born_ns,
                            "bolt",
                            start,
                            wall_now_ns(),
                        );
                    }
                }
                self.current_trace = None;
            }
            ShardMsg::Tick(now) => self.run_ticks(now),
            ShardMsg::Marker { round, now_ns } => {
                self.marker_level[src] = i64::from(round);
                if src == MAIN_SRC {
                    self.finish_now = Some(now_ns);
                }
            }
        }
    }

    /// Runs queued (node, instance, tuple) work to completion. Local
    /// emissions chain depth-first through the queue; cross-shard
    /// emissions accumulate in `remote` for the caller to flush.
    fn drain_local(&mut self, work: &mut VecDeque<(u32, u32, DataTuple)>) {
        while let Some((node, inst, tuple)) = work.pop_front() {
            let node = node as usize;
            let slot = inst as usize / self.shards;
            if let Some(ctx) = self.current_trace {
                // Once per (node, slot) run of the chain, not per tuple.
                if self.last_observed != Some((node, slot)) {
                    self.bolts[node][slot].observe_trace(&ctx);
                    self.last_observed = Some((node, slot));
                }
            }
            let mut out = Vec::new();
            let timed = self.latency[node].is_some() && {
                self.lat_ticks = self.lat_ticks.wrapping_add(1);
                self.lat_ticks.is_multiple_of(LAT_SAMPLE)
            };
            if timed {
                let t0 = std::time::Instant::now();
                self.bolts[node][slot].execute(&tuple, &mut out);
                if let Some(h) = &self.latency[node] {
                    h.record(t0.elapsed().as_nanos() as u64);
                }
            } else {
                self.bolts[node][slot].execute(&tuple, &mut out);
            }
            if !out.is_empty() {
                self.dispatch(node, out, work);
            }
        }
    }

    /// Routes one node's emissions: terminal → output channel, else per
    /// edge per tuple to the owning shard (self → `work`, peer →
    /// `remote`).
    fn dispatch(
        &mut self,
        node: usize,
        out: Vec<DataTuple>,
        work: &mut VecDeque<(u32, u32, DataTuple)>,
    ) {
        if self.terminal[node] {
            self.emitted.add(self.shard, out.len() as u64);
            for t in out {
                let _ = self.output_tx.send(t);
            }
            return;
        }
        // Borrow dance: the edge list moves out so routing can update
        // `rr` and `remote` freely, then moves back.
        let edges = std::mem::take(&mut self.out_edges[node]);
        let last = edges.len() - 1;
        for t in out {
            let mut t = Some(t);
            for (k, (target, grouping)) in edges.iter().enumerate() {
                // Clone for every edge but the last, which takes
                // ownership.
                let tuple = if k == last {
                    t.take().expect("tuple consumed before last edge")
                } else {
                    t.as_ref().expect("tuple gone mid-fanout").clone()
                };
                let inst = grouping.route(&tuple, self.par[*target], &mut self.rr[node][k]);
                if inst % self.shards == self.shard {
                    work.push_back((*target as u32, inst as u32, tuple));
                } else {
                    self.remote
                        .entry((*target as u32, inst as u32))
                        .or_default()
                        .push(tuple);
                }
            }
        }
        self.out_edges[node] = edges;
    }

    /// Ships the accumulated cross-shard slabs, one message per
    /// (node, instance).
    fn flush_remote(&mut self) {
        if self.remote.is_empty() {
            return;
        }
        let remote = std::mem::take(&mut self.remote);
        let trace = self.current_trace;
        for ((node, inst), tuples) in remote {
            let owner = inst as usize % self.shards;
            self.send_to(
                owner,
                ShardMsg::Slab {
                    node,
                    inst,
                    tuples,
                    trace,
                },
            );
        }
    }

    /// Sends to a peer without ever blocking: full ring → spill under
    /// `Block`, drop-and-count under `Shed` (markers always spill — the
    /// shutdown protocol must not lose them). FIFO holds: while the
    /// spill is non-empty nothing goes to the ring directly.
    fn send_to(&mut self, owner: usize, msg: ShardMsg) {
        let shard = self.shard;
        let policy = self.policy;
        let mut dropped = 0u64;
        {
            let peer = self.peers[owner].as_mut().expect("no ring to self");
            let overflow = if peer.spill.is_empty() {
                match peer.ring.push(msg) {
                    Ok(()) => None,
                    Err(PushError::Full(back)) => Some(back),
                    // Peer thread died; nothing to deliver to.
                    Err(PushError::Disconnected(_)) => None,
                }
            } else {
                Some(msg)
            };
            if let Some(msg) = overflow {
                let shed_it = matches!(policy, BackpressurePolicy::Shed)
                    && matches!(msg, ShardMsg::Slab { .. });
                if shed_it {
                    if let ShardMsg::Slab { tuples, .. } = msg {
                        dropped = tuples.len() as u64;
                    }
                } else {
                    peer.spill.push_back(msg);
                }
            }
        }
        if dropped > 0 {
            self.shed.add(shard, dropped);
        }
    }

    /// Retries spilled messages against their rings; returns whether
    /// anything moved.
    fn flush_spills(&mut self) -> bool {
        let mut progressed = false;
        for peer in self.peers.iter_mut().flatten() {
            while let Some(msg) = peer.spill.pop_front() {
                match peer.ring.push(msg) {
                    Ok(()) => progressed = true,
                    Err(PushError::Full(back)) => {
                        peer.spill.push_front(back);
                        break;
                    }
                    Err(PushError::Disconnected(_)) => {
                        peer.spill.clear();
                        break;
                    }
                }
            }
        }
        progressed
    }

    fn spill_pending(&self) -> bool {
        self.peers.iter().flatten().any(|p| !p.spill.is_empty())
    }

    /// Advances every owned instance to `now`, routing released tuples.
    fn run_ticks(&mut self, now: u64) {
        let mut work = VecDeque::new();
        for node in 0..self.bolts.len() {
            let mut emitted = Vec::new();
            for slot in 0..self.bolts[node].len() {
                let mut out = Vec::new();
                self.bolts[node][slot].tick(now, &mut out);
                emitted.append(&mut out);
            }
            if !emitted.is_empty() {
                self.dispatch(node, emitted, &mut work);
                self.drain_local(&mut work);
            }
        }
        self.flush_remote();
    }

    /// Round `t` may finish only once every peer advertised `Marker(t)`
    /// — proof that all data bound for node `t` is already in our rings
    /// (FIFO before the marker) and therefore processed by the wait
    /// loop's drain.
    fn markers_ready(&self, round: usize) -> bool {
        round == 0 || self.marker_level[1..].iter().all(|&l| l >= round as i64)
    }

    fn send_marker_all(&mut self, round: u32, now_ns: u64) {
        for owner in 0..self.peers.len() {
            if self.peers[owner].is_some() {
                self.send_to(owner, ShardMsg::Marker { round, now_ns });
            }
        }
    }

    /// The per-node marker rounds: wait for `Marker(t)` from every peer,
    /// finish our instances of node `t`, flush the emissions, advertise
    /// `Marker(t + 1)`. Data for node `t` can only originate from the
    /// caller (quiesced before `Marker(0)`) or from nodes `s < t`, whose
    /// emissions every shard flushes before its `Marker(s + 1) ≤
    /// Marker(t)` — so once the markers are in, node `t` is complete.
    fn shutdown_phases(&mut self) {
        let now = self.finish_now.unwrap_or(0);
        let n = self.bolts.len();
        for node in 0..n {
            while !self.markers_ready(node) {
                let mut busy = self.flush_spills();
                let (progress, _) = self.drain_incoming();
                busy |= progress;
                if !busy {
                    std::thread::yield_now();
                }
            }
            let mut work = VecDeque::new();
            let mut emitted = Vec::new();
            for slot in 0..self.bolts[node].len() {
                let mut out = Vec::new();
                self.bolts[node][slot].finish(now, &mut out);
                emitted.append(&mut out);
            }
            if !emitted.is_empty() {
                self.dispatch(node, emitted, &mut work);
                self.drain_local(&mut work);
            }
            self.flush_remote();
            if node + 1 < n {
                self.send_marker_all(node as u32 + 1, now);
            }
        }
        // Whatever is still spilled is FIFO ≤ our last marker; the peers
        // that need it are draining until they pop that marker, so this
        // terminates (a dead peer clears on Disconnected).
        while self.spill_pending() {
            if !self.flush_spills() {
                std::thread::yield_now();
            }
        }
    }
}

/// A running sharded topology. See the module docs for the execution
/// model; construct via [`crate::build_executor`] with
/// [`crate::ExecutorMode::Sharded`], or directly with
/// [`ShardedExecutor::spawn`].
pub struct ShardedExecutor {
    workers: Vec<JoinHandle<()>>,
    main_tx: Vec<Producer<ShardMsg>>,
    output_rx: Receiver<DataTuple>,
    spout_edges: Vec<(usize, Grouping)>,
    par: Vec<usize>,
    offer_rr: Vec<usize>,
    shards: usize,
    policy: BackpressurePolicy,
    processed: Arc<Counter>,
    emitted: Arc<ShardedCounter>,
    shed: Arc<ShardedCounter>,
    e2e_latency: Option<Arc<Histogram>>,
    stopped: bool,
}

impl std::fmt::Debug for ShardedExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedExecutor")
            .field("shards", &self.shards)
            .finish_non_exhaustive()
    }
}

impl ShardedExecutor {
    /// Spawns `config.shards` worker threads owning partition-disjoint
    /// instance sets; data arrives through [`Executor::offer`].
    pub fn spawn(topology: &Topology, config: ShardedConfig) -> Self {
        Self::spawn_with_metrics(topology, config, None)
    }

    /// [`ShardedExecutor::spawn`] with telemetry: `stream.processed` as
    /// a plain counter (single writer), `stream.emitted`/`stream.shed`
    /// as per-shard striped counters merged on scrape, per-bolt
    /// `stream.execute_latency_ns` histograms, and `e2e.tuple_latency_ns`
    /// for offered tuples — the same series the other engines publish.
    pub fn spawn_with_metrics(
        topology: &Topology,
        config: ShardedConfig,
        metrics: Option<&MetricsRegistry>,
    ) -> Self {
        Self::spawn_traced(topology, config, metrics, None)
    }

    /// [`ShardedExecutor::spawn_with_metrics`] plus an optional
    /// [`Tracer`]: traced slabs record a `bolt` stage span per draining
    /// shard (the context follows slabs across shard hops) and every
    /// bolt instance that runs a traced slab's chain receives
    /// [`crate::Bolt::observe_trace`] first.
    pub fn spawn_traced(
        topology: &Topology,
        config: ShardedConfig,
        metrics: Option<&MetricsRegistry>,
        tracer: Option<Arc<Tracer>>,
    ) -> Self {
        let shards = config.shards.max(1);
        let n = topology.bolts.len();
        let terminals = topology.terminals();
        let par: Vec<usize> = topology.bolts.iter().map(|b| b.parallelism).collect();
        let processed = match metrics {
            Some(m) => m.counter("stream.processed", &[]),
            None => Arc::new(Counter::new()),
        };
        // One cell per shard plus one for the offering thread.
        let emitted = match metrics {
            Some(m) => m.sharded_counter("stream.emitted", &[], shards + 1),
            None => Arc::new(ShardedCounter::new(shards + 1)),
        };
        let shed = match metrics {
            Some(m) => m.sharded_counter("stream.shed", &[], shards + 1),
            None => Arc::new(ShardedCounter::new(shards + 1)),
        };
        let e2e_latency = metrics.map(|m| m.histogram("e2e.tuple_latency_ns", &[]));
        let latency: Vec<Option<Arc<Histogram>>> = topology
            .bolts
            .iter()
            .map(|b| {
                metrics.map(|m| m.histogram("stream.execute_latency_ns", &[("bolt", &b.name)]))
            })
            .collect();

        // Rings: caller → each worker, then the full worker mesh. Every
        // ring has exactly one producer and one consumer by construction.
        let cap = config.ring_capacity.max(2);
        let mut main_tx = Vec::with_capacity(shards);
        let mut incoming: Vec<Vec<Consumer<ShardMsg>>> = (0..shards).map(|_| Vec::new()).collect();
        for rx_list in incoming.iter_mut() {
            let (tx, rx) = spsc::<ShardMsg>(cap);
            main_tx.push(tx);
            rx_list.push(rx);
        }
        let mut peer_tx: Vec<Vec<Option<Peer>>> = (0..shards)
            .map(|_| (0..shards).map(|_| None).collect())
            .collect();
        #[allow(clippy::needless_range_loop)] // 2-D index with a == b skip
        for a in 0..shards {
            for b in 0..shards {
                if a == b {
                    continue;
                }
                let (tx, rx) = spsc::<ShardMsg>(cap);
                peer_tx[a][b] = Some(Peer {
                    ring: tx,
                    spill: VecDeque::new(),
                });
                incoming[b].push(rx);
            }
        }

        // Instance ownership: global instance `i` of every node lives on
        // shard `i % shards`, preserving each grouping's instance-level
        // semantics exactly (same instance count, same routing function).
        let mut bolts: Vec<Vec<NodeInstances>> = (0..shards)
            .map(|_| (0..n).map(|_| Vec::new()).collect())
            .collect();
        for (node_i, node) in topology.bolts.iter().enumerate() {
            for inst in 0..node.parallelism {
                bolts[inst % shards][node_i].push((node.factory)());
            }
        }
        let out_edges: Vec<Vec<(usize, Grouping)>> = (0..n)
            .map(|i| {
                topology
                    .edges
                    .iter()
                    .filter(|e| e.from == SourceRef::Bolt(BoltId(i)))
                    .map(|e| (e.to.0, e.grouping.clone()))
                    .collect()
            })
            .collect();
        let spout_edges: Vec<(usize, Grouping)> = topology
            .edges
            .iter()
            .filter(|e| e.from == SourceRef::Spout)
            .map(|e| (e.to.0, e.grouping.clone()))
            .collect();

        let (output_tx, output_rx) = unbounded::<DataTuple>();
        let mut workers = Vec::with_capacity(shards);
        let mut incoming = incoming.into_iter();
        let mut peer_tx = peer_tx.into_iter();
        let mut bolts = bolts.into_iter();
        for w in 0..shards {
            let incoming = incoming.next().expect("one consumer set per worker");
            let marker_level = vec![-1i64; incoming.len()];
            let worker = Worker {
                shard: w,
                shards,
                par: par.clone(),
                bolts: bolts.next().expect("one instance set per worker"),
                terminal: terminals.clone(),
                out_edges: out_edges.clone(),
                rr: out_edges.iter().map(|es| vec![0usize; es.len()]).collect(),
                incoming,
                marker_level,
                peers: peer_tx.next().expect("one peer row per worker"),
                remote: HashMap::new(),
                output_tx: output_tx.clone(),
                emitted: emitted.clone(),
                shed: shed.clone(),
                latency: latency.clone(),
                lat_ticks: 0,
                policy: config.backpressure,
                idle_sleep: config.idle_sleep,
                finish_now: None,
                tracer: tracer.clone(),
                current_trace: None,
                last_observed: None,
            };
            workers.push(
                std::thread::Builder::new()
                    .name(format!("shard-{w}"))
                    .spawn(move || worker.run())
                    .expect("spawn shard worker"),
            );
        }
        // Workers hold the only output senders: the channel disconnects
        // exactly when the last worker exits.
        drop(output_tx);

        let offer_rr = vec![0usize; spout_edges.len().max(1)];
        ShardedExecutor {
            workers,
            main_tx,
            output_rx,
            spout_edges,
            par,
            offer_rr,
            shards,
            policy: config.backpressure,
            processed,
            emitted,
            shed,
            e2e_latency,
            stopped: false,
        }
    }

    /// Worker threads (= configured shards).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Pushes a data slab to its owning worker, honoring the policy:
    /// `Block` spins until the ring accepts (workers always drain, so
    /// the wait is bounded), `Shed` drops and counts.
    fn push_data(&mut self, w: usize, msg: ShardMsg) {
        match self.policy {
            BackpressurePolicy::Block => {
                let mut msg = msg;
                loop {
                    match self.main_tx[w].push(msg) {
                        Ok(()) => return,
                        Err(PushError::Full(back)) => {
                            msg = back;
                            std::thread::yield_now();
                        }
                        Err(PushError::Disconnected(_)) => return,
                    }
                }
            }
            BackpressurePolicy::Shed => {
                if let Err(PushError::Full(ShardMsg::Slab { tuples, .. })) =
                    self.main_tx[w].push(msg)
                {
                    self.shed.add(self.shards, tuples.len() as u64);
                }
            }
        }
    }

    /// Stops workers via the marker protocol and collects the residual
    /// output; reusable from [`Executor::stop`] and idempotent.
    fn drain_shutdown(&mut self, now_ns: u64) -> Vec<DataTuple> {
        if !self.stopped {
            self.stopped = true;
            for tx in &mut self.main_tx {
                // Markers must arrive regardless of policy.
                let mut msg = ShardMsg::Marker { round: 0, now_ns };
                loop {
                    match tx.push(msg) {
                        Ok(()) => break,
                        Err(PushError::Full(back)) => {
                            msg = back;
                            std::thread::yield_now();
                        }
                        Err(PushError::Disconnected(_)) => break,
                    }
                }
            }
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        let mut collected = Vec::new();
        while let Ok(t) = self.output_rx.recv() {
            collected.push(t);
        }
        collected
    }
}

impl Executor for ShardedExecutor {
    fn offer(&mut self, batch: TupleBatch) {
        if batch.is_empty() || self.stopped || self.spout_edges.is_empty() {
            return;
        }
        self.processed.add(batch.len() as u64);
        if let Some(h) = &self.e2e_latency {
            record_e2e(h, batch.tuples.iter());
        }
        let trace = batch.trace;
        let mut tuples = batch.into_tuples();
        let edges = std::mem::take(&mut self.spout_edges);
        let last = edges.len() - 1;
        for (k, (node, grouping)) in edges.iter().enumerate() {
            let mut slabs: Vec<Vec<DataTuple>> = (0..self.par[*node]).map(|_| Vec::new()).collect();
            if k == last {
                for t in std::mem::take(&mut tuples) {
                    let i = grouping.route(&t, slabs.len(), &mut self.offer_rr[k]);
                    slabs[i].push(t);
                }
            } else {
                // Clone for every edge but the last, which takes
                // ownership.
                for t in &tuples {
                    let i = grouping.route(t, slabs.len(), &mut self.offer_rr[k]);
                    slabs[i].push(t.clone());
                }
            }
            for (inst, slab) in slabs.into_iter().enumerate() {
                if slab.is_empty() {
                    continue;
                }
                self.push_data(
                    inst % self.shards,
                    ShardMsg::Slab {
                        node: *node as u32,
                        inst: inst as u32,
                        tuples: slab,
                        trace,
                    },
                );
            }
        }
        self.spout_edges = edges;
    }

    fn tick(&mut self, now_ns: u64) {
        if self.stopped {
            return;
        }
        for tx in &mut self.main_tx {
            // Best-effort like the threaded engine's try_send ticks: a
            // full ring means the worker is busy with data and will get
            // the next tick soon enough.
            let _ = tx.push(ShardMsg::Tick(now_ns));
        }
    }

    fn poll_output(&mut self) -> Vec<DataTuple> {
        let mut out = Vec::new();
        while let Ok(t) = self.output_rx.try_recv() {
            out.push(t);
        }
        out
    }

    fn stop(&mut self, now_ns: u64) -> Vec<DataTuple> {
        self.drain_shutdown(now_ns)
    }

    fn processed(&self) -> u64 {
        self.processed.get()
    }

    fn emitted(&self) -> u64 {
        self.emitted.get()
    }

    fn shed_tuples(&self) -> u64 {
        self.shed.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topologies::{build, ProcessorSpec};
    use netalytics_data::Value;

    fn offer_all(exec: &mut ShardedExecutor, tuples: Vec<DataTuple>, chunk: usize) {
        let mut it = tuples.into_iter().peekable();
        while it.peek().is_some() {
            let b: TupleBatch = it.by_ref().take(chunk).collect();
            exec.offer(b);
        }
    }

    #[test]
    fn sharded_group_sum_totals_are_exact() {
        let topo = build(
            &ProcessorSpec::new("group-sum")
                .with_arg("group", "dst_ip")
                .with_arg("value", "bytes"),
        )
        .unwrap();
        let mut exec = ShardedExecutor::spawn(
            &topo,
            ShardedConfig {
                shards: 3,
                ring_capacity: 8,
                ..Default::default()
            },
        );
        let tuples: Vec<DataTuple> = (0..1000)
            .map(|i| {
                DataTuple::new(i, 0)
                    .with("dst_ip", if i % 2 == 0 { "a" } else { "b" })
                    .with("bytes", 10.0)
            })
            .collect();
        offer_all(&mut exec, tuples, 20);
        assert_eq!(exec.processed(), 1000, "counted at offer");
        let out = exec.stop(1);
        let mut sums: Vec<(String, f64)> = out
            .iter()
            .filter_map(|t| {
                Some((
                    t.get("dst_ip")?.to_string(),
                    t.get("sum").and_then(Value::as_f64)?,
                ))
            })
            .collect();
        sums.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(sums, vec![("a".into(), 5000.0), ("b".into(), 5000.0)]);
        assert_eq!(Executor::shed_tuples(&exec), 0, "Block loses nothing");
    }

    #[test]
    fn sharded_top_k_crosses_shards_and_ranks() {
        // par=4 counting instances over 3 shards forces cross-shard hops
        // into the single global ranker; the tiny rings force spills.
        let topo = build(
            &ProcessorSpec::new("top-k")
                .with_arg("k", "2")
                .with_arg("par", "4")
                .with_arg("key", "url"),
        )
        .unwrap();
        let mut exec = ShardedExecutor::spawn(
            &topo,
            ShardedConfig {
                shards: 3,
                ring_capacity: 2,
                ..Default::default()
            },
        );
        let tuples: Vec<DataTuple> = (0..300)
            .map(|i| {
                let url = match i % 6 {
                    0..=2 => "/hot",
                    3 | 4 => "/warm",
                    _ => "/cold",
                };
                DataTuple::new(i, 1_000 + i).with("url", url)
            })
            .collect();
        offer_all(&mut exec, tuples, 32);
        let out = exec.stop(1);
        let last_window: Vec<_> = out.iter().filter(|t| t.source == "rank").collect();
        assert!(!last_window.is_empty(), "no rankings emitted");
        let top = last_window
            .iter()
            .find(|t| t.get("rank").and_then(Value::as_u64) == Some(0))
            .unwrap();
        assert_eq!(top.get("key").and_then(Value::as_str), Some("/hot"));
    }

    #[test]
    fn single_shard_degenerates_to_serial_chains() {
        let topo = build(
            &ProcessorSpec::new("group-sum")
                .with_arg("group", "k")
                .with_arg("value", "v"),
        )
        .unwrap();
        let mut exec = ShardedExecutor::spawn(
            &topo,
            ShardedConfig {
                shards: 1,
                ..Default::default()
            },
        );
        let tuples: Vec<DataTuple> = (0..64u64)
            .map(|i| DataTuple::new(i, 0).with("k", "x").with("v", 1.0))
            .collect();
        offer_all(&mut exec, tuples, 8);
        let out = exec.stop(1);
        let total: f64 = out
            .iter()
            .filter_map(|t| t.get("sum").and_then(Value::as_f64))
            .sum();
        assert_eq!(total, 64.0);
    }

    #[test]
    fn shed_policy_accounts_for_every_tuple() {
        // Single-node topology: sheds can only happen at the main rings,
        // so processed == delivered + shed exactly.
        let topo = build(
            &ProcessorSpec::new("group-sum")
                .with_arg("group", "k")
                .with_arg("value", "v"),
        )
        .unwrap();
        let mut exec = ShardedExecutor::spawn(
            &topo,
            ShardedConfig {
                shards: 2,
                ring_capacity: 2,
                backpressure: BackpressurePolicy::Shed,
                ..Default::default()
            },
        );
        let tuples: Vec<DataTuple> = (0..1000u64)
            .map(|i| DataTuple::new(i, 0).with("k", "x").with("v", 1.0))
            .collect();
        offer_all(&mut exec, tuples, 1);
        assert_eq!(exec.processed(), 1000);
        let out = exec.stop(1);
        let delivered: f64 = out
            .iter()
            .filter_map(|t| t.get("sum").and_then(Value::as_f64))
            .sum();
        let shed = Executor::shed_tuples(&exec);
        assert_eq!(
            delivered as u64 + shed,
            1000,
            "every offered tuple is either summed or counted shed"
        );
    }

    #[test]
    fn stop_is_idempotent_and_post_stop_calls_are_safe() {
        let topo = build(
            &ProcessorSpec::new("group-sum")
                .with_arg("group", "k")
                .with_arg("value", "v"),
        )
        .unwrap();
        let mut exec = ShardedExecutor::spawn(&topo, ShardedConfig::default());
        exec.offer(
            (0..10u64)
                .map(|i| DataTuple::new(i, 0).with("k", "x").with("v", 1.0))
                .collect(),
        );
        let out = exec.stop(1);
        let total: f64 = out
            .iter()
            .filter_map(|t| t.get("sum").and_then(Value::as_f64))
            .sum();
        assert_eq!(total, 10.0);
        exec.offer((0..4u64).map(|i| DataTuple::new(i, 0)).collect());
        exec.tick(2);
        assert!(exec.poll_output().is_empty());
        assert!(exec.stop(3).is_empty(), "second stop yields nothing");
        assert_eq!(exec.processed(), 10);
    }

    #[test]
    fn dropping_without_stop_does_not_hang() {
        let topo = build(
            &ProcessorSpec::new("group-sum")
                .with_arg("group", "k")
                .with_arg("value", "v"),
        )
        .unwrap();
        let mut exec = ShardedExecutor::spawn(&topo, ShardedConfig::default());
        exec.offer(
            (0..8u64)
                .map(|i| DataTuple::new(i, 0).with("k", "x").with("v", 1.0))
                .collect(),
        );
        drop(exec); // workers observe the disconnected rings and exit
    }
}
