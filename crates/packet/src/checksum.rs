//! RFC 1071 Internet checksum, shared by the IPv4/TCP/UDP codecs.

/// Computes the one's-complement Internet checksum over `data`, folding in
/// an initial partial `sum` (used for TCP/UDP pseudo-headers).
///
/// # Examples
///
/// ```
/// use netalytics_packet::checksum::internet_checksum;
///
/// // RFC 1071 worked example.
/// let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
/// assert_eq!(internet_checksum(&data, 0), !0xddf2u16);
/// ```
pub fn internet_checksum(data: &[u8], sum: u32) -> u16 {
    !finish(partial(data, sum))
}

/// Accumulates 16-bit words of `data` into a running partial sum.
pub fn partial(data: &[u8], mut sum: u32) -> u32 {
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    sum
}

/// Folds carries of a partial sum into 16 bits (without complementing).
pub fn finish(mut sum: u32) -> u16 {
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    sum as u16
}

/// Partial sum of the TCP/UDP pseudo-header for IPv4.
pub fn pseudo_header_sum(src: [u8; 4], dst: [u8; 4], proto: u8, len: u16) -> u32 {
    let mut sum = 0u32;
    sum = partial(&src, sum);
    sum = partial(&dst, sum);
    sum += u32::from(proto);
    sum += u32::from(len);
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_buffer_checksums_to_ffff() {
        assert_eq!(internet_checksum(&[0u8; 20], 0), 0xffff);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        let even = internet_checksum(&[0xab, 0x00], 0);
        let odd = internet_checksum(&[0xab], 0);
        assert_eq!(even, odd);
    }

    #[test]
    fn verification_of_valid_packet_yields_zero() {
        // A buffer whose checksum field is filled in validates to 0.
        let mut data = vec![0x45u8, 0x00, 0x00, 0x14, 0x00, 0x00];
        let ck = internet_checksum(&data, 0);
        data.extend_from_slice(&ck.to_be_bytes());
        assert_eq!(finish(partial(&data, 0)), 0xffff);
    }

    #[test]
    fn pseudo_header_contributes() {
        let a = internet_checksum(&[1, 2, 3, 4], 0);
        let b = internet_checksum(
            &[1, 2, 3, 4],
            pseudo_header_sum([10, 0, 0, 1], [10, 0, 0, 2], 6, 4),
        );
        assert_ne!(a, b);
    }
}
